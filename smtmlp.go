// Package smtmlp is a from-scratch reproduction of "Memory-Level Parallelism
// Aware Fetch Policies for Simultaneous Multithreading Processors" (Eyerman
// and Eeckhout, HPCA 2007 / ACM TACO 2009): a cycle-level SMT out-of-order
// processor simulator with every fetch policy the paper evaluates, the MLP
// predictors that are the paper's contribution, calibrated synthetic SPEC
// CPU2000 workload models, and a harness that regenerates every table and
// figure of the evaluation.
//
// This package is the public facade. A minimal session:
//
//	cfg := smtmlp.DefaultConfig(2)
//	res := smtmlp.RunWorkload(cfg, smtmlp.Mix("mcf", "galgel"), smtmlp.MLPFlush, smtmlp.RunOptions{})
//	fmt.Printf("STP %.3f ANTT %.3f\n", res.STP, res.ANTT)
//
// Lower-level building blocks (the pipeline, the memory hierarchy, the LLSR
// and predictors, the trace generators) live in the internal packages and
// are documented in DESIGN.md; cmd/repro regenerates the paper's evaluation
// and cmd/smtsim runs ad-hoc workloads.
package smtmlp

import (
	"smtmlp/internal/bench"
	"smtmlp/internal/core"
	"smtmlp/internal/policy"
	"smtmlp/internal/sim"
)

// Config is the SMT processor configuration; DefaultConfig returns the
// paper's Table IV baseline.
type Config = core.Config

// DefaultConfig returns the baseline SMT processor of Table IV for the given
// number of hardware threads: 4-wide, ICOUNT 2.4 fetch, 256-entry shared
// ROB, 128-entry LSQ, 64-entry issue queues, 100+100 rename registers,
// 64KB/512KB/4MB cache hierarchy with stream-buffer prefetching, 350-cycle
// memory latency.
func DefaultConfig(threads int) Config { return core.DefaultConfig(threads) }

// Policy selects the SMT fetch policy.
type Policy = policy.Kind

// The fetch policies of the paper's evaluation (Sections 4.3 and 6.5).
const (
	// ICount is the baseline ICOUNT 2.4 policy (Tullsen et al., ISCA 1996).
	ICount = policy.ICount
	// Stall fetch-stalls a thread on a detected long-latency load (Tullsen
	// and Brown, MICRO 2001).
	Stall = policy.Stall
	// PredStall stalls on a front-end long-latency load prediction (Cazorla
	// et al.).
	PredStall = policy.PredStall
	// MLPStall predicts the MLP distance m and stalls m instructions past a
	// predicted long-latency load.
	MLPStall = policy.MLPStall
	// Flush flushes instructions past a detected long-latency load.
	Flush = policy.Flush
	// MLPFlush is the paper's headline policy: flush/stall m instructions
	// past a detected long-latency load, where m is the predicted MLP
	// distance.
	MLPFlush = policy.MLPFlush
	// BinaryFlush is the Section 6.5 alternative (c).
	BinaryFlush = policy.BinaryFlush
	// MLPFlushAtStall is the Section 6.5 alternative (d).
	MLPFlushAtStall = policy.MLPFlushAtStall
	// BinaryFlushAtStall is the Section 6.5 alternative (e).
	BinaryFlushAtStall = policy.BinaryFlushAtStall
)

// Policies returns the six policies of the paper's main evaluation.
func Policies() []Policy { return policy.Paper() }

// Workload is a multiprogrammed mix of benchmarks.
type Workload = bench.Workload

// Mix builds an ad-hoc workload from benchmark names (see Benchmarks for
// valid names).
func Mix(names ...string) Workload { return bench.Workload{Benchmarks: names} }

// Benchmarks returns the names of the 26 SPEC CPU2000 workload models in
// Table I order.
func Benchmarks() []string { return bench.Names() }

// TwoThreadWorkloads returns the 36 workloads of Table II.
func TwoThreadWorkloads() []Workload { return bench.TwoThreadWorkloads() }

// FourThreadWorkloads returns the 30 workloads of Table III.
func FourThreadWorkloads() []Workload { return bench.FourThreadWorkloads() }

// RunOptions controls simulation length. The zero value selects laptop-scale
// defaults (300K instructions per thread, one quarter of that as warm-up).
type RunOptions struct {
	// Instructions is the per-thread budget; the run stops when the first
	// thread commits this many (the paper's stopping rule).
	Instructions uint64
	// Warmup instructions execute before statistics reset; 0 means
	// Instructions/4.
	Warmup uint64
}

func (o RunOptions) params() sim.Params {
	p := sim.DefaultParams()
	if o.Instructions > 0 {
		p.Instructions = o.Instructions
	}
	p.Warmup = o.Warmup
	return p
}

// SingleResult reports a single-threaded run.
type SingleResult struct {
	IPC                  float64
	Cycles               int64
	Instructions         uint64
	LLLPer1K             float64 // long-latency loads per 1K instructions
	MLP                  float64 // Chou et al. MLP
	BranchMispredictRate float64
}

// RunSingle simulates one benchmark alone on cfg.
func RunSingle(cfg Config, benchmark string, opts RunOptions) (SingleResult, error) {
	if _, err := bench.Get(benchmark); err != nil {
		return SingleResult{}, err
	}
	r := sim.NewRunner(opts.params())
	res := r.RunSingle(cfg, benchmark)
	return SingleResult{
		IPC:                  res.IPC[0],
		Cycles:               res.Cycles,
		Instructions:         res.Committed[0],
		LLLPer1K:             res.LLLPer1K[0],
		MLP:                  res.MLP[0],
		BranchMispredictRate: res.BranchMispredictRate[0],
	}, nil
}

// ThreadResult reports one thread of a multiprogrammed run.
type ThreadResult struct {
	Benchmark string
	IPC       float64
	Committed uint64
	LLLPer1K  float64
	MLP       float64
	Flushes   uint64
	CPIST     float64 // single-threaded CPI at the same instruction count
	CPIMT     float64 // multithreaded CPI in this run
}

// WorkloadResult reports a multiprogrammed run with the paper's system-level
// metrics.
type WorkloadResult struct {
	Policy  string
	Threads []ThreadResult
	Cycles  int64
	STP     float64 // system throughput; higher is better
	ANTT    float64 // average normalized turnaround time; lower is better
}

// RunWorkload simulates a multiprogrammed workload under the given fetch
// policy, computing STP and ANTT against single-threaded references at
// matched instruction counts (the paper's methodology).
func RunWorkload(cfg Config, w Workload, p Policy, opts RunOptions) (WorkloadResult, error) {
	for _, n := range w.Benchmarks {
		if _, err := bench.Get(n); err != nil {
			return WorkloadResult{}, err
		}
	}
	r := sim.NewRunner(opts.params())
	res := r.RunWorkload(cfg, w, p, nil)
	out := WorkloadResult{
		Policy: res.Policy,
		Cycles: res.Result.Cycles,
		STP:    res.STP,
		ANTT:   res.ANTT,
	}
	for i, b := range w.Benchmarks {
		out.Threads = append(out.Threads, ThreadResult{
			Benchmark: b,
			IPC:       res.Result.IPC[i],
			Committed: res.Result.Committed[i],
			LLLPer1K:  res.Result.LLLPer1K[i],
			MLP:       res.Result.MLP[i],
			Flushes:   res.Result.Flushes[i],
			CPIST:     res.PerThread[i].CPIST,
			CPIMT:     res.PerThread[i].CPIMT,
		})
	}
	return out, nil
}
