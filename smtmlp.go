// Package smtmlp is a from-scratch reproduction of "Memory-Level Parallelism
// Aware Fetch Policies for Simultaneous Multithreading Processors" (Eyerman
// and Eeckhout, HPCA 2007 / ACM TACO 2009): a cycle-level SMT out-of-order
// processor simulator with every fetch policy the paper evaluates, the MLP
// predictors that are the paper's contribution, calibrated synthetic SPEC
// CPU2000 workload models, and a harness that regenerates every table and
// figure of the evaluation.
//
// This package is the public facade, organized around the Engine: a
// long-lived, concurrency-safe handle configured with functional options
// that owns the simulation parameters and a shared single-threaded
// reference cache. A minimal session:
//
//	eng := smtmlp.NewEngine(smtmlp.WithInstructions(300_000))
//	res, err := eng.RunWorkload(context.Background(),
//		smtmlp.DefaultConfig(2), smtmlp.Mix("mcf", "galgel"), smtmlp.MLPFlush)
//	if err != nil { ... }
//	fmt.Printf("STP %.3f ANTT %.3f\n", res.STP, res.ANTT)
//
// Sweep-shaped traffic — policy x workload x configuration cross-products —
// goes through Engine.RunBatch, which fans requests over a bounded worker
// pool with context cancellation and streams results back as they complete;
// CrossProduct builds the request list. Engines sharing a Cache (see
// WithCache) reuse each other's single-threaded references, the way a
// long-running service amortizes them across requests.
//
// The package's result and request types carry JSON tags: they are the wire
// format of the HTTP batch-simulation service (cmd/smtserved), which serves
// one long-lived Engine over REST and streams batches back as NDJSON. The
// serialization is pinned by a golden-file test; see DESIGN.md.
//
// Fingerprint content-addresses a Request under a measurement budget; it is
// the key of the persistent result store behind the campaign subsystem
// (cmd/smtsweep, POST /v1/campaigns), which expands declarative sweep specs,
// skips cells whose fingerprints are already stored, and resumes interrupted
// sweeps. Cache.Export and Cache.Seed are the matching warm-start path for
// the single-threaded reference profiles.
//
// Lower-level building blocks (the pipeline, the memory hierarchy, the LLSR
// and predictors, the trace generators) live in the internal packages and
// are documented in DESIGN.md; cmd/repro regenerates the paper's evaluation
// and cmd/smtsim runs ad-hoc workloads.
package smtmlp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"

	"smtmlp/internal/bench"
	"smtmlp/internal/core"
	"smtmlp/internal/policy"
	"smtmlp/internal/sim"
)

// Config is the SMT processor configuration; DefaultConfig returns the
// paper's Table IV baseline.
type Config = core.Config

// DefaultConfig returns the baseline SMT processor of Table IV for the given
// number of hardware threads: 4-wide, ICOUNT 2.4 fetch, 256-entry shared
// ROB, 128-entry LSQ, 64-entry issue queues, 100+100 rename registers,
// 64KB/512KB/4MB cache hierarchy with stream-buffer prefetching, 350-cycle
// memory latency.
func DefaultConfig(threads int) Config { return core.DefaultConfig(threads) }

// Policy selects the SMT fetch policy.
type Policy = policy.Kind

// The fetch policies of the paper's evaluation (Sections 4.3 and 6.5).
const (
	// ICount is the baseline ICOUNT 2.4 policy (Tullsen et al., ISCA 1996).
	ICount = policy.ICount
	// Stall fetch-stalls a thread on a detected long-latency load (Tullsen
	// and Brown, MICRO 2001).
	Stall = policy.Stall
	// PredStall stalls on a front-end long-latency load prediction (Cazorla
	// et al.).
	PredStall = policy.PredStall
	// MLPStall predicts the MLP distance m and stalls m instructions past a
	// predicted long-latency load.
	MLPStall = policy.MLPStall
	// Flush flushes instructions past a detected long-latency load.
	Flush = policy.Flush
	// MLPFlush is the paper's headline policy: flush/stall m instructions
	// past a detected long-latency load, where m is the predicted MLP
	// distance.
	MLPFlush = policy.MLPFlush
	// BinaryFlush is the Section 6.5 alternative (c).
	BinaryFlush = policy.BinaryFlush
	// MLPFlushAtStall is the Section 6.5 alternative (d).
	MLPFlushAtStall = policy.MLPFlushAtStall
	// BinaryFlushAtStall is the Section 6.5 alternative (e).
	BinaryFlushAtStall = policy.BinaryFlushAtStall
)

// Policies returns the six policies of the paper's main evaluation.
func Policies() []Policy { return policy.Paper() }

// AllPolicies returns every implemented policy, including the Section 6.5
// alternatives.
func AllPolicies() []Policy { return policy.Kinds() }

// ParsePolicy resolves a policy's short name (its String form, e.g.
// "mlpflush") back to a Policy; unknown names return an error wrapping
// ErrUnknownPolicy.
func ParsePolicy(name string) (Policy, error) {
	p, err := policy.Parse(name)
	if err != nil {
		return 0, fmt.Errorf("%w: %q", ErrUnknownPolicy, name)
	}
	return p, nil
}

// Workload is a multiprogrammed mix of benchmarks.
type Workload = bench.Workload

// Mix builds an ad-hoc workload from benchmark names (see Benchmarks for
// valid names).
func Mix(names ...string) Workload { return bench.Workload{Benchmarks: names} }

// Benchmarks returns the names of the 26 SPEC CPU2000 workload models in
// Table I order.
func Benchmarks() []string { return bench.Names() }

// TwoThreadWorkloads returns the 36 workloads of Table II.
func TwoThreadWorkloads() []Workload { return bench.TwoThreadWorkloads() }

// FourThreadWorkloads returns the 30 workloads of Table III.
func FourThreadWorkloads() []Workload { return bench.FourThreadWorkloads() }

// Typed errors. Wrap/compare with errors.Is; a canceled run also matches
// the context package's own context.Canceled / context.DeadlineExceeded.
var (
	// ErrUnknownBenchmark reports a benchmark name outside the Table I
	// catalog (see Benchmarks for valid names).
	ErrUnknownBenchmark = errors.New("smtmlp: unknown benchmark")
	// ErrUnknownPolicy reports a policy name outside the implemented set
	// (see AllPolicies).
	ErrUnknownPolicy = errors.New("smtmlp: unknown policy")
	// ErrWorkloadMismatch reports a workload whose benchmark count differs
	// from the configuration's hardware thread count (every thread runs
	// exactly one benchmark, so the two must agree).
	ErrWorkloadMismatch = errors.New("smtmlp: workload/config thread count mismatch")
	// ErrCanceled reports a run abandoned because its context was canceled
	// or its deadline expired.
	ErrCanceled = errors.New("smtmlp: run canceled")
)

// canceledError wraps the context's error so that callers can match either
// taxonomy: errors.Is(err, ErrCanceled) and errors.Is(err, context.Canceled)
// both hold.
type canceledError struct{ cause error }

func (e *canceledError) Error() string        { return "smtmlp: run canceled: " + e.cause.Error() }
func (e *canceledError) Unwrap() error        { return e.cause }
func (e *canceledError) Is(target error) bool { return target == ErrCanceled }

// wrapErr maps internal errors onto the package's typed errors.
func wrapErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &canceledError{cause: err}
	}
	return err
}

// checkBenchmarks validates every benchmark name of a workload. An empty
// workload is rejected here so it surfaces as an error instead of a panic
// from the pipeline (which requires at least one model).
func checkBenchmarks(names []string) error {
	if len(names) == 0 {
		return errors.New("smtmlp: workload has no benchmarks")
	}
	for _, n := range names {
		if _, err := bench.Get(n); err != nil {
			return fmt.Errorf("%w: %q", ErrUnknownBenchmark, n)
		}
	}
	return nil
}

// checkWorkload validates a workload against a configuration: every
// benchmark must exist and the benchmark count must equal the configured
// hardware thread count. Without the second check a mismatch used to surface
// as a confusing deep-simulation failure (the pipeline silently resizes to
// the model count, desynchronizing the config the caller thinks it ran).
func checkWorkload(cfg Config, names []string) error {
	if err := checkBenchmarks(names); err != nil {
		return err
	}
	if cfg.Threads != len(names) {
		return fmt.Errorf("%w: workload has %d benchmarks but config has threads=%d",
			ErrWorkloadMismatch, len(names), cfg.Threads)
	}
	return nil
}

// Cache holds single-threaded reference profiles keyed by benchmark,
// measurement budget and a full configuration hash. It is safe for
// concurrent use and size-bounded (LRU). Pass one Cache to several engines
// via WithCache to share references between them — repeated sweeps and
// concurrent engines then each compute a given reference at most once.
type Cache struct{ refs *sim.RefCache }

// NewCache returns a reference cache bounded to maxEntries profiles;
// maxEntries <= 0 selects the default bound.
func NewCache(maxEntries int) *Cache { return &Cache{refs: sim.NewRefCache(maxEntries)} }

// Len reports the number of resident reference profiles.
func (c *Cache) Len() int { return c.refs.Len() }

// RefProfile is one persisted single-threaded reference profile: the cache
// key (benchmark, budget, full-config hash) together with the CPI checkpoint
// profile behind it. It is the unit of the cache's Export/Seed warm-start
// path: a result store persists RefProfiles so a restarted service skips
// reference re-simulation.
type RefProfile = sim.RefRecord

// Export snapshots the cache's resident reference profiles, sorted by key
// (deterministic regardless of insertion or LRU order).
func (c *Cache) Export() []RefProfile { return c.refs.Export() }

// Seed inserts profiles (from a previous Export, typically persisted in a
// result store) as resident entries, skipping keys already present, and
// returns the number inserted. Seeding respects the cache's LRU bound.
func (c *Cache) Seed(profiles []RefProfile) int { return c.refs.Seed(profiles) }

// Stats reports cache lookup hits, misses (reference simulations run) and
// LRU evictions.
func (c *Cache) Stats() (hits, misses, evictions uint64) { return c.refs.Stats() }

// Engine is the long-lived entry point: it fixes the simulation parameters
// (instruction budget, warm-up, parallelism) and owns a reference Cache.
// An Engine is safe for concurrent use; all methods honor their context.
type Engine struct {
	runner   *sim.Runner
	cache    *Cache
	progress func(completed, total int)
}

// SlotGate admits simulations at the engine-slot boundary: every
// multiprogram simulation acquires one slot before executing and releases it
// after. Install one with WithSlotGate to let an external scheduler (e.g. a
// multi-tenant admission layer) arbitrate engine capacity one simulation at
// a time; gating reorders execution, never results.
type SlotGate = sim.SlotGate

// engineOptions collects functional-option state before the Engine is built.
type engineOptions struct {
	params    sim.Params
	cacheSize int
	cache     *Cache
	gate      SlotGate
	progress  func(completed, total int)
}

// Option configures an Engine under construction.
type Option func(*engineOptions)

// WithInstructions sets the per-thread instruction budget (the run stops
// when the first thread commits this many — the paper's stopping rule).
// Zero keeps the default laptop-scale budget of 300K.
func WithInstructions(n uint64) Option {
	return func(o *engineOptions) {
		if n > 0 {
			o.params.Instructions = n
		}
	}
}

// WithWarmup sets the instructions executed before statistics reset; zero
// (the default) means a quarter of the instruction budget.
func WithWarmup(n uint64) Option {
	return func(o *engineOptions) { o.params.Warmup = n }
}

// WithParallelism bounds concurrent simulations per RunBatch call; zero
// (the default) means GOMAXPROCS. The bound is per batch, not engine-wide:
// concurrent RunBatch calls on one engine each get their own worker pool.
func WithParallelism(n int) Option {
	return func(o *engineOptions) { o.params.Parallelism = n }
}

// WithCacheSize bounds the engine's private reference cache to the given
// number of profiles. It is ignored when WithCache supplies a shared cache.
func WithCacheSize(entries int) Option {
	return func(o *engineOptions) { o.cacheSize = entries }
}

// WithCache makes the engine draw single-threaded references from (and
// publish them to) a shared Cache instead of a private one.
func WithCache(c *Cache) Option {
	return func(o *engineOptions) { o.cache = c }
}

// WithSlotGate installs a slot-admission gate: each of the engine's
// simulations (RunWorkload calls and RunBatch cells alike) acquires one slot
// from the gate before executing. Several engines may share one gate, which
// then bounds and arbitrates their combined concurrency — the service layer
// uses this to schedule one engine's slots across tenants. A nil gate leaves
// admission unlimited (the default).
func WithSlotGate(g SlotGate) Option {
	return func(o *engineOptions) { o.gate = g }
}

// WithIntervalTrace enables the interval-trace recorder for every simulation
// the engine runs: one per-thread IntervalSample every `every` cycles,
// carried on SingleResult.Intervals and ThreadResult.Intervals. Zero (the
// default) disables tracing, at zero cost on the simulator's hot path.
// Traces are observations only — enabling them changes no simulated outcome,
// and repeated runs of the same request produce byte-identical traces.
// Single-threaded reference profiles (the CPI_ST inputs to STP/ANTT) never
// carry traces regardless of this option, so cached and persisted references
// stay byte-identical across engines with different trace settings.
func WithIntervalTrace(every int64) Option {
	return func(o *engineOptions) {
		if every > 0 {
			o.params.TraceInterval = every
		}
	}
}

// WithProgress installs a callback invoked after each completed batch
// request with (completed, total). Within one RunBatch the calls are
// sequential (from that batch's collector goroutine), but concurrent
// RunBatch calls on the same engine invoke the callback concurrently —
// synchronize in the callback if it touches shared state. Keep it fast.
func WithProgress(fn func(completed, total int)) Option {
	return func(o *engineOptions) { o.progress = fn }
}

// NewEngine builds an Engine from the options; the zero-option engine uses
// the laptop-scale defaults (300K instructions, budget/4 warm-up, GOMAXPROCS
// parallelism, a private default-sized cache).
func NewEngine(opts ...Option) *Engine {
	o := engineOptions{params: sim.DefaultParams()}
	for _, opt := range opts {
		opt(&o)
	}
	cache := o.cache
	if cache == nil {
		cache = NewCache(o.cacheSize)
	}
	runner := sim.NewRunnerWithCache(o.params, cache.refs)
	runner.Gate = o.gate
	return &Engine{
		runner:   runner,
		cache:    cache,
		progress: o.progress,
	}
}

// Instructions returns the engine's per-thread instruction budget.
func (e *Engine) Instructions() uint64 { return e.runner.Params.Instructions }

// Warmup returns the engine's resolved warm-up budget.
func (e *Engine) Warmup() uint64 { return e.runner.Params.EffectiveWarmup() }

// Parallelism returns the configured batch parallelism bound (0 means
// GOMAXPROCS).
func (e *Engine) Parallelism() int { return e.runner.Params.Parallelism }

// Cache returns the engine's reference cache (shared or private).
func (e *Engine) Cache() *Cache { return e.cache }

// EngineMetrics is a point-in-time snapshot of an engine's live-traffic
// gauges and reference-cache counters, shaped for a metrics endpoint.
type EngineMetrics struct {
	// InFlight counts simulations executing right now (multiprogram runs
	// and single-threaded reference runs alike).
	InFlight int64 `json:"in_flight"`
	// QueueDepth counts batch requests accepted but not yet finished.
	QueueDepth int64 `json:"queue_depth"`

	CacheEntries   int    `json:"cache_entries"`
	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheEvictions uint64 `json:"cache_evictions"`
}

// Metrics snapshots the engine's gauges and cache counters. The snapshot is
// not atomic across fields; it is meant for monitoring, not invariants.
func (e *Engine) Metrics() EngineMetrics {
	m := EngineMetrics{
		InFlight:     e.runner.InFlight(),
		QueueDepth:   e.runner.QueueDepth(),
		CacheEntries: e.cache.Len(),
	}
	m.CacheHits, m.CacheMisses, m.CacheEvictions = e.cache.Stats()
	return m
}

// IntervalSample is one interval-trace observation for one thread: counter
// deltas over the interval plus instantaneous pipeline state at the interval
// boundary. Traces are opt-in (WithIntervalTrace or Request.TraceInterval)
// and byte-deterministic; the recorder retains at most the last 512 samples
// per thread, so payloads stay bounded for any run length.
type IntervalSample struct {
	// Cycle is the interval-end cycle, relative to the measurement start.
	Cycle int64 `json:"cycle"`
	// Committed is the number of instructions committed in the interval.
	Committed uint64 `json:"committed"`
	// Fetched is the number of fetch slots granted in the interval.
	Fetched uint64 `json:"fetched"`
	// L2Misses counts demand loads serviced beyond the L2 in the interval.
	L2Misses uint64 `json:"l2_misses"`
	// LLLs counts long-latency loads issued in the interval.
	LLLs uint64 `json:"llls"`
	// Flushes counts policy-triggered flushes in the interval.
	Flushes uint64 `json:"flushes"`
	// ROBOcc is the thread's ROB occupancy at the boundary.
	ROBOcc int `json:"rob_occ"`
	// MLP is the thread's outstanding long-latency load count at the
	// boundary (the instantaneous memory-level parallelism signal).
	MLP int `json:"mlp"`
	// Gated reports whether the fetch policy was gating the thread at the
	// boundary (the per-interval policy decision).
	Gated bool `json:"gated,omitempty"`
}

// SingleResult reports a single-threaded run. The JSON tags are the wire
// format served over HTTP (cmd/smtserved); renaming a tag is a breaking API
// change and is pinned by the wire-schema golden test.
type SingleResult struct {
	IPC                  float64 `json:"ipc"`
	Cycles               int64   `json:"cycles"`
	Instructions         uint64  `json:"instructions"`
	LLLPer1K             float64 `json:"lll_per_1k"` // long-latency loads per 1K instructions
	MLP                  float64 `json:"mlp"`        // Chou et al. MLP
	BranchMispredictRate float64 `json:"branch_mispredict_rate"`
	// Intervals is the run's interval trace (absent unless tracing was
	// enabled, see WithIntervalTrace).
	Intervals []IntervalSample `json:"intervals,omitempty"`
}

// ThreadResult reports one thread of a multiprogrammed run.
type ThreadResult struct {
	Benchmark string  `json:"benchmark"`
	IPC       float64 `json:"ipc"`
	Committed uint64  `json:"committed"`
	LLLPer1K  float64 `json:"lll_per_1k"`
	MLP       float64 `json:"mlp"`
	Flushes   uint64  `json:"flushes"`
	CPIST     float64 `json:"cpi_st"` // single-threaded CPI at the same instruction count
	CPIMT     float64 `json:"cpi_mt"` // multithreaded CPI in this run
	// Intervals is the thread's interval trace (absent unless tracing was
	// enabled, see WithIntervalTrace and Request.TraceInterval).
	Intervals []IntervalSample `json:"intervals,omitempty"`
}

// intervalSamples converts the kernel's interval samples to the wire shape.
func intervalSamples(in []core.IntervalSample) []IntervalSample {
	if len(in) == 0 {
		return nil
	}
	out := make([]IntervalSample, len(in))
	for i, s := range in {
		out[i] = IntervalSample{
			Cycle:     s.Cycle,
			Committed: s.Committed,
			Fetched:   s.Fetched,
			L2Misses:  s.L2Misses,
			LLLs:      s.LLLs,
			Flushes:   s.Flushes,
			ROBOcc:    s.ROBOcc,
			MLP:       s.MLP,
			Gated:     s.Gated,
		}
	}
	return out
}

// WorkloadResult reports a multiprogrammed run with the paper's system-level
// metrics.
type WorkloadResult struct {
	Policy  string         `json:"policy"`
	Threads []ThreadResult `json:"threads"`
	Cycles  int64          `json:"cycles"`
	STP     float64        `json:"stp"`  // system throughput; higher is better
	ANTT    float64        `json:"antt"` // average normalized turnaround time; lower is better
}

// RunSingle simulates one benchmark alone on cfg (which must be a
// single-threaded configuration: cfg.Threads == 1).
func (e *Engine) RunSingle(ctx context.Context, cfg Config, benchmark string) (SingleResult, error) {
	if err := checkWorkload(cfg, []string{benchmark}); err != nil {
		return SingleResult{}, err
	}
	res, err := e.runner.RunSingleCtx(ctx, cfg, benchmark)
	if err != nil {
		return SingleResult{}, wrapErr(err)
	}
	out := SingleResult{
		IPC:                  res.IPC[0],
		Cycles:               res.Cycles,
		Instructions:         res.Committed[0],
		LLLPer1K:             res.LLLPer1K[0],
		MLP:                  res.MLP[0],
		BranchMispredictRate: res.BranchMispredictRate[0],
	}
	if len(res.Intervals) > 0 {
		out.Intervals = intervalSamples(res.Intervals[0])
	}
	return out, nil
}

// RunWorkload simulates a multiprogrammed workload under the given fetch
// policy, computing STP and ANTT against single-threaded references at
// matched instruction counts (the paper's methodology). References come
// from the engine's Cache.
func (e *Engine) RunWorkload(ctx context.Context, cfg Config, w Workload, p Policy) (WorkloadResult, error) {
	if err := checkWorkload(cfg, w.Benchmarks); err != nil {
		return WorkloadResult{}, err
	}
	res, err := e.runner.RunWorkloadCtx(ctx, cfg, w, p, nil)
	if err != nil {
		return WorkloadResult{}, wrapErr(err)
	}
	return workloadResult(w, res), nil
}

// RunRequest executes one Request — configuration, workload, policy and
// optional per-request TraceInterval — and returns its result. It is
// RunWorkload with the Request's trace knob honored (a zero TraceInterval
// inherits the engine's WithIntervalTrace setting); the HTTP service's
// /v1/run maps onto it.
func (e *Engine) RunRequest(ctx context.Context, req Request) (WorkloadResult, error) {
	if err := checkWorkload(req.Config, req.Workload.Benchmarks); err != nil {
		return WorkloadResult{}, err
	}
	every := req.TraceInterval
	if every == 0 {
		every = e.runner.Params.TraceInterval
	}
	res, err := e.runner.RunWorkloadTracedCtx(ctx, req.Config, req.Workload, req.Policy, nil, every)
	if err != nil {
		return WorkloadResult{}, wrapErr(err)
	}
	return workloadResult(req.Workload, res), nil
}

// workloadResult converts an internal workload result to the public shape.
func workloadResult(w Workload, res sim.WorkloadResult) WorkloadResult {
	out := WorkloadResult{
		Policy: res.Policy,
		Cycles: res.Result.Cycles,
		STP:    res.STP,
		ANTT:   res.ANTT,
	}
	for i, b := range w.Benchmarks {
		tr := ThreadResult{
			Benchmark: b,
			IPC:       res.Result.IPC[i],
			Committed: res.Result.Committed[i],
			LLLPer1K:  res.Result.LLLPer1K[i],
			MLP:       res.Result.MLP[i],
			Flushes:   res.Result.Flushes[i],
			CPIST:     res.PerThread[i].CPIST,
			CPIMT:     res.PerThread[i].CPIMT,
		}
		if i < len(res.Result.Intervals) {
			tr.Intervals = intervalSamples(res.Result.Intervals[i])
		}
		out.Threads = append(out.Threads, tr)
	}
	return out
}

// Request is one simulation in a batch: a configuration point, a workload
// and a fetch policy. Tag is caller-chosen and echoed on the result (
// CrossProduct fills it with "workload/policy"). Policy marshals as its
// short name ("mlpflush"), so a Request round-trips through JSON.
type Request struct {
	Tag      string   `json:"tag,omitempty"`
	Config   Config   `json:"config"`
	Workload Workload `json:"workload"`
	Policy   Policy   `json:"policy"`
	// TraceInterval > 0 enables interval tracing for this request alone
	// (one sample every TraceInterval cycles); 0 inherits the engine's
	// WithIntervalTrace setting. Like Tag it is deliberately excluded from
	// Fingerprint: traces observe a simulation, they do not change it.
	TraceInterval int64 `json:"trace_interval,omitempty"`
}

// BatchResult pairs a finished Request with its outcome. Index is the
// request's position in the submitted slice — results stream in completion
// order, so use Index (or Tag) to restore the deterministic submission
// order. Exactly one of Result/Err is meaningful.
type BatchResult struct {
	Index   int
	Request Request
	Result  WorkloadResult
	Err     error
}

// batchResultWire is the JSON shape of a BatchResult: the error travels as a
// string ("" = success) and a failed request omits its result.
type batchResultWire struct {
	Index   int             `json:"index"`
	Request Request         `json:"request"`
	Result  *WorkloadResult `json:"result,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// MarshalJSON implements the NDJSON line format the batch service streams:
// {"index":..,"request":{..},"result":{..}} on success,
// {"index":..,"request":{..},"error":"..."} on failure.
func (r BatchResult) MarshalJSON() ([]byte, error) {
	w := batchResultWire{Index: r.Index, Request: r.Request}
	if r.Err != nil {
		w.Error = r.Err.Error()
	} else {
		w.Result = &r.Result
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the wire form. A remote failure surfaces as a plain
// error carrying the server's message; it no longer matches the package's
// typed errors (the error crossed a process boundary).
func (r *BatchResult) UnmarshalJSON(data []byte) error {
	var w batchResultWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*r = BatchResult{Index: w.Index, Request: w.Request}
	if w.Error != "" {
		r.Err = errors.New(w.Error)
	} else if w.Result != nil {
		r.Result = *w.Result
	}
	return nil
}

// CrossProduct builds the policy x workload cross-product on one
// configuration, in workload-major order (all policies of workload 0, then
// workload 1, ...), tagged "workload/policy".
func CrossProduct(cfg Config, workloads []Workload, policies []Policy) []Request {
	reqs := make([]Request, 0, len(workloads)*len(policies))
	for _, w := range workloads {
		for _, p := range policies {
			reqs = append(reqs, Request{
				Tag:      fmt.Sprintf("%s/%s", w.Name(), p),
				Config:   cfg,
				Workload: w,
				Policy:   p,
			})
		}
	}
	return reqs
}

// RunBatch fans the requests over a worker pool bounded by the engine's
// parallelism and streams results back as they complete. The returned
// channel is buffered for the whole batch and always closes after exactly
// len(reqs) results, so a canceled or abandoned batch still drains cleanly.
// Once ctx is done, requests not yet started complete immediately with an
// ErrCanceled-wrapped error; requests with unknown benchmarks fail with
// ErrUnknownBenchmark without occupying the pool. Single-threaded
// references are shared through the engine's Cache, so a policy x workload
// cross-product computes each reference once.
func (e *Engine) RunBatch(ctx context.Context, reqs []Request) <-chan BatchResult {
	out := make(chan BatchResult, len(reqs))

	// Validate up front: invalid requests fail immediately and never reach
	// the worker pool.
	simReqs := make([]sim.BatchRequest, 0, len(reqs))
	simIdx := make([]int, 0, len(reqs))
	invalid := 0
	for i, req := range reqs {
		if err := checkWorkload(req.Config, req.Workload.Benchmarks); err != nil {
			out <- BatchResult{Index: i, Request: req, Err: err}
			invalid++
			continue
		}
		simReqs = append(simReqs, sim.BatchRequest{
			Tag:           req.Tag,
			Config:        req.Config,
			Workload:      req.Workload,
			Kind:          req.Policy,
			TraceInterval: req.TraceInterval,
		})
		simIdx = append(simIdx, i)
	}

	ch := e.runner.RunBatch(ctx, simReqs)
	go func() {
		total := len(reqs)
		done := 0
		for ; done < invalid; done++ {
			if e.progress != nil {
				e.progress(done+1, total)
			}
		}
		for br := range ch {
			i := simIdx[br.Index]
			req := reqs[i]
			pub := BatchResult{Index: i, Request: req, Err: wrapErr(br.Err)}
			if br.Err == nil {
				pub.Result = workloadResult(req.Workload, br.Res)
			}
			out <- pub
			done++
			if e.progress != nil {
				e.progress(done, total)
			}
		}
		close(out)
	}()
	return out
}

// ConfigHash returns the FNV-64a hash of the full processor configuration —
// every field, including the memory hierarchy and branch predictor — so any
// configuration change yields a distinct hash (up to the negligible ~2^-64
// collision chance). It is the configuration component of Fingerprint and of
// the reference-cache key.
func ConfigHash(cfg Config) uint64 { return sim.ConfigHash(cfg) }

// Fingerprint content-addresses one simulation: the benchmark mix, the fetch
// policy, the measurement budget (instructions and resolved warm-up) and the
// ConfigHash of the full configuration. Two requests with equal fingerprints
// produce byte-identical results (the simulator is deterministic), which is
// what lets a persistent result store deduplicate and resume sweeps. The
// caller-chosen Tag is deliberately excluded: it labels a request, it does
// not change the simulation.
//
// The human-readable prefix (workload, policy, budgets) aids debugging and
// store inspection; the trailing hash additionally covers the benchmark list
// with separators and the full configuration, so the fingerprint as a whole
// is collision-resistant even where names could be ambiguous.
func Fingerprint(req Request, instructions, warmup uint64) string {
	h := fnv.New64a()
	for _, b := range req.Workload.Benchmarks {
		h.Write([]byte(b))
		h.Write([]byte{0})
	}
	fmt.Fprintf(h, "%s|i=%d|w=%d|cfg=%016x", req.Policy, instructions, warmup, ConfigHash(req.Config))
	return fmt.Sprintf("%s|%s|i=%d|w=%d|%016x",
		req.Workload.Name(), req.Policy, instructions, warmup, h.Sum64())
}

// Fingerprint content-addresses req under this engine's measurement budget;
// see the package-level Fingerprint.
func (e *Engine) Fingerprint(req Request) string {
	return Fingerprint(req, e.Instructions(), e.Warmup())
}
