package mem

import (
	"testing"
	"testing/quick"
)

func testCache() *Cache {
	return NewCache(CacheConfig{SizeBytes: 4096, Ways: 2, LineBytes: 64, Latency: 3})
}

func TestCacheGeometry(t *testing.T) {
	c := testCache()
	if c.Sets() != 32 {
		t.Fatalf("sets = %d, want 32", c.Sets())
	}
	if c.Latency() != 3 {
		t.Fatalf("latency = %d, want 3", c.Latency())
	}
}

func TestCacheMissThenHit(t *testing.T) {
	c := testCache()
	if c.Lookup(100) {
		t.Fatal("empty cache hit")
	}
	c.Insert(100)
	if !c.Lookup(100) {
		t.Fatal("inserted line missed")
	}
	if c.Accesses != 2 || c.Misses != 1 {
		t.Fatalf("stats = %d/%d, want 2/1", c.Accesses, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := testCache() // 2 ways
	sets := uint64(c.Sets())
	a, b, d := uint64(1), 1+sets, 1+2*sets // same set
	c.Insert(a)
	c.Insert(b)
	c.Lookup(a) // a most recent; b is LRU
	evicted, had := c.Insert(d)
	if !had || evicted != b {
		t.Fatalf("evicted %d (had=%t), want %d", evicted, had, b)
	}
	if !c.Contains(a) || !c.Contains(d) || c.Contains(b) {
		t.Fatal("LRU eviction kept/removed the wrong lines")
	}
}

func TestCacheInsertExistingNoEviction(t *testing.T) {
	c := testCache()
	c.Insert(5)
	if _, had := c.Insert(5); had {
		t.Fatal("re-inserting an existing line evicted something")
	}
}

func TestCacheDifferentSetsDoNotConflict(t *testing.T) {
	c := testCache()
	for line := uint64(0); line < uint64(c.Sets()); line++ {
		c.Insert(line)
	}
	for line := uint64(0); line < uint64(c.Sets()); line++ {
		if !c.Contains(line) {
			t.Fatalf("line %d evicted despite distinct sets", line)
		}
	}
}

func TestCacheMissRate(t *testing.T) {
	c := testCache()
	if c.MissRate() != 0 {
		t.Fatal("empty cache miss rate not 0")
	}
	c.Lookup(1)
	c.Insert(1)
	c.Lookup(1)
	if mr := c.MissRate(); mr != 0.5 {
		t.Fatalf("miss rate = %v, want 0.5", mr)
	}
}

func TestQuickInsertThenContains(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1 << 16, Ways: 4, LineBytes: 64, Latency: 1})
	f := func(line uint64) bool {
		c.Insert(line)
		return c.Contains(line)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTLBMissThenHit(t *testing.T) {
	tlb := NewTLB(4, 8192)
	if tlb.Lookup(0x10000) {
		t.Fatal("empty TLB hit")
	}
	if !tlb.Lookup(0x10010) { // same page
		t.Fatal("same-page access missed")
	}
	if tlb.Accesses != 2 || tlb.Misses != 1 {
		t.Fatalf("stats %d/%d, want 2/1", tlb.Accesses, tlb.Misses)
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tlb := NewTLB(2, 8192)
	tlb.Lookup(0 * 8192)
	tlb.Lookup(1 * 8192)
	tlb.Lookup(0 * 8192) // refresh page 0; page 1 is LRU
	tlb.Lookup(2 * 8192) // evicts page 1
	// Page 1 was evicted; the miss below re-installs it, evicting page 0
	// (which became LRU once page 2 arrived).
	if tlb.Lookup(1 * 8192) {
		t.Fatal("evicted page still hit")
	}
	if !tlb.Lookup(2 * 8192) {
		t.Fatal("recently used page was evicted")
	}
}

func TestTLBPageGranularity(t *testing.T) {
	tlb := NewTLB(16, 8192)
	tlb.Lookup(0)
	if !tlb.Lookup(8191) {
		t.Fatal("last byte of page 0 missed")
	}
	if tlb.Lookup(8192) {
		t.Fatal("first byte of page 1 hit without translation")
	}
}

func TestTLBMissRate(t *testing.T) {
	tlb := NewTLB(8, 8192)
	if tlb.MissRate() != 0 {
		t.Fatal("empty TLB miss rate not 0")
	}
	tlb.Lookup(0)
	tlb.Lookup(0)
	tlb.Lookup(0)
	tlb.Lookup(0)
	if mr := tlb.MissRate(); mr != 0.25 {
		t.Fatalf("miss rate %v, want 0.25", mr)
	}
}
