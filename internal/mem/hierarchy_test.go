package mem

import (
	"testing"
	"testing/quick"
)

// quietConfig returns the Table IV hierarchy without prefetching, so tests
// can reason about individual levels.
func quietConfig() Config {
	cfg := DefaultConfig(1)
	cfg.EnablePrefetch = false
	return cfg
}

// warmTLB touches addr's page so later accesses measure cache levels only.
func warmTLB(h *Hierarchy, addr uint64, now int64) {
	h.Load(0, 0x999, addr, now)
}

func TestLoadLevelLatencies(t *testing.T) {
	cfg := quietConfig()
	h := New(cfg)
	const addr = 0x100000
	warmTLB(h, addr, 0) // fill in flight until MemLatency

	// Second access after the fill completed: L1 hit.
	if acc := h.Load(0, 1, addr, 1_000); acc.Level != LevelL1 || acc.Latency != cfg.L1.Latency {
		t.Fatalf("L1 hit: got level %v latency %d", acc.Level, acc.Latency)
	}

	// First access to a line in the same (already translated) page: the
	// line is not cached anywhere -> memory access.
	acc := h.Load(0, 2, addr+4096-64, 2_000)
	if acc.TLBMiss {
		t.Fatal("same-page access missed the TLB")
	}
	if acc.Level != LevelMem || !acc.LongLatency {
		t.Fatalf("cold line: got level %v, longLatency=%t", acc.Level, acc.LongLatency)
	}
	if acc.Latency != cfg.MemLatency {
		t.Fatalf("memory latency %d, want %d", acc.Latency, cfg.MemLatency)
	}
}

func TestTLBMissIsLongLatency(t *testing.T) {
	h := New(quietConfig())
	acc := h.Load(0, 1, 0x5000000, 0)
	if !acc.TLBMiss || !acc.LongLatency {
		t.Fatalf("first-touch access: TLBMiss=%t LongLatency=%t, want both true", acc.TLBMiss, acc.LongLatency)
	}
}

func TestL2AndL3Hits(t *testing.T) {
	cfg := quietConfig()
	h := New(cfg)
	const addr = 0x200000
	warmTLB(h, addr, 0) // fill completes at cycle MemLatency+TLB walk

	// Evict from L1 by filling its set: L1 is 64KB 2-way, 512 sets; lines
	// mapping to the same set are 512 lines (32KB) apart. Large cycle gaps
	// keep the fills from overlapping (no MSHR merges).
	l1, _, _ := h.Caches()
	setStride := uint64(l1.Sets() * cfg.LineBytes)
	warmTLB(h, addr+setStride, 5_000)
	warmTLB(h, addr+2*setStride, 10_000)
	h.Load(0, 2, addr+setStride, 15_000)
	h.Load(0, 3, addr+2*setStride, 20_000)

	acc := h.Load(0, 4, addr, 25_000)
	if acc.Level != LevelL2 || acc.Latency != cfg.L2.Latency {
		t.Fatalf("expected L2 hit (lat %d), got %v lat %d", cfg.L2.Latency, acc.Level, acc.Latency)
	}
}

func TestMSHRCoalescing(t *testing.T) {
	cfg := quietConfig()
	h := New(cfg)
	const addr = 0x300000
	warmTLB(h, addr+64, 0) // same page, different line

	a := h.Load(0, 1, addr, 1_000)
	if a.Level != LevelMem {
		t.Fatalf("first access level %v, want MEM", a.Level)
	}
	// A second load to the same missing line 50 cycles later merges with
	// the outstanding miss: remaining fill latency plus the L1 access.
	b := h.Load(0, 2, addr, 1_050)
	if want := cfg.MemLatency - 50 + cfg.L1.Latency; b.Latency != want {
		t.Fatalf("coalesced latency %d, want %d", b.Latency, want)
	}
	// After the fill completes, the line hits in the L1.
	c := h.Load(0, 3, addr, 1_000+cfg.MemLatency+1)
	if c.Level != LevelL1 {
		t.Fatalf("post-fill access level %v, want L1", c.Level)
	}
}

func TestSerializeLLLMode(t *testing.T) {
	cfg := quietConfig()
	cfg.SerializeLLL = true
	h := New(cfg)
	// Two independent far misses issued the same cycle: the second must
	// start after the first completes.
	a := h.Load(0, 1, 0x10000000, 0)
	b := h.Load(0, 2, 0x20000000, 0)
	if !a.LongLatency || !b.LongLatency {
		t.Fatal("far accesses not long-latency")
	}
	if b.Latency < a.Latency+cfg.MemLatency {
		t.Fatalf("serialized latency %d not delayed past first (%d)", b.Latency, a.Latency)
	}
}

func TestSerializeOnlyWithinThread(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.EnablePrefetch = false
	cfg.SerializeLLL = true
	h := New(cfg)
	a := h.Load(0, 1, 0x10000000, 0)
	b := h.Load(1, 2, 0x20000000, 0)
	if b.Latency != a.Latency {
		t.Fatalf("cross-thread serialization: %d vs %d", a.Latency, b.Latency)
	}
}

func TestMLPAccountingOverlap(t *testing.T) {
	cfg := quietConfig()
	h := New(cfg)
	// Two fully overlapping long-latency loads -> MLP 2.
	h.Load(0, 1, 0x10000000, 0)
	h.Load(0, 2, 0x20000000, 0)
	end := int64(10000)
	mlp, llls := h.ThreadMLP(0, end)
	if llls != 2 {
		t.Fatalf("LLL count %d, want 2", llls)
	}
	if mlp < 1.9 || mlp > 2.0 {
		t.Fatalf("MLP %v, want ~2.0", mlp)
	}
}

func TestMLPAccountingSerial(t *testing.T) {
	cfg := quietConfig()
	h := New(cfg)
	h.Load(0, 1, 0x10000000, 0)
	// Second miss starts long after the first finished.
	h.Load(0, 2, 0x20000000, 10*cfg.MemLatency)
	mlp, _ := h.ThreadMLP(0, 20*cfg.MemLatency)
	if mlp > 1.01 {
		t.Fatalf("non-overlapping misses produced MLP %v", mlp)
	}
}

func TestMLPDefaultIsOne(t *testing.T) {
	h := New(quietConfig())
	if mlp, llls := h.ThreadMLP(0, 100); mlp != 1 || llls != 0 {
		t.Fatalf("empty thread MLP=%v llls=%d, want 1/0", mlp, llls)
	}
}

func TestStreamPrefetchingCoversStrides(t *testing.T) {
	cfg := DefaultConfig(1) // prefetch on
	h := New(cfg)
	base := uint64(0x40000000)
	now := int64(0)
	misses := 0
	// Walk 4096 sequential 8-byte elements (512 lines); after the stride
	// predictor gains confidence, stream buffers should cover line
	// crossings.
	for i := 0; i < 4096; i++ {
		acc := h.Load(0, 0x1234, base+uint64(i*8), now)
		now += 10
		if i > 512 && acc.LongLatency {
			misses++
		}
	}
	if misses > 40 {
		t.Fatalf("prefetcher left %d long-latency misses on a pure stream", misses)
	}
	if _, _, hits := h.PrefetchStats(); hits == 0 {
		t.Fatal("no stream buffer hits recorded")
	}
}

func TestRandomAccessesNotPrefetchable(t *testing.T) {
	cfg := DefaultConfig(1)
	h := New(cfg)
	x := uint64(12345)
	now := int64(0)
	longLat := 0
	for i := 0; i < 500; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		addr := 0x40000000 + x%(256<<20)
		if h.Load(0, 0x55, addr, now).LongLatency {
			longLat++
		}
		now += 1000
	}
	if longLat < 450 {
		t.Fatalf("random far loads rarely long-latency: %d/500", longLat)
	}
}

func TestStoreNeverLongLatency(t *testing.T) {
	h := New(quietConfig())
	acc := h.Store(0, 0x60000000, 0)
	if acc.Level != LevelMem {
		t.Fatalf("cold store level %v, want MEM", acc.Level)
	}
	if mlp, llls := h.ThreadMLP(0, 10000); llls != 0 || mlp != 1 {
		t.Fatal("store counted as long-latency load")
	}
}

func TestOutstandingL1Miss(t *testing.T) {
	cfg := quietConfig()
	h := New(cfg)
	const addr = 0x70000000
	warmTLB(h, addr+64, 0) // its own fill (TLB walk + memory) drains by 2*MemLatency
	start := 2*cfg.MemLatency + 100
	h.Load(0, 1, addr, start)
	if n := h.OutstandingL1Miss(0, start+50); n != 1 {
		t.Fatalf("outstanding L1 misses mid-fill = %d, want 1", n)
	}
	if n := h.OutstandingL1Miss(0, start+cfg.MemLatency+10); n != 0 {
		t.Fatalf("outstanding L1 misses after completion = %d, want 0", n)
	}
}

func TestResetStats(t *testing.T) {
	h := New(DefaultConfig(1))
	for i := 0; i < 100; i++ {
		h.Load(0, uint64(i), uint64(0x40000000+i*64), int64(i*10))
	}
	h.ResetStats(10_000)
	if h.Loads != 0 || h.LongLatLoads != 0 || h.TLBMisses != 0 {
		t.Fatal("ResetStats left counters non-zero")
	}
	if mlp, llls := h.ThreadMLP(0, 20_000); llls != 0 || mlp != 1 {
		t.Fatalf("ResetStats left MLP accounting: mlp=%v llls=%d", mlp, llls)
	}
	// Cache contents survive: the touched lines still hit.
	if acc := h.Load(0, 1, 0x40000000, 20_000); acc.Level != LevelL1 {
		t.Fatalf("ResetStats discarded cache contents (level %v)", acc.Level)
	}
}

func TestQuickMLPAtLeastOne(t *testing.T) {
	f := func(starts [8]uint16) bool {
		var tr mlpTracker
		now := int64(0)
		for _, s := range starts {
			now += int64(s % 500)
			tr.add(now, now+350)
		}
		tr.advance(now + 1000)
		return tr.value() >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMLPTrackerExactIntegral(t *testing.T) {
	var tr mlpTracker
	// [0,100) one outstanding; [50,100) a second -> busy 100, weighted 150.
	tr.add(0, 100)
	tr.add(50, 100)
	tr.advance(200)
	if tr.busy != 100 {
		t.Fatalf("busy = %d, want 100", tr.busy)
	}
	if tr.value() != 1.5 {
		t.Fatalf("MLP = %v, want 1.5", tr.value())
	}
}

func TestLevelStrings(t *testing.T) {
	names := map[Level]string{LevelL1: "L1", LevelSB: "SB", LevelL2: "L2", LevelL3: "L3", LevelMem: "MEM"}
	for l, s := range names {
		if l.String() != s {
			t.Errorf("Level(%d) = %q, want %q", l, l.String(), s)
		}
	}
}
