// Package mem models the data-side memory hierarchy of the baseline SMT
// processor (Table IV): 64KB 2-way L1 data cache, 512KB 8-way unified L2,
// 4MB 16-way unified L3 (all with 64-byte lines), a 512-entry fully
// associative data TLB over 8KB pages, the stream-buffer hardware prefetcher,
// and MSHR-style coalescing of outstanding misses.
//
// The hierarchy is shared by all SMT contexts, so co-scheduled threads evict
// each other's data exactly as in the paper's first cache-interference
// effect. The package also owns the two measurement facilities the paper's
// characterization depends on: per-thread memory-level parallelism accounting
// using the Chou et al. definition (average number of long-latency loads
// outstanding while at least one is outstanding), and the "serialize
// long-latency loads" mode used to quantify the performance impact of MLP
// (Table I, fifth column).
package mem

// CacheConfig sizes one level of the hierarchy.
type CacheConfig struct {
	SizeBytes int   `json:"size_bytes"` // total capacity
	Ways      int   `json:"ways"`       // associativity
	LineBytes int   `json:"line_bytes"` // line size
	Latency   int64 `json:"latency"`    // load-to-use latency on a hit at this level
}

// Cache is a set-associative cache with true-LRU replacement. It tracks tags
// only — the simulator is timing-directed, not data-directed.
type Cache struct {
	sets    int
	ways    int
	latency int64
	tags    []uint64
	valid   []bool
	lru     []uint64
	tick    uint64

	// Statistics.
	Accesses uint64
	Misses   uint64
}

// NewCache returns an empty cache sized by cfg. Sets are derived from
// capacity, associativity and line size; cfg must describe at least one set.
func NewCache(cfg CacheConfig) *Cache {
	sets := cfg.SizeBytes / (cfg.Ways * cfg.LineBytes)
	if sets < 1 {
		sets = 1
	}
	n := sets * cfg.Ways
	return &Cache{
		sets:    sets,
		ways:    cfg.Ways,
		latency: cfg.Latency,
		tags:    make([]uint64, n),
		valid:   make([]bool, n),
		lru:     make([]uint64, n),
	}
}

// Latency returns the hit latency of this level.
func (c *Cache) Latency() int64 { return c.latency }

// Sets returns the number of sets (exported for tests).
func (c *Cache) Sets() int { return c.sets }

// Lookup probes the cache for line (a line number, i.e. addr >> log2(line)).
// On a hit the entry's recency is updated.
func (c *Cache) Lookup(line uint64) bool {
	c.Accesses++
	set := int(line % uint64(c.sets))
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			c.tick++
			c.lru[base+w] = c.tick
			return true
		}
	}
	c.Misses++
	return false
}

// Insert installs line, evicting the LRU way of its set if necessary.
// It returns the evicted line and whether an eviction occurred.
func (c *Cache) Insert(line uint64) (evicted uint64, hadVictim bool) {
	set := int(line % uint64(c.sets))
	base := set * c.ways
	victim := base
	var oldest uint64 = ^uint64(0)
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line { // already present
			c.tick++
			c.lru[i] = c.tick
			return 0, false
		}
		if !c.valid[i] {
			victim, oldest = i, 0
		} else if c.lru[i] < oldest {
			victim, oldest = i, c.lru[i]
		}
	}
	hadVictim = c.valid[victim]
	evicted = c.tags[victim]
	c.tick++
	c.tags[victim] = line
	c.valid[victim] = true
	c.lru[victim] = c.tick
	return evicted, hadVictim
}

// Contains reports whether line is present without touching recency or
// statistics (test helper).
func (c *Cache) Contains(line uint64) bool {
	set := int(line % uint64(c.sets))
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			return true
		}
	}
	return false
}

// MissRate returns Misses/Accesses, or 0 when the cache has not been used.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// TLB is a fully associative translation buffer with LRU replacement.
type TLB struct {
	entries  int
	pageBits uint
	pages    map[uint64]uint64 // page -> last-use tick
	tick     uint64

	Accesses uint64
	Misses   uint64
}

// NewTLB returns a TLB with the given number of entries and page size.
func NewTLB(entries int, pageBytes int) *TLB {
	bits := uint(0)
	for (1 << bits) < pageBytes {
		bits++
	}
	return &TLB{entries: entries, pageBits: bits, pages: make(map[uint64]uint64, entries+1)}
}

// Lookup translates addr, returning false on a TLB miss. A miss installs the
// translation (the page walk itself is charged by the hierarchy).
func (t *TLB) Lookup(addr uint64) bool {
	t.Accesses++
	page := addr >> t.pageBits
	t.tick++
	if _, ok := t.pages[page]; ok {
		t.pages[page] = t.tick
		return true
	}
	t.Misses++
	if len(t.pages) >= t.entries {
		var victim uint64
		var oldest uint64 = ^uint64(0)
		for p, use := range t.pages {
			if use < oldest {
				victim, oldest = p, use
			}
		}
		delete(t.pages, victim)
	}
	t.pages[page] = t.tick
	return false
}

// MissRate returns Misses/Accesses, or 0 when unused.
func (t *TLB) MissRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Accesses)
}
