package mem

import (
	"smtmlp/internal/prefetch"
)

// Config describes the whole data-side memory hierarchy. JSON tags pin the
// wire names used by the HTTP configuration surface.
type Config struct {
	LineBytes  int         `json:"line_bytes"`
	L1         CacheConfig `json:"l1"`
	L2         CacheConfig `json:"l2"`
	L3         CacheConfig `json:"l3"`
	MemLatency int64       `json:"mem_latency"` // main memory access latency (the paper sweeps 200..800)

	TLBEntries int `json:"tlb_entries"`
	PageBytes  int `json:"page_bytes"`

	EnablePrefetch bool            `json:"enable_prefetch"`
	Prefetch       prefetch.Config `json:"prefetch"`
	// StreamBufferHitLatency is the load-to-use latency when a demand load
	// finds its line already arrived in a stream buffer.
	StreamBufferHitLatency int64 `json:"stream_buffer_hit_latency"`

	// SerializeLLL, when true, forces long-latency loads of the same thread
	// to be serviced one at a time (used for the Table I MLP-impact study).
	SerializeLLL bool `json:"serialize_lll,omitempty"`

	// Threads is the number of hardware contexts sharing the hierarchy
	// (used to size per-thread accounting).
	Threads int `json:"threads"`
}

// DefaultConfig returns the Table IV memory hierarchy with prefetching
// enabled.
func DefaultConfig(threads int) Config {
	const line = 64
	return Config{
		LineBytes:              line,
		L1:                     CacheConfig{SizeBytes: 64 << 10, Ways: 2, LineBytes: line, Latency: 2},
		L2:                     CacheConfig{SizeBytes: 512 << 10, Ways: 8, LineBytes: line, Latency: 11},
		L3:                     CacheConfig{SizeBytes: 4 << 20, Ways: 16, LineBytes: line, Latency: 35},
		MemLatency:             350,
		TLBEntries:             512,
		PageBytes:              8 << 10,
		EnablePrefetch:         true,
		Prefetch:               prefetch.DefaultConfig(),
		StreamBufferHitLatency: 4,
		Threads:                threads,
	}
}

// Level identifies where an access was satisfied.
type Level uint8

// Hierarchy levels, from closest to the core outwards.
const (
	LevelL1 Level = iota
	LevelSB       // stream buffer (prefetched)
	LevelL2
	LevelL3
	LevelMem
)

// String returns the level's conventional name.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelSB:
		return "SB"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	case LevelMem:
		return "MEM"
	default:
		return "?"
	}
}

// Access is the outcome of a load or store.
type Access struct {
	Latency     int64 // cycles from issue to data availability
	Level       Level // level that supplied the data
	TLBMiss     bool
	LongLatency bool // L3 miss or D-TLB miss: the paper's long-latency load
}

// mlpTracker accumulates the Chou et al. MLP statistic for one thread:
// the average number of long-latency loads outstanding over the cycles in
// which at least one is outstanding.
type mlpTracker struct {
	// ends[head:] holds the sorted completion cycles of outstanding LLLs;
	// expiry advances head instead of reslicing, so the backing array is
	// reused for the whole run (compacted when the dead prefix grows).
	ends     []int64
	head     int
	lastT    int64
	weighted float64 // integral of outstanding count over busy cycles
	busy     int64   // cycles with >= 1 outstanding
	total    uint64  // number of long-latency loads observed
}

// outstanding returns the number of loads still in flight.
func (t *mlpTracker) outstanding() int { return len(t.ends) - t.head }

// advance moves accounting time forward to now, expiring completed loads.
func (t *mlpTracker) advance(now int64) {
	for t.head < len(t.ends) && t.ends[t.head] <= now {
		end := t.ends[t.head]
		if end > t.lastT {
			dt := end - t.lastT
			t.weighted += float64(len(t.ends)-t.head) * float64(dt)
			t.busy += dt
			t.lastT = end
		}
		t.head++
	}
	if t.head == len(t.ends) {
		t.ends = t.ends[:0]
		t.head = 0
	} else if t.head >= 64 {
		n := copy(t.ends, t.ends[t.head:])
		t.ends = t.ends[:n]
		t.head = 0
	}
	if now > t.lastT {
		if len(t.ends) > t.head {
			dt := now - t.lastT
			t.weighted += float64(len(t.ends)-t.head) * float64(dt)
			t.busy += dt
		}
		t.lastT = now
	}
}

func (t *mlpTracker) add(now, end int64) {
	t.advance(now)
	t.total++
	// Sorted insert (binary search, no closure) into the live suffix.
	lo, hi := t.head, len(t.ends)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.ends[mid] >= end {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	t.ends = append(t.ends, 0)
	copy(t.ends[lo+1:], t.ends[lo:])
	t.ends[lo] = end
}

// value returns the MLP statistic; 1.0 when no long-latency load has
// completed (the convention Table I uses for benchmarks without misses).
func (t *mlpTracker) value() float64 {
	if t.busy == 0 {
		return 1
	}
	return t.weighted / float64(t.busy)
}

// Hierarchy is the shared memory system. It is not safe for concurrent use;
// the simulator is single-goroutine per core instance.
type Hierarchy struct {
	cfg        Config
	lineShift  uint
	l1, l2, l3 *Cache
	tlb        *TLB
	stride     *prefetch.StridePredictor
	sbuf       *prefetch.Buffers

	// outstanding maps a missing line to the cycle its fill completes, so a
	// second access to an in-flight line merges with the first (MSHR
	// coalescing) instead of starting a new memory access. Open-addressed
	// and compacted in place: no per-access map traffic, no unbounded growth.
	outstanding *mshrTable

	// fillFn is the one reusable fill callback handed to the stream buffers;
	// fillNow carries the current cycle so probing allocates no closure.
	fillFn  prefetch.FillFunc
	fillNow int64

	// Per-thread accounting.
	mlp       []mlpTracker
	l1miss    []mlpTracker // outstanding below-L1 accesses (DCRA's slow/fast signal)
	serialEnd []int64      // end of the last serialized LLL, per thread
	outPerThr []int        // outstanding LLL count per thread (for DCRA/policies)
	llThreads []uint64
	l2Misses  []uint64 // demand loads serviced beyond the L2, per thread

	// Statistics.
	Loads        uint64
	Stores       uint64
	SBHits       uint64
	TLBMisses    uint64
	LongLatLoads uint64
}

// New returns an empty hierarchy for cfg.
func New(cfg Config) *Hierarchy {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	shift := uint(0)
	for (1 << shift) < cfg.LineBytes {
		shift++
	}
	h := &Hierarchy{
		cfg:         cfg,
		lineShift:   shift,
		l1:          NewCache(cfg.L1),
		l2:          NewCache(cfg.L2),
		l3:          NewCache(cfg.L3),
		tlb:         NewTLB(cfg.TLBEntries, cfg.PageBytes),
		outstanding: newMSHRTable(256),
		mlp:         make([]mlpTracker, cfg.Threads),
		l1miss:      make([]mlpTracker, cfg.Threads),
		serialEnd:   make([]int64, cfg.Threads),
		outPerThr:   make([]int, cfg.Threads),
		llThreads:   make([]uint64, cfg.Threads),
		l2Misses:    make([]uint64, cfg.Threads),
	}
	if cfg.EnablePrefetch {
		h.stride = prefetch.NewStridePredictor(cfg.Prefetch)
		h.sbuf = prefetch.NewBuffers(cfg.Prefetch)
	}
	h.fillFn = func(l uint64) int64 {
		lat, _ := h.fillBelowL1(l, h.fillNow)
		return lat
	}
	return h
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Caches returns the three cache levels (test helper).
func (h *Hierarchy) Caches() (l1, l2, l3 *Cache) { return h.l1, h.l2, h.l3 }

// TLBMissRate returns the D-TLB miss rate so far.
func (h *Hierarchy) TLBMissRate() float64 { return h.tlb.MissRate() }

// line returns the cache line number of addr.
func (h *Hierarchy) line(addr uint64) uint64 { return addr >> h.lineShift }

// fillBelowL1 returns the latency of obtaining line from L2/L3/memory,
// installing it in the outer levels, and registering the in-flight miss for
// coalescing. It does not install into L1 (the caller decides, so prefetched
// lines stay in the stream buffer until demanded).
func (h *Hierarchy) fillBelowL1(lineNum uint64, now int64) (lat int64, level Level) {
	if ready, ok := h.outstanding.get(lineNum); ok && ready > now {
		// Merge with the in-flight miss.
		return ready - now, LevelMem
	}
	switch {
	case h.l2.Lookup(lineNum):
		return h.cfg.L2.Latency, LevelL2
	case h.l3.Lookup(lineNum):
		h.l2.Insert(lineNum)
		return h.cfg.L3.Latency, LevelL3
	default:
		h.l3.Insert(lineNum)
		h.l2.Insert(lineNum)
		h.outstanding.set(lineNum, now+h.cfg.MemLatency, now)
		return h.cfg.MemLatency, LevelMem
	}
}

// Load performs a demand load by thread tid at address addr issued at cycle
// now, returning its timing and classification. Long-latency loads (L3
// misses and D-TLB misses) feed the per-thread MLP trackers.
func (h *Hierarchy) Load(tid int, pc, addr uint64, now int64) Access {
	h.Loads++
	lineNum := h.line(addr)

	var acc Access

	// Address translation. A D-TLB miss costs a memory access (page walk)
	// and by the paper's definition makes the load long-latency.
	if !h.tlb.Lookup(addr) {
		h.TLBMisses++
		acc.TLBMiss = true
		acc.LongLatency = true
		acc.Latency += h.cfg.MemLatency
	}

	// Stride training happens on every executed load.
	var stride int64
	var confident bool
	if h.stride != nil {
		stride, confident = h.stride.Observe(pc, addr)
	}

	switch {
	case h.inFlight(lineNum, now):
		// The line is still being filled from memory (MSHR merge): the
		// load waits for the outstanding fill, regardless of the tags
		// already installed for it.
		ready, _ := h.outstanding.get(lineNum)
		wait := ready - now
		acc.Latency += wait + h.cfg.L1.Latency
		acc.Level = LevelMem
		if wait > h.cfg.L3.Latency {
			acc.LongLatency = true
		}
	case h.l1.Lookup(lineNum):
		acc.Latency += h.cfg.L1.Latency
		acc.Level = LevelL1
	default:
		// Probe stream buffers in parallel with the L1 miss.
		if h.sbuf != nil {
			h.fillNow = now
			if ready, hit := h.sbuf.Probe(lineNum, now, h.fillFn); hit {
				h.SBHits++
				wait := ready - now
				if wait < 0 {
					wait = 0
				}
				lat := h.cfg.StreamBufferHitLatency + wait
				acc.Latency += lat
				acc.Level = LevelSB
				h.l1.Insert(lineNum)
				// A prefetch that has not covered most of the memory latency
				// still leaves the load long-latency in the paper's sense.
				if wait > h.cfg.L3.Latency {
					acc.LongLatency = true
				}
				break
			}
		}
		lat, level := h.fillBelowL1(lineNum, now)
		acc.Latency += lat
		acc.Level = level
		h.l1.Insert(lineNum)
		if level == LevelMem {
			acc.LongLatency = true
		}
		// Confident strides allocate a stream buffer on an L1 miss that also
		// missed the buffers.
		if h.sbuf != nil && confident {
			ls := stride / int64(h.cfg.LineBytes)
			if ls == 0 {
				if stride > 0 {
					ls = 1
				} else {
					ls = -1
				}
			}
			h.fillNow = now
			h.sbuf.Allocate(lineNum, ls, now, h.fillFn)
		}
	}

	if acc.Level != LevelL1 {
		h.l1miss[tid].add(now, now+acc.Latency)
	}
	if acc.Level == LevelL3 || acc.Level == LevelMem {
		h.l2Misses[tid]++
	}
	if acc.LongLatency {
		h.LongLatLoads++
		h.llThreads[tid]++
		start := now
		if h.cfg.SerializeLLL {
			// Force this long-latency load to begin service only after the
			// previous one from the same thread has completed. The MLP
			// tracker sees the service interval, not the queueing delay, so
			// serialized runs measure an MLP of ~1 by construction.
			if h.serialEnd[tid] > now {
				extra := h.serialEnd[tid] - now
				acc.Latency += extra
				start = h.serialEnd[tid]
			}
			h.serialEnd[tid] = now + acc.Latency
		}
		h.mlp[tid].add(start, now+acc.Latency)
	}
	return acc
}

// Store performs a store by thread tid. Stores allocate like loads but are
// never long-latency loads (the paper's policies key on loads only); the
// returned latency bounds write-buffer occupancy.
func (h *Hierarchy) Store(tid int, addr uint64, now int64) Access {
	h.Stores++
	lineNum := h.line(addr)
	var acc Access
	if !h.tlb.Lookup(addr) {
		h.TLBMisses++
		acc.TLBMiss = true
		acc.Latency += h.cfg.MemLatency
	}
	if h.inFlight(lineNum, now) {
		ready, _ := h.outstanding.get(lineNum)
		acc.Latency += ready - now + h.cfg.L1.Latency
		acc.Level = LevelMem
		return acc
	}
	if h.l1.Lookup(lineNum) {
		acc.Latency += h.cfg.L1.Latency
		acc.Level = LevelL1
		return acc
	}
	lat, level := h.fillBelowL1(lineNum, now)
	h.l1.Insert(lineNum)
	acc.Latency += lat
	acc.Level = level
	return acc
}

// inFlight reports whether line has an outstanding memory fill at now.
func (h *Hierarchy) inFlight(line uint64, now int64) bool {
	ready, ok := h.outstanding.get(line)
	return ok && ready > now
}

// OutstandingLLL reports how many long-latency loads of thread tid are
// outstanding at cycle now.
func (h *Hierarchy) OutstandingLLL(tid int, now int64) int {
	h.mlp[tid].advance(now)
	return h.mlp[tid].outstanding()
}

// OutstandingL1Miss reports how many loads of thread tid that missed the L1
// are outstanding at cycle now — DCRA's signal for classifying a thread as
// memory-intensive ("slow").
func (h *Hierarchy) OutstandingL1Miss(tid int, now int64) int {
	h.l1miss[tid].advance(now)
	return h.l1miss[tid].outstanding()
}

// ThreadLLLs returns thread tid's long-latency load count so far (a pure
// counter read; no accounting is advanced).
func (h *Hierarchy) ThreadLLLs(tid int) uint64 { return h.llThreads[tid] }

// ThreadL2Misses returns how many of thread tid's demand loads were serviced
// beyond the L2 (L3 hits, memory fills and MSHR merges with in-flight fills).
func (h *Hierarchy) ThreadL2Misses(tid int) uint64 { return h.l2Misses[tid] }

// ThreadMLP finalizes accounting at endCycle and returns thread tid's MLP
// (Chou et al. definition) together with its long-latency load count.
func (h *Hierarchy) ThreadMLP(tid int, endCycle int64) (mlp float64, llls uint64) {
	h.mlp[tid].advance(endCycle)
	return h.mlp[tid].value(), h.llThreads[tid]
}

// ResetStats zeroes all measurement counters and MLP accounting while
// keeping cache, TLB, predictor and stream-buffer contents — the warm-up
// reset used before a measured simulation phase.
func (h *Hierarchy) ResetStats(now int64) {
	h.Loads, h.Stores, h.SBHits, h.TLBMisses, h.LongLatLoads = 0, 0, 0, 0, 0
	h.l1.Accesses, h.l1.Misses = 0, 0
	h.l2.Accesses, h.l2.Misses = 0, 0
	h.l3.Accesses, h.l3.Misses = 0, 0
	h.tlb.Accesses, h.tlb.Misses = 0, 0
	for i := range h.mlp {
		h.mlp[i].advance(now)
		h.mlp[i].weighted, h.mlp[i].busy, h.mlp[i].total = 0, 0, 0
		h.l1miss[i].advance(now)
		h.llThreads[i] = 0
		h.l2Misses[i] = 0
	}
	if h.sbuf != nil {
		h.sbuf.Allocations, h.sbuf.Prefetches, h.sbuf.Hits = 0, 0, 0
	}
}

// PrefetchStats returns stream-buffer statistics (zeros when prefetching is
// disabled).
func (h *Hierarchy) PrefetchStats() (allocations, prefetches, hits uint64) {
	if h.sbuf == nil {
		return 0, 0, 0
	}
	return h.sbuf.Allocations, h.sbuf.Prefetches, h.sbuf.Hits
}
