package mem

// mshrTable tracks in-flight memory fills: cache line number -> cycle the
// fill completes. It replaces a map[uint64]int64 on the simulator's hot path
// with a small open-addressed table (linear probing, Fibonacci hashing).
// Entries whose ready cycle has passed are semantically dead — lookups treat
// them as absent — and are dropped wholesale when the table compacts, so the
// table never needs per-entry deletion or tombstones.
type mshrTable struct {
	lines []uint64 // mshrEmpty marks a free slot
	ready []int64
	used  int // occupied slots, live or expired
	shift uint

	// Spare arrays reused by same-size compactions, so dropping expired
	// entries allocates nothing in steady state.
	spareLines []uint64
	spareReady []int64
}

// mshrEmpty is an impossible line number ((2^64-1) >> lineShift can never
// reach it for any lineShift >= 1).
const mshrEmpty = ^uint64(0)

func newMSHRTable(capacity int) *mshrTable {
	size := 16
	for size < capacity {
		size <<= 1
	}
	t := &mshrTable{shift: 64}
	for s := 1; s < size; s <<= 1 {
		t.shift--
	}
	t.lines = make([]uint64, size)
	t.ready = make([]int64, size)
	t.spareLines = make([]uint64, size)
	t.spareReady = make([]int64, size)
	for i := range t.lines {
		t.lines[i] = mshrEmpty
	}
	return t
}

func (t *mshrTable) slot(line uint64) int {
	return int((line * 0x9E3779B97F4A7C15) >> t.shift)
}

// get returns the fill-complete cycle registered for line, if any. Expired
// entries are still returned; callers compare against now (matching the old
// map semantics, where inFlight checked ready > now).
func (t *mshrTable) get(line uint64) (int64, bool) {
	mask := len(t.lines) - 1
	for i := t.slot(line); ; i = (i + 1) & mask {
		switch t.lines[i] {
		case line:
			return t.ready[i], true
		case mshrEmpty:
			return 0, false
		}
	}
}

// set registers (or refreshes) the fill-complete cycle for line. now lets a
// full table compact away expired entries instead of growing.
func (t *mshrTable) set(line uint64, ready, now int64) {
	if t.used*4 >= len(t.lines)*3 {
		t.compact(now)
	}
	mask := len(t.lines) - 1
	for i := t.slot(line); ; i = (i + 1) & mask {
		switch t.lines[i] {
		case line:
			t.ready[i] = ready
			return
		case mshrEmpty:
			t.lines[i] = line
			t.ready[i] = ready
			t.used++
			return
		}
	}
}

// compact rebuilds the table keeping only in-flight entries (ready > now),
// doubling the size if the live set alone would keep the load factor high.
func (t *mshrTable) compact(now int64) {
	live := 0
	for i, l := range t.lines {
		if l != mshrEmpty && t.ready[i] > now {
			live++
		}
	}
	size := len(t.lines)
	for live*2 >= size {
		size <<= 1
	}
	oldLines, oldReady := t.lines, t.ready
	if size == len(oldLines) {
		t.lines, t.spareLines = t.spareLines, nil
		t.ready, t.spareReady = t.spareReady, nil
	} else {
		t.lines = make([]uint64, size)
		t.ready = make([]int64, size)
		t.spareLines, t.spareReady = nil, nil
	}
	t.shift = 64
	for s := 1; s < size; s <<= 1 {
		t.shift--
	}
	for i := range t.lines {
		t.lines[i] = mshrEmpty
	}
	t.used = 0
	mask := size - 1
	for i, l := range oldLines {
		if l == mshrEmpty || oldReady[i] <= now {
			continue
		}
		for j := t.slot(l); ; j = (j + 1) & mask {
			if t.lines[j] == mshrEmpty {
				t.lines[j] = l
				t.ready[j] = oldReady[i]
				t.used++
				break
			}
		}
	}
	if size == len(oldLines) {
		// The old arrays become the next compaction's spares.
		t.spareLines, t.spareReady = oldLines, oldReady
	} else {
		t.spareLines = make([]uint64, size)
		t.spareReady = make([]int64, size)
	}
}
