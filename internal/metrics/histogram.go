package metrics

// Histogram is a dependency-free, concurrency-safe latency histogram with
// fixed exponential buckets, shaped for Prometheus exposition: cumulative
// bucket counts, a running sum and a total count. Observe is lock-free
// (per-bucket atomics), so it can sit on request paths without contention.

import (
	"sync/atomic"
	"time"
)

// HistogramBuckets are the upper bounds, in seconds, of the histogram's
// buckets (an implicit +Inf bucket follows). The range covers sub-millisecond
// handler latencies up to minutes-long lease lifetimes.
var HistogramBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// Histogram accumulates duration observations. The zero value is ready to
// use.
type Histogram struct {
	buckets [len16]atomic.Int64 // non-cumulative per-bucket counts
	inf     atomic.Int64        // observations above the last bound
	sumNS   atomic.Int64
}

// len16 keeps the bucket array length in sync with HistogramBuckets.
const len16 = 16

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s := d.Seconds()
	placed := false
	for i, ub := range HistogramBuckets {
		if s <= ub {
			h.buckets[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.sumNS.Add(int64(d))
}

// HistogramSnapshot is a point-in-time view of a Histogram, with cumulative
// bucket counts aligned to HistogramBuckets (the +Inf count equals Count).
type HistogramSnapshot struct {
	// Buckets holds cumulative counts: Buckets[i] observations were <=
	// HistogramBuckets[i].
	Buckets [len16]int64 `json:"-"`
	Count   int64        `json:"count"`
	// SumSeconds is the sum of all observed durations in seconds.
	SumSeconds float64 `json:"sum_seconds"`
}

// Snapshot returns the histogram's current state. Concurrent Observe calls
// make the snapshot approximate (not a consistent cut), which is fine for
// monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		s.Buckets[i] = cum
	}
	s.Count = cum + h.inf.Load()
	s.SumSeconds = time.Duration(h.sumNS.Load()).Seconds()
	return s
}
