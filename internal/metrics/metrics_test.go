package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSTPDefinition(t *testing.T) {
	// Two threads, each running at half its single-threaded speed: STP = 1.
	threads := []ThreadPerf{
		{CPIST: 1.0, CPIMT: 2.0},
		{CPIST: 2.0, CPIMT: 4.0},
	}
	if got := STP(threads); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("STP = %v, want 1.0", got)
	}
}

func TestSTPPerfectSharing(t *testing.T) {
	// No slowdown at all: STP = n.
	threads := []ThreadPerf{{CPIST: 1, CPIMT: 1}, {CPIST: 3, CPIMT: 3}}
	if got := STP(threads); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("STP = %v, want 2.0", got)
	}
}

func TestANTTDefinition(t *testing.T) {
	threads := []ThreadPerf{
		{CPIST: 1.0, CPIMT: 2.0}, // slowdown 2
		{CPIST: 2.0, CPIMT: 8.0}, // slowdown 4
	}
	if got := ANTT(threads); math.Abs(got-3.0) > 1e-12 {
		t.Fatalf("ANTT = %v, want 3.0", got)
	}
}

func TestANTTEmpty(t *testing.T) {
	if ANTT(nil) != 0 {
		t.Fatal("ANTT(nil) != 0")
	}
}

func TestSTPIgnoresZeroCPIMT(t *testing.T) {
	threads := []ThreadPerf{{CPIST: 1, CPIMT: 0}, {CPIST: 1, CPIMT: 1}}
	if got := STP(threads); got != 1 {
		t.Fatalf("STP with a zero CPI_MT thread = %v, want 1", got)
	}
}

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("hmean(1,1,1) = %v", got)
	}
	// hmean(2, 6) = 2/(1/2 + 1/6) = 3.
	if got := HarmonicMean([]float64{2, 6}); math.Abs(got-3) > 1e-12 {
		t.Fatalf("hmean(2,6) = %v, want 3", got)
	}
	if HarmonicMean(nil) != 0 {
		t.Fatal("hmean(nil) != 0")
	}
}

func TestHarmonicMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("hmean with zero did not panic")
		}
	}()
	HarmonicMean([]float64{1, 0})
}

func TestArithmeticMean(t *testing.T) {
	if got := ArithmeticMean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("amean = %v", got)
	}
	if ArithmeticMean(nil) != 0 {
		t.Fatal("amean(nil) != 0")
	}
}

func TestRelativeChange(t *testing.T) {
	if got := RelativeChange(2, 3); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("RelativeChange(2,3) = %v", got)
	}
	if RelativeChange(0, 5) != 0 {
		t.Fatal("RelativeChange from 0 should be 0")
	}
}

func TestQuickANTTAtLeastOneWhenSlower(t *testing.T) {
	f := func(st, slow [4]uint8) bool {
		var threads []ThreadPerf
		for i := range st {
			cpiST := 1 + float64(st[i])/16
			cpiMT := cpiST * (1 + float64(slow[i])/16) // always >= CPI_ST
			threads = append(threads, ThreadPerf{CPIST: cpiST, CPIMT: cpiMT})
		}
		return ANTT(threads) >= 1 && STP(threads) <= float64(len(threads))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHarmonicLEArithmetic(t *testing.T) {
	f := func(raw [5]uint8) bool {
		var xs []float64
		for _, r := range raw {
			xs = append(xs, 0.1+float64(r))
		}
		return HarmonicMean(xs) <= ArithmeticMean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
