package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketsAligned(t *testing.T) {
	if len(HistogramBuckets) != len16 {
		t.Fatalf("HistogramBuckets has %d bounds but the bucket array holds %d", len(HistogramBuckets), len16)
	}
	for i := 1; i < len(HistogramBuckets); i++ {
		if HistogramBuckets[i] <= HistogramBuckets[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %v", i, HistogramBuckets)
		}
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Microsecond) // <= 0.001
	h.Observe(3 * time.Millisecond)   // <= 0.005
	h.Observe(40 * time.Millisecond)  // <= 0.05
	h.Observe(5 * time.Minute)        // +Inf
	h.Observe(-time.Second)           // clamped to 0, first bucket

	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Buckets[0] != 2 { // 500us and the clamped negative
		t.Fatalf("bucket le=0.001 = %d, want 2", s.Buckets[0])
	}
	last := s.Buckets[len16-1]
	if last != 4 {
		t.Fatalf("finite cumulative = %d, want 4 (one observation is +Inf)", last)
	}
	// Cumulative counts are monotone.
	for i := 1; i < len16; i++ {
		if s.Buckets[i] < s.Buckets[i-1] {
			t.Fatalf("cumulative counts not monotone at %d: %v", i, s.Buckets)
		}
	}
	wantSum := (500*time.Microsecond + 3*time.Millisecond + 40*time.Millisecond + 5*time.Minute).Seconds()
	if diff := s.SumSeconds - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum = %v, want %v", s.SumSeconds, wantSum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
}
