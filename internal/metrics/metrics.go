// Package metrics implements the system-level multiprogram performance
// metrics the paper evaluates with (Section 5, following Eyerman & Eeckhout,
// IEEE Micro 2008):
//
//	STP  = sum_i CPI_ST(i) / CPI_MT(i)     (higher is better; equals the
//	       weighted speedup of Snavely & Tullsen)
//	ANTT = (1/n) sum_i CPI_MT(i) / CPI_ST(i) (lower is better; the
//	       reciprocal of Luo et al.'s hmean metric)
//
// When averaging across workloads the paper follows John (2006): harmonic
// mean for STP, arithmetic mean for ANTT. Both helpers are provided here.
package metrics

import "fmt"

// ThreadPerf is one program's single-threaded and multithreaded performance,
// expressed in cycles per instruction at matched instruction counts.
type ThreadPerf struct {
	CPIST float64 // single-threaded CPI after the same instruction count
	CPIMT float64 // multithreaded CPI in the workload under study
}

// STP returns the system throughput of a multiprogram workload.
func STP(threads []ThreadPerf) float64 {
	var s float64
	for _, t := range threads {
		if t.CPIMT > 0 {
			s += t.CPIST / t.CPIMT
		}
	}
	return s
}

// ANTT returns the average normalized turnaround time of a workload.
func ANTT(threads []ThreadPerf) float64 {
	if len(threads) == 0 {
		return 0
	}
	var s float64
	for _, t := range threads {
		if t.CPIST > 0 {
			s += t.CPIMT / t.CPIST
		}
	}
	return s / float64(len(threads))
}

// HarmonicMean returns the harmonic mean of xs (the paper's rule for
// averaging STP across workloads). It panics on non-positive inputs, which
// always indicate a broken experiment.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var inv float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("metrics: harmonic mean of non-positive value %g", x))
		}
		inv += 1 / x
	}
	return float64(len(xs)) / inv
}

// ArithmeticMean returns the arithmetic mean of xs (the paper's rule for
// averaging ANTT across workloads).
func ArithmeticMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// RelativeChange returns (b-a)/a, used for "x% better than ICOUNT" style
// comparisons in EXPERIMENTS.md.
func RelativeChange(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (b - a) / a
}
