package trace

import (
	"testing"
	"testing/quick"

	"smtmlp/internal/isa"
)

func testModel() Model {
	return Model{
		Name: "test", Seed: 1, Sites: 64,
		LoadFrac: 0.25, StoreFrac: 0.10, BranchFrac: 0.15,
		Bursts: 1, BurstLen: 3, BurstSpacing: 4, BurstPeriod: 2,
		ChainSites: 1, DepDist: 3,
	}
}

func TestDeterminism(t *testing.T) {
	a := NewGenerator(testModel(), 0)
	b := NewGenerator(testModel(), 0)
	for i := 0; i < 5000; i++ {
		ia, ib := a.Next(), b.Next()
		if ia != ib {
			t.Fatalf("streams diverge at %d:\n%v\n%v", i, &ia, &ib)
		}
	}
}

func TestThreadsGetDisjointAddressSpaces(t *testing.T) {
	a := NewGenerator(testModel(), 0)
	b := NewGenerator(testModel(), 1)
	for i := 0; i < 1000; i++ {
		ia, ib := a.Next(), b.Next()
		if ia.Class.IsMem() && ib.Class.IsMem() && ia.Addr>>44 == ib.Addr>>44 {
			t.Fatalf("threads share an address-space slot: %#x vs %#x", ia.Addr, ib.Addr)
		}
	}
}

func TestSequenceNumbersMonotonic(t *testing.T) {
	g := NewGenerator(testModel(), 0)
	for i := uint64(0); i < 2000; i++ {
		if in := g.Next(); in.Seq != i {
			t.Fatalf("Seq = %d at position %d", in.Seq, i)
		}
	}
}

func TestInstructionMix(t *testing.T) {
	g := NewGenerator(testModel(), 0)
	counts := make(map[isa.Class]int)
	const n = 64_000
	for i := 0; i < n; i++ {
		counts[g.Next().Class]++
	}
	loadFrac := float64(counts[isa.Load]) / n
	storeFrac := float64(counts[isa.Store]) / n
	branchFrac := float64(counts[isa.Branch]) / n
	if loadFrac < 0.18 || loadFrac > 0.35 {
		t.Errorf("load fraction %.3f far from model's 0.25", loadFrac)
	}
	if storeFrac < 0.05 || storeFrac > 0.15 {
		t.Errorf("store fraction %.3f far from model's 0.10", storeFrac)
	}
	if branchFrac < 0.08 || branchFrac > 0.22 {
		t.Errorf("branch fraction %.3f far from model's 0.15", branchFrac)
	}
}

func TestRecurringPCs(t *testing.T) {
	g := NewGenerator(testModel(), 0)
	pcs := make(map[uint64]bool)
	sites := g.Sites()
	for i := 0; i < sites*4; i++ {
		pcs[g.Next().PC] = true
	}
	if len(pcs) != sites {
		t.Fatalf("distinct PCs %d, want %d (one per site)", len(pcs), sites)
	}
}

func TestSiteBehaviorStable(t *testing.T) {
	// The same PC must always carry the same class (PC-indexed predictors
	// rely on it).
	g := NewGenerator(testModel(), 0)
	classOf := make(map[uint64]isa.Class)
	for i := 0; i < 10_000; i++ {
		in := g.Next()
		if prev, ok := classOf[in.PC]; ok && prev != in.Class {
			t.Fatalf("PC %#x changed class %v -> %v", in.PC, prev, in.Class)
		}
		classOf[in.PC] = in.Class
	}
}

func TestChainLoadsAreDependent(t *testing.T) {
	m := Model{
		Name: "chains", Seed: 3, Sites: 32,
		LoadFrac: 0.2, ChainSites: 1, ChainPeriod: 1, DepDist: 2,
	}
	g := NewGenerator(m, 0)
	found := false
	for i := 0; i < 1000; i++ {
		in := g.Next()
		if in.Class == isa.Load && in.Src1 >= chainRegFirst {
			if in.Dest != in.Src1 {
				t.Fatalf("chain load does not chase through its register: %v", &in)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no chain loads generated")
	}
}

func TestBurstLoadsIndependentAndCold(t *testing.T) {
	m := Model{
		Name: "bursts", Seed: 4, Sites: 64,
		LoadFrac: 0.2, Bursts: 1, BurstLen: 4, BurstSpacing: 2, BurstPeriod: 1,
	}
	g := NewGenerator(m, 0)
	coldLoads := 0
	for i := 0; i < 64*4; i++ {
		in := g.Next()
		if in.Class == isa.Load && in.Addr-g.addrBase >= coldBase {
			coldLoads++
			if in.Src1 != isa.RegNone {
				t.Fatalf("burst load has an address dependence: %v", &in)
			}
		}
	}
	if coldLoads < 12 { // 4 per iteration, 4 iterations
		t.Fatalf("cold burst loads %d, want >= 12", coldLoads)
	}
}

func TestStreamAddressesSequential(t *testing.T) {
	m := Model{Name: "stream", Seed: 5, Sites: 32, LoadFrac: 0.2, StreamSites: 1, StreamStride: 8}
	g := NewGenerator(m, 0)
	var prev uint64
	seen := 0
	for i := 0; i < 3200; i++ {
		in := g.Next()
		if in.Class == isa.Load && in.Addr-g.addrBase >= coldBase {
			if seen > 0 && in.Addr != prev+8 {
				t.Fatalf("stream not sequential: %#x after %#x", in.Addr, prev)
			}
			prev = in.Addr
			seen++
		}
	}
	if seen < 50 {
		t.Fatalf("stream loads seen %d, want >= 50", seen)
	}
}

func TestBranchesHaveOutcomes(t *testing.T) {
	g := NewGenerator(testModel(), 0)
	taken, notTaken := 0, 0
	for i := 0; i < 10_000; i++ {
		in := g.Next()
		if in.Class == isa.Branch {
			if in.Target == 0 {
				t.Fatal("branch with zero target")
			}
			if in.Taken {
				taken++
			} else {
				notTaken++
			}
		}
	}
	if taken == 0 || notTaken == 0 {
		t.Fatalf("degenerate branch outcomes: taken=%d notTaken=%d", taken, notTaken)
	}
}

func TestDefaultsApplied(t *testing.T) {
	g := NewGenerator(Model{Name: "empty"}, 0)
	if g.Sites() != 128 {
		t.Fatalf("default sites %d, want 128", g.Sites())
	}
	// An all-defaults model must still generate valid instructions.
	for i := 0; i < 1000; i++ {
		g.Next()
	}
}

// --- cursor ------------------------------------------------------------------

func TestCursorFetchSequence(t *testing.T) {
	c := NewCursor(NewGenerator(testModel(), 0))
	for i := uint64(0); i < 100; i++ {
		if in := c.Fetch(); in.Seq != i {
			t.Fatalf("fetched seq %d, want %d", in.Seq, i)
		}
	}
	if c.Pos() != 100 {
		t.Fatalf("Pos() = %d, want 100", c.Pos())
	}
}

func TestCursorRewindRedelivers(t *testing.T) {
	c := NewCursor(NewGenerator(testModel(), 0))
	first := make([]isa.Instr, 50)
	for i := range first {
		first[i] = c.Fetch()
	}
	c.Rewind(10)
	for i := 10; i < 50; i++ {
		if in := c.Fetch(); in != first[i] {
			t.Fatalf("redelivered instruction %d differs:\n%v\n%v", i, &in, &first[i])
		}
	}
}

func TestCursorReleaseThenRewindPanics(t *testing.T) {
	c := NewCursor(NewGenerator(testModel(), 0))
	for i := 0; i < 50; i++ {
		c.Fetch()
	}
	c.Release(20)
	defer func() {
		if recover() == nil {
			t.Fatal("rewind before the release point did not panic")
		}
	}()
	c.Rewind(10)
}

func TestCursorReleaseBounds(t *testing.T) {
	c := NewCursor(NewGenerator(testModel(), 0))
	for i := 0; i < 30; i++ {
		c.Fetch()
	}
	c.Release(9)
	if c.InFlight() != 20 {
		t.Fatalf("in flight after release = %d, want 20", c.InFlight())
	}
	c.Rewind(10) // oldest unreleased: fine
	if c.Fetch().Seq != 10 {
		t.Fatal("rewind to the release boundary broke")
	}
}

func TestCursorReleaseIdempotent(t *testing.T) {
	c := NewCursor(NewGenerator(testModel(), 0))
	for i := 0; i < 10; i++ {
		c.Fetch()
	}
	c.Release(5)
	c.Release(3) // no-op: already released
	c.Release(5) // no-op
	if c.InFlight() != 4 {
		t.Fatalf("in flight = %d, want 4", c.InFlight())
	}
}

func TestQuickCursorRewindConsistency(t *testing.T) {
	f := func(rewinds []uint8) bool {
		c := NewCursor(NewGenerator(testModel(), 0))
		reference := make(map[uint64]isa.Instr)
		for i := 0; i < 64; i++ {
			in := c.Fetch()
			reference[in.Seq] = in
		}
		for _, r := range rewinds {
			seq := uint64(r) % c.Pos()
			c.Rewind(seq)
			in := c.Fetch()
			if ref, ok := reference[in.Seq]; ok && in != ref {
				return false
			}
			// advance back to the frontier
			for c.Pos() < 64 {
				in := c.Fetch()
				if ref, ok := reference[in.Seq]; ok && in != ref {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWarmSitesStayInWarmRegion(t *testing.T) {
	m := Model{Name: "warm", Seed: 6, Sites: 32, LoadFrac: 0.2, WarmSites: 2}
	g := NewGenerator(m, 0)
	warmLoads := 0
	for i := 0; i < 3200; i++ {
		in := g.Next()
		if in.Class != isa.Load {
			continue
		}
		off := in.Addr - g.addrBase
		if off >= warmBase && off < coldBase {
			warmLoads++
		}
	}
	if warmLoads < 100 {
		t.Fatalf("warm loads %d, want >= 100 (2 sites x 100 iterations)", warmLoads)
	}
}

func TestFarUseFracCreatesConsumers(t *testing.T) {
	m := Model{
		Name: "consumers", Seed: 7, Sites: 64,
		LoadFrac: 0.2, Bursts: 1, BurstLen: 2, BurstPeriod: 1, FarUseFrac: 1.0,
	}
	g := NewGenerator(m, 0)
	consumers := 0
	for i := 0; i < 6400; i++ {
		in := g.Next()
		if in.Class == isa.IntALU && in.Src1 >= farRegFirst && in.Src1 < farRegFirst+numFarRegs {
			consumers++
		}
	}
	if consumers == 0 {
		t.Fatal("FarUseFrac=1 produced no far-load consumers")
	}
}

func TestMissJitterAddsIrregularity(t *testing.T) {
	mk := func(jitter float64) int {
		m := Model{
			Name: "jit", Seed: 8, Sites: 64,
			LoadFrac: 0.2, Bursts: 1, BurstLen: 1, BurstPeriod: 16,
			MissJitter: jitter,
		}
		g := NewGenerator(m, 0)
		cold := 0
		for i := 0; i < 64_000; i++ {
			in := g.Next()
			if in.Class == isa.Load && in.Addr-g.addrBase >= coldBase {
				cold++
			}
		}
		return cold
	}
	if noJit, jit := mk(0), mk(0.3); jit <= noJit {
		t.Fatalf("jitter did not increase cold accesses: %d vs %d", jit, noJit)
	}
}

func TestLoopBranchPeriodicity(t *testing.T) {
	m := Model{Name: "loops", Seed: 9, Sites: 32, BranchFrac: 0.25, LoopPeriod: 4}
	g := NewGenerator(m, 0)
	// Find a loop-kind branch site: one whose outcome stream is exactly
	// "3 taken, 1 not taken" repeating.
	outcomes := map[uint64][]bool{}
	for i := 0; i < 32*40; i++ {
		in := g.Next()
		if in.Class == isa.Branch {
			outcomes[in.PC] = append(outcomes[in.PC], in.Taken)
		}
	}
	foundLoop := false
	for _, seq := range outcomes {
		if len(seq) < 8 {
			continue
		}
		periodic := true
		for i := range seq {
			if seq[i] != ((i+1)%4 != 0) {
				periodic = false
				break
			}
		}
		if periodic {
			foundLoop = true
		}
	}
	if !foundLoop {
		t.Fatal("no branch site shows the loop period-4 pattern")
	}
}

func TestStoresCarrySources(t *testing.T) {
	g := NewGenerator(testModel(), 0)
	for i := 0; i < 5000; i++ {
		in := g.Next()
		if in.Class == isa.Store && in.Addr == 0 {
			t.Fatal("store without an address")
		}
	}
}
