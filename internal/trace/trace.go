// Package trace synthesizes deterministic dynamic instruction streams that
// stand in for the paper's SPEC CPU2000 Alpha SimPoint traces.
//
// Real traces are unavailable (proprietary binaries, Alpha toolchain), so the
// generator produces the properties the paper's mechanisms actually consume:
//
//   - recurring static loads (PC-indexed predictors learn per-site behaviour),
//   - per-site hit/miss periodicity (the miss-pattern predictor's signal),
//   - clusters of independent long-latency loads at controllable distances in
//     the dynamic stream (the MLP structure the LLSR measures),
//   - register dependences that bound ILP and serialize pointer chases,
//   - branch outcome streams with controllable predictability,
//   - streaming vs irregular address patterns (what the stream-buffer
//     prefetcher can and cannot cover).
//
// A benchmark model is a loop over a fixed set of instruction "sites". A site
// always has the same class, memory pattern and register role, so its PC
// exhibits stable, learnable behaviour — the property the paper's predictors
// exploit on real SPEC binaries. internal/bench instantiates one calibrated
// model per SPEC CPU2000 benchmark.
package trace

import (
	"fmt"

	"smtmlp/internal/isa"
	"smtmlp/internal/rng"
)

// PatternKind selects the address behaviour of a memory site.
type PatternKind uint8

// Address patterns for load/store sites.
const (
	PatternHot    PatternKind = iota // small L1-resident region
	PatternWarm                      // L2/L3-resident region (stream through it)
	PatternStream                    // sequential walk through the cold region
	PatternRandom                    // uniform random lines in the cold region
	PatternChain                     // pointer chase: dependent random accesses
)

// String names the pattern.
func (p PatternKind) String() string {
	switch p {
	case PatternHot:
		return "hot"
	case PatternWarm:
		return "warm"
	case PatternStream:
		return "stream"
	case PatternRandom:
		return "random"
	case PatternChain:
		return "chain"
	default:
		return "?"
	}
}

// BranchKind selects the outcome behaviour of a branch site.
type BranchKind uint8

// Branch behaviours.
const (
	BranchBiased BranchKind = iota // taken with probability 0.95
	BranchLoop                     // taken n-1 times, then not taken once
	BranchRandom                   // taken with probability 0.5
)

// Model parameterizes one synthetic benchmark. internal/bench builds the 26
// SPEC CPU2000 calibrations; tests build ad-hoc models.
type Model struct {
	Name string
	Seed uint64

	// Sites is the loop body length (number of static instruction sites).
	Sites int

	// Instruction mix (fractions of sites; the remainder becomes integer
	// ALU operations). FPFrac splits the ALU remainder between int and FP.
	LoadFrac   float64
	StoreFrac  float64
	BranchFrac float64
	FPFrac     float64

	// Memory behaviour of load sites.
	HotBytes  uint64 // default 32KB, L1-resident
	WarmBytes uint64 // default 1.5MB, L2-missing but L3-resident
	ColdBytes uint64 // default 256MB, far beyond the L3

	// StreamSites load sites walk the cold region sequentially with
	// StreamStride bytes per access (line crossings become misses that a
	// stream buffer can prefetch). All streams advance in lockstep, so their
	// line-crossing misses cluster — streaming MLP.
	StreamSites  int
	StreamStride uint64

	// Bursts groups of BurstLen adjacent-in-loop load sites touch random
	// cold lines every BurstPeriod-th loop iteration (otherwise they behave
	// like hot sites). Burst members are placed BurstSpacing sites apart, so
	// the MLP distance of a burst is about BurstLen*BurstSpacing
	// instructions.
	Bursts       int
	BurstLen     int
	BurstSpacing int
	BurstPeriod  int

	// ChainSites load sites perform pointer chases: each access depends on
	// the previous access of the same chain through a dedicated register, so
	// their long latencies serialize (no MLP). ChainPeriod-th executions
	// touch the cold region; others stay hot.
	ChainSites  int
	ChainPeriod int

	// WarmSites load sites stream through the warm region (L2 misses that
	// hit in the L3 — prefetchable but never long-latency).
	WarmSites int

	// MissJitter is the probability that a non-cold execution of a burst or
	// chain site goes cold anyway, making its miss pattern irregular and the
	// miss-pattern predictor less accurate (mcf's signature).
	MissJitter float64

	// DepDist is the register dependence distance of filler ALU sites (in
	// dynamic instructions); smaller means longer dependence chains and less
	// ILP.
	DepDist int

	// FarUseFrac is the probability that a filler instruction consumes the
	// most recent far (cold/warm/stream) load's result. Consumers of missed
	// loads pile up unissued in the shared issue queues while the miss is
	// outstanding — the resource-clogging behaviour of memory-bound code
	// that long-latency-aware fetch policies exist to contain.
	FarUseFrac float64

	// Branch behaviour mix.
	BranchRandomFrac float64 // fraction of branch sites with random outcomes
	LoopPeriod       int     // iteration count of BranchLoop sites
}

// withDefaults fills zero fields with workable defaults.
func (m Model) withDefaults() Model {
	if m.Sites <= 0 {
		m.Sites = 128
	}
	if m.HotBytes == 0 {
		m.HotBytes = 32 << 10
	}
	if m.WarmBytes == 0 {
		m.WarmBytes = 1536 << 10
	}
	if m.ColdBytes == 0 {
		m.ColdBytes = 256 << 20
	}
	if m.StreamStride == 0 {
		m.StreamStride = 8
	}
	if m.BurstPeriod <= 0 {
		m.BurstPeriod = 1
	}
	if m.ChainPeriod <= 0 {
		m.ChainPeriod = 1
	}
	if m.BurstSpacing <= 0 {
		m.BurstSpacing = 1
	}
	if m.DepDist <= 0 {
		m.DepDist = 4
	}
	if m.LoopPeriod <= 0 {
		m.LoopPeriod = 8
	}
	return m
}

type siteRole uint8

const (
	roleFiller siteRole = iota
	roleLoad
	roleStore
	roleBranch
)

type site struct {
	role    siteRole
	class   isa.Class
	pattern PatternKind
	pc      uint64

	// Memory sites.
	streamID int // stream index for PatternStream/PatternWarm
	chainID  int // chain index for PatternChain
	burstID  int // burst group for periodic cold sites (-1 otherwise)
	period   int // cold period for burst/chain sites

	// Branch sites.
	branch BranchKind
	target uint64
}

// Generator produces the dynamic instruction stream of one thread running
// one model. Generators are deterministic: two generators built from the
// same model produce identical streams. Not safe for concurrent use.
type Generator struct {
	model Model
	sites []site
	rnd   *rng.Source

	iter uint64 // completed passes over the site loop
	pos  int    // next site index
	seq  uint64 // next dynamic sequence number

	streamPos []uint64 // per-stream byte offset in its region
	loopCount []int    // per-branch-site loop counters

	destRing []int16 // recent destination registers, for dependence wiring
	destPos  int
	farPos   int   // rotation for far-load destination registers
	lastFar  int16 // most recent far-load destination, or RegNone

	addrBase uint64 // per-thread address space base
}

// regions of the synthetic address space, relative to addrBase.
const (
	hotBase  = uint64(0)
	warmBase = uint64(1) << 24
	coldBase = uint64(1) << 28
	codeBase = uint64(1) << 40
)

// Dedicated architectural registers: filler results rotate through r0..r19,
// far (cold/warm/stream) loads write r20..r23, and pointer chains own
// r24..r31. Far-load destinations stay out of the filler dependence ring so
// that clustered independent misses are not serialized by incidental
// consumers — the property that lets a ROB-blocked thread expose MLP, which
// hot loads (whose values feed ordinary computation) deliberately lack.
const (
	numFarRegs    = 4
	farRegFirst   = int16(20) // r20..r23
	numChainRegs  = 8
	chainRegFirst = int16(24) // r24..r31
)

// NewGenerator builds the site table for model and returns a generator whose
// addresses live in a thread-private region selected by threadID (caches are
// shared; address spaces are disjoint, as for the paper's multiprogrammed
// workloads).
func NewGenerator(model Model, threadID int) *Generator {
	m := model.withDefaults()
	g := &Generator{
		model:    m,
		rnd:      rng.New(m.Seed*0x9E3779B97F4A7C15 + uint64(threadID)*0xBF58476D1CE4E5B9 + 1),
		addrBase: uint64(threadID) << 44,
		destRing: make([]int16, 64),
	}
	g.build()
	return g
}

// Model returns the generator's (default-filled) model.
func (g *Generator) Model() Model { return g.model }

// Sites returns the number of static sites (distinct PCs) in the loop body.
func (g *Generator) Sites() int { return len(g.sites) }

// build lays out the site loop: special memory sites first (bursts spaced
// through the body, streams, chains, warm walkers), then stores, branches
// and filler to match the instruction mix.
func (g *Generator) build() {
	m := g.model
	n := m.Sites
	g.sites = make([]site, n)
	for i := range g.sites {
		g.sites[i] = site{role: roleFiller, class: isa.IntALU, burstID: -1}
	}
	used := make([]bool, n)

	place := func(idx int, s site) {
		s.pc = codeBase + uint64(idx)*4
		if s.role == roleBranch {
			s.target = s.pc + 64
		}
		g.sites[idx] = s
		used[idx] = true
	}
	// nextFree finds the first unused slot at or after idx, wrapping.
	nextFree := func(idx int) int {
		for k := 0; k < n; k++ {
			i := (idx + k) % n
			if !used[i] {
				return i
			}
		}
		return -1
	}

	// Burst groups: members spaced BurstSpacing apart, groups spread evenly.
	streams := 0
	for b := 0; b < m.Bursts; b++ {
		start := b * (n / max(m.Bursts, 1))
		for k := 0; k < m.BurstLen; k++ {
			idx := nextFree((start + k*m.BurstSpacing) % n)
			if idx < 0 {
				break
			}
			place(idx, site{
				role: roleLoad, class: isa.Load, pattern: PatternRandom,
				burstID: b, period: m.BurstPeriod,
			})
		}
	}
	// Stream sites spread through the loop body: their line-crossing misses
	// still cluster in time (all streams advance in lockstep) but the MLP
	// they expose spans a sizable stretch of the dynamic instruction stream,
	// as in the paper's Figure 4 distance profiles.
	for s := 0; s < m.StreamSites; s++ {
		idx := nextFree(s * (n / max(m.StreamSites+1, 1)))
		if idx < 0 {
			break
		}
		place(idx, site{role: roleLoad, class: isa.Load, pattern: PatternStream, streamID: streams, burstID: -1})
		streams++
	}
	// Chains.
	for c := 0; c < m.ChainSites; c++ {
		idx := nextFree(c*(n/max(m.ChainSites, 1)) + 1)
		if idx < 0 {
			break
		}
		place(idx, site{
			role: roleLoad, class: isa.Load, pattern: PatternChain,
			chainID: c % numChainRegs, period: m.ChainPeriod, burstID: -1,
		})
	}
	// Warm streamers.
	for w := 0; w < m.WarmSites; w++ {
		idx := nextFree(w*3 + 2)
		if idx < 0 {
			break
		}
		place(idx, site{role: roleLoad, class: isa.Load, pattern: PatternWarm, streamID: streams, burstID: -1})
		streams++
	}

	// Remaining loads (hot), stores, branches and FP filler by mix.
	wantLoads := int(m.LoadFrac * float64(n))
	wantStores := int(m.StoreFrac * float64(n))
	wantBranches := int(m.BranchFrac * float64(n))
	haveLoads := 0
	for i := range g.sites {
		if used[i] && g.sites[i].role == roleLoad {
			haveLoads++
		}
	}
	for haveLoads < wantLoads {
		idx := nextFree(g.rnd.Intn(n))
		if idx < 0 {
			break
		}
		place(idx, site{role: roleLoad, class: isa.Load, pattern: PatternHot, burstID: -1})
		haveLoads++
	}
	for s := 0; s < wantStores; s++ {
		idx := nextFree(g.rnd.Intn(n))
		if idx < 0 {
			break
		}
		place(idx, site{role: roleStore, class: isa.Store, pattern: PatternHot, burstID: -1})
	}
	branchSites := 0
	for b := 0; b < wantBranches; b++ {
		idx := nextFree(g.rnd.Intn(n))
		if idx < 0 {
			break
		}
		kind := BranchBiased
		switch {
		case g.rnd.Bool(m.BranchRandomFrac):
			kind = BranchRandom
		case branchSites%2 == 1:
			kind = BranchLoop
		}
		place(idx, site{role: roleBranch, class: isa.Branch, branch: kind, burstID: -1})
		branchSites++
	}
	// Filler: split remaining between int and FP per FPFrac; sprinkle
	// multiplies for latency diversity.
	for i := range g.sites {
		if used[i] {
			continue
		}
		s := site{role: roleFiller, class: isa.IntALU, burstID: -1}
		if g.rnd.Bool(m.FPFrac) {
			if g.rnd.Bool(0.25) {
				s.class = isa.FPMul
			} else {
				s.class = isa.FPALU
			}
		} else if g.rnd.Bool(0.1) {
			s.class = isa.IntMul
		}
		s.pc = codeBase + uint64(i)*4
		g.sites[i] = s
		used[i] = true
	}

	g.streamPos = make([]uint64, streams)
	g.loopCount = make([]int, n)
}

// destFor rotates destination registers; FP classes draw from the FP file.
func (g *Generator) destFor(c isa.Class) int16 {
	g.destPos++
	if c.IsFP() {
		return isa.FPRegBase + int16(g.destPos%24)
	}
	return int16(g.destPos % 20) // r0..r19; chains own r24..r31
}

// farDest rotates the dedicated far-load destination registers.
func (g *Generator) farDest() int16 {
	g.farPos++
	r := farRegFirst + int16(g.farPos%numFarRegs)
	g.lastFar = r
	return r
}

// recentDest returns the destination register written dist instructions ago.
func (g *Generator) recentDest(dist int) int16 {
	if dist <= 0 {
		dist = 1
	}
	idx := (g.destPos - dist) % len(g.destRing)
	if idx < 0 {
		idx += len(g.destRing)
	}
	r := g.destRing[idx]
	if r == 0 {
		return isa.RegNone
	}
	return r
}

func (g *Generator) pushDest(r int16) {
	g.destRing[g.destPos%len(g.destRing)] = r
}

// Next generates the next dynamic instruction. The stream is infinite.
func (g *Generator) Next() isa.Instr {
	s := &g.sites[g.pos]
	in := isa.Instr{
		Seq:   g.seq,
		PC:    g.addrBase + s.pc,
		Class: s.class,
		Src1:  isa.RegNone,
		Src2:  isa.RegNone,
		Dest:  isa.RegNone,
	}
	m := &g.model

	push := true // whether the destination joins the filler dependence ring
	switch s.role {
	case roleLoad:
		switch s.pattern {
		case PatternHot:
			in.Dest = g.destFor(isa.Load)
			in.Addr = g.addrBase + hotBase + g.rnd.Uint64n(m.HotBytes)
			in.Src1 = g.recentDest(m.DepDist)
		case PatternWarm:
			in.Dest = g.farDest()
			push = false
			p := &g.streamPos[s.streamID]
			in.Addr = g.addrBase + warmBase + (*p)%m.WarmBytes
			*p += m.StreamStride
		case PatternStream:
			in.Dest = g.farDest()
			push = false
			p := &g.streamPos[s.streamID]
			// Each stream walks its own slice of the cold region.
			slice := m.ColdBytes / uint64(max(len(g.streamPos), 1))
			in.Addr = g.addrBase + coldBase + uint64(s.streamID)*slice + (*p)%slice
			*p += m.StreamStride
		case PatternRandom:
			in.Dest = g.farDest()
			push = false
			cold := int(g.iter)%s.period == 0 || g.rnd.Bool(m.MissJitter)
			if cold {
				in.Addr = g.addrBase + coldBase + g.rnd.Uint64n(m.ColdBytes)
			} else {
				in.Addr = g.addrBase + hotBase + g.rnd.Uint64n(m.HotBytes)
			}
		case PatternChain:
			reg := chainRegFirst + int16(s.chainID)
			in.Src1 = reg
			in.Dest = reg // the chase continues through the same register
			push = false
			cold := int(g.iter)%s.period == 0 || g.rnd.Bool(m.MissJitter)
			if cold {
				in.Addr = g.addrBase + coldBase + g.rnd.Uint64n(m.ColdBytes)
			} else {
				in.Addr = g.addrBase + hotBase + g.rnd.Uint64n(m.HotBytes)
			}
		}

	case roleStore:
		in.Addr = g.addrBase + hotBase + g.rnd.Uint64n(m.HotBytes)
		in.Src1 = g.recentDest(1) // store the most recent result
		in.Src2 = g.recentDest(m.DepDist)

	case roleBranch:
		in.Src1 = g.recentDest(1)
		switch s.branch {
		case BranchBiased:
			in.Taken = g.rnd.Bool(0.95)
		case BranchLoop:
			g.loopCount[g.pos]++
			in.Taken = g.loopCount[g.pos]%m.LoopPeriod != 0
		case BranchRandom:
			in.Taken = g.rnd.Bool(0.5)
		}
		in.Target = g.addrBase + s.target

	default: // filler ALU
		in.Dest = g.destFor(s.class)
		if g.lastFar != 0 && g.rnd.Bool(m.FarUseFrac) {
			in.Src1 = g.lastFar // consume the latest far load's value
		} else {
			in.Src1 = g.recentDest(m.DepDist)
		}
		in.Src2 = g.recentDest(m.DepDist * 2)
	}

	if push && in.HasDest() {
		g.pushDest(in.Dest)
	}

	g.seq++
	g.pos++
	if g.pos == len(g.sites) {
		g.pos = 0
		g.iter++
	}
	return in
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Cursor adapts a Generator to the pipeline's needs: fetch, rewind after a
// flush, and release committed instructions. It keeps every in-flight
// (delivered but unreleased) instruction so a flush can re-deliver the exact
// same dynamic instructions.
type Cursor struct {
	gen  *Generator
	buf  []isa.Instr // instructions [base, base+len) in sequence order; buf[head:] live
	head int         // released prefix of buf (compacted lazily)
	base uint64      // sequence number of buf[head]
	pos  uint64      // next sequence number to deliver
}

// NewCursor returns a cursor over gen starting at sequence 0.
func NewCursor(gen *Generator) *Cursor {
	return &Cursor{gen: gen}
}

// Fetch delivers the next instruction (possibly re-delivering after Rewind).
func (c *Cursor) Fetch() isa.Instr {
	idx := c.head + int(c.pos-c.base)
	if idx < len(c.buf) {
		in := c.buf[idx]
		c.pos++
		return in
	}
	in := c.gen.Next()
	if in.Seq != c.pos {
		panic(fmt.Sprintf("trace: generator out of sync: got seq %d, want %d", in.Seq, c.pos))
	}
	c.buf = append(c.buf, in)
	c.pos++
	return in
}

// Pos returns the sequence number of the next instruction Fetch will return.
func (c *Cursor) Pos() uint64 { return c.pos }

// Rewind moves the fetch position back to seq, which must not precede the
// oldest unreleased instruction.
func (c *Cursor) Rewind(seq uint64) {
	if seq < c.base || seq > c.pos {
		panic(fmt.Sprintf("trace: rewind to %d outside window [%d, %d]", seq, c.base, c.pos))
	}
	c.pos = seq
}

// Release discards instructions with sequence numbers <= seq (they are
// committed and can no longer be flush targets). It advances a head index
// rather than copying the buffer down on every commit; the dead prefix is
// reclaimed in O(1) amortized time when the buffer empties or the prefix
// dominates the backing array.
func (c *Cursor) Release(seq uint64) {
	if seq < c.base {
		return
	}
	drop := int(seq - c.base + 1)
	if live := len(c.buf) - c.head; drop > live {
		drop = live
	}
	c.head += drop
	c.base += uint64(drop)
	if c.head == len(c.buf) {
		c.buf = c.buf[:0]
		c.head = 0
	} else if c.head >= 1024 && c.head*2 >= len(c.buf) {
		n := copy(c.buf, c.buf[c.head:])
		c.buf = c.buf[:n]
		c.head = 0
	}
}

// InFlight returns the number of buffered (unreleased) instructions.
func (c *Cursor) InFlight() int { return len(c.buf) - c.head }
