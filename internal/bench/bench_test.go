package bench

import "testing"

func TestCatalogComplete(t *testing.T) {
	names := Names()
	if len(names) != 26 {
		t.Fatalf("catalog has %d benchmarks, Table I has 26", len(names))
	}
	// Spot-check the suite split of Table I.
	wantInt := []string{"bzip2", "crafty", "eon", "gap", "gcc", "gzip", "mcf",
		"parser", "perlbmk", "twolf", "vortex", "vpr"}
	for i, n := range wantInt {
		if names[i] != n {
			t.Fatalf("names[%d] = %s, want %s (Table I order)", i, names[i], n)
		}
	}
}

func TestCatalogUniqueNamesAndSeeds(t *testing.T) {
	seen := map[string]bool{}
	seeds := map[uint64]string{}
	for _, b := range All() {
		if seen[b.Model.Name] {
			t.Fatalf("duplicate benchmark %s", b.Model.Name)
		}
		seen[b.Model.Name] = true
		if other, ok := seeds[b.Model.Seed]; ok {
			t.Fatalf("benchmarks %s and %s share seed %d", b.Model.Name, other, b.Model.Seed)
		}
		seeds[b.Model.Seed] = b.Model.Name
	}
}

func TestPaperClassesMatchTableI(t *testing.T) {
	wantMLP := map[string]bool{
		"mcf": true, "ammp": true, "applu": true, "apsi": true, "equake": true,
		"fma3d": true, "galgel": true, "lucas": true, "mesa": true, "mgrid": true,
		"swim": true, "wupwise": true,
	}
	for _, b := range All() {
		want := ILP
		if wantMLP[b.Model.Name] {
			want = MLP
		}
		if b.PaperClass != want {
			t.Errorf("%s paper class %v, Table I says %v", b.Model.Name, b.PaperClass, want)
		}
	}
}

func TestPaperReferenceValues(t *testing.T) {
	mcf := MustGet("mcf")
	if mcf.PaperLLLPer1K != 17.36 || mcf.PaperMLP != 5.17 {
		t.Fatalf("mcf reference values drifted: %v %v", mcf.PaperLLLPer1K, mcf.PaperMLP)
	}
	fma3d := MustGet("fma3d")
	if fma3d.PaperImpact != 0.7787 {
		t.Fatalf("fma3d impact reference drifted: %v", fma3d.PaperImpact)
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nonesuch"); err == nil {
		t.Fatal("Get(nonesuch) did not error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet(nonesuch) did not panic")
		}
	}()
	MustGet("nonesuch")
}

func TestMostMLPIntensive(t *testing.T) {
	top := MostMLPIntensive(6)
	// Figure 4 uses the six most MLP-intensive programs: fma3d, applu,
	// swim, mcf, equake, lucas (by Table I impact).
	want := map[string]bool{"fma3d": true, "applu": true, "swim": true,
		"mcf": true, "equake": true, "lucas": true}
	if len(top) != 6 {
		t.Fatalf("got %d names", len(top))
	}
	for _, n := range top {
		if !want[n] {
			t.Errorf("%s not among the paper's six most MLP-intensive", n)
		}
	}
	if top[0] != "fma3d" {
		t.Errorf("most intensive is %s, want fma3d (77.87%%)", top[0])
	}
	if all := MostMLPIntensive(100); len(all) != 26 {
		t.Errorf("MostMLPIntensive(100) returned %d", len(all))
	}
}

func TestTwoThreadWorkloads(t *testing.T) {
	ws := TwoThreadWorkloads()
	if len(ws) != 36 {
		t.Fatalf("Table II has 36 workloads, got %d", len(ws))
	}
	groups := map[WorkloadClass]int{}
	for _, w := range ws {
		if len(w.Benchmarks) != 2 {
			t.Fatalf("%s is not a pair", w.Name())
		}
		for _, b := range w.Benchmarks {
			if _, err := Get(b); err != nil {
				t.Fatalf("%s references unknown benchmark: %v", w.Name(), err)
			}
		}
		groups[w.Class]++
	}
	if groups[ILPWorkload] != 6 || groups[MLPWorkload] != 12 || groups[MixedWorkload] != 18 {
		t.Fatalf("group sizes %v, want 6/12/18", groups)
	}
}

func TestTwoThreadClassesConsistent(t *testing.T) {
	for _, w := range TwoThreadWorkloads() {
		mlpCount := 0
		for _, b := range w.Benchmarks {
			if MustGet(b).PaperClass == MLP {
				mlpCount++
			}
		}
		var want WorkloadClass
		switch mlpCount {
		case 0:
			want = ILPWorkload
		case len(w.Benchmarks):
			want = MLPWorkload
		default:
			want = MixedWorkload
		}
		if w.Class != want {
			t.Errorf("%s labelled %v but contains %d MLP benchmarks", w.Name(), w.Class, mlpCount)
		}
		if w.MLPCount != mlpCount {
			t.Errorf("%s MLPCount %d, want %d", w.Name(), w.MLPCount, mlpCount)
		}
	}
}

func TestFourThreadWorkloads(t *testing.T) {
	ws := FourThreadWorkloads()
	if len(ws) != 30 {
		t.Fatalf("Table III has 30 workloads, got %d", len(ws))
	}
	byCount := map[int]int{}
	for _, w := range ws {
		if len(w.Benchmarks) != 4 {
			t.Fatalf("%s is not a 4-thread mix", w.Name())
		}
		for _, b := range w.Benchmarks {
			if _, err := Get(b); err != nil {
				t.Fatalf("%s references unknown benchmark: %v", w.Name(), err)
			}
		}
		byCount[w.MLPCount]++
	}
	// Table III's printed grouping: 5 + 6 + 10 + 6 + 3.
	want := map[int]int{0: 5, 1: 6, 2: 10, 3: 6, 4: 3}
	for k, v := range want {
		if byCount[k] != v {
			t.Errorf("#MLP=%d group has %d workloads, want %d", k, byCount[k], v)
		}
	}
}

func TestWorkloadsByClass(t *testing.T) {
	ws := TwoThreadWorkloads()
	if got := len(WorkloadsByClass(ws, MLPWorkload)); got != 12 {
		t.Fatalf("WorkloadsByClass(MLP) = %d, want 12", got)
	}
}

func TestWorkloadName(t *testing.T) {
	w := Workload{Benchmarks: []string{"mcf", "galgel"}}
	if w.Name() != "mcf-galgel" {
		t.Fatalf("Name() = %q", w.Name())
	}
}

func TestClassStrings(t *testing.T) {
	if ILP.String() != "ILP" || MLP.String() != "MLP" {
		t.Fatal("benchmark class strings wrong")
	}
	if ILPWorkload.String() != "ILP" || MLPWorkload.String() != "MLP" || MixedWorkload.String() != "mixed" {
		t.Fatal("workload class strings wrong")
	}
}
