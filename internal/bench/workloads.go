package bench

import "strings"

// WorkloadClass groups multiprogrammed workloads the way the paper's
// evaluation does.
type WorkloadClass uint8

// Workload classes for the two-thread mixes of Table II.
const (
	ILPWorkload WorkloadClass = iota // all threads ILP-intensive
	MLPWorkload                      // all threads MLP-intensive
	MixedWorkload
)

// String names the workload class as the paper's figures do.
func (c WorkloadClass) String() string {
	switch c {
	case ILPWorkload:
		return "ILP"
	case MLPWorkload:
		return "MLP"
	default:
		return "mixed"
	}
}

// Workload is a multiprogrammed mix of benchmarks. JSON tags pin the wire
// names used by the HTTP service surface.
type Workload struct {
	Benchmarks []string      `json:"benchmarks"`
	Class      WorkloadClass `json:"class,omitempty"`
	// MLPCount is the number of MLP-intensive benchmarks in the mix (the
	// four-thread workloads of Table III are sorted by it).
	MLPCount int `json:"mlp_count,omitempty"`
}

// Name renders the paper's hyphenated workload name (e.g. "mcf-galgel").
func (w Workload) Name() string { return strings.Join(w.Benchmarks, "-") }

func mix(class WorkloadClass, mlpCount int, names ...string) Workload {
	return Workload{Benchmarks: names, Class: class, MLPCount: mlpCount}
}

// TwoThreadWorkloads returns the 36 two-thread workloads of Table II:
// 6 ILP-intensive, 12 MLP-intensive and 18 mixed ILP/MLP mixes. For mixed
// workloads the paper's convention (Figure 12) is that thread 0 is the
// MLP-intensive thread; the table below preserves the paper's orderings.
func TwoThreadWorkloads() []Workload {
	return []Workload{
		// ILP-intensive.
		mix(ILPWorkload, 0, "vortex", "parser"),
		mix(ILPWorkload, 0, "crafty", "twolf"),
		mix(ILPWorkload, 0, "facerec", "crafty"),
		mix(ILPWorkload, 0, "vpr", "sixtrack"),
		mix(ILPWorkload, 0, "vortex", "gcc"),
		mix(ILPWorkload, 0, "gcc", "gap"),
		// MLP-intensive.
		mix(MLPWorkload, 2, "apsi", "mesa"),
		mix(MLPWorkload, 2, "mcf", "swim"),
		mix(MLPWorkload, 2, "mcf", "galgel"),
		mix(MLPWorkload, 2, "wupwise", "ammp"),
		mix(MLPWorkload, 2, "swim", "galgel"),
		mix(MLPWorkload, 2, "lucas", "fma3d"),
		mix(MLPWorkload, 2, "mesa", "galgel"),
		mix(MLPWorkload, 2, "galgel", "fma3d"),
		mix(MLPWorkload, 2, "applu", "swim"),
		mix(MLPWorkload, 2, "mcf", "equake"),
		mix(MLPWorkload, 2, "applu", "galgel"),
		mix(MLPWorkload, 2, "swim", "mesa"),
		// Mixed ILP/MLP.
		mix(MixedWorkload, 1, "swim", "perlbmk"),
		mix(MixedWorkload, 1, "galgel", "twolf"),
		mix(MixedWorkload, 1, "fma3d", "twolf"),
		mix(MixedWorkload, 1, "apsi", "art"),
		mix(MixedWorkload, 1, "gzip", "wupwise"),
		mix(MixedWorkload, 1, "apsi", "twolf"),
		mix(MixedWorkload, 1, "mgrid", "vortex"),
		mix(MixedWorkload, 1, "swim", "twolf"),
		mix(MixedWorkload, 1, "swim", "eon"),
		mix(MixedWorkload, 1, "swim", "facerec"),
		mix(MixedWorkload, 1, "parser", "wupwise"),
		mix(MixedWorkload, 1, "vpr", "mcf"),
		mix(MixedWorkload, 1, "equake", "perlbmk"),
		mix(MixedWorkload, 1, "applu", "vortex"),
		mix(MixedWorkload, 1, "art", "mgrid"),
		mix(MixedWorkload, 1, "equake", "art"),
		mix(MixedWorkload, 1, "parser", "ammp"),
		mix(MixedWorkload, 1, "facerec", "mcf"),
	}
}

// FourThreadWorkloads returns the 30 four-thread workloads of Table III,
// sorted (and labelled) by the paper's #MLP column. The mixes are printed in
// the paper exactly as reproduced here.
func FourThreadWorkloads() []Workload {
	w := func(mlpCount int, names ...string) Workload {
		class := MixedWorkload
		switch mlpCount {
		case 0:
			class = ILPWorkload
		case 4:
			class = MLPWorkload
		}
		return Workload{Benchmarks: names, Class: class, MLPCount: mlpCount}
	}
	return []Workload{
		w(0, "vortex", "parser", "crafty", "twolf"),
		w(0, "facerec", "crafty", "vpr", "sixtrack"),
		w(0, "swim", "perlbmk", "vortex", "gcc"),
		w(0, "galgel", "twolf", "gcc", "gap"),
		w(0, "fma3d", "twolf", "vortex", "parser"),
		w(1, "apsi", "art", "crafty", "twolf"),
		w(1, "gzip", "wupwise", "facerec", "crafty"),
		w(1, "apsi", "twolf", "vpr", "sixtrack"),
		w(1, "mgrid", "vortex", "swim", "twolf"),
		w(1, "swim", "eon", "perlbmk", "mesa"),
		w(1, "parser", "wupwise", "vpr", "mcf"),
		w(2, "equake", "perlbmk", "applu", "vortex"),
		w(2, "art", "mgrid", "applu", "galgel"),
		w(2, "parser", "ammp", "facerec", "mcf"),
		w(2, "swim", "perlbmk", "galgel", "twolf"),
		w(2, "fma3d", "twolf", "apsi", "art"),
		w(2, "gzip", "wupwise", "apsi", "twolf"),
		w(2, "equake", "art", "parser", "ammp"),
		w(2, "apsi", "mesa", "swim", "eon"),
		w(2, "mcf", "swim", "perlbmk", "mesa"),
		w(2, "mcf", "galgel", "vortex", "gcc"),
		w(3, "wupwise", "ammp", "vpr", "mcf"),
		w(3, "swim", "galgel", "parser", "wupwise"),
		w(3, "lucas", "fma3d", "equake", "perlbmk"),
		w(3, "mesa", "galgel", "applu", "vortex"),
		w(3, "galgel", "fma3d", "art", "mgrid"),
		w(3, "applu", "swim", "mcf", "equake"),
		w(4, "applu", "galgel", "swim", "mesa"),
		w(4, "apsi", "mesa", "mcf", "swim"),
		w(4, "mcf", "galgel", "wupwise", "ammp"),
	}
}

// WorkloadsByClass filters workloads to one class.
func WorkloadsByClass(ws []Workload, c WorkloadClass) []Workload {
	var out []Workload
	for _, w := range ws {
		if w.Class == c {
			out = append(out, w)
		}
	}
	return out
}
