// Package bench is the SPEC CPU2000 benchmark catalog: one calibrated
// synthetic model (internal/trace) per benchmark of Table I, together with
// the two-thread workloads of Table II and the four-thread workloads of
// Table III.
//
// Calibration targets the paper's Table I characterization on the 256-entry
// ROB baseline: long-latency loads per 1K instructions (LLL), the amount of
// MLP (Chou et al. definition), the impact of MLP on performance, and the
// resulting ILP/MLP classification. Absolute agreement with SPEC is neither
// possible nor required; what matters for the paper's experiments is that
// each benchmark lands in the right class, with the right kind of miss
// structure (isolated vs clustered, prefetchable vs irregular, short vs long
// MLP distances). EXPERIMENTS.md records where each model's measured
// characterization lands.
package bench

import (
	"fmt"
	"sort"

	"smtmlp/internal/trace"
)

// Class is the paper's benchmark classification: a benchmark is
// MLP-intensive when the measured impact of MLP on its performance exceeds
// 10% (Section 2), ILP-intensive otherwise.
type Class uint8

// Benchmark classes.
const (
	ILP Class = iota
	MLP
)

// String names the class as the paper does.
func (c Class) String() string {
	if c == MLP {
		return "MLP"
	}
	return "ILP"
}

// Benchmark couples a synthetic model with its Table I reference values.
type Benchmark struct {
	Model trace.Model
	// Paper reference values (Table I) for EXPERIMENTS.md comparisons.
	PaperLLLPer1K float64
	PaperMLP      float64
	PaperImpact   float64 // fraction, e.g. 0.6039 for mcf
	PaperClass    Class
}

// catalog lists every benchmark. Models are calibrated per Table I:
//   - bursts of independent random cold loads produce clustered misses
//     (MLP), with spacing controlling the MLP distance (Figure 4);
//   - streams produce prefetchable misses (Figure 5's big winners);
//   - chains produce serialized (no-MLP) misses;
//   - jitter makes miss patterns irregular (mcf's low predictability).
var catalog = []Benchmark{
	// --- SPECint: mostly ILP-intensive ---
	{
		Model: trace.Model{
			Name: "bzip2", Seed: 101, Sites: 160,
			LoadFrac: 0.26, StoreFrac: 0.11, BranchFrac: 0.14,
			WarmSites: 2, Bursts: 1, BurstLen: 1, BurstPeriod: 48,
			DepDist: 4, BranchRandomFrac: 0.04,
		},
		PaperLLLPer1K: 0.14, PaperMLP: 1.00, PaperImpact: 0.0003, PaperClass: ILP,
	},
	{
		Model: trace.Model{
			Name: "crafty", Seed: 102, Sites: 160,
			LoadFrac: 0.27, StoreFrac: 0.09, BranchFrac: 0.16,
			Bursts: 1, BurstLen: 1, BurstPeriod: 80,
			DepDist: 5, BranchRandomFrac: 0.06,
		},
		PaperLLLPer1K: 0.08, PaperMLP: 1.34, PaperImpact: 0.0129, PaperClass: ILP,
	},
	{
		Model: trace.Model{
			Name: "eon", Seed: 103, Sites: 160,
			LoadFrac: 0.28, StoreFrac: 0.13, BranchFrac: 0.12, FPFrac: 0.25,
			DepDist: 5, BranchRandomFrac: 0.03,
		},
		PaperLLLPer1K: 0.00, PaperMLP: 1.83, PaperImpact: 0.0008, PaperClass: ILP,
	},
	{
		Model: trace.Model{
			Name: "gap", Seed: 104, Sites: 160,
			LoadFrac: 0.25, StoreFrac: 0.10, BranchFrac: 0.14,
			Bursts: 1, BurstLen: 1, BurstPeriod: 16,
			DepDist: 4, BranchRandomFrac: 0.05,
		},
		PaperLLLPer1K: 0.36, PaperMLP: 1.02, PaperImpact: 0.0028, PaperClass: ILP,
	},
	{
		Model: trace.Model{
			Name: "gcc", Seed: 105, Sites: 192,
			LoadFrac: 0.26, StoreFrac: 0.12, BranchFrac: 0.18,
			Bursts: 1, BurstLen: 2, BurstSpacing: 3, BurstPeriod: 96,
			DepDist: 4, BranchRandomFrac: 0.07,
		},
		PaperLLLPer1K: 0.01, PaperMLP: 1.70, PaperImpact: 0.0022, PaperClass: ILP,
	},
	{
		Model: trace.Model{
			Name: "gzip", Seed: 106, Sites: 160,
			LoadFrac: 0.24, StoreFrac: 0.10, BranchFrac: 0.15,
			WarmSites: 2, Bursts: 1, BurstLen: 2, BurstSpacing: 2, BurstPeriod: 128,
			DepDist: 4, BranchRandomFrac: 0.05,
		},
		PaperLLLPer1K: 0.08, PaperMLP: 1.81, PaperImpact: 0.0322, PaperClass: ILP,
	},
	{
		Model: trace.Model{
			Name: "mcf", Seed: 107, Sites: 192,
			LoadFrac: 0.30, StoreFrac: 0.08, BranchFrac: 0.16,
			Bursts: 1, BurstLen: 8, BurstSpacing: 14, BurstPeriod: 3,
			ChainSites: 2, ChainPeriod: 4, MissJitter: 0.08, FarUseFrac: 0.12,
			DepDist: 3, BranchRandomFrac: 0.10,
		},
		PaperLLLPer1K: 17.36, PaperMLP: 5.17, PaperImpact: 0.6039, PaperClass: MLP,
	},
	{
		Model: trace.Model{
			Name: "parser", Seed: 108, Sites: 160,
			LoadFrac: 0.25, StoreFrac: 0.10, BranchFrac: 0.17,
			Bursts: 1, BurstLen: 1, BurstPeriod: 48,
			DepDist: 4, BranchRandomFrac: 0.07,
		},
		PaperLLLPer1K: 0.14, PaperMLP: 1.24, PaperImpact: 0.0120, PaperClass: ILP,
	},
	{
		Model: trace.Model{
			Name: "perlbmk", Seed: 109, Sites: 160,
			LoadFrac: 0.27, StoreFrac: 0.12, BranchFrac: 0.16,
			Bursts: 1, BurstLen: 1, BurstPeriod: 20,
			DepDist: 4, BranchRandomFrac: 0.05,
		},
		PaperLLLPer1K: 0.30, PaperMLP: 1.00, PaperImpact: 0.0001, PaperClass: ILP,
	},
	{
		Model: trace.Model{
			Name: "twolf", Seed: 110, Sites: 160,
			LoadFrac: 0.26, StoreFrac: 0.09, BranchFrac: 0.15,
			Bursts: 1, BurstLen: 1, BurstPeriod: 64,
			DepDist: 4, BranchRandomFrac: 0.08,
		},
		PaperLLLPer1K: 0.10, PaperMLP: 1.37, PaperImpact: 0.0105, PaperClass: ILP,
	},
	{
		Model: trace.Model{
			Name: "vortex", Seed: 111, Sites: 160,
			LoadFrac: 0.28, StoreFrac: 0.14, BranchFrac: 0.14,
			Bursts: 1, BurstLen: 1, BurstPeriod: 16,
			DepDist: 5, BranchRandomFrac: 0.04,
		},
		PaperLLLPer1K: 0.39, PaperMLP: 1.06, PaperImpact: 0.0149, PaperClass: ILP,
	},
	{
		Model: trace.Model{
			Name: "vpr", Seed: 112, Sites: 160,
			LoadFrac: 0.26, StoreFrac: 0.10, BranchFrac: 0.14,
			Bursts: 1, BurstLen: 1, BurstPeriod: 64,
			DepDist: 4, BranchRandomFrac: 0.08,
		},
		PaperLLLPer1K: 0.09, PaperMLP: 1.43, PaperImpact: 0.0135, PaperClass: ILP,
	},

	// --- SPECfp: the MLP-intensive half of the suite ---
	{
		Model: trace.Model{
			Name: "ammp", Seed: 113, Sites: 192,
			LoadFrac: 0.28, StoreFrac: 0.08, BranchFrac: 0.06, FPFrac: 0.55,
			Bursts: 1, BurstLen: 4, BurstSpacing: 16, BurstPeriod: 16,
			DepDist: 4, BranchRandomFrac: 0.02,
		},
		PaperLLLPer1K: 1.71, PaperMLP: 3.94, PaperImpact: 0.4025, PaperClass: MLP,
	},
	{
		Model: trace.Model{
			Name: "applu", Seed: 114, Sites: 160,
			LoadFrac: 0.30, StoreFrac: 0.10, BranchFrac: 0.04, FPFrac: 0.65,
			StreamSites: 14, StreamStride: 16, Bursts: 1, BurstLen: 4, BurstSpacing: 12, BurstPeriod: 3,
			DepDist: 6, BranchRandomFrac: 0.01,
		},
		PaperLLLPer1K: 14.24, PaperMLP: 4.26, PaperImpact: 0.6963, PaperClass: MLP,
	},
	{
		Model: trace.Model{
			Name: "apsi", Seed: 115, Sites: 192,
			LoadFrac: 0.27, StoreFrac: 0.09, BranchFrac: 0.05, FPFrac: 0.60,
			Bursts: 1, BurstLen: 7, BurstSpacing: 10, BurstPeriod: 40,
			DepDist: 5, BranchRandomFrac: 0.02,
		},
		PaperLLLPer1K: 0.78, PaperMLP: 6.15, PaperImpact: 0.3541, PaperClass: MLP,
	},
	{
		Model: trace.Model{
			Name: "art", Seed: 116, Sites: 192,
			LoadFrac: 0.28, StoreFrac: 0.07, BranchFrac: 0.06, FPFrac: 0.55,
			ColdBytes: 16 << 20,
			Bursts:    1, BurstLen: 9, BurstSpacing: 6, BurstPeriod: 256,
			DepDist: 2, BranchRandomFrac: 0.08,
		},
		PaperLLLPer1K: 0.19, PaperMLP: 8.58, PaperImpact: 0.0734, PaperClass: ILP,
	},
	{
		Model: trace.Model{
			Name: "equake", Seed: 117, Sites: 160,
			LoadFrac: 0.32, StoreFrac: 0.10, BranchFrac: 0.05, FPFrac: 0.55,
			StreamSites: 10, StreamStride: 16, Bursts: 1, BurstLen: 3, BurstSpacing: 30, BurstPeriod: 2,
			DepDist: 4, BranchRandomFrac: 0.02,
		},
		PaperLLLPer1K: 24.60, PaperMLP: 2.69, PaperImpact: 0.5819, PaperClass: MLP,
	},
	{
		Model: trace.Model{
			Name: "facerec", Seed: 118, Sites: 160,
			LoadFrac: 0.27, StoreFrac: 0.08, BranchFrac: 0.07, FPFrac: 0.50,
			WarmSites: 3, Bursts: 1, BurstLen: 2, BurstSpacing: 4, BurstPeriod: 64,
			DepDist: 5, BranchRandomFrac: 0.02,
		},
		PaperLLLPer1K: 0.41, PaperMLP: 1.51, PaperImpact: 0.0756, PaperClass: ILP,
	},
	{
		Model: trace.Model{
			Name: "fma3d", Seed: 119, Sites: 224,
			LoadFrac: 0.30, StoreFrac: 0.10, BranchFrac: 0.05, FPFrac: 0.60,
			Bursts: 2, BurstLen: 7, BurstSpacing: 16, BurstPeriod: 3,
			DepDist: 5, BranchRandomFrac: 0.02,
		},
		PaperLLLPer1K: 17.67, PaperMLP: 6.27, PaperImpact: 0.7787, PaperClass: MLP,
	},
	{
		Model: trace.Model{
			Name: "galgel", Seed: 120, Sites: 192,
			LoadFrac: 0.28, StoreFrac: 0.08, BranchFrac: 0.05, FPFrac: 0.65,
			Bursts: 1, BurstLen: 4, BurstSpacing: 12, BurstPeriod: 96,
			FarUseFrac: 0.06, DepDist: 6, BranchRandomFrac: 0.01,
		},
		PaperLLLPer1K: 0.24, PaperMLP: 3.84, PaperImpact: 0.1424, PaperClass: MLP,
	},
	{
		Model: trace.Model{
			Name: "lucas", Seed: 121, Sites: 160,
			LoadFrac: 0.29, StoreFrac: 0.11, BranchFrac: 0.03, FPFrac: 0.70,
			StreamSites: 8, StreamStride: 16, Bursts: 1, BurstLen: 2, BurstSpacing: 12, BurstPeriod: 2,
			DepDist: 6, BranchRandomFrac: 0.01,
		},
		PaperLLLPer1K: 10.63, PaperMLP: 2.15, PaperImpact: 0.4640, PaperClass: MLP,
	},
	{
		Model: trace.Model{
			Name: "mesa", Seed: 122, Sites: 160,
			LoadFrac: 0.27, StoreFrac: 0.12, BranchFrac: 0.08, FPFrac: 0.45,
			Bursts: 1, BurstLen: 3, BurstSpacing: 8, BurstPeriod: 40,
			DepDist: 4, BranchRandomFrac: 0.03,
		},
		PaperLLLPer1K: 0.45, PaperMLP: 2.88, PaperImpact: 0.1964, PaperClass: MLP,
	},
	{
		Model: trace.Model{
			Name: "mgrid", Seed: 123, Sites: 160,
			LoadFrac: 0.31, StoreFrac: 0.09, BranchFrac: 0.03, FPFrac: 0.65,
			StreamSites: 8, StreamStride: 16, Bursts: 1, BurstLen: 2, BurstSpacing: 5, BurstPeriod: 6,
			DepDist: 6, BranchRandomFrac: 0.01,
		},
		PaperLLLPer1K: 6.04, PaperMLP: 1.76, PaperImpact: 0.3584, PaperClass: MLP,
	},
	{
		Model: trace.Model{
			Name: "sixtrack", Seed: 124, Sites: 160,
			LoadFrac: 0.26, StoreFrac: 0.09, BranchFrac: 0.06, FPFrac: 0.60,
			Bursts: 1, BurstLen: 2, BurstSpacing: 4, BurstPeriod: 128,
			DepDist: 6, BranchRandomFrac: 0.01,
		},
		PaperLLLPer1K: 0.10, PaperMLP: 2.61, PaperImpact: 0.0492, PaperClass: ILP,
	},
	{
		Model: trace.Model{
			Name: "swim", Seed: 125, Sites: 160,
			LoadFrac: 0.31, StoreFrac: 0.11, BranchFrac: 0.03, FPFrac: 0.70,
			StreamSites: 14, StreamStride: 12, Bursts: 1, BurstLen: 4, BurstSpacing: 14, BurstPeriod: 2,
			DepDist: 7, BranchRandomFrac: 0.01,
		},
		PaperLLLPer1K: 15.08, PaperMLP: 3.66, PaperImpact: 0.6747, PaperClass: MLP,
	},
	{
		Model: trace.Model{
			Name: "wupwise", Seed: 126, Sites: 160,
			LoadFrac: 0.28, StoreFrac: 0.10, BranchFrac: 0.05, FPFrac: 0.60,
			Bursts: 1, BurstLen: 3, BurstSpacing: 14, BurstPeriod: 14,
			WarmSites: 2, DepDist: 5, BranchRandomFrac: 0.02,
		},
		PaperLLLPer1K: 2.00, PaperMLP: 2.20, PaperImpact: 0.3681, PaperClass: MLP,
	},
}

var byName = func() map[string]*Benchmark {
	m := make(map[string]*Benchmark, len(catalog))
	for i := range catalog {
		m[catalog[i].Model.Name] = &catalog[i]
	}
	return m
}()

// Names returns all benchmark names in Table I order.
func Names() []string {
	out := make([]string, len(catalog))
	for i := range catalog {
		out[i] = catalog[i].Model.Name
	}
	return out
}

// Get returns the benchmark named name.
func Get(name string) (Benchmark, error) {
	b, ok := byName[name]
	if !ok {
		return Benchmark{}, fmt.Errorf("bench: unknown benchmark %q (known: %v)", name, Names())
	}
	return *b, nil
}

// MustGet is Get for callers with static names; it panics on unknown names.
func MustGet(name string) Benchmark {
	b, err := Get(name)
	if err != nil {
		panic(err)
	}
	return b
}

// All returns the full catalog in Table I order.
func All() []Benchmark {
	out := make([]Benchmark, len(catalog))
	copy(out, catalog)
	return out
}

// MostMLPIntensive returns the n benchmarks with the highest paper MLP
// impact, in decreasing order (Figure 4 uses the top six).
func MostMLPIntensive(n int) []string {
	all := All()
	sort.Slice(all, func(i, j int) bool { return all[i].PaperImpact > all[j].PaperImpact })
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].Model.Name
	}
	return out
}
