// Concurrency suite for the fleet merge path: many goroutines hammering
// Append/AppendBatch with overlapping fingerprints (the shape of duplicate
// leases and retried chunks converging on one store), interleaved with a
// torn-tail crash/recovery cycle. Run under -race these tests also pin the
// locking discipline.
package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"smtmlp"
)

// synthRec builds a synthetic record with a caller-chosen fingerprint; the
// store treats fingerprints as opaque content addresses, so tests can mint
// as many distinct (or deliberately colliding) keys as they need.
func synthRec(fp string) Record {
	return Record{
		Fingerprint: fp,
		Request: smtmlp.Request{
			Tag:      fp,
			Config:   smtmlp.DefaultConfig(2),
			Workload: smtmlp.Mix("mcf", "twolf"),
			Policy:   smtmlp.ICount,
		},
		Result: smtmlp.WorkloadResult{Policy: "icount", STP: 1.0, ANTT: 1.5},
	}
}

// checkConsistent asserts the invariants the fleet merge path depends on:
// the on-disk NDJSON has exactly one valid line per fingerprint, in the same
// order as the in-memory Records, and the index resolves every record.
func checkConsistent(t *testing.T, st *Store) {
	t.Helper()
	recs := st.Records()
	data, err := os.ReadFile(filepath.Join(st.Dir(), resultsFile))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(data, []byte{'\n'}), []byte{'\n'})
	if len(data) == 0 {
		lines = nil
	}
	if len(lines) != len(recs) {
		t.Fatalf("disk has %d lines, memory has %d records", len(lines), len(recs))
	}
	seen := make(map[string]bool, len(lines))
	for i, line := range lines {
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
		if rec.Fingerprint != recs[i].Fingerprint {
			t.Fatalf("line %d: disk fp %s, memory fp %s", i, rec.Fingerprint, recs[i].Fingerprint)
		}
		if seen[rec.Fingerprint] {
			t.Fatalf("fingerprint %s written twice", rec.Fingerprint)
		}
		seen[rec.Fingerprint] = true
		if got, ok := st.Get(rec.Fingerprint); !ok || got.Fingerprint != rec.Fingerprint {
			t.Fatalf("index lost %s", rec.Fingerprint)
		}
	}
}

// TestStoreConcurrentAppendOverlap hammers the store from many goroutines
// that all try to persist the same key space — half through single Append,
// half through AppendBatch chunks — and asserts exactly one copy of each
// record survives, on disk and in memory, with the dedupe counter absorbing
// everything else.
func TestStoreConcurrentAppendOverlap(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const keys, writers = 200, 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				// Single appends, each writer in a different key order.
				for i := 0; i < keys; i++ {
					k := (i*7 + w*13) % keys
					if _, err := st.Append(synthRec(fmt.Sprintf("fp-%03d", k))); err != nil {
						t.Error(err)
						return
					}
				}
				return
			}
			// Batch appends in overlapping chunks (the lease merge shape).
			for lo := 0; lo < keys; lo += 16 {
				batch := make([]Record, 0, 24)
				for i := lo; i < lo+24 && i < keys; i++ {
					batch = append(batch, synthRec(fmt.Sprintf("fp-%03d", i)))
				}
				if _, err := st.AppendBatch(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if st.Len() != keys {
		t.Fatalf("store holds %d records, want %d", st.Len(), keys)
	}
	checkConsistent(t, st)
	m := st.Metrics()
	if m.Results != keys || m.AppendsTotal != keys {
		t.Fatalf("metrics %+v, want %d results/appends", m, keys)
	}
	if m.DedupeHits == 0 {
		t.Fatalf("metrics %+v: overlapping writers produced no dedupe hits", m)
	}
}

// TestStoreConcurrentWritesWithTornTailRecovery interleaves the concurrent
// merge path with a crash: hammer, crash with a torn trailing line, reopen
// (recovery must keep every complete record), then hammer again with an
// overlapping key set and verify the final store from a cold Open.
func TestStoreConcurrentWritesWithTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	hammer := func(st *Store, lo, hi int) {
		var wg sync.WaitGroup
		for w := 0; w < 6; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					var err error
					if w%2 == 0 {
						_, err = st.Append(synthRec(fmt.Sprintf("fp-%03d", i)))
					} else {
						_, err = st.AppendBatch([]Record{synthRec(fmt.Sprintf("fp-%03d", i))})
					}
					if err != nil {
						t.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}

	hammer(st, 0, 80)
	if st.Len() != 80 {
		t.Fatalf("phase 1 left %d records, want 80", st.Len())
	}
	// Crash: the process dies mid-append, leaving a torn (newline-less)
	// trailing fragment. Close the handle first so the torn bytes land after
	// everything the store wrote.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, resultsFile), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"fp":"fp-torn","request":`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer st2.Close()
	if st2.Len() != 80 || st2.Has("fp-torn") {
		t.Fatalf("recovery kept %d records (torn present: %v), want 80 complete ones",
			st2.Len(), st2.Has("fp-torn"))
	}

	// Phase 2 overlaps phase 1 (keys 40..119): the first half must dedupe
	// against the recovered log, the second half must append cleanly after
	// the truncation point.
	hammer(st2, 40, 120)
	if st2.Len() != 120 {
		t.Fatalf("phase 2 left %d records, want 120", st2.Len())
	}
	checkConsistent(t, st2)
	if m := st2.Metrics(); m.AppendsTotal != 40 || m.DedupeHits == 0 {
		t.Fatalf("post-recovery metrics %+v, want 40 fresh appends and some dedupe hits", m)
	}
}

// TestAppendBatchSemantics pins the batch commit contract: intra-batch
// duplicates collapse to the first occurrence, a record without a
// fingerprint rejects the whole batch without mutating anything, and the
// added count reflects only fresh records.
func TestAppendBatchSemantics(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	added, err := st.AppendBatch([]Record{synthRec("a"), synthRec("b"), synthRec("a")})
	if err != nil || added != 2 {
		t.Fatalf("first batch: added=%d err=%v, want 2", added, err)
	}
	// Overlap with the store plus one fresh record.
	added, err = st.AppendBatch([]Record{synthRec("b"), synthRec("c")})
	if err != nil || added != 1 {
		t.Fatalf("second batch: added=%d err=%v, want 1", added, err)
	}
	// A bad record rejects the whole batch atomically.
	if _, err := st.AppendBatch([]Record{synthRec("d"), {}}); err == nil {
		t.Fatal("batch with a fingerprint-less record was accepted")
	}
	if st.Len() != 3 || st.Has("d") {
		t.Fatalf("failed batch mutated the store: len=%d has(d)=%v", st.Len(), st.Has("d"))
	}
	// An all-duplicate batch is a no-op that still counts dedupe hits.
	added, err = st.AppendBatch([]Record{synthRec("a"), synthRec("c")})
	if err != nil || added != 0 {
		t.Fatalf("duplicate batch: added=%d err=%v", added, err)
	}
	checkConsistent(t, st)
	if m := st.Metrics(); m.AppendsTotal != 3 || m.DedupeHits != 4 {
		t.Fatalf("metrics %+v, want 3 appends and 4 dedupe hits", m)
	}
}

// TestStoreMetricsRefsAge pins the refs snapshot age gauge: -1 before any
// snapshot exists, non-negative once MergeRefs has written one.
func TestStoreMetricsRefsAge(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if m := st.Metrics(); m.RefsSnapshotAgeSeconds != -1 || m.Refs != 0 {
		t.Fatalf("fresh store metrics %+v", m)
	}
	if _, err := st.MergeRefs([]smtmlp.RefProfile{{Key: "k1"}}); err != nil {
		t.Fatal(err)
	}
	if m := st.Metrics(); m.RefsSnapshotAgeSeconds < 0 || m.Refs != 1 {
		t.Fatalf("post-merge metrics %+v, want a non-negative snapshot age and 1 ref", m)
	}
}
