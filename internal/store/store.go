// Package store is the persistent, content-addressed simulation result
// store behind the campaign subsystem: a crash-safe, append-only NDJSON log
// of finished simulations, keyed by smtmlp.Fingerprint, plus a canonical
// snapshot of single-threaded reference profiles for warm-starting an
// engine's RefCache after a restart.
//
// On-disk layout (one directory per store):
//
//	results.ndjson — one Record per line, append-only, in the order results
//	                 were committed. Each append is a single write of a full
//	                 line, so a crash can lose at most a partial trailing
//	                 line; Open detects and truncates such a tail. The same
//	                 fingerprint is never written twice (dedupe on append).
//	refs.ndjson    — one sim.RefRecord per line, sorted by key. Rewritten
//	                 atomically (temp file + rename) by MergeRefs, so it is
//	                 always either the previous or the new snapshot, never a
//	                 torn write. Corruption here only costs re-simulation,
//	                 so a damaged refs file is ignored rather than fatal.
//
// Both files contain no timestamps or other nondeterminism: a store written
// by an interrupted-then-resumed campaign is byte-identical to one written
// by an uninterrupted run (the campaign runner commits results in submission
// order, and the simulator itself is deterministic).
//
// A Store is safe for concurrent use. Byte-level determinism of
// results.ndjson is guaranteed for serial campaign execution; concurrent
// campaigns interleave their appends in completion order.
package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"smtmlp"
	"smtmlp/internal/obs"
	"smtmlp/internal/sim"
)

// Record is one persisted simulation: the content address, the full request
// (so the store can be queried and re-expanded without the spec that
// produced it) and the result.
type Record struct {
	Fingerprint string                `json:"fp"`
	Request     smtmlp.Request        `json:"request"`
	Result      smtmlp.WorkloadResult `json:"result"`
}

// Store is an open result store. See the package comment for the layout.
type Store struct {
	dir string
	log *slog.Logger

	mu      sync.Mutex
	results *os.File
	index   map[string]int // fingerprint -> position in records
	records []Record       // append order
	refs    map[string]sim.RefRecord

	// Convergence counters since Open (not persisted): appends that wrote a
	// line, and appends rejected because the fingerprint was already present.
	// Under fleet execution the dedupe count is the number of duplicate
	// results (retries, hedged leases) the store absorbed.
	appends    int64
	dedupeHits int64
}

const (
	resultsFile = "results.ndjson"
	refsFile    = "refs.ndjson"
)

// Open opens (creating as needed) the store rooted at dir. A partial
// trailing line in results.ndjson — the signature of a crash mid-append —
// is truncated away; a malformed line anywhere else is corruption and an
// error. A malformed refs.ndjson is discarded (references are a cache: the
// cost of losing them is re-simulation, not data loss).
func Open(dir string) (*Store, error) {
	return OpenWithLogger(dir, nil)
}

// OpenWithLogger opens like Open with a structured logger for recovery
// events — a torn results tail being truncated away is worth an operator's
// attention even though the store heals it silently. A nil logger discards.
func OpenWithLogger(dir string, log *slog.Logger) (*Store, error) {
	if log == nil {
		log = obs.Discard()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, resultsFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:     dir,
		log:     log,
		results: f,
		index:   make(map[string]int),
		refs:    make(map[string]sim.RefRecord),
	}
	if err := s.loadResults(); err != nil {
		f.Close()
		return nil, err
	}
	s.loadRefs()
	s.log.Info("store opened", "dir", dir, "results", len(s.records), "refs", len(s.refs))
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// loadResults reads the whole results log, builds the fingerprint index and
// recovers from a torn trailing line by truncating the file back to the end
// of the last complete record.
func (s *Store) loadResults() error {
	data, err := os.ReadFile(filepath.Join(s.dir, resultsFile))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	good := 0 // byte offset of the end of the last valid line
	for len(data) > good {
		rest := data[good:]
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			// No terminating newline: a crash interrupted the final append.
			break
		}
		line := rest[:nl]
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Fingerprint == "" {
			if good+nl+1 == len(data) {
				break // malformed final line: same torn-append recovery
			}
			return fmt.Errorf("store: corrupt record at byte %d of %s: %v",
				good, resultsFile, err)
		}
		if _, dup := s.index[rec.Fingerprint]; !dup {
			s.index[rec.Fingerprint] = len(s.records)
			s.records = append(s.records, rec)
		}
		good += nl + 1
	}
	if good < len(data) {
		if err := s.results.Truncate(int64(good)); err != nil {
			return fmt.Errorf("store: truncating torn tail: %w", err)
		}
		s.log.Warn("truncated torn results tail",
			"file", resultsFile, "dropped_bytes", len(data)-good)
	}
	if _, err := s.results.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// loadRefs reads the reference snapshot; malformed content is ignored.
func (s *Store) loadRefs() {
	data, err := os.ReadFile(filepath.Join(s.dir, refsFile))
	if err != nil {
		return
	}
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		var rec sim.RefRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Key == "" {
			continue
		}
		s.refs[rec.Key] = rec
	}
}

// Len reports the number of persisted results.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.records)
}

// Has reports whether a result with the given fingerprint is persisted.
func (s *Store) Has(fp string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[fp]
	return ok
}

// Get returns the persisted record for fp, if any.
func (s *Store) Get(fp string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.index[fp]
	if !ok {
		return Record{}, false
	}
	return s.records[i], true
}

// Append persists rec unless its fingerprint is already present; it reports
// whether the record was added. The line is committed with a single write,
// which is what makes a torn append detectable (and recoverable) on Open.
func (s *Store) Append(rec Record) (bool, error) {
	if rec.Fingerprint == "" {
		return false, fmt.Errorf("store: record without fingerprint")
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	line = append(line, '\n')

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.index[rec.Fingerprint]; dup {
		s.dedupeHits++
		return false, nil
	}
	if _, err := s.results.Write(line); err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	s.index[rec.Fingerprint] = len(s.records)
	s.records = append(s.records, rec)
	s.appends++
	return true, nil
}

// AppendBatch persists recs in order under one lock acquisition, skipping
// fingerprints already present (including duplicates within recs itself —
// the first occurrence wins). All new lines are committed with a single
// write, so a crash mid-batch leaves complete leading lines plus at most one
// torn final line, exactly the shape Open recovers from. It returns the
// number of records actually added.
//
// This is the fleet merge path: a coordinator commits a whole lease of
// results atomically with respect to concurrent appenders, so interleaved
// lease merges never interleave *within* a lease.
func (s *Store) AppendBatch(recs []Record) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Validate and marshal everything before mutating any state, so a bad
	// record leaves both the file and the in-memory index untouched.
	var buf bytes.Buffer
	fresh := make([]Record, 0, len(recs))
	dups := int64(0)
	inBatch := make(map[string]bool, len(recs))
	for _, rec := range recs {
		if rec.Fingerprint == "" {
			return 0, fmt.Errorf("store: record without fingerprint")
		}
		if _, dup := s.index[rec.Fingerprint]; dup || inBatch[rec.Fingerprint] {
			dups++
			continue
		}
		line, err := json.Marshal(rec)
		if err != nil {
			return 0, fmt.Errorf("store: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
		inBatch[rec.Fingerprint] = true
		fresh = append(fresh, rec)
	}
	s.dedupeHits += dups
	if len(fresh) == 0 {
		return 0, nil
	}
	if _, err := s.results.Write(buf.Bytes()); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	for _, rec := range fresh {
		s.index[rec.Fingerprint] = len(s.records)
		s.records = append(s.records, rec)
	}
	s.appends += int64(len(fresh))
	return len(fresh), nil
}

// Metrics is a point-in-time observability snapshot of the store, exposed by
// the service's /metrics endpoint so fleet convergence is visible per worker
// and per coordinator.
type Metrics struct {
	// Results is the number of persisted results; Refs the number of
	// persisted reference profiles.
	Results int `json:"results"`
	Refs    int `json:"refs"`
	// AppendsTotal counts results written since Open; DedupeHits counts
	// appends absorbed as duplicates (fleet retries and hedged leases land
	// here).
	AppendsTotal int64 `json:"appends_total"`
	DedupeHits   int64 `json:"dedupe_hits"`
	// RefsSnapshotAgeSeconds is the age of the refs.ndjson snapshot on disk
	// (-1 when no snapshot has been written yet).
	RefsSnapshotAgeSeconds float64 `json:"refs_snapshot_age_seconds"`
}

// Metrics reports the store's observability counters.
func (s *Store) Metrics() Metrics {
	s.mu.Lock()
	m := Metrics{
		Results:                len(s.records),
		Refs:                   len(s.refs),
		AppendsTotal:           s.appends,
		DedupeHits:             s.dedupeHits,
		RefsSnapshotAgeSeconds: -1,
	}
	dir := s.dir
	s.mu.Unlock()
	if fi, err := os.Stat(filepath.Join(dir, refsFile)); err == nil {
		m.RefsSnapshotAgeSeconds = time.Since(fi.ModTime()).Seconds()
	}
	return m
}

// Records returns all persisted results in append order.
func (s *Store) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, len(s.records))
	copy(out, s.records)
	return out
}

// Query filters persisted results; zero-valued fields match everything.
type Query struct {
	// Policy matches the request's policy short name (e.g. "mlpflush").
	Policy string
	// Workload matches the workload's hyphenated name (e.g. "mcf-galgel").
	Workload string
	// Benchmark matches workloads containing the benchmark on any thread.
	Benchmark string
	// Threads matches workloads of exactly this size.
	Threads int
	// ConfigHash matches the smtmlp.ConfigHash of the request configuration.
	ConfigHash uint64
}

// match reports whether rec satisfies every set dimension of q.
func (q Query) match(rec Record) bool {
	if q.Policy != "" && rec.Request.Policy.String() != q.Policy {
		return false
	}
	if q.Workload != "" && rec.Request.Workload.Name() != q.Workload {
		return false
	}
	if q.Threads != 0 && len(rec.Request.Workload.Benchmarks) != q.Threads {
		return false
	}
	if q.Benchmark != "" {
		found := false
		for _, b := range rec.Request.Workload.Benchmarks {
			if b == q.Benchmark {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if q.ConfigHash != 0 && smtmlp.ConfigHash(rec.Request.Config) != q.ConfigHash {
		return false
	}
	return true
}

// Select returns the persisted results matching q, in append order.
func (s *Store) Select(q Query) []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Record
	for _, rec := range s.records {
		if q.match(rec) {
			out = append(out, rec)
		}
	}
	return out
}

// Refs returns the persisted single-threaded reference profiles, sorted by
// key — ready to seed into an engine's cache via smtmlp.Cache.Seed.
func (s *Store) Refs() []sim.RefRecord {
	s.mu.Lock()
	recs := make([]sim.RefRecord, 0, len(s.refs))
	for _, rec := range s.refs {
		recs = append(recs, rec)
	}
	s.mu.Unlock()
	sortRefs(recs)
	return recs
}

// MergeRefs unions profiles into the persisted reference set and, if
// anything is new, atomically rewrites the canonical snapshot (sorted by
// key, temp file + rename). It returns the number of newly persisted
// profiles. Existing keys keep their stored profile — for a deterministic
// simulator the two are identical anyway, and keeping the incumbent makes
// repeated merges byte-stable.
func (s *Store) MergeRefs(profiles []sim.RefRecord) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	added := 0
	for _, rec := range profiles {
		if rec.Key == "" {
			continue
		}
		if _, ok := s.refs[rec.Key]; ok {
			continue
		}
		s.refs[rec.Key] = rec
		added++
	}
	if added == 0 {
		return 0, nil
	}
	all := make([]sim.RefRecord, 0, len(s.refs))
	for _, rec := range s.refs {
		all = append(all, rec)
	}
	sortRefs(all)
	var buf bytes.Buffer
	for _, rec := range all {
		line, err := json.Marshal(rec)
		if err != nil {
			return added, fmt.Errorf("store: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	tmp := filepath.Join(s.dir, refsFile+".tmp")
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return added, fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, refsFile)); err != nil {
		return added, fmt.Errorf("store: %w", err)
	}
	return added, nil
}

// sortRefs orders records by key.
func sortRefs(recs []sim.RefRecord) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
}

// Close syncs and closes the results log. The store must not be used after
// Close.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.results == nil {
		return nil
	}
	syncErr := s.results.Sync()
	closeErr := s.results.Close()
	s.results = nil
	if syncErr != nil {
		return fmt.Errorf("store: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("store: %w", closeErr)
	}
	return nil
}
