package store

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smtmlp"
)

// rec builds a small synthetic record (no simulation needed).
func rec(tag, benchmark, policyName string, stp float64) Record {
	p, err := smtmlp.ParsePolicy(policyName)
	if err != nil {
		panic(err)
	}
	req := smtmlp.Request{
		Tag:      tag,
		Config:   smtmlp.DefaultConfig(2),
		Workload: smtmlp.Mix(benchmark, "twolf"),
		Policy:   p,
	}
	return Record{
		Fingerprint: smtmlp.Fingerprint(req, 10_000, 2_500),
		Request:     req,
		Result:      smtmlp.WorkloadResult{Policy: policyName, STP: stp, ANTT: 1.5},
	}
}

func TestStoreAppendDedupeReload(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r1 := rec("a", "mcf", "icount", 1.1)
	r2 := rec("b", "swim", "mlpflush", 1.2)
	for _, r := range []Record{r1, r2} {
		added, err := st.Append(r)
		if err != nil || !added {
			t.Fatalf("append: added=%v err=%v", added, err)
		}
	}
	// Duplicate fingerprints are silently skipped.
	if added, err := st.Append(r1); err != nil || added {
		t.Fatalf("dup append: added=%v err=%v", added, err)
	}
	if st.Len() != 2 || !st.Has(r1.Fingerprint) {
		t.Fatalf("store has %d records", st.Len())
	}
	if got, ok := st.Get(r2.Fingerprint); !ok || got.Result.STP != 1.2 {
		t.Fatalf("get: %+v ok=%v", got, ok)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: index and order survive.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	recs := st2.Records()
	if len(recs) != 2 || recs[0].Fingerprint != r1.Fingerprint || recs[1].Fingerprint != r2.Fingerprint {
		t.Fatalf("reloaded records wrong: %d", len(recs))
	}
	// Appends after reload land after the existing log.
	r3 := rec("c", "galgel", "flush", 1.3)
	if added, err := st2.Append(r3); err != nil || !added {
		t.Fatalf("append after reload: %v %v", added, err)
	}
	if got := st2.Records(); len(got) != 3 || got[2].Fingerprint != r3.Fingerprint {
		t.Fatal("post-reload append out of order")
	}
}

func TestStoreTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r1 := rec("a", "mcf", "icount", 1.1)
	if _, err := st.Append(r1); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Simulate a crash mid-append: a partial record with no newline.
	path := filepath.Join(dir, "results.ndjson")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"fp":"torn","request":{"conf`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	if st2.Len() != 1 {
		t.Fatalf("recovered %d records, want 1", st2.Len())
	}
	// The torn bytes are gone and new appends produce a well-formed log.
	r2 := rec("b", "swim", "flush", 1.2)
	if _, err := st2.Append(r2); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "torn") {
		t.Fatal("torn tail still present after recovery")
	}
	st3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if st3.Len() != 2 {
		t.Fatalf("after recovery+append: %d records, want 2", st3.Len())
	}
}

func TestStoreMidFileCorruptionIsAnError(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.Append(rec("a", "mcf", "icount", 1.1))
	st.Append(rec("b", "swim", "flush", 1.2))
	st.Close()

	path := filepath.Join(dir, "results.ndjson")
	data, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(data), "\n")
	corrupted := "GARBAGE\n" + lines[1]
	if err := os.WriteFile(path, []byte(lines[0]+corrupted), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("mid-file corruption silently accepted")
	}
}

func TestStoreQuery(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.Append(rec("a", "mcf", "icount", 1.1))
	st.Append(rec("b", "mcf", "mlpflush", 1.2))
	st.Append(rec("c", "swim", "mlpflush", 1.3))

	if got := st.Select(Query{Policy: "mlpflush"}); len(got) != 2 {
		t.Fatalf("policy query: %d, want 2", len(got))
	}
	if got := st.Select(Query{Workload: "mcf-twolf"}); len(got) != 2 {
		t.Fatalf("workload query: %d, want 2", len(got))
	}
	if got := st.Select(Query{Benchmark: "swim"}); len(got) != 1 {
		t.Fatalf("benchmark query: %d, want 1", len(got))
	}
	if got := st.Select(Query{Threads: 2}); len(got) != 3 {
		t.Fatalf("threads query: %d, want 3", len(got))
	}
	if got := st.Select(Query{Policy: "mlpflush", Benchmark: "mcf"}); len(got) != 1 {
		t.Fatalf("combined query: %d, want 1", len(got))
	}
	hash := smtmlp.ConfigHash(smtmlp.DefaultConfig(2))
	if got := st.Select(Query{ConfigHash: hash}); len(got) != 3 {
		t.Fatalf("config query: %d, want 3", len(got))
	}
	if got := st.Select(Query{ConfigHash: hash + 1}); len(got) != 0 {
		t.Fatalf("mismatched config query: %d, want 0", len(got))
	}
}

// TestStoreRefsRoundTrip persists real reference profiles and seeds them
// into a fresh cache: the restarted engine must not re-simulate anything.
func TestStoreRefsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	cache := smtmlp.NewCache(0)
	eng := smtmlp.NewEngine(smtmlp.WithInstructions(8_000), smtmlp.WithWarmup(2_000), smtmlp.WithCache(cache))
	if _, err := eng.RunWorkload(context.Background(), smtmlp.DefaultConfig(2), smtmlp.Mix("mcf", "galgel"), smtmlp.MLPFlush); err != nil {
		t.Fatal(err)
	}
	added, err := st.MergeRefs(cache.Export())
	if err != nil || added != 2 {
		t.Fatalf("MergeRefs: added=%d err=%v", added, err)
	}
	// Merging the same profiles again is a no-op (and must not rewrite).
	if added, err := st.MergeRefs(cache.Export()); err != nil || added != 0 {
		t.Fatalf("re-merge: added=%d err=%v", added, err)
	}
	st.Close()

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	refs := st2.Refs()
	if len(refs) != 2 {
		t.Fatalf("reloaded %d refs, want 2", len(refs))
	}
	for i := 1; i < len(refs); i++ {
		if refs[i-1].Key >= refs[i].Key {
			t.Fatal("reloaded refs not sorted")
		}
	}
	fresh := smtmlp.NewCache(0)
	if n := fresh.Seed(refs); n != 2 {
		t.Fatalf("seeded %d, want 2", n)
	}
	eng2 := smtmlp.NewEngine(smtmlp.WithInstructions(8_000), smtmlp.WithWarmup(2_000), smtmlp.WithCache(fresh))
	if _, err := eng2.RunWorkload(context.Background(), smtmlp.DefaultConfig(2), smtmlp.Mix("mcf", "galgel"), smtmlp.MLPFlush); err != nil {
		t.Fatal(err)
	}
	if _, misses, _ := fresh.Stats(); misses != 0 {
		t.Fatalf("warm-started engine re-simulated %d references", misses)
	}
}

// TestStoreRefsCorruptionIgnored: a damaged refs snapshot costs
// re-simulation, never an open failure.
func TestStoreRefsCorruptionIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "refs.ndjson"), []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("open with corrupt refs: %v", err)
	}
	defer st.Close()
	if len(st.Refs()) != 0 {
		t.Fatal("corrupt refs produced records")
	}
}
