// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by the synthetic workload models.
//
// The simulator must be a pure function of (configuration, workload, seed):
// experiments, tests and benchmarks all rely on bit-exact reproducibility, so
// nothing in this repository uses math/rand's global state or the wall clock.
// The generator is an xorshift64* stream, which is tiny, allocation-free and
// has more than enough statistical quality for workload synthesis.
package rng

// Source is a deterministic xorshift64* pseudo-random number generator.
// The zero value is not a valid source; use New.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Two sources with the same seed
// produce identical streams. A zero seed is remapped to a fixed non-zero
// constant because xorshift has an all-zero fixed point.
func New(seed uint64) *Source {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	s := &Source{state: seed}
	// Warm up so that trivially related seeds (1, 2, 3...) decorrelate.
	for i := 0; i < 4; i++ {
		s.Uint64()
	}
	return s
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	x := s.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Uint64n returns a pseudo-random uint64 in [0, n). It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	return s.Uint64() % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}
