package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverge at %d: %d != %d", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 equal values", same)
	}
}

func TestZeroSeedRemapped(t *testing.T) {
	s := New(0)
	if v := s.Uint64(); v == 0 {
		t.Fatal("zero seed produced zero output (stuck fixed point)")
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Distribution(t *testing.T) {
	s := New(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if mean < 0.48 || mean > 0.52 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(13)
	count := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			count++
		}
	}
	frac := float64(count) / n
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("Bool(0.25) frequency %v far from 0.25", frac)
	}
}

func TestBoolExtremes(t *testing.T) {
	s := New(17)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestQuickSameSeedSameStream(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < int(n); i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUint64nInRange(t *testing.T) {
	f := func(seed, n uint64) bool {
		if n == 0 {
			n = 1
		}
		return New(seed).Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
