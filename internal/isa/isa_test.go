package isa

import (
	"strings"
	"testing"
)

func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		IntALU: "intalu",
		IntMul: "intmul",
		FPALU:  "fpalu",
		FPMul:  "fpmul",
		Load:   "load",
		Store:  "store",
		Branch: "branch",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("Class(%d).String() = %q, want %q", c, c.String(), s)
		}
	}
	if !strings.Contains(Class(200).String(), "200") {
		t.Errorf("unknown class string %q should include the number", Class(200).String())
	}
}

func TestIsMem(t *testing.T) {
	for c := Class(0); int(c) < NumClasses; c++ {
		want := c == Load || c == Store
		if c.IsMem() != want {
			t.Errorf("%v.IsMem() = %t, want %t", c, c.IsMem(), want)
		}
	}
}

func TestIsFP(t *testing.T) {
	for c := Class(0); int(c) < NumClasses; c++ {
		want := c == FPALU || c == FPMul
		if c.IsFP() != want {
			t.Errorf("%v.IsFP() = %t, want %t", c, c.IsFP(), want)
		}
	}
}

func TestIsFPReg(t *testing.T) {
	if IsFPReg(0) || IsFPReg(31) {
		t.Error("integer registers classified as FP")
	}
	if !IsFPReg(FPRegBase) || !IsFPReg(FPRegBase+int16(NumFPRegs)-1) {
		t.Error("FP registers not classified as FP")
	}
}

func TestHasDest(t *testing.T) {
	in := Instr{Dest: RegNone}
	if in.HasDest() {
		t.Error("RegNone dest reported as present")
	}
	in.Dest = 5
	if !in.HasDest() {
		t.Error("dest 5 reported as absent")
	}
	in.Dest = 0
	if !in.HasDest() {
		t.Error("dest r0 reported as absent")
	}
}

func TestInstrStrings(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Seq: 1, PC: 0x40, Class: Load, Dest: 3, Addr: 0x1000}, "load"},
		{Instr{Seq: 2, PC: 0x44, Class: Store, Src1: 4, Addr: 0x2000}, "store"},
		{Instr{Seq: 3, PC: 0x48, Class: Branch, Taken: true, Target: 0x80}, "branch"},
		{Instr{Seq: 4, PC: 0x4c, Class: IntALU, Dest: 1, Src1: 2, Src2: 3}, "intalu"},
	}
	for _, c := range cases {
		if s := c.in.String(); !strings.Contains(s, c.want) {
			t.Errorf("%+v.String() = %q, missing %q", c.in, s, c.want)
		}
	}
}
