// Package isa defines the abstract micro-operation instruction set consumed
// by the SMT pipeline model.
//
// The paper simulates Alpha binaries on SMTSIM; the fetch policies it studies
// never inspect instructions beyond their class (is it a load? a branch?),
// their program counter (all predictors are PC-indexed) and their register
// dependences (which bound the exploitable ILP and serialize dependent
// long-latency loads). This package therefore models exactly that surface: a
// micro-op has a class, a PC, up to two source registers, one destination
// register, and — for memory operations — an effective address.
package isa

import "fmt"

// Class identifies the functional class of a micro-operation. The class
// determines which functional unit executes the op and its execution latency.
type Class uint8

// Micro-operation classes. Branch ops execute on integer ALUs; Load and
// Store use the load/store units; FPALU and FPMul use the floating-point
// units (the baseline machine of Table IV has 4 int ALUs, 2 load/store units
// and 2 FP units).
const (
	IntALU Class = iota // single-cycle integer operation
	IntMul              // multi-cycle integer multiply
	FPALU               // floating-point add/compare
	FPMul               // floating-point multiply/divide (modelled uniformly)
	Load                // memory read
	Store               // memory write
	Branch              // conditional or unconditional control transfer
	numClasses
)

// NumClasses is the number of distinct micro-op classes.
const NumClasses = int(numClasses)

// String returns the conventional mnemonic for the class.
func (c Class) String() string {
	switch c {
	case IntALU:
		return "intalu"
	case IntMul:
		return "intmul"
	case FPALU:
		return "fpalu"
	case FPMul:
		return "fpmul"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "branch"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// IsMem reports whether the class accesses memory.
func (c Class) IsMem() bool { return c == Load || c == Store }

// IsFP reports whether the class executes on a floating-point unit.
func (c Class) IsFP() bool { return c == FPALU || c == FPMul }

// Register file shape. Dependences are expressed through architectural
// registers; the pipeline renames them onto the physical register files of
// Table IV (100 integer + 100 floating-point rename registers).
const (
	NumIntRegs = 32 // architectural integer registers
	NumFPRegs  = 32 // architectural floating-point registers

	// RegNone marks an absent operand.
	RegNone int16 = -1
)

// FPRegBase offsets floating-point architectural register names so that a
// single int16 namespace covers both files: integer registers are
// [0, NumIntRegs), floating-point registers are [FPRegBase, FPRegBase+NumFPRegs).
const FPRegBase int16 = 64

// IsFPReg reports whether r names a floating-point architectural register.
func IsFPReg(r int16) bool { return r >= FPRegBase }

// Instr is one micro-operation in a thread's dynamic instruction stream.
//
// Seq is the position of the instruction in its thread's dynamic stream,
// starting at 0; it is assigned by the trace generator and used by the
// pipeline for flush bookkeeping (flush everything younger than sequence s).
type Instr struct {
	Seq    uint64 // dynamic sequence number within the thread
	PC     uint64 // program counter (site address); predictors index on this
	Class  Class  // functional class
	Src1   int16  // first source architectural register, or RegNone
	Src2   int16  // second source architectural register, or RegNone
	Dest   int16  // destination architectural register, or RegNone
	Addr   uint64 // effective address for Load/Store, else 0
	Taken  bool   // actual branch outcome (Branch only)
	Target uint64 // actual branch target (Branch only)
}

// HasDest reports whether the instruction writes a register.
func (in *Instr) HasDest() bool { return in.Dest != RegNone }

// String renders a compact human-readable form, useful in test failures.
func (in *Instr) String() string {
	switch in.Class {
	case Load:
		return fmt.Sprintf("#%d pc=%#x load r%d <- [%#x]", in.Seq, in.PC, in.Dest, in.Addr)
	case Store:
		return fmt.Sprintf("#%d pc=%#x store [%#x] <- r%d", in.Seq, in.PC, in.Addr, in.Src1)
	case Branch:
		return fmt.Sprintf("#%d pc=%#x branch taken=%t -> %#x", in.Seq, in.PC, in.Taken, in.Target)
	default:
		return fmt.Sprintf("#%d pc=%#x %s r%d <- r%d, r%d", in.Seq, in.PC, in.Class, in.Dest, in.Src1, in.Src2)
	}
}
