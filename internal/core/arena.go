package core

import "math/bits"

// This file implements the allocation-free hot structures of the cycle
// kernel: a pooled uop arena with generation-tagged slots, the done-bit
// scoreboard that replaces per-uop dependent pointer lists (bitmap wakeup),
// the UopSet bitmap that replaces the fetch policies' map-based gate sets,
// and the fixed-capacity ring buffers backing the per-thread ROB and
// front-end queues.
//
// Lifecycle invariants (see DESIGN.md "Cycle kernel internals"):
//
//   - A uop is allocated at fetch and released when it reaches a terminal
//     state (committed or squashed) with no remaining references. References
//     are pending events in the core's time queue plus issue-queue residency;
//     Core.freeIfDead is the single release point.
//   - Slot reuse bumps the slot's generation, so stale (index, generation)
//     pairs held by consumers resolve as "producer long gone" — which always
//     means "source ready", because a producer is only released after it
//     completed or after its consumers were squashed with it.
//   - Policies must drop a uop from their UopSets no later than the
//     OnLoadComplete/OnSquash hook for it; both hooks run before the uop can
//     be released, so a set never holds a recycled index.

// arenaBlockShift sizes the arena's allocation blocks (256 uops per block).
// Blocks are never reallocated, so *Uop pointers stay valid for the life of
// the core while the arena can still grow when flush-heavy phases keep many
// squashed uops alive awaiting their completion events.
const (
	arenaBlockShift = 8
	arenaBlockSize  = 1 << arenaBlockShift
	arenaBlockMask  = arenaBlockSize - 1
)

// uopArena is a pooled allocator for Uops. Steady-state simulation allocates
// nothing: slots recycle through a LIFO free list (hottest slot first, which
// keeps the working set small).
type uopArena struct {
	blocks [][]Uop  // fixed-size blocks; pointers into them are stable
	gen    []uint32 // per-slot generation, bumped on every alloc
	done   []uint64 // scoreboard bitmap: slot's uop is done or squashed
	free   []int32  // LIFO free list of slot indices

	allocated uint64 // lifetime allocs (tests assert pooling works)
}

// newUopArena returns an arena with at least capacity slots.
func newUopArena(capacity int) *uopArena {
	a := &uopArena{}
	nblocks := (capacity + arenaBlockSize - 1) >> arenaBlockShift
	if nblocks < 1 {
		nblocks = 1
	}
	for i := 0; i < nblocks; i++ {
		a.grow()
	}
	return a
}

// grow adds one block of slots to the free list.
func (a *uopArena) grow() {
	base := int32(len(a.blocks) << arenaBlockShift)
	a.blocks = append(a.blocks, make([]Uop, arenaBlockSize))
	a.gen = append(a.gen, make([]uint32, arenaBlockSize)...)
	a.done = append(a.done, make([]uint64, arenaBlockSize/64)...)
	// Push in reverse so the lowest index pops first.
	for i := arenaBlockSize - 1; i >= 0; i-- {
		a.free = append(a.free, base+int32(i))
	}
}

// cap returns the number of slots in the arena.
func (a *uopArena) cap() int { return len(a.blocks) << arenaBlockShift }

// live returns the number of slots currently allocated.
func (a *uopArena) live() int { return a.cap() - len(a.free) }

// at resolves a slot index to its uop.
func (a *uopArena) at(idx int32) *Uop {
	return &a.blocks[idx>>arenaBlockShift][idx&arenaBlockMask]
}

// alloc returns a fresh uop with every field zeroed, both sources ready and
// a new generation. Amortized allocation-free: it only grows the backing
// store when more uops are in flight than ever before.
func (a *uopArena) alloc() *Uop {
	if len(a.free) == 0 {
		a.grow()
	}
	idx := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	u := a.at(idx)
	*u = Uop{arenaIdx: idx, src1Prod: -1, src2Prod: -1}
	a.gen[idx]++
	a.done[idx>>6] &^= 1 << (uint(idx) & 63)
	a.allocated++
	return u
}

// release returns u's slot to the free list. The slot's contents are left in
// place (they hold no pointers) until reuse, so in-flight checks like
// Uop.Squashed keep answering correctly for the rest of the current stage.
func (a *uopArena) release(u *Uop) {
	a.free = append(a.free, u.arenaIdx)
}

// markDone sets u's scoreboard bit: u will never produce a value later than
// now, so any consumer registered against u's slot and generation is ready.
func (a *uopArena) markDone(u *Uop) {
	a.done[u.arenaIdx>>6] |= 1 << (uint(u.arenaIdx) & 63)
}

// srcReady reports whether the producer registered as (idx, gen) can no
// longer delay a consumer: either its slot was recycled (the producer
// completed or was squashed along with its consumers) or its done bit is set.
func (a *uopArena) srcReady(idx int32, gen uint32) bool {
	return a.gen[idx] != gen || a.done[idx>>6]&(1<<(uint(idx)&63)) != 0
}

// UopSet is a bitmap set of in-flight uops keyed by arena slot, the
// allocation-free replacement for the map[*Uop]struct{} tracking sets fetch
// policies keep. Add/Remove/Contains are O(1) word operations.
//
// A set must only hold uops that are still alive: policies remove a uop no
// later than its OnLoadComplete or OnSquash hook (both run before the slot
// can be recycled). Add must not be called during ForEach.
type UopSet struct {
	a     *uopArena
	words []uint64
	n     int
}

// NewUopSet returns an empty set over the core's uop arena. Policies create
// their sets in Attach.
func (c *Core) NewUopSet() UopSet {
	return UopSet{a: c.arena, words: make([]uint64, (c.arena.cap()+63)/64)}
}

// ensure grows the word array to cover slot idx (the arena can grow mid-run).
func (s *UopSet) ensure(idx int32) {
	for int(idx>>6) >= len(s.words) {
		s.words = append(s.words, 0)
	}
}

// Add inserts u. Adding a member again is a no-op.
func (s *UopSet) Add(u *Uop) {
	idx := u.arenaIdx
	s.ensure(idx)
	w, b := idx>>6, uint64(1)<<(uint(idx)&63)
	if s.words[w]&b == 0 {
		s.words[w] |= b
		s.n++
	}
}

// Remove deletes u. Removing a non-member is a no-op.
func (s *UopSet) Remove(u *Uop) {
	idx := u.arenaIdx
	if int(idx>>6) >= len(s.words) {
		return
	}
	w, b := idx>>6, uint64(1)<<(uint(idx)&63)
	if s.words[w]&b != 0 {
		s.words[w] &^= b
		s.n--
	}
}

// Contains reports membership.
func (s *UopSet) Contains(u *Uop) bool {
	idx := u.arenaIdx
	if int(idx>>6) >= len(s.words) {
		return false
	}
	return s.words[idx>>6]&(1<<(uint(idx)&63)) != 0
}

// Len returns the number of members.
func (s *UopSet) Len() int { return s.n }

// ForEach calls fn for every member in ascending slot order. fn may Remove
// members (including the current one) but must not Add.
func (s *UopSet) ForEach(fn func(u *Uop)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << uint(b)
			fn(s.a.at(int32(wi<<6 + b)))
		}
	}
}

// uopRing is a fixed-capacity FIFO of uops with O(1) operations at both
// ends, backing the per-thread ROB and front-end queue. Capacity is rounded
// up to a power of two; exceeding it is a kernel bug (the dispatch and fetch
// stages enforce the architectural bounds), so push panics rather than grow.
type uopRing struct {
	buf  []*Uop
	head int
	n    int
	mask int
}

// newUopRing returns a ring holding at least capacity uops.
func newUopRing(capacity int) uopRing {
	size := 1
	for size < capacity {
		size <<= 1
	}
	return uopRing{buf: make([]*Uop, size), mask: size - 1}
}

func (r *uopRing) len() int      { return r.n }
func (r *uopRing) empty() bool   { return r.n == 0 }
func (r *uopRing) front() *Uop   { return r.buf[r.head] }
func (r *uopRing) back() *Uop    { return r.buf[(r.head+r.n-1)&r.mask] }
func (r *uopRing) at(i int) *Uop { return r.buf[(r.head+i)&r.mask] }

func (r *uopRing) pushBack(u *Uop) {
	if r.n > r.mask {
		panic("core: ring buffer overflow")
	}
	r.buf[(r.head+r.n)&r.mask] = u
	r.n++
}

// popFront removes and returns the oldest entry, zeroing the vacated slot so
// the backing array never retains a released uop.
func (r *uopRing) popFront() *Uop {
	u := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & r.mask
	r.n--
	return u
}

// popBack removes and returns the youngest entry, zeroing the vacated slot.
func (r *uopRing) popBack() *Uop {
	i := (r.head + r.n - 1) & r.mask
	u := r.buf[i]
	r.buf[i] = nil
	r.n--
	return u
}
