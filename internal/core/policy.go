package core

// Policy is the fetch policy plug-in interface. The core consults CanFetch
// every cycle for every thread and reports pipeline events through the
// Observe hooks; policies respond by gating fetch (returning false from
// CanFetch) and/or by requesting flushes via Core.FlushAfter.
//
// All the paper's policies are implemented against this interface in
// internal/policy. The baseline ICOUNT policy is the zero behaviour: it
// never gates fetch (ICOUNT thread ordering itself is built into the core's
// fetch stage, as every policy in the paper extends ICOUNT).
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string

	// Attach is called once before simulation starts.
	Attach(c *Core)

	// CanFetch reports whether thread tid may fetch this cycle.
	CanFetch(tid int) bool

	// OnFetch is called for every fetched uop, in fetch order, before the
	// next CanFetch check of the same thread (predictive policies gate
	// fetch as soon as a predicted long-latency load is fetched).
	OnFetch(u *Uop)

	// OnLLLDetected is called when an executing load is discovered to be a
	// long-latency load (an L3 or D-TLB miss), DetectDelay cycles after it
	// issued.
	OnLLLDetected(u *Uop)

	// OnLoadComplete is called when any load finishes (hit or miss, even if
	// squashed in the meantime); policies drop it from their blocking sets.
	OnLoadComplete(u *Uop)

	// OnSquash is called for every uop removed by a flush.
	OnSquash(u *Uop)

	// OnResourceStall is called on cycles where dispatch wanted to make
	// progress but no thread could allocate the shared resources it needed
	// (used by the flush-at-resource-stall alternatives of Section 6.5).
	OnResourceStall(now int64)
}

// ICount is the baseline ICOUNT fetch policy of Tullsen et al.: thread
// priority by lowest in-flight instruction count, no long-latency gating.
// The priority ordering lives in the core's fetch stage; ICount simply never
// gates.
type ICount struct{}

// Name implements Policy.
func (ICount) Name() string { return "icount" }

// Attach implements Policy.
func (ICount) Attach(*Core) {}

// CanFetch implements Policy: ICOUNT never gates fetch.
func (ICount) CanFetch(int) bool { return true }

// OnFetch implements Policy.
func (ICount) OnFetch(*Uop) {}

// OnLLLDetected implements Policy.
func (ICount) OnLLLDetected(*Uop) {}

// OnLoadComplete implements Policy.
func (ICount) OnLoadComplete(*Uop) {}

// OnSquash implements Policy.
func (ICount) OnSquash(*Uop) {}

// OnResourceStall implements Policy.
func (ICount) OnResourceStall(int64) {}

// Limiter is the explicit resource partitioning interface (Section 6.6).
// When non-nil, the core consults it at dispatch: a uop dispatches only when
// the limiter grants every buffer resource it needs. Static partitioning and
// DCRA are Limiters in internal/policy.
type Limiter interface {
	// Name identifies the limiter in experiment output.
	Name() string

	// MayDispatch reports whether thread tid may allocate the resources
	// needed by u (one ROB entry, plus an LSQ entry, an issue queue entry
	// and a rename register as applicable).
	MayDispatch(c *Core, tid int, u *Uop) bool
}
