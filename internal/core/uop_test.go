package core

import (
	"testing"

	"smtmlp/internal/isa"
)

func TestEventQueueOrdering(t *testing.T) {
	var q eventQueue
	u := &Uop{}
	q.schedule(0, 30, evComplete, u)
	q.schedule(0, 10, evComplete, u)
	q.schedule(0, 20, evDetectLLL, u)

	if c, ok := q.peekCycle(0); !ok || c != 10 {
		t.Fatalf("peek = %d/%t, want 10/true", c, ok)
	}
	var got []int64
	for now := int64(0); now <= 30; now++ {
		for {
			ev, ok := q.popIfDue(now)
			if !ok {
				break
			}
			got = append(got, ev.cycle)
		}
	}
	want := []int64{10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order %v, want %v", got, want)
		}
	}
}

func TestEventQueueStableTieBreak(t *testing.T) {
	// Events scheduled for the same cycle pop in insertion order, which
	// keeps the simulator deterministic.
	var q eventQueue
	a, b, c := &Uop{ID: 1}, &Uop{ID: 2}, &Uop{ID: 3}
	q.schedule(0, 5, evComplete, a)
	q.schedule(0, 5, evComplete, b)
	q.schedule(0, 5, evComplete, c)
	var order []uint64
	for {
		ev, ok := q.popIfDue(5)
		if !ok {
			break
		}
		order = append(order, ev.uop.ID)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("same-cycle order %v, want [1 2 3]", order)
	}
}

func TestEventQueuePopNotDue(t *testing.T) {
	var q eventQueue
	q.schedule(0, 100, evComplete, &Uop{})
	if _, ok := q.popIfDue(99); ok {
		t.Fatal("popped an event before its cycle")
	}
	if _, ok := q.popIfDue(100); !ok {
		t.Fatal("did not pop a due event")
	}
	if _, ok := q.peekCycle(100); ok {
		t.Fatal("empty queue peeked a cycle")
	}
}

func TestUopAccessors(t *testing.T) {
	u := &Uop{In: isa.Instr{Seq: 42, Class: isa.Load}}
	if u.Seq() != 42 {
		t.Fatalf("Seq() = %d", u.Seq())
	}
	if u.Squashed() || u.Done() {
		t.Fatal("fresh uop reports terminal state")
	}
	u.state = stateDone
	if !u.Done() {
		t.Fatal("done uop not Done()")
	}
	u.state = stateSquashed
	if !u.Squashed() {
		t.Fatal("squashed uop not Squashed()")
	}
}

func TestUopReadiness(t *testing.T) {
	a := newUopArena(64)
	p1 := a.alloc()
	p2 := a.alloc()
	u := a.alloc()
	u.src1Prod, u.src1Gen = p1.arenaIdx, a.gen[p1.arenaIdx]
	u.src2Prod, u.src2Gen = p2.arenaIdx, a.gen[p2.arenaIdx]
	if u.readyIn(a) {
		t.Fatal("uop with two in-flight producers reports ready")
	}
	a.markDone(p1)
	if u.readyIn(a) {
		t.Fatal("uop with one in-flight producer reports ready")
	}
	a.markDone(p2)
	if !u.readyIn(a) {
		t.Fatal("uop with both producers done not ready")
	}

	// A recycled producer slot (generation mismatch) also reads as ready.
	v := a.alloc()
	v.src1Prod, v.src1Gen = p1.arenaIdx, a.gen[p1.arenaIdx]
	a.release(p1)
	r := a.alloc() // reuses p1's slot (LIFO free list), bumping its generation
	if r.arenaIdx != v.src1Prod {
		t.Fatalf("expected slot reuse, got %d vs %d", r.arenaIdx, v.src1Prod)
	}
	if !v.readyIn(a) {
		t.Fatal("consumer of a recycled producer slot not ready")
	}
}

func TestExecLatencies(t *testing.T) {
	if execLatency(isa.IntALU) != 1 || execLatency(isa.Branch) != 1 {
		t.Fatal("single-cycle classes wrong")
	}
	if execLatency(isa.IntMul) != 3 {
		t.Fatal("IntMul latency wrong")
	}
	if execLatency(isa.FPALU) != 4 || execLatency(isa.FPMul) != 6 {
		t.Fatal("FP latencies wrong")
	}
}
