// Package core implements the cycle-level simultaneous multithreading (SMT)
// out-of-order processor model the paper's evaluation runs on — the role
// SMTSIM v1.0 plays in the original work.
//
// The pipeline models, cycle by cycle: ICOUNT-ordered fetch of up to four
// instructions from up to two threads (ICOUNT 2.4), a front-end delay,
// rename/dispatch into a shared reorder buffer, load/store queue and issue
// queues under rename-register constraints, age-ordered issue to functional
// units, a memory hierarchy access path for loads and committed stores, an
// 8-entry write buffer that blocks commit when full, in-order per-thread
// commit, and full per-thread flush support (checkpoint restore) for the
// flush-based fetch policies.
//
// Fetch policies and explicit resource partitioners plug in through the
// Policy and Limiter interfaces defined in policy.go; the MLP predictors of
// internal/mlp are instantiated per thread and trained on the commit path
// (LLSR) and the load execution path (miss-pattern predictor) exactly as
// Section 4 of the paper describes.
package core

import (
	"smtmlp/internal/bpred"
	"smtmlp/internal/mem"
)

// Config is the processor configuration (Table IV is the default). The JSON
// tags are the configuration's wire format: the public API serves and accepts
// configurations over HTTP, so tag names are stable even if fields are ever
// renamed.
type Config struct {
	Threads int `json:"threads"`

	FetchWidth   int `json:"fetch_width"`   // instructions fetched per cycle (4)
	FetchThreads int `json:"fetch_threads"` // threads fetched from per cycle (2 -> ICOUNT 2.4)
	IssueWidth   int `json:"issue_width"`   // instructions issued per cycle
	CommitWidth  int `json:"commit_width"`  // instructions committed per cycle

	ROBSize   int `json:"rob_size"`   // shared reorder buffer entries
	LSQSize   int `json:"lsq_size"`   // shared load/store queue entries
	IQInt     int `json:"iq_int"`     // integer issue queue entries
	IQFP      int `json:"iq_fp"`      // floating-point issue queue entries
	RenameInt int `json:"rename_int"` // integer rename registers
	RenameFP  int `json:"rename_fp"`  // floating-point rename registers

	IntALUs   int `json:"int_alus"`   // integer ALUs (also execute branches and multiplies)
	LdStUnits int `json:"ldst_units"` // load/store units
	FPUnits   int `json:"fp_units"`   // floating-point units

	WriteBuffer int `json:"write_buffer"` // write buffer entries (stores wait here after commit)

	FrontEndDelay     int `json:"front_end_delay"`    // cycles from fetch to earliest dispatch
	MispredictPenalty int `json:"mispredict_penalty"` // total branch misprediction penalty in cycles

	// LLSRSize is the per-thread long-latency shift register length;
	// 0 means ROBSize / Threads (the paper's default).
	LLSRSize int `json:"llsr_size,omitempty"`

	// PredictorEntries sizes the PC-indexed MLP tables (2K in the paper).
	PredictorEntries int `json:"predictor_entries"`

	// DetectDelay is the delay from load issue until a long-latency miss is
	// detected and reported to the fetch policy; 0 means the L3 hit latency
	// (the earliest moment the hardware knows the access missed the L3).
	DetectDelay int64 `json:"detect_delay,omitempty"`

	Mem   mem.Config   `json:"mem"`
	Bpred bpred.Config `json:"bpred"`

	// MaxCycles aborts a run that exceeds this cycle count (a deadlock
	// guard for tests); 0 means no limit.
	MaxCycles int64 `json:"max_cycles,omitempty"`
}

// DefaultConfig returns the baseline SMT processor of Table IV for the given
// number of hardware threads.
func DefaultConfig(threads int) Config {
	return Config{
		Threads:           threads,
		FetchWidth:        4,
		FetchThreads:      2,
		IssueWidth:        4,
		CommitWidth:       4,
		ROBSize:           256,
		LSQSize:           128,
		IQInt:             64,
		IQFP:              64,
		RenameInt:         100,
		RenameFP:          100,
		IntALUs:           4,
		LdStUnits:         2,
		FPUnits:           2,
		WriteBuffer:       8,
		FrontEndDelay:     5, // front half of the 14-stage pipeline
		MispredictPenalty: 11,
		PredictorEntries:  2048,
		Mem:               mem.DefaultConfig(threads),
		Bpred:             bpred.DefaultConfig(),
	}
}

// ScaleWindow resizes the out-of-order window the way the Figure 17/18
// experiment does: ROB size rob, with the load/store queue, issue queues and
// rename register files scaled proportionally (LSQ=rob/2, IQs=rob/4,
// rename=rob*100/256).
func (c Config) ScaleWindow(rob int) Config {
	c.ROBSize = rob
	c.LSQSize = rob / 2
	c.IQInt = rob / 4
	c.IQFP = rob / 4
	c.RenameInt = rob * 100 / 256
	c.RenameFP = rob * 100 / 256
	return c
}

// llsrSize resolves the configured LLSR length.
func (c Config) llsrSize() int {
	if c.LLSRSize > 0 {
		return c.LLSRSize
	}
	n := c.Threads
	if n < 1 {
		n = 1
	}
	return c.ROBSize / n
}

// detectDelay resolves the long-latency miss detection delay.
func (c Config) detectDelay() int64 {
	if c.DetectDelay > 0 {
		return c.DetectDelay
	}
	return c.Mem.L3.Latency
}
