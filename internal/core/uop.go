package core

import (
	"math"

	"smtmlp/internal/isa"
	"smtmlp/internal/mem"
)

// uopState tracks a micro-op through the pipeline.
type uopState uint8

const (
	stateFetched    uopState = iota // in the front-end queue
	stateDispatched                 // in ROB + issue queue, waiting for operands
	stateIssued                     // executing
	stateDone                       // completed, waiting to commit
	stateSquashed                   // flushed
	stateCommitted                  // retired (stores may still hold a write-buffer entry)
)

// Uop is one in-flight micro-operation. Policies receive *Uop in their hooks
// and may read any exported field; they must not mutate them.
//
// Uops live in the core's pooled arena: they are allocated at fetch and
// recycled at commit or squash once no event or issue-queue reference
// remains, so steady-state simulation performs no per-instruction heap
// allocation. Operand wakeup is scoreboard-based: instead of producer-held
// dependent lists, each uop records its producers as (arena slot, generation)
// pairs and readiness is a bitmap probe (see arena.go).
type Uop struct {
	In  isa.Instr
	Tid int
	ID  uint64 // global age: smaller is older across all threads

	state     uopState
	fetchedAt int64
	arenaIdx  int32 // slot in the core's uop arena
	refs      int32 // pending events + issue-queue residency pinning the slot

	// Source producers, registered at rename: the arena slot (or -1 when the
	// operand was ready at rename) and the slot's generation at registration.
	src1Prod, src2Prod int32
	src1Gen, src2Gen   uint32

	// Branch bookkeeping (filled at fetch).
	Mispredicted bool

	// Load bookkeeping.
	Access       mem.Access // valid once issued (Load) or committed (Store)
	IsLLL        bool       // long-latency load (valid once issued)
	PredictedLLL bool       // front-end miss-pattern prediction at fetch
}

// Seq returns the per-thread dynamic sequence number.
func (u *Uop) Seq() uint64 { return u.In.Seq }

// Squashed reports whether the uop has been flushed. Policies use this to
// drop stale entries from their tracking sets.
func (u *Uop) Squashed() bool { return u.state == stateSquashed }

// Done reports whether the uop has finished executing.
func (u *Uop) Done() bool { return u.state == stateDone }

// readyIn reports whether both sources are available: a source is ready when
// it had no in-flight producer at rename, or when its producer's arena slot
// reports done (scoreboard bit) or was recycled (generation mismatch — the
// producer completed or was squashed together with this consumer).
// Readiness is monotonic, so a successful probe clears the producer link and
// later probes of the same waiting uop cost two integer compares.
func (u *Uop) readyIn(a *uopArena) bool {
	if u.src1Prod >= 0 {
		if !a.srcReady(u.src1Prod, u.src1Gen) {
			return false
		}
		u.src1Prod = -1
	}
	if u.src2Prod >= 0 {
		if !a.srcReady(u.src2Prod, u.src2Gen) {
			return false
		}
		u.src2Prod = -1
	}
	return true
}

// event kinds processed by the core's time queue.
type eventKind uint8

const (
	evComplete        eventKind = iota // functional unit / memory completion
	evDetectLLL                        // long-latency miss detected (policy hook)
	evWriteBufferFree                  // committed store left the write buffer
)

type event struct {
	cycle int64
	seq   uint64 // tie-break for deterministic ordering
	kind  eventKind
	uop   *Uop
}

// evHorizon is the time-wheel span: events due within the next evHorizon-1
// cycles go to O(1) per-cycle buckets (nearly all events — functional unit
// latencies and L1/L2 hits are short); only distant completions (L3 and
// memory misses) pay for the heap.
const evHorizon = 16

// evBucket holds the events of one wheel slot, drained through a head index
// with vacated entries zeroed (no retention through the backing array).
type evBucket struct {
	evs  []event
	head int
}

// eventQueue is a deterministic event scheduler: a 16-slot time wheel in
// front of a hand-rolled min-heap ordered by (cycle, insertion seq). Neither
// path boxes events through an interface (container/heap's Push/Pop
// allocate per call), and steady-state scheduling allocates nothing.
//
// Determinism: events must pop in (cycle, seq) order. Within a wheel bucket,
// append order is seq order. Across the two stores, any heap event due at
// cycle X was scheduled at least evHorizon cycles before X, while every
// bucket event for X was scheduled later than that — so all heap events for
// a cycle carry smaller seqs than all bucket events for it, and draining the
// heap first preserves the global order.
type eventQueue struct {
	items   []event // far events (>= evHorizon ahead): min-heap
	nseq    uint64
	wheel   [evHorizon]evBucket
	inWheel int
}

func (q *eventQueue) less(i, j int) bool {
	if q.items[i].cycle != q.items[j].cycle {
		return q.items[i].cycle < q.items[j].cycle
	}
	return q.items[i].seq < q.items[j].seq
}

// schedule enqueues an event for u at the given cycle (strictly after now)
// and pins u's arena slot until the event is popped.
func (q *eventQueue) schedule(now, cycle int64, kind eventKind, u *Uop) {
	q.nseq++
	u.refs++
	ev := event{cycle: cycle, seq: q.nseq, kind: kind, uop: u}
	if d := cycle - now; d > 0 && d < evHorizon {
		b := &q.wheel[cycle&(evHorizon-1)]
		b.evs = append(b.evs, ev)
		q.inWheel++
		return
	}
	q.items = append(q.items, ev)
	// Sift up.
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

// peekCycle returns the cycle of the earliest pending event strictly after
// now (idle-skip callers have already drained everything due), or false when
// no event is pending.
func (q *eventQueue) peekCycle(now int64) (int64, bool) {
	best := int64(math.MaxInt64)
	if len(q.items) > 0 {
		best = q.items[0].cycle
	}
	if q.inWheel > 0 {
		for d := int64(1); d < evHorizon; d++ {
			b := &q.wheel[(now+d)&(evHorizon-1)]
			if b.head < len(b.evs) {
				if now+d < best {
					best = now + d
				}
				break
			}
		}
	}
	if best == math.MaxInt64 {
		return 0, false
	}
	return best, true
}

// popIfDue removes and returns the earliest event if it is due at now.
// Vacated slots (heap tail, bucket entries) are zeroed so backing arrays
// never retain a completed uop for the rest of the run. The caller owns the
// popped event's reference and must unpin it (Core.processEvents does).
func (q *eventQueue) popIfDue(now int64) (event, bool) {
	if n := len(q.items) - 1; n >= 0 && q.items[0].cycle <= now {
		ev := q.items[0]
		q.items[0] = q.items[n]
		q.items[n] = event{} // zero the vacated slot: no retention
		q.items = q.items[:n]
		// Sift down.
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < n && q.less(l, smallest) {
				smallest = l
			}
			if r < n && q.less(r, smallest) {
				smallest = r
			}
			if smallest == i {
				break
			}
			q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
			i = smallest
		}
		return ev, true
	}
	if q.inWheel > 0 {
		// Every event in this wheel slot is due exactly at now: with a
		// horizon under 16 cycles, no two pending cycles share a slot.
		b := &q.wheel[now&(evHorizon-1)]
		if b.head < len(b.evs) {
			ev := b.evs[b.head]
			b.evs[b.head] = event{} // zero: no retention
			b.head++
			if b.head == len(b.evs) {
				b.evs = b.evs[:0]
				b.head = 0
			}
			q.inWheel--
			return ev, true
		}
	}
	return event{}, false
}
