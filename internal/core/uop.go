package core

import (
	"container/heap"

	"smtmlp/internal/isa"
	"smtmlp/internal/mem"
)

// uopState tracks a micro-op through the pipeline.
type uopState uint8

const (
	stateFetched    uopState = iota // in the front-end queue
	stateDispatched                 // in ROB + issue queue, waiting for operands
	stateIssued                     // executing
	stateDone                       // completed, waiting to commit
	stateSquashed                   // flushed
)

// Uop is one in-flight micro-operation. Policies receive *Uop in their hooks
// and may read any exported field; they must not mutate them.
type Uop struct {
	In  isa.Instr
	Tid int
	ID  uint64 // global age: smaller is older across all threads

	state      uopState
	fetchedAt  int64
	doneAt     int64
	src1Ready  bool
	src2Ready  bool
	inIQ       bool
	dependents []*Uop

	// Branch bookkeeping (filled at fetch).
	Mispredicted bool
	predTaken    bool

	// Load bookkeeping.
	Access       mem.Access // valid once issued (Load) or committed (Store)
	IsLLL        bool       // long-latency load (valid once issued)
	PredictedLLL bool       // front-end miss-pattern prediction at fetch
}

// Seq returns the per-thread dynamic sequence number.
func (u *Uop) Seq() uint64 { return u.In.Seq }

// Squashed reports whether the uop has been flushed. Policies use this to
// drop stale entries from their tracking sets.
func (u *Uop) Squashed() bool { return u.state == stateSquashed }

// Done reports whether the uop has finished executing.
func (u *Uop) Done() bool { return u.state == stateDone }

func (u *Uop) ready() bool { return u.src1Ready && u.src2Ready }

// event kinds processed by the core's time queue.
type eventKind uint8

const (
	evComplete        eventKind = iota // functional unit / memory completion
	evDetectLLL                        // long-latency miss detected (policy hook)
	evWriteBufferFree                  // committed store left the write buffer
)

type event struct {
	cycle int64
	seq   uint64 // tie-break for deterministic ordering
	kind  eventKind
	uop   *Uop
}

// eventQueue is a deterministic min-heap ordered by (cycle, insertion seq).
type eventQueue struct {
	items []event
	nseq  uint64
}

func (q *eventQueue) Len() int { return len(q.items) }
func (q *eventQueue) Less(i, j int) bool {
	if q.items[i].cycle != q.items[j].cycle {
		return q.items[i].cycle < q.items[j].cycle
	}
	return q.items[i].seq < q.items[j].seq
}
func (q *eventQueue) Swap(i, j int)      { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *eventQueue) Push(x interface{}) { q.items = append(q.items, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := q.items
	n := len(old)
	it := old[n-1]
	q.items = old[:n-1]
	return it
}

func (q *eventQueue) schedule(cycle int64, kind eventKind, u *Uop) {
	q.nseq++
	heap.Push(q, event{cycle: cycle, seq: q.nseq, kind: kind, uop: u})
}

// peekCycle returns the cycle of the earliest event, or false when empty.
func (q *eventQueue) peekCycle() (int64, bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0].cycle, true
}

func (q *eventQueue) popIfDue(now int64) (event, bool) {
	if len(q.items) == 0 || q.items[0].cycle > now {
		return event{}, false
	}
	return heap.Pop(q).(event), true
}
