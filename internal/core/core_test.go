package core

import (
	"testing"

	"smtmlp/internal/isa"
	"smtmlp/internal/trace"
)

// pureALUModel generates only integer ALU work with generous dependence
// distance: the pipeline should sustain an IPC close to its width.
func pureALUModel() trace.Model {
	return trace.Model{Name: "alu", Seed: 11, Sites: 64, DepDist: 8}
}

// missModel generates frequent clustered long-latency loads.
func missModel() trace.Model {
	return trace.Model{
		Name: "missy", Seed: 12, Sites: 64,
		LoadFrac: 0.25, StoreFrac: 0.05, BranchFrac: 0.10,
		Bursts: 1, BurstLen: 4, BurstSpacing: 4, BurstPeriod: 2,
		DepDist: 4,
	}
}

func runModel(t *testing.T, cfg Config, m trace.Model, n uint64) Result {
	t.Helper()
	c := New(cfg, []trace.Model{m}, nil, nil)
	return c.Run(n)
}

// runWarmModel runs with a warm-up phase so measurements are not dominated
// by compulsory misses (the harness's standard methodology).
func runWarmModel(t *testing.T, cfg Config, m trace.Model, n uint64) Result {
	t.Helper()
	c := New(cfg, []trace.Model{m}, nil, nil)
	c.Run(n / 2)
	c.ResetStats()
	return c.Run(n)
}

func TestHighILPReachesWideIPC(t *testing.T) {
	cfg := DefaultConfig(1)
	res := runModel(t, cfg, pureALUModel(), 50_000)
	if res.IPC[0] < 2.0 {
		t.Fatalf("pure ALU IPC %.3f, expected near machine width", res.IPC[0])
	}
	if res.IPC[0] > float64(cfg.FetchWidth) {
		t.Fatalf("IPC %.3f exceeds machine width", res.IPC[0])
	}
}

func TestCommitCountsExact(t *testing.T) {
	res := runModel(t, DefaultConfig(1), pureALUModel(), 10_000)
	if res.Committed[0] < 10_000 || res.Committed[0] > 10_004 {
		t.Fatalf("committed %d, want 10000..10004 (stop rule within one commit group)", res.Committed[0])
	}
}

func TestMissesReduceIPC(t *testing.T) {
	fast := runModel(t, DefaultConfig(1), pureALUModel(), 30_000)
	slow := runModel(t, DefaultConfig(1), missModel(), 30_000)
	if slow.IPC[0] >= fast.IPC[0] {
		t.Fatalf("miss-heavy model (%.3f) not slower than ALU model (%.3f)", slow.IPC[0], fast.IPC[0])
	}
	if slow.LLLs[0] == 0 {
		t.Fatal("miss model produced no long-latency loads")
	}
}

func TestMLPMeasuredOnBursts(t *testing.T) {
	res := runModel(t, DefaultConfig(1), missModel(), 50_000)
	if res.MLP[0] < 2.0 {
		t.Fatalf("burst model MLP %.2f, want >= 2 (4-deep bursts)", res.MLP[0])
	}
}

func TestChainsSerializeMisses(t *testing.T) {
	chain := trace.Model{
		Name: "chain", Seed: 13, Sites: 64,
		LoadFrac: 0.2, ChainSites: 1, ChainPeriod: 1, DepDist: 4,
	}
	res := runWarmModel(t, DefaultConfig(1), chain, 20_000)
	if res.LLLs[0] == 0 {
		t.Fatal("chain model produced no long-latency loads")
	}
	if res.MLP[0] > 1.3 {
		t.Fatalf("dependent chain measured MLP %.2f, want ~1 (serialized)", res.MLP[0])
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runModel(t, DefaultConfig(1), missModel(), 20_000)
	b := runModel(t, DefaultConfig(1), missModel(), 20_000)
	if a.Cycles != b.Cycles || a.Committed[0] != b.Committed[0] || a.LLLs[0] != b.LLLs[0] {
		t.Fatalf("identical runs diverged: %+v vs %+v", a, b)
	}
}

func TestTwoThreadsShareMachine(t *testing.T) {
	c := New(DefaultConfig(2), []trace.Model{pureALUModel(), pureALUModel()}, nil, nil)
	res := c.Run(20_000)
	if res.Committed[0] == 0 || res.Committed[1] == 0 {
		t.Fatalf("a thread starved: %v", res.Committed)
	}
	// Two identical ALU threads should progress at nearly the same rate
	// under ICOUNT.
	ratio := res.IPC[0] / res.IPC[1]
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("identical threads progressed unevenly: %v", res.IPC)
	}
	total := res.TotalIPC()
	if total > float64(c.Cfg().FetchWidth) {
		t.Fatalf("total IPC %.3f exceeds machine width", total)
	}
}

func TestWriteBufferBlocksCommit(t *testing.T) {
	// A store-heavy stream with a tiny write buffer must still complete,
	// recording write-buffer-blocked commit cycles.
	m := trace.Model{Name: "stores", Seed: 14, Sites: 64, StoreFrac: 0.5, DepDist: 8}
	cfg := DefaultConfig(1)
	cfg.WriteBuffer = 1
	res := runModel(t, cfg, m, 20_000)
	if res.Committed[0] < 20_000 {
		t.Fatal("store-heavy run did not complete")
	}
	if res.WBBlocked[0] == 0 {
		t.Fatal("1-entry write buffer never blocked commit")
	}
}

func TestBranchMispredictionsSlowFetch(t *testing.T) {
	predictable := trace.Model{Name: "p", Seed: 15, Sites: 64, BranchFrac: 0.2, DepDist: 8}
	random := trace.Model{Name: "r", Seed: 15, Sites: 64, BranchFrac: 0.2, BranchRandomFrac: 1.0, DepDist: 8}
	a := runModel(t, DefaultConfig(1), predictable, 30_000)
	b := runModel(t, DefaultConfig(1), random, 30_000)
	if b.BranchMispredictRate[0] < 0.2 {
		t.Fatalf("all-random branches mispredict rate %.3f implausibly low", b.BranchMispredictRate[0])
	}
	if b.IPC[0] >= a.IPC[0] {
		t.Fatalf("random branches (%.3f IPC) not slower than predictable (%.3f IPC)", b.IPC[0], a.IPC[0])
	}
}

func TestProfilesRecorded(t *testing.T) {
	res := runModel(t, DefaultConfig(1), pureALUModel(), 25_600)
	prof := res.Profiles[0]
	if len(prof) < 100 {
		t.Fatalf("profile has %d checkpoints", len(prof))
	}
	for i := 1; i < len(prof); i++ {
		if prof[i].Instructions <= prof[i-1].Instructions || prof[i].Cycles < prof[i-1].Cycles {
			t.Fatal("profile not monotonic")
		}
	}
}

func TestResetStatsMidRun(t *testing.T) {
	c := New(DefaultConfig(1), []trace.Model{missModel()}, nil, nil)
	c.Run(10_000)
	c.ResetStats()
	res := c.Run(10_000)
	if res.Committed[0] < 10_000 {
		t.Fatal("post-reset run incomplete")
	}
	if res.Cycles <= 0 {
		t.Fatalf("post-reset cycles %d", res.Cycles)
	}
	// Measured IPC should be plausible (not skewed by pre-reset cycles).
	if res.IPC[0] <= 0 || res.IPC[0] > 4 {
		t.Fatalf("post-reset IPC %.3f", res.IPC[0])
	}
}

func TestScaleWindow(t *testing.T) {
	cfg := DefaultConfig(2).ScaleWindow(512)
	if cfg.ROBSize != 512 || cfg.LSQSize != 256 || cfg.IQInt != 128 || cfg.RenameInt != 200 {
		t.Fatalf("ScaleWindow(512) = %+v", cfg)
	}
}

func TestLLSRSizing(t *testing.T) {
	cfg := DefaultConfig(4)
	if cfg.llsrSize() != 64 {
		t.Fatalf("4-thread LLSR %d, want 64 (ROB/threads)", cfg.llsrSize())
	}
	cfg.LLSRSize = 128
	if cfg.llsrSize() != 128 {
		t.Fatal("explicit LLSR size ignored")
	}
}

func TestDetectDelayDefault(t *testing.T) {
	cfg := DefaultConfig(1)
	if cfg.detectDelay() != cfg.Mem.L3.Latency {
		t.Fatalf("default detect delay %d, want L3 latency", cfg.detectDelay())
	}
	cfg.DetectDelay = 7
	if cfg.detectDelay() != 7 {
		t.Fatal("explicit detect delay ignored")
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MaxCycles = 10 // absurdly small: must trip
	defer func() {
		if recover() == nil {
			t.Fatal("MaxCycles guard did not fire")
		}
	}()
	c := New(cfg, []trace.Model{pureALUModel()}, nil, nil)
	c.Run(1_000_000)
}

func TestNewPanicsWithoutModels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with no models did not panic")
		}
	}()
	New(DefaultConfig(1), nil, nil, nil)
}

// recordingPolicy captures policy hook invocations for verification.
type recordingPolicy struct {
	ICount
	detected  int
	completed int
	fetched   int
}

func (r *recordingPolicy) OnFetch(u *Uop)       { r.fetched++ }
func (r *recordingPolicy) OnLLLDetected(u *Uop) { r.detected++ }
func (r *recordingPolicy) OnLoadComplete(u *Uop) {
	if u.In.Class != isa.Load {
		panic("OnLoadComplete for non-load")
	}
	r.completed++
}

func TestPolicyHooksFire(t *testing.T) {
	rec := &recordingPolicy{}
	c := New(DefaultConfig(1), []trace.Model{missModel()}, rec, nil)
	res := c.Run(20_000)
	if rec.fetched == 0 {
		t.Fatal("OnFetch never fired")
	}
	if rec.detected == 0 {
		t.Fatal("OnLLLDetected never fired despite long-latency loads")
	}
	if uint64(rec.detected) > res.LLLs[0] {
		t.Fatalf("detections (%d) exceed long-latency loads (%d)", rec.detected, res.LLLs[0])
	}
	if rec.completed == 0 {
		t.Fatal("OnLoadComplete never fired")
	}
}

// flushingPolicy flushes after every detected long-latency load (a minimal
// TM/next flush) to exercise FlushAfter invariants from a policy context.
type flushingPolicy struct {
	ICount
	c       *Core
	flushes int
}

func (f *flushingPolicy) Attach(c *Core) { f.c = c }
func (f *flushingPolicy) OnLLLDetected(u *Uop) {
	f.c.FlushAfter(u.Tid, u.Seq())
	f.flushes++
}

func TestFlushDuringRunIsSafe(t *testing.T) {
	fp := &flushingPolicy{}
	c := New(DefaultConfig(1), []trace.Model{missModel()}, fp, nil)
	res := c.Run(20_000)
	if fp.flushes == 0 {
		t.Fatal("flushing policy never flushed")
	}
	if res.Committed[0] < 20_000 {
		t.Fatal("run with flushes did not complete")
	}
	if res.Squashed[0] == 0 {
		t.Fatal("flushes squashed nothing")
	}
}

// TestFlushDeterminismAgainstBaseline: flushing must re-deliver the same
// dynamic instruction stream — committed counts and long-latency loads per
// 1K stay consistent between a flushing and non-flushing run of the same
// model (timing differs; the instruction stream must not).
func TestFlushPreservesInstructionStream(t *testing.T) {
	base := runModel(t, DefaultConfig(1), missModel(), 20_000)

	fp := &flushingPolicy{}
	c := New(DefaultConfig(1), []trace.Model{missModel()}, fp, nil)
	flushed := c.Run(20_000)

	if base.Committed[0] != flushed.Committed[0] {
		t.Fatalf("committed differ: %d vs %d", base.Committed[0], flushed.Committed[0])
	}
	// Long-latency load counts may differ slightly (re-executed loads hit),
	// but the fetched stream contents must keep branch rates identical.
	if base.BranchMispredictRate[0] == 0 && flushed.BranchMispredictRate[0] != 0 {
		t.Fatal("flush perturbed branch behaviour")
	}
}

func TestFlushAfterOutsideWindowIsNoop(t *testing.T) {
	c := New(DefaultConfig(1), []trace.Model{pureALUModel()}, nil, nil)
	c.Run(1_000)
	before := c.threads[0].squashedCount
	c.FlushAfter(0, c.NextFetchSeq(0)) // nothing younger in flight
	if c.threads[0].squashedCount != before {
		t.Fatal("no-op flush squashed instructions")
	}
}

func TestResourceAccountingReturnsToZero(t *testing.T) {
	fp := &flushingPolicy{}
	c := New(DefaultConfig(1), []trace.Model{missModel()}, fp, nil)
	c.Run(20_000)
	// Drain: run until all in-flight instructions of the stopped run
	// commit. Rather than draining (the stream is infinite), check the
	// occupancy invariants instead.
	if c.robUsed < 0 || c.lsqUsed < 0 || c.iqIntUsed < 0 || c.iqFPUsed < 0 ||
		c.renIntUsed < 0 || c.renFPUsed < 0 || c.wbUsed < 0 {
		t.Fatalf("negative occupancy: rob=%d lsq=%d iqI=%d iqF=%d renI=%d renF=%d wb=%d",
			c.robUsed, c.lsqUsed, c.iqIntUsed, c.iqFPUsed, c.renIntUsed, c.renFPUsed, c.wbUsed)
	}
	if c.robUsed > c.cfg.ROBSize || c.lsqUsed > c.cfg.LSQSize {
		t.Fatal("occupancy exceeds capacity")
	}
	var robSum int
	for _, th := range c.threads {
		robSum += th.robCount
	}
	if robSum != c.robUsed {
		t.Fatalf("per-thread ROB sum %d != shared %d", robSum, c.robUsed)
	}
}

func TestAvgROBOccupancyBounded(t *testing.T) {
	res := runModel(t, DefaultConfig(1), missModel(), 20_000)
	if res.AvgROBOccupancy[0] <= 0 || res.AvgROBOccupancy[0] > 256 {
		t.Fatalf("average ROB occupancy %v out of range", res.AvgROBOccupancy[0])
	}
}

func TestSmallerWindowSlower(t *testing.T) {
	big := runModel(t, DefaultConfig(1).ScaleWindow(256), missModel(), 30_000)
	small := runModel(t, DefaultConfig(1).ScaleWindow(64), missModel(), 30_000)
	if small.IPC[0] > big.IPC[0]*1.02 {
		t.Fatalf("64-entry window (%.3f) outperformed 256-entry (%.3f)", small.IPC[0], big.IPC[0])
	}
}

func TestLongerMemoryLatencySlower(t *testing.T) {
	fast := DefaultConfig(1)
	fast.Mem.MemLatency = 100
	slow := DefaultConfig(1)
	slow.Mem.MemLatency = 800
	a := runModel(t, fast, missModel(), 30_000)
	b := runModel(t, slow, missModel(), 30_000)
	if b.IPC[0] >= a.IPC[0] {
		t.Fatalf("800-cycle memory (%.3f) not slower than 100-cycle (%.3f)", b.IPC[0], a.IPC[0])
	}
}

func TestMLPStateTrainedDuringRun(t *testing.T) {
	c := New(DefaultConfig(1), []trace.Model{missModel()}, nil, nil)
	c.Run(50_000)
	st := c.MLPState(0)
	if st.DistanceObs == 0 {
		t.Fatal("LLSR never updated the distance predictor")
	}
	if st.MissPattern.Predictions == 0 {
		t.Fatal("miss pattern predictor never trained")
	}
	if _, ok := st.FarEnoughAccuracy(); !ok {
		t.Fatal("no far-enough accuracy data")
	}
	if tp, tn, fp, fn, ok := st.BinaryAccuracy(); ok {
		if s := tp + tn + fp + fn; s < 0.99 || s > 1.01 {
			t.Fatalf("binary fractions sum to %v", s)
		}
	} else {
		t.Fatal("no binary accuracy data")
	}
}

func TestSerializeConfigSlower(t *testing.T) {
	par := DefaultConfig(1)
	ser := DefaultConfig(1)
	ser.Mem.SerializeLLL = true
	a := runModel(t, par, missModel(), 30_000)
	b := runModel(t, ser, missModel(), 30_000)
	if b.IPC[0] >= a.IPC[0] {
		t.Fatalf("serialized LLLs (%.3f) not slower than parallel (%.3f)", b.IPC[0], a.IPC[0])
	}
	if b.MLP[0] > 1.2 {
		t.Fatalf("serialize mode measured MLP %.2f, want ~1", b.MLP[0])
	}
}
