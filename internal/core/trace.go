package core

// Interval tracing: an opt-in, ring-buffered recorder the cycle kernel ticks
// into every `every` cycles. Each tick snapshots, per thread, the paper's
// interval-level signals — committed/fetched deltas, long-latency loads, L2
// misses, instantaneous ROB occupancy and outstanding-LLL count (the MLP
// signal), and whether the active fetch policy was gating the thread — so
// consumers can plot policy behavior over time instead of end-of-run
// aggregates.
//
// Disabled (the default) the recorder costs one nil check per cycle and zero
// allocations, preserving the steady-state zero-alloc invariant. Enabled, all
// storage is allocated up front in EnableIntervalTrace and samples are
// written into a fixed-capacity ring per thread (oldest samples are
// overwritten), so recording itself never allocates and output size is
// bounded no matter how long the run is. Every recorded value derives only
// from deterministic simulator state, so traces are byte-deterministic.

// IntervalSample is one per-thread observation at an interval boundary.
// Cycle is the boundary's cycle relative to the last ResetStats; counter
// fields are deltas over the interval; ROBOcc, MLP and Gated are
// instantaneous at the boundary.
type IntervalSample struct {
	Cycle     int64  // interval-end cycle, relative to the measurement origin
	Committed uint64 // instructions committed in the interval
	Fetched   uint64 // fetch slots granted in the interval
	L2Misses  uint64 // demand loads serviced beyond the L2 in the interval
	LLLs      uint64 // long-latency loads issued in the interval
	Flushes   uint64 // policy-triggered flushes in the interval
	ROBOcc    int    // ROB entries held at the boundary
	MLP       int    // long-latency loads outstanding at the boundary
	Gated     bool   // fetch policy was gating the thread at the boundary
}

// traceRingCap bounds retained samples per thread. With the ring full, new
// boundaries evict the oldest sample, keeping wire payloads bounded for any
// run length or interval choice.
const traceRingCap = 512

// traceThread is one thread's ring plus the counter baselines the next
// sample's deltas are taken against.
type traceThread struct {
	ring  []IntervalSample // fixed capacity traceRingCap
	head  int              // index of the oldest sample
	n     int              // live samples

	committed uint64
	fetched   uint64
	flushes   uint64
	llls      uint64
	l2Misses  uint64
}

// intervalTrace is the whole recorder; Core holds a nil pointer when tracing
// is disabled.
type intervalTrace struct {
	every  int64
	origin int64 // cycle of the last restart; boundaries are origin + k*every
	nextAt int64
	perThr []traceThread
}

func (tt *traceThread) push(s IntervalSample) {
	if tt.n < len(tt.ring) {
		tt.ring[(tt.head+tt.n)%len(tt.ring)] = s
		tt.n++
		return
	}
	tt.ring[tt.head] = s
	tt.head = (tt.head + 1) % len(tt.ring)
}

// EnableIntervalTrace turns on interval tracing with a sample every `every`
// cycles (values < 1 disable tracing). Boundaries restart at each ResetStats,
// so a warm-up phase leaves no samples behind and measured-phase boundaries
// land on round multiples of `every`.
func (c *Core) EnableIntervalTrace(every int64) {
	if every < 1 {
		c.trace = nil
		return
	}
	tr := &intervalTrace{every: every, perThr: make([]traceThread, len(c.threads))}
	for i := range tr.perThr {
		tr.perThr[i].ring = make([]IntervalSample, traceRingCap)
	}
	tr.restart(c)
	c.trace = tr
}

// restart clears recorded samples and re-bases boundaries and delta baselines
// at the core's current state (the ResetStats hook).
func (tr *intervalTrace) restart(c *Core) {
	tr.origin = c.now
	tr.nextAt = c.now + tr.every
	for i, t := range c.threads {
		tt := &tr.perThr[i]
		tt.head, tt.n = 0, 0
		tt.committed = t.committed
		tt.fetched = t.fetched
		tt.flushes = t.flushes
		tt.llls = c.hier.ThreadLLLs(t.id)
		tt.l2Misses = c.hier.ThreadL2Misses(t.id)
	}
}

// record emits one sample per thread for the boundary crossed at c.now.
// Idle-skipped stretches crossing one or more boundaries produce a single
// sample stamped with the cycle the core actually reached — boundaries with
// no activity in between carry no extra information.
func (c *Core) record(tr *intervalTrace) {
	rel := c.now - c.statsStart
	for i, t := range c.threads {
		tt := &tr.perThr[i]
		llls := c.hier.ThreadLLLs(t.id)
		l2 := c.hier.ThreadL2Misses(t.id)
		tt.push(IntervalSample{
			Cycle:     rel,
			Committed: t.committed - tt.committed,
			Fetched:   t.fetched - tt.fetched,
			L2Misses:  l2 - tt.l2Misses,
			LLLs:      llls - tt.llls,
			Flushes:   t.flushes - tt.flushes,
			ROBOcc:    t.robCount,
			MLP:       c.hier.OutstandingLLL(t.id, c.now),
			Gated:     !c.policy.CanFetch(t.id),
		})
		tt.committed = t.committed
		tt.fetched = t.fetched
		tt.flushes = t.flushes
		tt.llls = llls
		tt.l2Misses = l2
	}
	tr.nextAt = tr.origin + ((c.now-tr.origin)/tr.every+1)*tr.every
}

// snapshot unrolls the rings oldest-first into per-thread sample slices.
func (tr *intervalTrace) snapshot() [][]IntervalSample {
	out := make([][]IntervalSample, len(tr.perThr))
	for i := range tr.perThr {
		tt := &tr.perThr[i]
		s := make([]IntervalSample, tt.n)
		for j := 0; j < tt.n; j++ {
			s[j] = tt.ring[(tt.head+j)%len(tt.ring)]
		}
		out[i] = s
	}
	return out
}
