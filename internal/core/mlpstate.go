package core

import "smtmlp/internal/mlp"

// MLPState bundles the per-thread MLP machinery of Section 4: the
// miss-pattern long-latency load predictor (front end), the LLSR (commit
// stage) and the distance/binary MLP predictors it trains. The core owns one
// MLPState per hardware thread and keeps it trained on every run, whatever
// the active fetch policy, so characterization experiments (Figures 4, 6, 7
// and 8) and the MLP-aware policies see exactly the same machinery.
type MLPState struct {
	MissPattern *mlp.MissPatternPredictor
	LLSR        *mlp.LLSR
	Distance    *mlp.DistancePredictor
	Binary      *mlp.BinaryPredictor

	// Binary MLP prediction accounting at LLSR-update time (Figure 7):
	// does the predicted distance agree with the measured distance about
	// whether there is any MLP?
	TruePos, TrueNeg, FalsePos, FalseNeg uint64

	// Far-enough accounting (Figure 8): a prediction is correct when the
	// predicted distance is at least the measured distance.
	FarEnough    uint64
	DistanceObs  uint64
	DistanceHist []uint64 // histogram of measured MLP distances (Figure 4)
}

func newMLPState(entries, llsrSize int) *MLPState {
	return &MLPState{
		MissPattern:  mlp.NewMissPatternPredictor(entries, 6),
		LLSR:         mlp.NewLLSR(llsrSize),
		Distance:     mlp.NewDistancePredictor(entries, llsrSize),
		Binary:       mlp.NewBinaryPredictor(entries),
		DistanceHist: make([]uint64, llsrSize+1),
	}
}

// observeCommit feeds one committed instruction into the LLSR and, when a
// long-latency load reaches the head, scores the previous prediction and
// trains the distance and binary predictors (Figure 3's update flow).
func (s *MLPState) observeCommit(longLatency bool, pc uint64) {
	headPC, dist, update := s.LLSR.Commit(longLatency, pc)
	if !update {
		return
	}
	predicted := s.Distance.Predict(headPC)
	switch {
	case predicted > 0 && dist > 0:
		s.TruePos++
	case predicted == 0 && dist == 0:
		s.TrueNeg++
	case predicted > 0 && dist == 0:
		s.FalsePos++
	default:
		s.FalseNeg++
	}
	if predicted >= dist {
		s.FarEnough++
	}
	s.DistanceObs++
	if dist < len(s.DistanceHist) {
		s.DistanceHist[dist]++
	}
	s.Distance.Update(headPC, dist)
	s.Binary.Update(headPC, dist > 0)
}

// resetStats zeroes the accounting while keeping predictor contents.
func (s *MLPState) resetStats() {
	s.TruePos, s.TrueNeg, s.FalsePos, s.FalseNeg = 0, 0, 0, 0
	s.FarEnough, s.DistanceObs = 0, 0
	for i := range s.DistanceHist {
		s.DistanceHist[i] = 0
	}
	s.MissPattern.Predictions = 0
	s.MissPattern.Correct = 0
	s.MissPattern.Misses = 0
	s.MissPattern.MissesPredicted = 0
}

// BinaryAccuracy returns the Figure 7 fractions (true positives, true
// negatives, false positives, false negatives), or ok=false when no
// long-latency load has reached the LLSR head yet.
func (s *MLPState) BinaryAccuracy() (tp, tn, fp, fn float64, ok bool) {
	total := s.TruePos + s.TrueNeg + s.FalsePos + s.FalseNeg
	if total == 0 {
		return 0, 0, 0, 0, false
	}
	t := float64(total)
	return float64(s.TruePos) / t, float64(s.TrueNeg) / t,
		float64(s.FalsePos) / t, float64(s.FalseNeg) / t, true
}

// FarEnoughAccuracy returns the Figure 8 metric: the fraction of LLSR
// updates whose prior prediction was at least the measured distance.
func (s *MLPState) FarEnoughAccuracy() (float64, bool) {
	if s.DistanceObs == 0 {
		return 0, false
	}
	return float64(s.FarEnough) / float64(s.DistanceObs), true
}
