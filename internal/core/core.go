package core

import (
	"fmt"
	"math"

	"smtmlp/internal/bpred"
	"smtmlp/internal/isa"
	"smtmlp/internal/mem"
	"smtmlp/internal/trace"
)

// thread is the per-context pipeline state.
type thread struct {
	id     int
	cursor *trace.Cursor
	bp     *bpred.Predictor
	mlp    *MLPState

	feq uopRing // fetched, waiting out the front-end delay
	rob uopRing // dispatched, not committed, oldest first

	renameMap [128]*Uop // architectural register -> youngest in-flight writer

	icount        int   // fetched but not yet issued (ICOUNT's counter)
	fetchResumeAt int64 // branch redirect gate
	redirect      *Uop  // unresolved mispredicted branch blocking fetch

	// Per-thread occupancy of the shared resources (limiters read these).
	robCount, lsqCount      int
	iqIntCount, iqFPCount   int
	renIntCount, renFPCount int

	// Statistics.
	committed     uint64
	fetched       uint64
	flushes       uint64
	squashedCount uint64
	wbBlocked     uint64
	robOccAccum   int64 // integral of robCount over cycles

	profile     []ProfilePoint
	profileLeft uint64 // commits until the next profile checkpoint
}

// ProfilePoint records cumulative cycles at an instruction-count checkpoint,
// used by internal/sim to evaluate single-threaded CPI "after x_i million
// instructions" as the paper's STP/ANTT methodology requires.
type ProfilePoint struct {
	Instructions uint64
	Cycles       int64
}

// fetchCand is a fetch-stage candidate; the scratch slice lives on the Core
// so thread selection allocates nothing per cycle.
type fetchCand struct {
	t      *thread
	icount int
}

// Core is one simulated SMT processor instance. It is not safe for
// concurrent use; run one Core per goroutine.
type Core struct {
	cfg     Config
	policy  Policy
	limiter Limiter
	hier    *mem.Hierarchy
	threads []*thread
	arena   *uopArena

	now    int64
	events eventQueue
	nextID uint64

	// Shared resource occupancy.
	robUsed, lsqUsed      int
	iqIntUsed, iqFPUsed   int
	renIntUsed, renFPUsed int
	wbUsed                int

	iqInt []*Uop // integer issue queue, dispatch (age) order
	iqFP  []*Uop // floating-point issue queue

	commitRR   int
	dispatchRR int

	feqCap     int         // per-thread front-end queue capacity
	fetchCands []fetchCand // reusable fetch-stage scratch

	// Incremental skip-ahead state: threadWake caches the earliest thread
	// wake-up point (fetch resume or front-end queue head maturing).
	// wakeValid is cleared whenever front-end state changes, so consecutive
	// idle steps reuse the cached value instead of rescanning every thread.
	threadWake int64
	wakeValid  bool

	profileEvery uint64
	statsStart   int64 // cycle at the last ResetStats (measurement origin)
	lastAccrual  int64 // last cycle occupancy integrals were accrued

	// trace is the opt-in interval recorder (see trace.go); nil when
	// disabled, which is the only cost the hot loop pays for it.
	trace *intervalTrace

	// Statistics.
	ResourceStallCycles uint64

	activity bool // something happened this cycle (drives time skipping)
}

// New builds a core running one generator per hardware thread under the
// given fetch policy (nil means ICOUNT) and resource limiter (nil means
// fetch-policy-managed sharing). The memory hierarchy is created from
// cfg.Mem with the thread count forced to len(models).
func New(cfg Config, models []trace.Model, policy Policy, limiter Limiter) *Core {
	if len(models) == 0 {
		panic("core: no workload models")
	}
	cfg.Threads = len(models)
	cfg.Mem.Threads = cfg.Threads
	if policy == nil {
		policy = ICount{}
	}
	feqCap := cfg.FetchWidth * (cfg.FrontEndDelay + 1)
	c := &Core{
		cfg:     cfg,
		policy:  policy,
		limiter: limiter,
		hier:    mem.New(cfg.Mem),
		feqCap:  feqCap,
		// In-flight uops are bounded by the front-end queues, the shared
		// ROB and the write buffer; squashed uops awaiting completion
		// events add transient slack, which the arena covers by growing.
		arena: newUopArena(len(models)*feqCap + cfg.ROBSize + cfg.WriteBuffer + 64),
	}
	c.fetchCands = make([]fetchCand, 0, len(models))
	for i, m := range models {
		t := &thread{
			id:     i,
			cursor: trace.NewCursor(trace.NewGenerator(m, i)),
			bp:     bpred.New(cfg.Bpred),
			mlp:    newMLPState(cfg.PredictorEntries, cfg.llsrSize()),
			feq:    newUopRing(feqCap),
			rob:    newUopRing(cfg.ROBSize),
		}
		c.threads = append(c.threads, t)
	}
	c.iqInt = make([]*Uop, 0, cfg.IQInt)
	c.iqFP = make([]*Uop, 0, cfg.IQFP)
	policy.Attach(c)
	return c
}

// --- accessors used by policies, limiters and experiments ---

// Cfg returns the core's configuration.
func (c *Core) Cfg() Config { return c.cfg }

// Now returns the current cycle.
func (c *Core) Now() int64 { return c.now }

// Threads returns the number of hardware contexts.
func (c *Core) Threads() int { return len(c.threads) }

// MLPState returns thread tid's MLP predictor state.
func (c *Core) MLPState(tid int) *MLPState { return c.threads[tid].mlp }

// Hierarchy returns the shared memory hierarchy.
func (c *Core) Hierarchy() *mem.Hierarchy { return c.hier }

// NextFetchSeq returns the sequence number of the next instruction thread
// tid will fetch; NextFetchSeq-1 is the youngest fetched instruction.
func (c *Core) NextFetchSeq(tid int) uint64 { return c.threads[tid].cursor.Pos() }

// ThreadResources reports thread tid's current occupancy of the shared
// buffer resources (ROB, LSQ, int IQ, FP IQ, int and FP rename registers).
func (c *Core) ThreadResources(tid int) (rob, lsq, iqInt, iqFP, renInt, renFP int) {
	t := c.threads[tid]
	return t.robCount, t.lsqCount, t.iqIntCount, t.iqFPCount, t.renIntCount, t.renFPCount
}

// OutstandingLLL reports how many long-latency loads of tid are in flight.
func (c *Core) OutstandingLLL(tid int) int { return c.hier.OutstandingLLL(tid, c.now) }

// ResetStats zeroes every measurement counter while keeping all
// microarchitectural state (cache and TLB contents, predictor tables,
// in-flight instructions). Call it after a warm-up phase so short measured
// runs are not dominated by compulsory misses and untrained predictors — the
// role SimPoint warm-up plays in the paper's methodology.
func (c *Core) ResetStats() {
	c.statsStart = c.now
	c.ResourceStallCycles = 0
	c.hier.ResetStats(c.now)
	c.lastAccrual = c.now
	for _, t := range c.threads {
		t.committed = 0
		t.fetched = 0
		t.flushes = 0
		t.squashedCount = 0
		t.wbBlocked = 0
		t.robOccAccum = 0
		t.profile = nil
		t.bp.ResetStats()
		t.mlp.resetStats()
	}
	if c.trace != nil {
		c.trace.restart(c)
	}
}

// --- flush (checkpoint restore) ---

// FlushAfter squashes every in-flight instruction of thread tid younger than
// sequence number seq and rewinds fetch to seq+1. The instruction with
// sequence seq itself survives, matching the paper's "flush starting from
// the instruction following the long-latency load". Issued memory accesses
// keep their cache side effects (the prefetching effect Section 6.5 relies
// on). It is a no-op when nothing younger than seq is in flight.
func (c *Core) FlushAfter(tid int, seq uint64) {
	t := c.threads[tid]
	flushed := false

	// Front-end queue: youngest entries first.
	for !t.feq.empty() {
		u := t.feq.back()
		if u.Seq() <= seq {
			break
		}
		t.feq.popBack()
		c.squash(t, u, false)
		flushed = true
	}
	// ROB suffix.
	for !t.rob.empty() {
		u := t.rob.back()
		if u.Seq() <= seq {
			break
		}
		t.rob.popBack()
		c.squash(t, u, true)
		flushed = true
	}
	if !flushed {
		return
	}
	t.flushes++
	c.activity = true
	c.wakeValid = false

	// Rebuild the rename map from the surviving dispatched instructions.
	for i := range t.renameMap {
		t.renameMap[i] = nil
	}
	for i := 0; i < t.rob.len(); i++ {
		u := t.rob.at(i)
		if u.In.HasDest() {
			t.renameMap[u.In.Dest] = u
		}
	}

	// A squashed unresolved branch no longer blocks fetch.
	if t.redirect != nil && t.redirect.Squashed() {
		t.redirect = nil
		t.fetchResumeAt = c.now
	}
	t.cursor.Rewind(seq + 1)
}

// squash releases the resources held by u and recycles its arena slot once
// no event or issue-queue reference remains. dispatched distinguishes ROB
// residents from front-end queue residents.
func (c *Core) squash(t *thread, u *Uop, dispatched bool) {
	switch u.state {
	case stateFetched:
		t.icount--
	case stateDispatched: // still in an issue queue
		t.icount--
		if u.In.Class.IsFP() {
			c.iqFPUsed--
			t.iqFPCount--
		} else {
			c.iqIntUsed--
			t.iqIntCount--
		}
	}
	if dispatched {
		c.robUsed--
		t.robCount--
		if u.In.Class.IsMem() {
			c.lsqUsed--
			t.lsqCount--
		}
		if u.In.HasDest() {
			if isa.IsFPReg(u.In.Dest) {
				c.renFPUsed--
				t.renFPCount--
			} else {
				c.renIntUsed--
				t.renIntCount--
			}
		}
	}
	u.state = stateSquashed
	c.arena.markDone(u) // squashed producers never wake anyone later
	t.squashedCount++
	c.policy.OnSquash(u)
	c.freeIfDead(u)
}

// freeIfDead recycles u's arena slot once it is in a terminal state with no
// pending event or issue-queue reference. This is the kernel's single
// release point; every refs decrement and terminal transition funnels here.
func (c *Core) freeIfDead(u *Uop) {
	if u.refs == 0 && (u.state == stateSquashed || u.state == stateCommitted) {
		c.arena.release(u)
	}
}

// --- main loop ---

// Run simulates until any thread has committed stopAt instructions (the
// paper's multiprogram stopping rule) and returns the run's statistics.
func (c *Core) Run(stopAt uint64) Result {
	if stopAt == 0 {
		stopAt = 1
	}
	c.profileEvery = stopAt / 256
	if c.profileEvery == 0 {
		c.profileEvery = 1
	}
	// Pre-size the profile buffers so checkpoint appends never allocate in
	// the measured loop.
	want := int(stopAt/c.profileEvery) + 8
	for _, t := range c.threads {
		if cap(t.profile) < want {
			t.profile = make([]ProfilePoint, len(t.profile), want)
		}
		t.profileLeft = c.profileEvery - t.committed%c.profileEvery
	}
	for {
		c.step()
		for _, t := range c.threads {
			if t.committed >= stopAt {
				return c.result()
			}
		}
		if c.cfg.MaxCycles > 0 && c.now > c.cfg.MaxCycles {
			panic(fmt.Sprintf("core: exceeded MaxCycles=%d (committed=%v)", c.cfg.MaxCycles, c.committedCounts()))
		}
	}
}

func (c *Core) committedCounts() []uint64 {
	out := make([]uint64, len(c.threads))
	for i, t := range c.threads {
		out[i] = t.committed
	}
	return out
}

// step advances one cycle (or skips idle time to the next wake-up point).
func (c *Core) step() {
	c.now++
	c.activity = false

	// Accrue occupancy integrals over the interval since the last step
	// (state is frozen across skipped idle cycles, so this is exact).
	if dt := c.now - c.lastAccrual; dt > 0 {
		for _, t := range c.threads {
			t.robOccAccum += int64(t.robCount) * dt
		}
		c.lastAccrual = c.now
	}

	c.processEvents()
	c.commit()
	c.issue()
	c.dispatch()
	c.fetch()

	if tr := c.trace; tr != nil && c.now >= tr.nextAt {
		c.record(tr)
	}

	if c.activity {
		return
	}
	// Nothing happened: skip forward to the next event, fetch resume, or
	// front-end queue head becoming old enough to dispatch. The thread-side
	// wake point is cached incrementally — front-end state only changes on
	// active cycles, so consecutive idle steps reuse it instead of
	// rescanning every thread's queues.
	wake := int64(math.MaxInt64)
	if ev, ok := c.events.peekCycle(c.now); ok {
		wake = ev // always > now: due events were popped this cycle
	}
	if !c.wakeValid || (c.threadWake <= c.now && c.threadWake != math.MaxInt64) {
		c.recomputeThreadWake()
	}
	if c.threadWake > c.now && c.threadWake < wake {
		wake = c.threadWake
	}
	if wake == math.MaxInt64 {
		panic(fmt.Sprintf("core: deadlock at cycle %d: no pending events (committed=%v, rob=%d/%d, wb=%d/%d)",
			c.now, c.committedCounts(), c.robUsed, c.cfg.ROBSize, c.wbUsed, c.cfg.WriteBuffer))
	}
	if wake > c.now {
		c.now = wake - 1 // the next step() lands exactly on wake
	}
}

// recomputeThreadWake rebuilds the cached thread wake point: the earliest
// future fetch-resume or front-end queue maturation across all threads.
func (c *Core) recomputeThreadWake() {
	wake := int64(math.MaxInt64)
	for _, t := range c.threads {
		if t.fetchResumeAt > c.now && t.fetchResumeAt < wake {
			wake = t.fetchResumeAt
		}
		if !t.feq.empty() {
			if due := t.feq.front().fetchedAt + int64(c.cfg.FrontEndDelay); due > c.now && due < wake {
				wake = due
			}
		}
	}
	c.threadWake = wake
	c.wakeValid = true
}

func (c *Core) processEvents() {
	for {
		ev, ok := c.events.popIfDue(c.now)
		if !ok {
			return
		}
		c.activity = true
		u := ev.uop
		u.refs--
		switch ev.kind {
		case evWriteBufferFree:
			c.wbUsed--
		case evDetectLLL:
			if !u.Squashed() {
				c.policy.OnLLLDetected(u)
			}
		case evComplete:
			if u.In.Class == isa.Load {
				c.policy.OnLoadComplete(u)
			}
			if u.Squashed() {
				break
			}
			u.state = stateDone
			// Scoreboard wakeup: consumers observe the done bit at issue
			// time instead of the producer walking a dependent list.
			c.arena.markDone(u)
			if u.In.Class == isa.Branch && u.Mispredicted {
				t := c.threads[u.Tid]
				if t.redirect == u {
					t.redirect = nil
					resume := int64(c.cfg.MispredictPenalty - c.cfg.FrontEndDelay)
					if resume < 1 {
						resume = 1
					}
					t.fetchResumeAt = c.now + resume
					c.wakeValid = false
				}
			}
		}
		c.freeIfDead(u)
	}
}

// commit retires up to CommitWidth done instructions, round-robin across
// threads, in order within each thread. Stores must win a write buffer entry
// to commit; a full write buffer blocks the thread (Table IV's semantics).
func (c *Core) commit() {
	budget := c.cfg.CommitWidth
	n := len(c.threads)
	idx := c.commitRR
	for i := 0; i < n && budget > 0; i++ {
		t := c.threads[idx]
		if idx++; idx == n {
			idx = 0
		}
		for budget > 0 && !t.rob.empty() {
			u := t.rob.front()
			if u.state != stateDone {
				break
			}
			if u.In.Class == isa.Store {
				if c.wbUsed >= c.cfg.WriteBuffer {
					t.wbBlocked++
					break
				}
				c.wbUsed++
				acc := c.hier.Store(t.id, u.In.Addr, c.now)
				u.Access = acc
				c.events.schedule(c.now, c.now+1+acc.Latency, evWriteBufferFree, u)
			}
			// Retire.
			t.rob.popFront()
			c.robUsed--
			t.robCount--
			if u.In.Class.IsMem() {
				c.lsqUsed--
				t.lsqCount--
			}
			if u.In.HasDest() {
				if isa.IsFPReg(u.In.Dest) {
					c.renFPUsed--
					t.renFPCount--
				} else {
					c.renIntUsed--
					t.renIntCount--
				}
				if t.renameMap[u.In.Dest] == u {
					t.renameMap[u.In.Dest] = nil
				}
			}
			t.mlp.observeCommit(u.IsLLL, u.In.PC)
			t.cursor.Release(u.Seq())
			t.committed++
			t.profileLeft--
			if t.profileLeft == 0 {
				t.profile = append(t.profile, ProfilePoint{Instructions: t.committed, Cycles: c.now - c.statsStart})
				t.profileLeft = c.profileEvery
			}
			budget--
			c.activity = true
			u.state = stateCommitted
			c.freeIfDead(u) // stores stay pinned by their write-buffer event
		}
	}
	if c.commitRR++; c.commitRR == n {
		c.commitRR = 0
	}
}

// execLatency returns the functional-unit latency of non-memory classes.
func execLatency(class isa.Class) int64 {
	switch class {
	case isa.IntMul:
		return 3
	case isa.FPALU:
		return 4
	case isa.FPMul:
		return 6
	default: // IntALU, Branch, Store address generation
		return 1
	}
}

// issue selects ready instructions oldest-first from the issue queues,
// bounded by IssueWidth and per-class functional unit counts, and schedules
// their completion. Loads access the memory hierarchy here. Readiness is a
// scoreboard probe against the arena's done bitmap (bitmap wakeup).
func (c *Core) issue() {
	budget := c.cfg.IssueWidth
	alu := c.cfg.IntALUs
	ldst := c.cfg.LdStUnits
	fp := c.cfg.FPUnits
	arena := c.arena

	scan := func(q []*Uop) []*Uop {
		kept := q[:0]
		for _, u := range q {
			if u.Squashed() {
				// Reclaim the slot silently; squash already counted it.
				// Leaving the queue drops the last reference.
				u.refs--
				c.freeIfDead(u)
				continue
			}
			if budget <= 0 || !u.readyIn(arena) {
				kept = append(kept, u)
				continue
			}
			var unit *int
			switch u.In.Class {
			case isa.Load, isa.Store:
				unit = &ldst
			case isa.FPALU, isa.FPMul:
				unit = &fp
			default:
				unit = &alu
			}
			if *unit <= 0 {
				kept = append(kept, u)
				continue
			}
			*unit--
			budget--
			u.refs-- // leaves the issue queue; events pin it from here
			c.issueUop(u)
		}
		return kept
	}
	c.iqInt = scan(c.iqInt)
	c.iqFP = scan(c.iqFP)
}

func (c *Core) issueUop(u *Uop) {
	t := c.threads[u.Tid]
	u.state = stateIssued
	t.icount--
	if u.In.Class.IsFP() {
		c.iqFPUsed--
		t.iqFPCount--
	} else {
		c.iqIntUsed--
		t.iqIntCount--
	}
	c.activity = true

	if u.In.Class == isa.Load {
		acc := c.hier.Load(u.Tid, u.In.PC, u.In.Addr, c.now)
		u.Access = acc
		u.IsLLL = acc.LongLatency
		// Train the miss-pattern predictor with the actual outcome; the
		// returned value is what the front end would have predicted, which
		// Update accounts for Figure 6's accuracy statistics.
		t.mlp.MissPattern.Update(u.In.PC, u.IsLLL)
		done := c.now + 1 + acc.Latency
		if u.IsLLL {
			detect := c.now + c.cfg.detectDelay()
			if detect > done {
				detect = done
			}
			c.events.schedule(c.now, detect, evDetectLLL, u)
		}
		c.events.schedule(c.now, done, evComplete, u)
		return
	}
	c.events.schedule(c.now, c.now+execLatency(u.In.Class), evComplete, u)
}

// dispatch moves instructions whose front-end delay has elapsed from the
// front-end queues into the ROB, LSQ, issue queues and rename registers. It
// also detects resource-stall cycles for the Section 6.5 alternatives.
func (c *Core) dispatch() {
	budget := c.cfg.FetchWidth
	n := len(c.threads)
	wanted := false // some thread had a dispatchable head
	dispatched := 0
	sharedBlocked := false // some head was blocked on a shared resource

	idx := c.dispatchRR
	for i := 0; i < n && budget > 0; i++ {
		t := c.threads[idx]
		if idx++; idx == n {
			idx = 0
		}
		for budget > 0 && !t.feq.empty() {
			u := t.feq.front()
			if u.fetchedAt+int64(c.cfg.FrontEndDelay) > c.now {
				break
			}
			wanted = true
			if !c.haveResources(u) {
				sharedBlocked = true
				break
			}
			if c.limiter != nil && !c.limiter.MayDispatch(c, t.id, u) {
				break
			}
			t.feq.popFront()
			c.dispatchUop(t, u)
			dispatched++
			budget--
		}
	}
	if c.dispatchRR++; c.dispatchRR == n {
		c.dispatchRR = 0
	}
	if dispatched > 0 {
		c.activity = true
		c.wakeValid = false
	}
	if wanted && dispatched == 0 && sharedBlocked {
		c.ResourceStallCycles++
		c.policy.OnResourceStall(c.now)
	}
}

// haveResources checks shared structural resources for dispatching u.
func (c *Core) haveResources(u *Uop) bool {
	if c.robUsed >= c.cfg.ROBSize {
		return false
	}
	if u.In.Class.IsMem() && c.lsqUsed >= c.cfg.LSQSize {
		return false
	}
	if u.In.Class.IsFP() {
		if c.iqFPUsed >= c.cfg.IQFP {
			return false
		}
	} else if c.iqIntUsed >= c.cfg.IQInt {
		return false
	}
	if u.In.HasDest() {
		if isa.IsFPReg(u.In.Dest) {
			if c.renFPUsed >= c.cfg.RenameFP {
				return false
			}
		} else if c.renIntUsed >= c.cfg.RenameInt {
			return false
		}
	}
	return true
}

func (c *Core) dispatchUop(t *thread, u *Uop) {
	u.state = stateDispatched
	t.rob.pushBack(u)
	c.robUsed++
	t.robCount++
	if u.In.Class.IsMem() {
		c.lsqUsed++
		t.lsqCount++
	}
	if u.In.HasDest() {
		if isa.IsFPReg(u.In.Dest) {
			c.renFPUsed++
			t.renFPCount++
		} else {
			c.renIntUsed++
			t.renIntCount++
		}
	}

	// Rename: register sources against in-flight producers.
	u.src1Prod, u.src1Gen = c.resolveProducer(t, u.In.Src1)
	u.src2Prod, u.src2Gen = c.resolveProducer(t, u.In.Src2)
	if u.In.HasDest() {
		t.renameMap[u.In.Dest] = u
	}

	u.refs++ // issue-queue residency pins the arena slot
	if u.In.Class.IsFP() {
		c.iqFP = append(c.iqFP, u)
		c.iqFPUsed++
		t.iqFPCount++
	} else {
		c.iqInt = append(c.iqInt, u)
		c.iqIntUsed++
		t.iqIntCount++
	}
}

// resolveProducer resolves one source operand at rename time: it returns the
// in-flight producer's arena slot and generation, or (-1, 0) when the
// operand is already available. The consumer's readiness is then a
// scoreboard probe — no producer-side dependent list is maintained.
func (c *Core) resolveProducer(t *thread, reg int16) (int32, uint32) {
	if reg == isa.RegNone {
		return -1, 0
	}
	p := t.renameMap[reg]
	if p == nil || p.Done() || p.Squashed() {
		return -1, 0
	}
	return p.arenaIdx, c.arena.gen[p.arenaIdx]
}

// fetch implements ICOUNT 2.4: up to FetchWidth instructions per cycle from
// up to FetchThreads threads, prioritized by lowest in-flight instruction
// count, with the active fetch policy gating individual threads. Candidate
// selection reuses a scratch slice and an insertion sort over at most
// Threads entries, so the stage allocates nothing.
func (c *Core) fetch() {
	cands := c.fetchCands[:0]
	for _, t := range c.threads {
		if t.fetchResumeAt > c.now || t.redirect != nil {
			continue
		}
		if t.feq.len() >= c.feqCap {
			continue
		}
		if !c.policy.CanFetch(t.id) {
			continue
		}
		cands = append(cands, fetchCand{t, t.icount})
	}
	// Insertion sort by (icount, thread id): deterministic total order, at
	// most Threads entries, no closure or reflection.
	for i := 1; i < len(cands); i++ {
		cd := cands[i]
		j := i - 1
		for j >= 0 && (cands[j].icount > cd.icount ||
			(cands[j].icount == cd.icount && cands[j].t.id > cd.t.id)) {
			cands[j+1] = cands[j]
			j--
		}
		cands[j+1] = cd
	}

	slots := c.cfg.FetchWidth
	threadsUsed := 0
	for _, cd := range cands {
		if slots <= 0 || threadsUsed >= c.cfg.FetchThreads {
			break
		}
		t := cd.t
		threadsUsed++
		for slots > 0 && t.feq.len() < c.feqCap {
			in := t.cursor.Fetch()
			c.nextID++
			u := c.arena.alloc()
			u.In = in
			u.Tid = t.id
			u.ID = c.nextID
			u.fetchedAt = c.now
			u.state = stateFetched
			t.feq.pushBack(u)
			t.icount++
			t.fetched++
			slots--
			c.activity = true
			c.wakeValid = false

			stop := false
			switch in.Class {
			case isa.Load:
				u.PredictedLLL = t.mlp.MissPattern.Predict(in.PC)
			case isa.Branch:
				predTaken, _, _ := t.bp.Predict(in.PC)
				u.Mispredicted = t.bp.Resolve(in.PC, in.Taken, in.Target)
				if u.Mispredicted {
					// Fetch is blocked until the branch resolves; the
					// redirect penalty is charged at resolution.
					t.redirect = u
					stop = true
				} else if predTaken {
					// Correctly predicted taken branch ends the fetch block.
					stop = true
				}
			}
			c.policy.OnFetch(u)
			if stop || !c.policy.CanFetch(t.id) {
				break
			}
		}
	}
}

// Result summarizes a run.
type Result struct {
	Cycles               int64
	Committed            []uint64
	Fetched              []uint64
	Flushes              []uint64
	Squashed             []uint64
	IPC                  []float64
	MLP                  []float64 // Chou et al. MLP per thread
	LLLs                 []uint64  // long-latency loads per thread
	LLLPer1K             []float64
	BranchMispredictRate []float64
	WBBlocked            []uint64
	AvgROBOccupancy      []float64 // mean ROB entries held, per thread
	ResourceStallCycles  uint64
	Profiles             [][]ProfilePoint
	// Intervals holds the per-thread interval-trace samples (nil unless
	// EnableIntervalTrace was called).
	Intervals [][]IntervalSample
}

// TotalIPC returns committed instructions (all threads) per cycle.
func (r Result) TotalIPC() float64 {
	var sum uint64
	for _, n := range r.Committed {
		sum += n
	}
	if r.Cycles == 0 {
		return 0
	}
	return float64(sum) / float64(r.Cycles)
}

func (c *Core) result() Result {
	r := Result{
		Cycles:              c.now - c.statsStart,
		ResourceStallCycles: c.ResourceStallCycles,
	}
	for _, t := range c.threads {
		r.Committed = append(r.Committed, t.committed)
		r.Fetched = append(r.Fetched, t.fetched)
		r.Flushes = append(r.Flushes, t.flushes)
		r.Squashed = append(r.Squashed, t.squashedCount)
		r.WBBlocked = append(r.WBBlocked, t.wbBlocked)
		ipc := 0.0
		if r.Cycles > 0 {
			ipc = float64(t.committed) / float64(r.Cycles)
		}
		r.IPC = append(r.IPC, ipc)
		mlpVal, llls := c.hier.ThreadMLP(t.id, c.now)
		r.MLP = append(r.MLP, mlpVal)
		r.LLLs = append(r.LLLs, llls)
		per1k := 0.0
		if t.committed > 0 {
			per1k = 1000 * float64(llls) / float64(t.committed)
		}
		r.LLLPer1K = append(r.LLLPer1K, per1k)
		r.BranchMispredictRate = append(r.BranchMispredictRate, t.bp.MispredictRate())
		occ := 0.0
		if r.Cycles > 0 {
			occ = float64(t.robOccAccum) / float64(r.Cycles)
		}
		r.AvgROBOccupancy = append(r.AvgROBOccupancy, occ)
		r.Profiles = append(r.Profiles, t.profile)
	}
	if c.trace != nil {
		r.Intervals = c.trace.snapshot()
	}
	return r
}
