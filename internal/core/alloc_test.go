package core

import (
	"testing"

	"smtmlp/internal/trace"
)

// warmedCore builds a core, runs it past the point where every pooled
// structure (uop arena, event heap, issue queues, cursor buffers, MSHR
// table) has reached its steady-state size, and disables profile
// checkpointing so commit never appends.
func warmedCore(models []trace.Model, p Policy) *Core {
	c := New(DefaultConfig(len(models)), models, p, nil)
	c.Run(40_000)
	c.profileEvery = 1 << 62
	for _, t := range c.threads {
		t.profileLeft = 1 << 62
	}
	return c
}

// stepN advances the core n committed instructions (per the stop rule).
func stepN(c *Core, n uint64) {
	target := c.threads[0].committed + n
	for c.threads[0].committed < target {
		c.step()
	}
}

// TestSteadyStateZeroAlloc pins the tentpole claim: a warmed-up cycle kernel
// performs zero heap allocations per committed instruction. The uop arena,
// ring-buffer ROB/FEQ, typed event heap, bitmap wakeup and open-addressed
// MSHR table leave nothing to allocate on the hot path.
func TestSteadyStateZeroAlloc(t *testing.T) {
	cases := []struct {
		name   string
		models []trace.Model
		policy Policy
	}{
		{"icount-2t", []trace.Model{pureALUModel(), missModel()}, nil},
		{"flushing-2t", []trace.Model{missModel(), pureALUModel()}, &flushingPolicy{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := warmedCore(tc.models, tc.policy)
			stepN(c, 5_000) // settle any remaining capacity growth
			avg := testing.AllocsPerRun(10, func() {
				stepN(c, 1_000)
			})
			if avg != 0 {
				t.Fatalf("steady-state step allocated %.2f times per 1000 committed instructions, want 0", avg)
			}
		})
	}
}

// TestArenaBoundedUnderFlushes is the squash-release regression test: a
// flush-heavy run must recycle squashed uops' arena slots once their pending
// events drain, so the live count stays bounded by the pipeline's capacity
// instead of accumulating squashed chains for the whole run.
func TestArenaBoundedUnderFlushes(t *testing.T) {
	c := New(DefaultConfig(2), []trace.Model{missModel(), missModel()}, &flushingPolicy{}, nil)
	c.Run(60_000)
	var flushes uint64
	for _, th := range c.threads {
		flushes += th.flushes
	}
	if flushes == 0 {
		t.Fatal("flush-heavy run performed no flushes; the test exercises nothing")
	}
	// Everything still alive must be reachable from a front-end queue, a ROB,
	// or a pending event; squashed-but-pinned uops are bounded by the event
	// horizon, not the run length.
	bound := len(c.threads)*c.feqCap + c.cfg.ROBSize + c.cfg.WriteBuffer + len(c.events.items)
	if live := c.arena.live(); live > bound {
		t.Fatalf("arena holds %d live slots after %d flushes, want <= %d (squashed uops are not being released)",
			live, flushes, bound)
	}
	if c.arena.allocated < 60_000 {
		t.Fatalf("arena allocated %d uops, expected at least one per committed instruction", c.arena.allocated)
	}
}

// TestSquashReleasesSlotAfterEventsDrain checks the release protocol
// directly: a squashed uop with a pending completion event keeps its slot
// until the event fires, then recycles it.
func TestSquashReleasesSlotAfterEventsDrain(t *testing.T) {
	c := New(DefaultConfig(1), []trace.Model{pureALUModel()}, nil, nil)
	u := c.arena.alloc()
	u.Tid = 0
	u.state = stateIssued
	c.events.schedule(0, 100, evComplete, u)

	freeBefore := len(c.arena.free)
	th := c.threads[0]
	c.squash(th, u, false)
	if !u.Squashed() {
		t.Fatal("squashed uop does not report Squashed")
	}
	if len(c.arena.free) != freeBefore {
		t.Fatal("slot released while a completion event still references it")
	}

	c.now = 100
	c.processEvents()
	if len(c.arena.free) != freeBefore+1 {
		t.Fatal("slot not released after the pending event drained")
	}
	if u.refs != 0 {
		t.Fatalf("refs = %d after event drain, want 0", u.refs)
	}
}

// TestEventQueueZeroesVacatedSlot is the heap-retention regression test: a
// popped event's slot in the backing array must be zeroed, otherwise the
// array pins every completed uop it ever held for the rest of the run.
func TestEventQueueZeroesVacatedSlot(t *testing.T) {
	var q eventQueue
	popped := 0
	// Spread events across both stores: near cycles take the time wheel,
	// far ones the heap.
	us := make([]*Uop, 8)
	for i := range us {
		us[i] = &Uop{ID: uint64(i)}
		q.schedule(0, int64(10+5*i), evComplete, us[i])
	}
	for now := int64(0); now <= 50; now++ {
		for {
			if _, ok := q.popIfDue(now); !ok {
				break
			}
			popped++
		}
	}
	if popped != len(us) {
		t.Fatalf("popped %d events, want %d", popped, len(us))
	}
	if len(q.items) != 0 || q.inWheel != 0 {
		t.Fatalf("queue not drained: %d heap items, %d wheel events left", len(q.items), q.inWheel)
	}
	for i, ev := range q.items[:cap(q.items)] {
		if ev.uop != nil {
			t.Fatalf("heap backing slot %d still pins uop %d after pop", i, ev.uop.ID)
		}
	}
	for w := range q.wheel {
		evs := q.wheel[w].evs
		for i, ev := range evs[:cap(evs)] {
			if ev.uop != nil {
				t.Fatalf("wheel slot %d entry %d still pins uop %d after pop", w, i, ev.uop.ID)
			}
		}
	}
}

// TestRingPopsZeroSlots verifies the ring buffers do not retain popped uops
// through their backing arrays either.
func TestRingPopsZeroSlots(t *testing.T) {
	r := newUopRing(4)
	a, b := &Uop{ID: 1}, &Uop{ID: 2}
	r.pushBack(a)
	r.pushBack(b)
	if got := r.popFront(); got != a {
		t.Fatalf("popFront = %v, want first pushed", got)
	}
	if got := r.popBack(); got != b {
		t.Fatalf("popBack = %v, want last pushed", got)
	}
	for i, u := range r.buf {
		if u != nil {
			t.Fatalf("ring backing slot %d still pins a uop after pop", i)
		}
	}
}
