package tenant

import (
	"context"
	"sort"
	"sync"
	"time"

	"smtmlp/internal/metrics"
)

// DefaultBoost is the DCRA-style share multiplier applied to a tenant with
// interactive work queued. With the default, one queued /v1/run outweighs a
// bulk tenant until the bulk tenant holds 8x the interactive tenant's
// weighted slots — in practice the very next released slot.
const DefaultBoost = 8

// Scheduler allocates a fixed pool of engine slots (concurrent simulations)
// among tenants, transplanting the paper's fetch policies to the service
// layer:
//
//   - ICOUNT: the paper's baseline fetches from the thread with the fewest
//     instructions in the pipeline. The scheduler grants the next free slot
//     to the tenant with the least weighted occupancy — fewest slots held
//     per unit of configured weight — so no tenant monopolizes the engine
//     just by queueing more work.
//   - DCRA: Cazorla's dynamically controlled resource allocation grows a
//     thread's share when its demand class warrants it (slow threads get a
//     larger split). The scheduler scales a tenant's effective share by
//     InteractiveBoost while that tenant has interactive work queued, so
//     latency-sensitive requests preempt bulk campaign/lease cells at the
//     next slot boundary — and because cells are admitted one slot at a
//     time, "preemption" needs no cancellation: the bulk tenant simply
//     does not win the next grant.
//
// Within a tenant, interactive waiters are served before bulk waiters and
// each class is FIFO. All tie-breaks are deterministic (interactive demand,
// then earliest waiter), so a given sequence of acquires and releases yields
// exactly one grant trace — which is how the preemption tests pin behavior.
//
// Scheduling order never changes results: the simulator is deterministic per
// cell and every consumer (batch streams, campaign commits, lease results)
// reorders completions back into submission order, so tenancy reorders
// execution, never bytes.
type Scheduler struct {
	capacity int
	boost    int

	mu     sync.Mutex
	free   int
	seq    uint64
	queues map[*Tenant]*tenantQueue

	// queueWait records every grant's queue delay (all tenants pooled) for
	// the /metrics latency histograms.
	queueWait metrics.Histogram
}

// tenantQueue is one tenant's scheduler state: held slots and the two
// class queues.
type tenantQueue struct {
	tenant      *Tenant
	held        int
	interactive []*waiter
	bulk        []*waiter
}

// waiter is one parked Acquire call.
type waiter struct {
	seq      uint64
	class    Class
	enqueued time.Time
	ready    chan struct{}
}

// NewScheduler builds a scheduler over `capacity` engine slots (values < 1
// are clamped to 1). boost <= 0 uses DefaultBoost.
func NewScheduler(capacity, boost int) *Scheduler {
	if capacity < 1 {
		capacity = 1
	}
	if boost <= 0 {
		boost = DefaultBoost
	}
	return &Scheduler{
		capacity: capacity,
		boost:    boost,
		free:     capacity,
		queues:   make(map[*Tenant]*tenantQueue),
	}
}

// Capacity reports the scheduler's slot pool size.
func (s *Scheduler) Capacity() int { return s.capacity }

// Acquire blocks until the calling request's tenant (read from ctx, see
// NewContext) is granted one engine slot, and returns the release that hands
// it back. It implements the engine's slot-admission hook (smtmlp.SlotGate):
// every simulation cell — run, batch, campaign or lease — passes through
// here exactly once. A canceled ctx abandons the wait and returns ctx.Err().
func (s *Scheduler) Acquire(ctx context.Context) (func(), error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t, class := FromContext(ctx)
	w := &waiter{class: class, enqueued: time.Now(), ready: make(chan struct{})}

	s.mu.Lock()
	s.seq++
	w.seq = s.seq
	q := s.queues[t]
	if q == nil {
		q = &tenantQueue{tenant: t}
		s.queues[t] = q
	}
	if class == Interactive {
		q.interactive = append(q.interactive, w)
	} else {
		q.bulk = append(q.bulk, w)
	}
	t.state.queued.Add(1)
	s.dispatch()
	s.mu.Unlock()

	select {
	case <-w.ready:
	case <-ctx.Done():
		s.mu.Lock()
		select {
		case <-w.ready:
			// The grant raced the cancellation: hand the slot straight back.
			s.release(q)
		default:
			q.remove(w)
		}
		s.mu.Unlock()
		t.state.queued.Add(-1)
		return nil, ctx.Err()
	}

	t.state.queued.Add(-1)
	t.state.granted.Add(1)
	wait := time.Since(w.enqueued)
	t.state.queueWaitNS.Add(int64(wait))
	s.queueWait.Observe(wait)
	t.state.inFlight.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			t.state.inFlight.Add(-1)
			s.mu.Lock()
			s.release(q)
			s.mu.Unlock()
		})
	}, nil
}

// release returns q's slot to the pool and re-dispatches. Callers hold s.mu.
func (s *Scheduler) release(q *tenantQueue) {
	q.held--
	s.free++
	s.dispatch()
}

// dispatch grants free slots to waiters until one side runs out. Callers
// hold s.mu.
func (s *Scheduler) dispatch() {
	for s.free > 0 {
		q := s.pick()
		if q == nil {
			return
		}
		var w *waiter
		if len(q.interactive) > 0 {
			w, q.interactive = q.interactive[0], q.interactive[1:]
		} else {
			w, q.bulk = q.bulk[0], q.bulk[1:]
		}
		q.held++
		s.free--
		close(w.ready)
	}
}

// pick selects the tenant to grant the next slot to: least weighted
// occupancy first (ICOUNT), with shares boosted by queued interactive demand
// (DCRA). Ties fall to the tenant with interactive work queued, then to the
// earliest head waiter, so the grant order is a pure function of the
// acquire/release history.
func (s *Scheduler) pick() *tenantQueue {
	var best *tenantQueue
	var bestShare int
	for _, q := range s.queues {
		if len(q.interactive) == 0 && len(q.bulk) == 0 {
			continue
		}
		share := q.tenant.Limits.weight()
		if len(q.interactive) > 0 {
			share *= s.boost
		}
		if best == nil || q.beats(share, best, bestShare) {
			best, bestShare = q, share
		}
	}
	return best
}

// beats reports whether q (at effective share qs) outranks r (at rs) for the
// next grant.
func (q *tenantQueue) beats(qs int, r *tenantQueue, rs int) bool {
	// Weighted occupancy q.held/qs vs r.held/rs, compared in integers.
	if a, b := q.held*rs, r.held*qs; a != b {
		return a < b
	}
	if qi, ri := len(q.interactive) > 0, len(r.interactive) > 0; qi != ri {
		return qi
	}
	return q.head() < r.head()
}

// head is the sequence number of the tenant's next waiter (its FIFO head
// across classes, interactive first).
func (q *tenantQueue) head() uint64 {
	if len(q.interactive) > 0 {
		return q.interactive[0].seq
	}
	return q.bulk[0].seq
}

// remove drops a canceled waiter from its queue. Callers hold s.mu.
func (q *tenantQueue) remove(w *waiter) {
	list := &q.bulk
	if w.class == Interactive {
		list = &q.interactive
	}
	for i, x := range *list {
		if x == w {
			*list = append((*list)[:i], (*list)[i+1:]...)
			return
		}
	}
}

// QueueWaitHistogram exposes the scheduler's pooled queue-wait histogram;
// the server renders it on /metrics.
func (s *Scheduler) QueueWaitHistogram() *metrics.Histogram { return &s.queueWait }

// Queued reports the number of parked waiters (all tenants), a test and
// metrics aid.
func (s *Scheduler) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, q := range s.queues {
		n += len(q.interactive) + len(q.bulk)
	}
	return n
}

// Held reports the slots currently granted.
func (s *Scheduler) Held() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.capacity - s.free
}

// Snapshot lists per-tenant occupancy for debugging, sorted by tenant name.
func (s *Scheduler) Snapshot() []struct {
	Name   string
	Held   int
	Queued int
} {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]struct {
		Name   string
		Held   int
		Queued int
	}, 0, len(s.queues))
	for _, q := range s.queues {
		out = append(out, struct {
			Name   string
			Held   int
			Queued int
		}{q.tenant.Name, q.held, len(q.interactive) + len(q.bulk)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
