package tenant

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync/atomic"
)

// Config is the tenants.json file format:
//
//	{
//	  "slots": 4,
//	  "interactive_boost": 8,
//	  "tenants": [
//	    {"key": "k-ada", "name": "ada", "weight": 4, "rate": 50, "burst": 100,
//	     "max_inflight": 8, "max_campaigns": 2, "max_leases": 4},
//	    {"key": "k-bulk", "name": "bulk", "weight": 1, "rate": 5,
//	     "max_inflight": 64, "max_leases": 1}
//	  ]
//	}
//
// Slots pins the scheduler's engine-slot capacity (0 = the engine's
// parallelism); InteractiveBoost is the DCRA-style share multiplier applied
// to tenants with interactive work queued (0 = DefaultBoost). Every tenant
// limit is optional; zero means unlimited (weight 0 means 1).
type Config struct {
	Slots            int            `json:"slots,omitempty"`
	InteractiveBoost int            `json:"interactive_boost,omitempty"`
	Tenants          []TenantConfig `json:"tenants"`
}

// TenantConfig is one tenant entry of the file: the API key, the public
// name, and the admission/scheduling limits (inlined so the file stays
// flat).
type TenantConfig struct {
	Key  string `json:"key"`
	Name string `json:"name"`
	Limits
}

// validate rejects configs that could not be enforced coherently.
func (c *Config) validate() error {
	if len(c.Tenants) == 0 {
		return errors.New("tenant config has no tenants")
	}
	if c.Slots < 0 || c.InteractiveBoost < 0 {
		return errors.New("slots and interactive_boost must be >= 0")
	}
	keys := make(map[string]bool, len(c.Tenants))
	names := make(map[string]bool, len(c.Tenants))
	for i, tc := range c.Tenants {
		if tc.Key == "" || tc.Name == "" {
			return fmt.Errorf("tenant %d: key and name are required", i)
		}
		if keys[tc.Key] {
			return fmt.Errorf("tenant %q: duplicate key", tc.Name)
		}
		if names[tc.Name] {
			return fmt.Errorf("tenant %q: duplicate name", tc.Name)
		}
		keys[tc.Key], names[tc.Name] = true, true
		if tc.Weight < 0 || tc.Rate < 0 || tc.Burst < 0 ||
			tc.MaxInFlight < 0 || tc.MaxCampaigns < 0 || tc.MaxLeases < 0 {
			return fmt.Errorf("tenant %q: limits must be >= 0", tc.Name)
		}
	}
	return nil
}

// Table is the resolved tenant set behind an atomic pointer: Resolve reads
// it lock-free on every request, Reload swaps it whole. In-flight requests
// hold the *Tenant they resolved, so a swap never changes the limits of work
// already admitted; tenants whose key survives the swap keep their runtime
// state (bucket fill, quota gauges, counters).
type Table struct {
	path  string
	byKey atomic.Pointer[map[string]*Tenant]
	slots atomic.Int64
	boost atomic.Int64
}

// Load reads, validates and installs the tenant config at path. The
// returned table hot-reloads from the same path via Reload.
func Load(path string) (*Table, error) {
	tb := &Table{path: path}
	if err := tb.Reload(); err != nil {
		return nil, err
	}
	return tb, nil
}

// Parse builds a Table from raw config bytes (no backing file; Reload
// fails). It is the test seam behind Load.
func Parse(data []byte) (*Table, error) {
	tb := &Table{}
	if err := tb.install(data); err != nil {
		return nil, err
	}
	return tb, nil
}

// Reload re-reads the table's backing file and atomically swaps the tenant
// set. On any error (unreadable file, invalid config) the current table
// stays installed untouched, so a bad edit plus SIGHUP cannot take the
// service's tenancy down.
func (tb *Table) Reload() error {
	if tb.path == "" {
		return errors.New("tenant table has no backing file to reload")
	}
	data, err := os.ReadFile(tb.path)
	if err != nil {
		return fmt.Errorf("reloading tenants: %w", err)
	}
	return tb.install(data)
}

// install parses, validates and swaps in a config, adopting runtime state
// from the previous table by key.
func (tb *Table) install(data []byte) error {
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("parsing tenants: %w", err)
	}
	if err := cfg.validate(); err != nil {
		return fmt.Errorf("invalid tenants: %w", err)
	}
	old := tb.byKey.Load()
	next := make(map[string]*Tenant, len(cfg.Tenants))
	for _, tc := range cfg.Tenants {
		t := &Tenant{Key: tc.Key, Name: tc.Name, Limits: tc.Limits, state: &state{}}
		if old != nil {
			if prev, ok := (*old)[tc.Key]; ok {
				t.state = prev.state // counters and bucket fill carry over
			}
		}
		t.state.bucket.Configure(tc.Rate, tc.Burst)
		next[tc.Key] = t
	}
	tb.byKey.Store(&next)
	tb.slots.Store(int64(cfg.Slots))
	tb.boost.Store(int64(cfg.InteractiveBoost))
	return nil
}

// Resolve maps an API key to its tenant.
func (tb *Table) Resolve(key string) (*Tenant, bool) {
	m := tb.byKey.Load()
	if m == nil {
		return nil, false
	}
	t, ok := (*m)[key]
	return t, ok
}

// Tenants lists the current tenant set sorted by name, for deterministic
// metrics rendering.
func (tb *Table) Tenants() []*Tenant {
	m := tb.byKey.Load()
	if m == nil {
		return nil
	}
	out := make([]*Tenant, 0, len(*m))
	for _, t := range *m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Slots is the configured scheduler capacity (0 = use the engine's
// parallelism); Boost is the configured interactive share multiplier (0 =
// DefaultBoost).
func (tb *Table) Slots() int { return int(tb.slots.Load()) }
func (tb *Table) Boost() int { return int(tb.boost.Load()) }
