package tenant

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
		ok   bool
	}{
		{"minimal", `{"tenants":[{"key":"k1","name":"a"}]}`, true},
		{"full", `{"slots":2,"interactive_boost":4,"tenants":[
			{"key":"k1","name":"a","weight":4,"rate":10,"burst":20,
			 "max_inflight":8,"max_campaigns":2,"max_leases":3}]}`, true},
		{"empty", `{"tenants":[]}`, false},
		{"no key", `{"tenants":[{"name":"a"}]}`, false},
		{"no name", `{"tenants":[{"key":"k1"}]}`, false},
		{"dup key", `{"tenants":[{"key":"k1","name":"a"},{"key":"k1","name":"b"}]}`, false},
		{"dup name", `{"tenants":[{"key":"k1","name":"a"},{"key":"k2","name":"a"}]}`, false},
		{"negative rate", `{"tenants":[{"key":"k1","name":"a","rate":-1}]}`, false},
		{"negative slots", `{"slots":-1,"tenants":[{"key":"k1","name":"a"}]}`, false},
		{"garbage", `{"tenants":`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.json))
			if (err == nil) != tc.ok {
				t.Fatalf("Parse: err=%v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestTableResolve(t *testing.T) {
	tb, err := Parse([]byte(`{"tenants":[{"key":"k1","name":"a","weight":3}]}`))
	if err != nil {
		t.Fatal(err)
	}
	ten, ok := tb.Resolve("k1")
	if !ok || ten.Name != "a" || ten.Limits.Weight != 3 {
		t.Fatalf("Resolve(k1) = %+v, %v", ten, ok)
	}
	if _, ok := tb.Resolve("nope"); ok {
		t.Fatal("unknown key resolved")
	}
	if _, ok := tb.Resolve(""); ok {
		t.Fatal("empty key resolved")
	}
}

// TestReloadSwapsAtomically proves the SIGHUP contract: a reload installs
// new limits for new resolutions, keeps runtime state (bucket fill, quota
// gauges) for keys that survive, drops removed keys, and a bad config leaves
// the old table untouched.
func TestReloadSwapsAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.json")
	write := func(s string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(s), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(`{"tenants":[
		{"key":"k1","name":"a","rate":1,"burst":2,"max_inflight":4},
		{"key":"k2","name":"b"}]}`)
	tb, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}

	// Drain a's bucket and hold two of its cells: runtime state to carry over.
	oldA, _ := tb.Resolve("k1")
	now := time.Now()
	oldA.TakeToken(now)
	oldA.TakeToken(now)
	if ok, _ := oldA.TakeToken(now); ok {
		t.Fatal("burst of 2 admitted a third request")
	}
	if !oldA.AcquireCells(2) {
		t.Fatal("AcquireCells(2) refused under max_inflight=4")
	}

	write(`{"tenants":[{"key":"k1","name":"a","rate":1,"burst":2,"max_inflight":2}]}`)
	if err := tb.Reload(); err != nil {
		t.Fatal(err)
	}
	newA, ok := tb.Resolve("k1")
	if !ok {
		t.Fatal("k1 lost on reload")
	}
	if newA == oldA {
		t.Fatal("reload did not install a fresh Tenant value")
	}
	if newA.Limits.MaxInFlight != 2 {
		t.Fatalf("new limits not installed: %+v", newA.Limits)
	}
	// The empty bucket carried over: still rate-limited right after reload.
	if ok, retry := newA.TakeToken(now); ok || retry <= 0 {
		t.Fatalf("bucket fill not adopted: ok=%v retry=%v", ok, retry)
	}
	// The in-flight gauge carried over: the 2 old cells fill the new quota.
	if newA.AcquireCells(1) {
		t.Fatal("quota gauge not adopted across reload")
	}
	// Work admitted before the swap releases against the same state.
	oldA.ReleaseCells(2)
	if !newA.AcquireCells(1) {
		t.Fatal("release through the old tenant did not free the shared gauge")
	}
	if _, ok := tb.Resolve("k2"); ok {
		t.Fatal("removed key still resolves")
	}

	// A bad edit must not take the table down.
	write(`{"tenants":[`)
	if err := tb.Reload(); err == nil {
		t.Fatal("Reload accepted a truncated config")
	}
	if _, ok := tb.Resolve("k1"); !ok {
		t.Fatal("failed reload clobbered the installed table")
	}
}

func TestBucketRefillAndRetryAfter(t *testing.T) {
	b := NewBucket(2, 2) // 2 tokens/sec, burst 2
	t0 := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := b.Take(t0); !ok {
			t.Fatalf("burst token %d refused", i)
		}
	}
	ok, retry := b.Take(t0)
	if ok {
		t.Fatal("empty bucket admitted")
	}
	// One token refills in exactly 1/rate = 500ms: the honest Retry-After.
	if want := 500 * time.Millisecond; retry != want {
		t.Fatalf("retry = %v, want %v", retry, want)
	}
	// Waiting exactly that long is guaranteed to yield one token...
	if ok, _ := b.Take(t0.Add(retry)); !ok {
		t.Fatal("token not available after the advertised Retry-After")
	}
	// ...and only one.
	if ok, _ := b.Take(t0.Add(retry)); ok {
		t.Fatal("second token appeared early")
	}
	// Refill caps at burst: after a long idle stretch, exactly 2 tokens.
	late := t0.Add(time.Hour)
	b.Take(late)
	b.Take(late)
	if ok, _ := b.Take(late); ok {
		t.Fatal("bucket refilled beyond burst")
	}
}

func TestBucketUnlimitedAndDefaults(t *testing.T) {
	b := NewBucket(0, 0)
	for i := 0; i < 100; i++ {
		if ok, _ := b.Take(time.Now()); !ok {
			t.Fatal("unlimited bucket refused")
		}
	}
	// Burst defaults to max(1, rate).
	b = NewBucket(0.5, 0)
	if ok, _ := b.Take(time.Unix(0, 0)); !ok {
		t.Fatal("default burst below 1")
	}
	if ok, _ := b.Take(time.Unix(0, 0)); ok {
		t.Fatal("default burst above 1 for sub-1 rate")
	}
}

func TestQuotaCells(t *testing.T) {
	ten := &Tenant{Name: "q", Limits: Limits{MaxInFlight: 3}, state: &state{}}
	if !ten.AcquireCells(2) || !ten.AcquireCells(1) {
		t.Fatal("quota refused within bound")
	}
	if ten.AcquireCells(1) {
		t.Fatal("quota admitted beyond bound")
	}
	ten.ReleaseCells(1)
	if !ten.AcquireCells(1) {
		t.Fatal("released cell not reusable")
	}
	// A batch bigger than the whole quota is refused without reserving.
	ten.ReleaseCells(3)
	if ten.AcquireCells(4) {
		t.Fatal("oversized batch admitted")
	}
	if !ten.AcquireCells(3) {
		t.Fatal("refused batch leaked a reservation")
	}
}

func TestAnonymousContextDefaults(t *testing.T) {
	ten, class := FromContext(context.Background())
	if ten != Anonymous || class != Bulk {
		t.Fatalf("bare context = %v/%v, want Anonymous/Bulk", ten.Name, class)
	}
	if ok, _ := Anonymous.TakeToken(time.Now()); !ok {
		t.Fatal("Anonymous is rate-limited")
	}
	if !Anonymous.AcquireCells(1 << 20) {
		t.Fatal("Anonymous has a cell quota")
	}
	Anonymous.ReleaseCells(1 << 20)

	other := &Tenant{Name: "x", state: &state{}}
	ctx := NewContext(context.Background(), other, Interactive)
	got, class := FromContext(ctx)
	if got != other || class != Interactive {
		t.Fatalf("FromContext = %v/%v", got.Name, class)
	}
}
