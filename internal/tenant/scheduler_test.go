package tenant

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testTenant builds a tenant with runtime state, outside any table.
func testTenant(name string, weight int) *Tenant {
	return &Tenant{Key: "k-" + name, Name: name, Limits: Limits{Weight: weight}, state: &state{}}
}

// grantHarness drives a Scheduler deterministically: waiters are enqueued
// one at a time (each confirmed parked before the next), slots are released
// one at a time, and every grant reports its label on one channel — so the
// observed grant trace is a pure function of the acquire/release history.
type grantHarness struct {
	t      *testing.T
	s      *Scheduler
	grants chan string
	mu     sync.Mutex
	rel    map[string]func()
}

func newHarness(t *testing.T, s *Scheduler) *grantHarness {
	return &grantHarness{t: t, s: s, grants: make(chan string, 128), rel: make(map[string]func())}
}

// acquire starts one Acquire in a goroutine and waits until it is either
// granted (label appears on grants... left there for trace assertion) or
// parked in the queue.
func (h *grantHarness) acquire(label string, ten *Tenant, class Class) {
	h.t.Helper()
	before, beforeQ := h.s.Held(), h.s.Queued()
	go func() {
		release, err := h.s.Acquire(NewContext(context.Background(), ten, class))
		if err != nil {
			h.t.Errorf("Acquire(%s): %v", label, err)
			return
		}
		h.mu.Lock()
		h.rel[label] = release
		h.mu.Unlock()
		h.grants <- label
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if h.s.Held() > before || h.s.Queued() > beforeQ {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	h.t.Fatalf("acquire(%s) neither granted nor parked", label)
}

// release hands back a granted slot.
func (h *grantHarness) release(label string) {
	h.t.Helper()
	h.mu.Lock()
	rel := h.rel[label]
	delete(h.rel, label)
	h.mu.Unlock()
	if rel == nil {
		h.t.Fatalf("release(%s): not granted", label)
	}
	rel()
}

// nextGrant waits for exactly one grant.
func (h *grantHarness) nextGrant() string {
	h.t.Helper()
	select {
	case l := <-h.grants:
		return l
	case <-time.After(5 * time.Second):
		h.t.Fatal("no grant arrived")
		return ""
	}
}

// expect asserts the next grants, in order.
func (h *grantHarness) expect(labels ...string) {
	h.t.Helper()
	for _, want := range labels {
		if got := h.nextGrant(); got != want {
			h.t.Fatalf("grant = %s, want %s", got, want)
		}
	}
}

// noGrant asserts no grant is pending.
func (h *grantHarness) noGrant() {
	h.t.Helper()
	select {
	case l := <-h.grants:
		h.t.Fatalf("unexpected grant %s", l)
	case <-time.After(20 * time.Millisecond):
	}
}

// TestSchedulerPreemptionTrace is the preemption proof as a deterministic
// slot-grant trace: with bulk tenant B saturating a 2-slot engine and more
// bulk queued behind, an interactive arrival from tenant A wins the very
// next released slot — the paper's flush-style preemption expressed at the
// slot boundary, with no cancellation needed.
func TestSchedulerPreemptionTrace(t *testing.T) {
	a, b := testTenant("a", 1), testTenant("b", 1)
	s := NewScheduler(2, 0)
	h := newHarness(t, s)

	// B fills both slots and queues two more bulk cells.
	h.acquire("b1", b, Bulk)
	h.acquire("b2", b, Bulk)
	h.expect("b1", "b2")
	h.acquire("b3", b, Bulk)
	h.acquire("b4", b, Bulk)
	h.noGrant()

	// A's interactive request arrives while the engine is saturated.
	h.acquire("a1", a, Interactive)
	h.noGrant() // no free slot yet: admission is at the slot boundary

	// The next released slot goes to A, not to B's queued bulk cells —
	// B holds 1 slot at share 1; A holds 0 at share 1*boost.
	h.release("b1")
	h.expect("a1")

	// With A served, B's bulk queue resumes in FIFO order.
	h.release("a1")
	h.expect("b3")
	h.release("b2")
	h.expect("b4")

	// A second interactive burst: each release is won by A while its
	// interactive queue is non-empty (bounded wait = one slot release).
	h.acquire("a2", a, Interactive)
	h.acquire("a3", a, Interactive)
	h.release("b3")
	h.expect("a2")
	h.release("b4")
	h.expect("a3")
	h.release("a2")
	h.release("a3")

	if s.Held() != 0 || s.Queued() != 0 {
		t.Fatalf("scheduler not drained: held=%d queued=%d", s.Held(), s.Queued())
	}
	// The interactive tenant's waits were all one-slot bounded, and the
	// metrics saw every grant.
	if g := a.MetricsSnapshot().SlotsGranted; g != 3 {
		t.Fatalf("a granted %d slots, want 3", g)
	}
	if g := b.MetricsSnapshot().SlotsGranted; g != 4 {
		t.Fatalf("b granted %d slots, want 4", g)
	}
}

// TestSchedulerWeightedFairness pins the ICOUNT-style weighted pick: with
// tenants at weight 2:1 both keeping the queue full, grants alternate so
// the heavy tenant holds two slots for every one of the light tenant's.
func TestSchedulerWeightedFairness(t *testing.T) {
	heavy, light := testTenant("heavy", 2), testTenant("light", 1)
	s := NewScheduler(3, 0)
	h := newHarness(t, s)

	// Park 6 cells each behind a full engine... first fill the 3 slots.
	// Weighted occupancy decides every grant: h:0/2 vs l:0/1 tie -> earlier
	// waiter (h1); then h:1/2=0.5 vs l:0/1=0 -> l1; then h:1/2 vs l:1/1 -> h2.
	h.acquire("h1", heavy, Bulk)
	h.expect("h1")
	h.acquire("l1", light, Bulk)
	h.expect("l1")
	h.acquire("h2", heavy, Bulk)
	h.expect("h2")
	for i := 3; i <= 5; i++ {
		h.acquire(fmt.Sprintf("h%d", i), heavy, Bulk)
	}
	for i := 2; i <= 4; i++ {
		h.acquire(fmt.Sprintf("l%d", i), light, Bulk)
	}
	h.noGrant()

	// Steady state at held h=2, l=1: a released heavy slot re-grants heavy
	// (1/2 < 1/1), a released light slot re-grants light (2/2 > 0/1... i.e.
	// light's 0 occupancy wins). The 2:1 split is stable.
	h.release("h1")
	h.expect("h3")
	h.release("l1")
	h.expect("l2")
	h.release("h2")
	h.expect("h4")
	h.release("h3")
	h.expect("h5")
	h.release("l2")
	h.expect("l3")
}

// TestSchedulerCancellation proves a canceled waiter leaves the queue
// without consuming a slot, and a cancellation racing its own grant returns
// the slot to the pool.
func TestSchedulerCancellation(t *testing.T) {
	a := testTenant("a", 1)
	s := NewScheduler(1, 0)

	relA, err := s.Acquire(NewContext(context.Background(), a, Bulk))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(NewContext(context.Background(), a, Bulk))
	errc := make(chan error, 1)
	go func() {
		_, err := s.Acquire(ctx)
		errc <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Queued() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("canceled Acquire returned %v", err)
	}
	if s.Queued() != 0 {
		t.Fatalf("canceled waiter still queued")
	}

	// The held slot is unaffected; releasing it leaves a clean pool.
	relA()
	if s.Held() != 0 {
		t.Fatalf("held = %d after drain", s.Held())
	}

	// An already-canceled context never waits.
	canceled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := s.Acquire(NewContext(canceled, a, Bulk)); err == nil {
		t.Fatal("Acquire succeeded on a dead context")
	}
	if s.Held() != 0 || s.Queued() != 0 {
		t.Fatalf("dead-context Acquire leaked state: held=%d queued=%d", s.Held(), s.Queued())
	}
}

// TestSchedulerConcurrencyInvariant hammers the scheduler from many
// goroutines across tenants and classes, asserting the slot pool never
// overflows and fully drains — the -race lane's target.
func TestSchedulerConcurrencyInvariant(t *testing.T) {
	tenants := []*Tenant{testTenant("a", 1), testTenant("b", 2), testTenant("c", 4)}
	const capacity = 4
	s := NewScheduler(capacity, 0)
	var held, peak atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ten := tenants[g%len(tenants)]
			class := Bulk
			if g%4 == 0 {
				class = Interactive
			}
			ctx := NewContext(context.Background(), ten, class)
			for i := 0; i < 50; i++ {
				release, err := s.Acquire(ctx)
				if err != nil {
					t.Error(err)
					return
				}
				h := held.Add(1)
				for {
					p := peak.Load()
					if h <= p || peak.CompareAndSwap(p, h) {
						break
					}
				}
				held.Add(-1)
				release()
			}
		}(g)
	}
	wg.Wait()
	if p := peak.Load(); p > capacity {
		t.Fatalf("peak held %d > capacity %d", p, capacity)
	}
	if s.Held() != 0 || s.Queued() != 0 {
		t.Fatalf("not drained: held=%d queued=%d", s.Held(), s.Queued())
	}
	var granted int64
	for _, ten := range tenants {
		granted += ten.MetricsSnapshot().SlotsGranted
	}
	if granted != 32*50 {
		t.Fatalf("granted %d slots, want %d", granted, 32*50)
	}
}

// TestSchedulerReleaseIdempotent pins that a double release cannot inflate
// the pool.
func TestSchedulerReleaseIdempotent(t *testing.T) {
	a := testTenant("a", 1)
	s := NewScheduler(1, 0)
	release, err := s.Acquire(NewContext(context.Background(), a, Bulk))
	if err != nil {
		t.Fatal(err)
	}
	release()
	release()
	if s.Held() != 0 {
		t.Fatalf("held = %d", s.Held())
	}
	if got := s.Capacity() - s.Held(); got != 1 {
		t.Fatalf("free = %d, want 1", got)
	}
}
