package tenant

import (
	"sync"
	"time"
)

// Bucket is a token bucket: capacity `burst` tokens refilled at `rate`
// tokens/second. Take spends one token per admitted request; an empty bucket
// refuses and reports how long until one token has refilled — the honest
// Retry-After the service surfaces on 429 responses (honest because a client
// that waits exactly that long is guaranteed a token, absent competing
// traffic from its own tenant).
//
// Time is passed in rather than read from the clock, so admission tests can
// drive the bucket deterministically.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 means unlimited
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time // time of the last refill accounting
}

// NewBucket builds a full bucket. A rate <= 0 makes the bucket unlimited; a
// burst <= 0 defaults to max(1, rate) — at least one request, and up to one
// second of refill, may burst.
func NewBucket(rate, burst float64) *Bucket {
	b := &Bucket{}
	b.Configure(rate, burst)
	return b
}

// Configure resets the bucket's rate and burst, preserving the current fill
// level (clamped to the new burst). It is what a hot reload applies to an
// adopted bucket: new limits take effect immediately without handing the
// tenant a free full bucket.
func (b *Bucket) Configure(rate, burst float64) {
	if burst <= 0 {
		burst = 1
		if rate > 1 {
			burst = rate
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	fresh := b.rate == 0 && b.burst == 0 && b.last.IsZero()
	b.rate = rate
	b.burst = burst
	if fresh {
		b.tokens = burst // a new bucket starts full
	} else if b.tokens > burst {
		b.tokens = burst
	}
}

// Take refills the bucket for the time elapsed since the last call and
// spends one token. When no token is available it spends nothing and returns
// how long until one has refilled.
func (b *Bucket) Take(now time.Time) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rate <= 0 {
		return true, 0
	}
	if !b.last.IsZero() {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens += dt * b.rate
			if b.tokens > b.burst {
				b.tokens = b.burst
			}
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.rate // seconds until one whole token
	return false, time.Duration(need * float64(time.Second))
}
