// Package tenant turns the one shared Engine behind internal/server into a
// fair, quota-enforced multi-tenant service. It is the paper's fetch-slot
// allocation problem restated one layer up: competing tenants stand in for
// competing hardware threads, engine slots (concurrent simulations) stand in
// for fetch slots, and a single bulk tenant hogging the engine is exactly the
// memory-hogging thread the MLP-aware fetch policies exist to contain.
//
// The package provides three layers:
//
//   - identity: API-key tenants loaded from a JSON config into a Table that
//     middleware resolves per request (and hot-reloads on SIGHUP). Without a
//     config there is a single Anonymous tenant with no limits — the
//     single-tenant server behaves exactly as before.
//   - admission: per-tenant token buckets (rate limits with an honest
//     Retry-After from the refill rate) and concurrent-work quotas (in-flight
//     cells, active campaigns, active leases), enforced at the HTTP boundary
//     before any simulation is queued.
//   - scheduling: a weighted Scheduler over per-tenant FIFO queues admitting
//     simulations one engine slot at a time — an ICOUNT-style
//     least-weighted-occupancy pick with DCRA-style dynamic share scaling
//     (see scheduler.go for the explicit mapping onto the paper's policies).
package tenant

import (
	"context"
	"sync/atomic"
	"time"
)

// Class is the scheduling class of one admitted request. Interactive work
// (/v1/run) preempts Bulk work (batches, campaign cells, fleet lease cells)
// at the engine-slot boundary.
type Class int

const (
	// Bulk is throughput traffic: batches, campaign cells, lease cells.
	Bulk Class = iota
	// Interactive is latency-sensitive traffic: single /v1/run requests.
	Interactive
)

// String implements fmt.Stringer.
func (c Class) String() string {
	if c == Interactive {
		return "interactive"
	}
	return "bulk"
}

// Limits is a tenant's static configuration: its scheduler weight, its
// token-bucket rate limit and its concurrent-work quotas. Zero values mean
// "unlimited" (and weight 0 means weight 1), so the zero Limits is the fully
// open single-tenant behavior.
type Limits struct {
	// Weight is the tenant's scheduler share relative to other tenants
	// (like a thread's fetch share); 0 means 1.
	Weight int `json:"weight,omitempty"`
	// Rate is the request admission rate in requests/second (token-bucket
	// refill); 0 disables rate limiting.
	Rate float64 `json:"rate,omitempty"`
	// Burst is the token-bucket capacity; 0 means max(1, Rate).
	Burst float64 `json:"burst,omitempty"`
	// MaxInFlight bounds the tenant's concurrently admitted simulation cells
	// across /v1/run and /v1/batch; 0 is unlimited.
	MaxInFlight int `json:"max_inflight,omitempty"`
	// MaxCampaigns bounds the tenant's concurrently running campaigns; 0 is
	// unlimited.
	MaxCampaigns int `json:"max_campaigns,omitempty"`
	// MaxLeases bounds the tenant's concurrently running work leases; 0 is
	// unlimited.
	MaxLeases int `json:"max_leases,omitempty"`
}

// weight resolves the zero default.
func (l Limits) weight() int {
	if l.Weight <= 0 {
		return 1
	}
	return l.Weight
}

// Tenant is one resolved identity. In-flight requests hold the *Tenant they
// were admitted under; a hot reload installs fresh Tenant values (new Limits)
// that adopt the old runtime state, so work already admitted finishes under
// the limits it was admitted with while its counters stay continuous.
type Tenant struct {
	// Key is the API key (secret); Name is the public label used in metrics.
	Key  string `json:"key"`
	Name string `json:"name"`
	// Limits are the admission and scheduling bounds this tenant was loaded
	// with.
	Limits Limits `json:"limits"`

	state *state
}

// state is the runtime half of a tenant: the token bucket and the live
// counters. It survives hot reloads (adopted by key), which is what keeps
// quotas and metrics continuous across a SIGHUP.
type state struct {
	bucket Bucket

	inFlight atomic.Int64 // engine slots held right now
	queued   atomic.Int64 // waiters parked in the scheduler
	cells    atomic.Int64 // admitted /v1/run + /v1/batch cells not yet finished

	admitted    atomic.Int64 // requests past admission
	rateLimited atomic.Int64 // requests refused by the token bucket
	quotaDenied atomic.Int64 // requests refused by a concurrency quota
	granted     atomic.Int64 // engine slots granted by the scheduler
	queueWaitNS atomic.Int64 // total time waiters spent queued for a slot
}

// Anonymous is the implicit tenant of a server running without a tenant
// table: no rate limit, no quotas, weight 1. It is also what FromContext
// returns when no tenant was attached, so untenanted code paths need no nil
// checks.
var Anonymous = &Tenant{Name: "anonymous", state: &state{}}

// TakeToken asks the tenant's rate limiter for one admission token at time
// now. It reports whether the request may proceed and, when it may not, how
// long until the bucket refills one token (the honest Retry-After).
func (t *Tenant) TakeToken(now time.Time) (bool, time.Duration) {
	if t.Limits.Rate <= 0 {
		return true, 0
	}
	return t.state.bucket.Take(now)
}

// AcquireCells reserves n in-flight simulation cells against MaxInFlight,
// reporting false (and reserving nothing) when the quota would be exceeded.
func (t *Tenant) AcquireCells(n int) bool {
	limit := t.Limits.MaxInFlight
	for {
		cur := t.state.cells.Load()
		if limit > 0 && cur+int64(n) > int64(limit) {
			return false
		}
		if t.state.cells.CompareAndSwap(cur, cur+int64(n)) {
			return true
		}
	}
}

// ReleaseCells returns n reserved cells.
func (t *Tenant) ReleaseCells(n int) { t.state.cells.Add(-int64(n)) }

// CountAdmitted, CountRateLimited and CountQuotaDenied record admission
// outcomes for /metrics.
func (t *Tenant) CountAdmitted() bool { t.state.admitted.Add(1); return true }
func (t *Tenant) CountRateLimited()   { t.state.rateLimited.Add(1) }
func (t *Tenant) CountQuotaDenied()   { t.state.quotaDenied.Add(1) }

// Metrics is a point-in-time snapshot of one tenant's counters, shaped for
// the /metrics endpoint.
type Metrics struct {
	Name string `json:"name"`
	// InFlight counts engine slots held; Queued counts scheduler waiters;
	// CellsInFlight counts admitted-but-unfinished run/batch cells.
	InFlight      int64 `json:"in_flight"`
	Queued        int64 `json:"queued"`
	CellsInFlight int64 `json:"cells_in_flight"`
	// Admitted requests passed admission; RateLimited and QuotaDenied were
	// refused with 429 rate_limited / quota_exceeded.
	Admitted    int64 `json:"admitted"`
	RateLimited int64 `json:"rate_limited"`
	QuotaDenied int64 `json:"quota_denied"`
	// SlotsGranted counts scheduler grants; QueueWaitMillis is the total time
	// this tenant's work spent queued for a slot.
	SlotsGranted    int64 `json:"slots_granted"`
	QueueWaitMillis int64 `json:"queue_wait_ms"`
}

// MetricsSnapshot reads the tenant's counters.
func (t *Tenant) MetricsSnapshot() Metrics {
	s := t.state
	return Metrics{
		Name:            t.Name,
		InFlight:        s.inFlight.Load(),
		Queued:          s.queued.Load(),
		CellsInFlight:   s.cells.Load(),
		Admitted:        s.admitted.Load(),
		RateLimited:     s.rateLimited.Load(),
		QuotaDenied:     s.quotaDenied.Load(),
		SlotsGranted:    s.granted.Load(),
		QueueWaitMillis: s.queueWaitNS.Load() / int64(time.Millisecond),
	}
}

// ctxKey keys the tenant context value.
type ctxKey struct{}

// ctxValue is the per-request tenancy: who, and at what scheduling class.
type ctxValue struct {
	tenant *Tenant
	class  Class
}

// NewContext attaches the tenant and scheduling class to ctx; the scheduler
// reads them back at the engine-slot boundary via FromContext.
func NewContext(ctx context.Context, t *Tenant, class Class) context.Context {
	return context.WithValue(ctx, ctxKey{}, ctxValue{tenant: t, class: class})
}

// FromContext resolves the request's tenancy; a context without one belongs
// to Anonymous at Bulk class.
func FromContext(ctx context.Context) (*Tenant, Class) {
	if v, ok := ctx.Value(ctxKey{}).(ctxValue); ok {
		return v.tenant, v.class
	}
	return Anonymous, Bulk
}
