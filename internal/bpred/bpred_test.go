package bpred

import "testing"

func TestAlwaysTakenBranchLearned(t *testing.T) {
	p := New(DefaultConfig())
	const pc = 0x100
	const target = 0x200
	mis := 0
	for i := 0; i < 200; i++ {
		// gshare needs one trained counter per distinct history, so allow a
		// warm-up long enough for the history register to saturate.
		if p.Resolve(pc, true, target) && i >= 32 {
			mis++
		}
	}
	if mis != 0 {
		t.Fatalf("always-taken branch mispredicted %d times after warm-up", mis)
	}
}

func TestAlwaysNotTakenBranch(t *testing.T) {
	p := New(DefaultConfig())
	mis := 0
	for i := 0; i < 100; i++ {
		if p.Resolve(0x100, false, 0) && i >= 4 {
			mis++
		}
	}
	if mis != 0 {
		t.Fatalf("never-taken branch mispredicted %d times after warm-up", mis)
	}
}

func TestLoopPatternLearned(t *testing.T) {
	// Taken 7, not-taken 1, repeating: gshare with global history should
	// predict the not-taken iteration most of the time once trained.
	p := New(DefaultConfig())
	mis := 0
	total := 0
	for i := 0; i < 800; i++ {
		taken := i%8 != 7
		m := p.Resolve(0x40, taken, 0x80)
		if i >= 200 {
			total++
			if m {
				mis++
			}
		}
	}
	rate := float64(mis) / float64(total)
	if rate > 0.02 {
		t.Fatalf("loop pattern misprediction rate %.2f too high", rate)
	}
}

func TestBTBMissIsMisprediction(t *testing.T) {
	p := New(DefaultConfig())
	// Train direction to taken on an aliasing PC so the direction counter is
	// warm but the BTB has never seen this branch.
	for i := 0; i < 8; i++ {
		p.Resolve(0x1000, true, 0x2000)
	}
	// A different branch, same gshare direction region possible, fresh BTB
	// entry: first taken resolution must be a misprediction (unknown target).
	if !p.Resolve(0x5555000, true, 0x99999) {
		t.Fatal("first taken execution with unknown BTB target was not a misprediction")
	}
	// Once the direction counters and the BTB entry are trained, the branch
	// predicts cleanly.
	var last bool
	for i := 0; i < 32; i++ {
		last = p.Resolve(0x5555000, true, 0x99999)
	}
	if last {
		t.Fatal("BTB + direction did not learn the branch")
	}
}

func TestBTBTargetChangeMispredicts(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 8; i++ {
		p.Resolve(0x100, true, 0x200)
	}
	if !p.Resolve(0x100, true, 0x300) {
		t.Fatal("changed target not flagged as misprediction")
	}
}

func TestBTBCapacityEviction(t *testing.T) {
	cfg := DefaultConfig()
	p := New(cfg)
	// Fill one BTB set beyond its associativity with distinct taken
	// branches that map to the same set.
	sets := cfg.BTBEntries / cfg.BTBWays
	for w := 0; w <= cfg.BTBWays; w++ {
		pc := uint64(0x1000 + w*sets)
		p.Resolve(pc, true, pc+0x10)
		p.Resolve(pc, true, pc+0x10) // second hit trains direction + keeps entry
	}
	// The LRU victim (first branch) should have been evicted; its next taken
	// execution needs a BTB refill and therefore mispredicts.
	if !p.Resolve(0x1000, true, 0x1010) {
		t.Fatal("expected eviction-induced misprediction")
	}
}

func TestStatsCounting(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 50; i++ {
		p.Resolve(0x10, true, 0x20)
	}
	if p.Lookups != 50 {
		t.Fatalf("Lookups = %d, want 50", p.Lookups)
	}
	if p.MispredictRate() < 0 || p.MispredictRate() > 1 {
		t.Fatalf("MispredictRate out of range: %v", p.MispredictRate())
	}
}

func TestResetStatsKeepsTables(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 50; i++ {
		p.Resolve(0x10, true, 0x20)
	}
	p.ResetStats()
	if p.Lookups != 0 || p.Mispredicts != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
	// Trained tables survive: next resolution is not a misprediction.
	if p.Resolve(0x10, true, 0x20) {
		t.Fatal("ResetStats discarded trained state")
	}
}

func TestRandomBranchesBounded(t *testing.T) {
	p := New(DefaultConfig())
	// A deterministic pseudo-random outcome stream: the predictor cannot do
	// much better than 50%, and must not do dramatically worse.
	x := uint64(0x123456789)
	mis := 0
	const n = 4000
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		taken := x&1 == 1
		if p.Resolve(0x40, taken, 0x80) {
			mis++
		}
	}
	rate := float64(mis) / n
	if rate > 0.65 {
		t.Fatalf("random-branch misprediction rate %.2f implausibly high", rate)
	}
}

func TestMispredictRateNoLookups(t *testing.T) {
	if r := New(DefaultConfig()).MispredictRate(); r != 0 {
		t.Fatalf("empty predictor rate = %v, want 0", r)
	}
}

func TestBadConfigFallsBack(t *testing.T) {
	p := New(Config{})
	if p == nil {
		t.Fatal("New(Config{}) returned nil")
	}
	p.Resolve(0x10, true, 0x20) // must not panic
}
