// Package bpred implements the branch prediction hardware of the baseline
// SMT processor of Table IV: a 2K-entry gshare direction predictor and a
// 256-entry 4-way set-associative branch target buffer (BTB).
//
// The simulator is trace driven, so wrong-path instructions are never
// executed; a misprediction instead gates the thread's fetch until the branch
// resolves (see internal/core). The predictor still matters a great deal:
// per-thread misprediction rates shape how much fetch bandwidth each thread
// can use and therefore how the fetch policies interact.
package bpred

// Config sizes the predictor. The zero value is not useful; use
// DefaultConfig for the paper's baseline.
type Config struct {
	GshareEntries int `json:"gshare_entries"` // number of 2-bit counters (power of two)
	HistoryBits   int `json:"history_bits"`   // global history length
	BTBEntries    int `json:"btb_entries"`    // total BTB entries (power of two)
	BTBWays       int `json:"btb_ways"`       // BTB associativity
}

// DefaultConfig returns the Table IV branch predictor: 2K-entry gshare and a
// 256-entry, 4-way set-associative BTB. The history length is shorter than
// log2(entries) to limit table dilution from hard-to-predict branches, which
// matters because the synthetic workloads concentrate their branches on few
// static sites; eight bits still captures the loop patterns the workload
// models emit.
func DefaultConfig() Config {
	return Config{GshareEntries: 2048, HistoryBits: 8, BTBEntries: 256, BTBWays: 4}
}

type btbEntry struct {
	valid  bool
	tag    uint64
	target uint64
	lru    uint64
}

// Predictor is a gshare + BTB branch predictor for a single hardware thread.
// Each SMT context owns one Predictor (SMTSIM keeps per-thread history).
type Predictor struct {
	cfg     Config
	table   []uint8 // 2-bit saturating counters
	history uint64
	histMax uint64
	btb     [][]btbEntry // [set][way]
	btbSets int
	tick    uint64

	// Statistics.
	Lookups     uint64
	Mispredicts uint64
}

// New returns a predictor sized by cfg with all counters weakly not-taken.
func New(cfg Config) *Predictor {
	if cfg.GshareEntries <= 0 || cfg.BTBEntries <= 0 || cfg.BTBWays <= 0 {
		cfg = DefaultConfig()
	}
	sets := cfg.BTBEntries / cfg.BTBWays
	if sets < 1 {
		sets = 1
	}
	btb := make([][]btbEntry, sets)
	for i := range btb {
		btb[i] = make([]btbEntry, cfg.BTBWays)
	}
	return &Predictor{
		cfg:     cfg,
		table:   make([]uint8, cfg.GshareEntries),
		histMax: (uint64(1) << uint(cfg.HistoryBits)) - 1,
		btb:     btb,
		btbSets: sets,
	}
}

func (p *Predictor) index(pc uint64) int {
	// Instructions are 4-byte aligned; drop the always-zero low bits so the
	// whole table is usable.
	return int(((pc >> 2) ^ p.history) % uint64(len(p.table)))
}

// Predict returns the predicted direction and target for the branch at pc.
// A taken prediction with no BTB target (or a stale target) behaves as a
// misprediction from the pipeline's point of view; callers compare the
// returned values against the actual outcome.
func (p *Predictor) Predict(pc uint64) (taken bool, target uint64, targetValid bool) {
	taken = p.table[p.index(pc)] >= 2
	set := pc % uint64(p.btbSets)
	for i := range p.btb[set] {
		e := &p.btb[set][i]
		if e.valid && e.tag == pc {
			return taken, e.target, true
		}
	}
	return taken, 0, false
}

// Resolve updates the predictor with the actual outcome of the branch at pc
// and reports whether the earlier prediction would have been a misprediction.
// The update models resolution at execute: direction counters, global
// history, and the BTB entry (for taken branches) are all updated.
func (p *Predictor) Resolve(pc uint64, taken bool, target uint64) (mispredicted bool) {
	p.Lookups++
	predTaken, predTarget, tvalid := p.Predict(pc)
	mispredicted = predTaken != taken || (taken && (!tvalid || predTarget != target))

	// Direction counter update.
	idx := p.index(pc)
	c := p.table[idx]
	if taken {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	p.table[idx] = c

	// History update (speculative history repair is folded into resolution in
	// this trace-driven model).
	p.history = ((p.history << 1) | boolBit(taken)) & p.histMax

	// BTB allocation/update for taken branches.
	if taken {
		p.tick++
		set := pc % uint64(p.btbSets)
		victim := 0
		var oldest uint64 = ^uint64(0)
		for i := range p.btb[set] {
			e := &p.btb[set][i]
			if e.valid && e.tag == pc {
				victim = i
				oldest = 0
				break
			}
			if !e.valid {
				victim, oldest = i, 0
				break
			}
			if e.lru < oldest {
				victim, oldest = i, e.lru
			}
		}
		p.btb[set][victim] = btbEntry{valid: true, tag: pc, target: target, lru: p.tick}
	}

	if mispredicted {
		p.Mispredicts++
	}
	return mispredicted
}

// ResetStats zeroes the accuracy counters while keeping the trained tables
// (warm-up support).
func (p *Predictor) ResetStats() { p.Lookups, p.Mispredicts = 0, 0 }

// MispredictRate returns the fraction of resolved branches that were
// mispredicted, or 0 if no branches have resolved.
func (p *Predictor) MispredictRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Lookups)
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
