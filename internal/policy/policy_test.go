package policy

import (
	"testing"

	"smtmlp/internal/bench"
	"smtmlp/internal/core"
	"smtmlp/internal/trace"
)

func mlpPair() []trace.Model {
	return []trace.Model{bench.MustGet("mcf").Model, bench.MustGet("galgel").Model}
}

func runPair(t *testing.T, kind Kind, limiter core.Limiter, n uint64) (*core.Core, core.Result) {
	t.Helper()
	c := core.New(core.DefaultConfig(2), mlpPair(), New(kind), limiter)
	c.Run(n / 2)
	c.ResetStats()
	return c, c.Run(n)
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		ICount: "icount", Stall: "stall", PredStall: "pstall", MLPStall: "mlpstall",
		Flush: "flush", MLPFlush: "mlpflush", BinaryFlush: "binflush",
		MLPFlushAtStall: "mlpflush-rs", BinaryFlushAtStall: "binflush-rs",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
		if New(k).Name() != s {
			t.Errorf("New(%s).Name() = %q", s, New(k).Name())
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	kinds := Kinds()
	if len(kinds) != 9 {
		t.Fatalf("Kinds() has %d entries, want 9", len(kinds))
	}
	for _, k := range kinds {
		got, err := Parse(k.String())
		if err != nil || got != k {
			t.Errorf("Parse(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Fatal("Parse accepted a bogus policy name")
	}
}

func TestKindJSON(t *testing.T) {
	b, err := MLPFlush.MarshalJSON()
	if err != nil || string(b) != `"mlpflush"` {
		t.Fatalf("MarshalJSON = %s, %v", b, err)
	}
	var k Kind
	if err := k.UnmarshalJSON([]byte(`"binflush-rs"`)); err != nil || k != BinaryFlushAtStall {
		t.Fatalf("UnmarshalJSON = %v, %v", k, err)
	}
	// JSON escape sequences are valid string encodings and must decode.
	if err := k.UnmarshalJSON([]byte(`"\u0069count"`)); err != nil || k != ICount {
		t.Fatalf("UnmarshalJSON of escaped name = %v, %v", k, err)
	}
	if err := k.UnmarshalJSON([]byte(`"nope"`)); err == nil {
		t.Fatal("UnmarshalJSON accepted an unknown name")
	}
	if err := k.UnmarshalJSON([]byte(`3`)); err == nil {
		t.Fatal("UnmarshalJSON accepted a non-string")
	}
	if _, err := Kind(99).MarshalJSON(); err == nil {
		t.Fatal("MarshalJSON accepted an unknown kind")
	}
}

func TestPaperAndAlternativesLists(t *testing.T) {
	if len(Paper()) != 6 {
		t.Fatalf("Paper() has %d policies, the main evaluation compares 6", len(Paper()))
	}
	if len(Alternatives()) != 5 {
		t.Fatalf("Alternatives() has %d policies, Section 6.5 compares 5 (a-e)", len(Alternatives()))
	}
	if Alternatives()[0] != Flush || Alternatives()[1] != MLPFlush {
		t.Fatal("alternatives (a) and (b) are flush and mlpflush")
	}
}

func TestNewUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(unknown) did not panic")
		}
	}()
	New(Kind(99))
}

func TestEveryPolicyCompletes(t *testing.T) {
	for _, k := range append(Paper(), Alternatives()...) {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			_, res := runPair(t, k, nil, 20_000)
			for tid, committed := range res.Committed {
				if committed == 0 {
					t.Fatalf("thread %d starved under %s", tid, k)
				}
			}
		})
	}
}

func TestFlushPoliciesFlush(t *testing.T) {
	_, res := runPair(t, Flush, nil, 30_000)
	if res.Flushes[0]+res.Flushes[1] == 0 {
		t.Fatal("flush policy never flushed an MLP-intensive pair")
	}
}

func TestStallPoliciesNeverFlush(t *testing.T) {
	for _, k := range []Kind{Stall, PredStall, MLPStall} {
		_, res := runPair(t, k, nil, 20_000)
		if res.Flushes[0]+res.Flushes[1] != 0 {
			t.Fatalf("%s flushed %v times", k, res.Flushes)
		}
	}
}

func TestStallFreesResources(t *testing.T) {
	_, icount := runPair(t, ICount, nil, 30_000)
	_, stall := runPair(t, Stall, nil, 30_000)
	// Under stall the memory-bound thread (mcf, thread 0) must hold fewer
	// ROB entries on average than under ICOUNT.
	if stall.AvgROBOccupancy[0] >= icount.AvgROBOccupancy[0] {
		t.Fatalf("stall did not reduce the stalled thread's occupancy: %.1f vs %.1f",
			stall.AvgROBOccupancy[0], icount.AvgROBOccupancy[0])
	}
}

func TestFlushFreesMoreThanStall(t *testing.T) {
	_, stall := runPair(t, Stall, nil, 30_000)
	_, flush := runPair(t, Flush, nil, 30_000)
	if flush.AvgROBOccupancy[0] >= stall.AvgROBOccupancy[0] {
		t.Fatalf("flush (%.1f entries) did not free more than stall (%.1f)",
			flush.AvgROBOccupancy[0], stall.AvgROBOccupancy[0])
	}
}

func TestMLPFlushPreservesMLP(t *testing.T) {
	_, flush := runPair(t, Flush, nil, 40_000)
	_, mlpflush := runPair(t, MLPFlush, nil, 40_000)
	// The paper's core claim: the MLP-aware policy exposes more of the
	// memory-bound thread's MLP than plain flush.
	if mlpflush.MLP[0] <= flush.MLP[0] {
		t.Fatalf("MLP-aware flush exposed less MLP than flush: %.2f vs %.2f",
			mlpflush.MLP[0], flush.MLP[0])
	}
	// And the MLP thread runs faster than under flush.
	if mlpflush.IPC[0] <= flush.IPC[0] {
		t.Fatalf("MLP thread slower under mlpflush (%.3f) than flush (%.3f)",
			mlpflush.IPC[0], flush.IPC[0])
	}
}

func TestFlushHelpsPartnerThread(t *testing.T) {
	_, icount := runPair(t, ICount, nil, 30_000)
	_, flush := runPair(t, Flush, nil, 30_000)
	if flush.IPC[1] <= icount.IPC[1] {
		t.Fatalf("partner thread not faster under flush: %.3f vs %.3f", flush.IPC[1], icount.IPC[1])
	}
}

// TestCOTPreventsStarvation: two copies of a miss-dominated benchmark under
// a stall policy would deadlock-starve without continue-oldest-thread; with
// COT both make progress.
func TestCOTPreventsStarvation(t *testing.T) {
	models := []trace.Model{bench.MustGet("mcf").Model, bench.MustGet("equake").Model}
	c := core.New(core.DefaultConfig(2), models, New(Stall), nil)
	res := c.Run(15_000)
	if res.Committed[0] == 0 || res.Committed[1] == 0 {
		t.Fatalf("a thread starved despite COT: %v", res.Committed)
	}
}

func TestStaticPartitionCapsOccupancy(t *testing.T) {
	c, res := runPair(t, ICount, StaticPartition{}, 30_000)
	cap := float64(c.Cfg().ROBSize) / 2
	for tid, occ := range res.AvgROBOccupancy {
		if occ > cap {
			t.Fatalf("thread %d average ROB occupancy %.1f exceeds static share %.0f", tid, occ, cap)
		}
	}
}

func TestStaticPartitionName(t *testing.T) {
	if (StaticPartition{}).Name() != "static" || (DCRA{}).Name() != "dcra" {
		t.Fatal("limiter names wrong")
	}
}

func TestDCRACompletes(t *testing.T) {
	_, res := runPair(t, ICount, DCRA{}, 20_000)
	if res.Committed[0] == 0 || res.Committed[1] == 0 {
		t.Fatalf("DCRA starved a thread: %v", res.Committed)
	}
}

func TestDCRAGivesSlowThreadMore(t *testing.T) {
	_, static := runPair(t, ICount, StaticPartition{}, 30_000)
	_, dcra := runPair(t, ICount, DCRA{}, 30_000)
	// mcf (thread 0) is the memory-intensive thread: DCRA should let it
	// hold more of the machine than a rigid 50% split does on average,
	// without starving the partner.
	if dcra.AvgROBOccupancy[0] <= static.AvgROBOccupancy[0]*0.9 {
		t.Fatalf("DCRA occupancy for the slow thread (%.1f) not above static (%.1f)",
			dcra.AvgROBOccupancy[0], static.AvgROBOccupancy[0])
	}
	if dcra.Committed[1] == 0 {
		t.Fatal("DCRA starved the fast thread")
	}
}

func TestResourceStallAlternativesFlush(t *testing.T) {
	// Alternative (d) flushes only on resource-stall cycles; on a heavily
	// contended MLP pair those occur and produce squashes.
	_, res := runPair(t, MLPFlushAtStall, nil, 40_000)
	if res.Committed[0] == 0 || res.Committed[1] == 0 {
		t.Fatal("alternative (d) starved a thread")
	}
}

func TestBinaryFlushGatesOnlyNoMLP(t *testing.T) {
	// On an MLP-heavy pair the binary predictor mostly predicts MLP, so
	// binflush should flush less than plain flush.
	_, flush := runPair(t, Flush, nil, 30_000)
	_, bin := runPair(t, BinaryFlush, nil, 30_000)
	if bin.Flushes[0] >= flush.Flushes[0] && flush.Flushes[0] > 0 {
		t.Fatalf("binary MLP flush flushed as much as plain flush: %d vs %d",
			bin.Flushes[0], flush.Flushes[0])
	}
}
