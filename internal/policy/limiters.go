package policy

import "smtmlp/internal/core"

// StaticPartition implements the Section 6.6 static resource partitioning
// baseline (Raasch & Reinhardt; the Pentium 4 approach): each of the n
// threads owns a 1/n share of every buffer resource (ROB, LSQ, issue queues
// and rename registers) and can never allocate beyond it; functional units
// remain shared.
type StaticPartition struct{}

// Name implements core.Limiter.
func (StaticPartition) Name() string { return "static" }

// MayDispatch implements core.Limiter.
func (StaticPartition) MayDispatch(c *core.Core, tid int, u *core.Uop) bool {
	cfg := c.Cfg()
	n := c.Threads()
	rob, lsq, iqInt, iqFP, renInt, renFP := c.ThreadResources(tid)
	if rob >= cfg.ROBSize/n {
		return false
	}
	if u.In.Class.IsMem() && lsq >= cfg.LSQSize/n {
		return false
	}
	if u.In.Class.IsFP() {
		if iqFP >= cfg.IQFP/n {
			return false
		}
	} else if iqInt >= cfg.IQInt/n {
		return false
	}
	if u.In.HasDest() {
		if u.In.Class.IsFP() || isFPDest(u) {
			if renFP >= cfg.RenameFP/n {
				return false
			}
		} else if renInt >= cfg.RenameInt/n {
			return false
		}
	}
	return true
}

func isFPDest(u *core.Uop) bool { return u.In.Dest >= 64 }

// DCRA implements dynamically controlled resource allocation in the spirit
// of Cazorla et al. (MICRO 2004): threads with at least one outstanding
// L1 data cache miss are classified "slow" (memory-intensive) and receive a
// fixed larger share of every buffer resource than "fast" threads.
//
// The published mechanism's exact sharing arithmetic is simplified here to a
// 2:1 slow:fast weighting (see DESIGN.md). The property the paper contrasts
// against — DCRA grants memory-intensive threads a fixed extra share
// regardless of how much MLP they actually have — is preserved, which is
// what the Figure 22/23 comparison exercises.
type DCRA struct {
	// SlowWeight is the resource-share weight of slow threads relative to a
	// fast thread's weight of 1. Zero means the default of 2.
	SlowWeight int
}

// Name implements core.Limiter.
func (DCRA) Name() string { return "dcra" }

// MayDispatch implements core.Limiter.
func (d DCRA) MayDispatch(c *core.Core, tid int, u *core.Uop) bool {
	sw := d.SlowWeight
	if sw <= 0 {
		sw = 2
	}
	n := c.Threads()
	hier := c.Hierarchy()
	now := c.Now()

	totalWeight := 0
	myWeight := 1
	for i := 0; i < n; i++ {
		w := 1
		if hier.OutstandingL1Miss(i, now) > 0 {
			w = sw
		}
		totalWeight += w
		if i == tid {
			myWeight = w
		}
	}

	cfg := c.Cfg()
	cap := func(total int) int {
		v := total * myWeight / totalWeight
		if v < 1 {
			v = 1
		}
		return v
	}

	rob, lsq, iqInt, iqFP, renInt, renFP := c.ThreadResources(tid)
	if rob >= cap(cfg.ROBSize) {
		return false
	}
	if u.In.Class.IsMem() && lsq >= cap(cfg.LSQSize) {
		return false
	}
	if u.In.Class.IsFP() {
		if iqFP >= cap(cfg.IQFP) {
			return false
		}
	} else if iqInt >= cap(cfg.IQInt) {
		return false
	}
	if u.In.HasDest() {
		if isFPDest(u) {
			if renFP >= cap(cfg.RenameFP) {
				return false
			}
		} else if renInt >= cap(cfg.RenameInt) {
			return false
		}
	}
	return true
}
