// Package policy implements every SMT fetch policy the paper evaluates
// (Sections 4.3 and 6.5) and the explicit resource partitioning schemes it
// compares against (Section 6.6):
//
//	icount       — ICOUNT 2.4 baseline (Tullsen et al.), no gating
//	stall        — fetch stall on a detected long-latency load
//	               (Tullsen & Brown)
//	pstall       — predictive stall: stall on a front-end-predicted
//	               long-latency load (Cazorla et al.)
//	mlpstall     — MLP-aware stall: predict the long-latency load and its
//	               MLP distance m, fetch m more instructions, then stall
//	flush        — flush on a detected long-latency load ("TM"/"next")
//	mlpflush     — MLP-aware flush: on detection predict distance m; flush
//	               back to m instructions past the load, or keep fetching
//	               up to m, then stall (the paper's headline policy)
//	binflush     — alternative (c): binary MLP predictor; flush only when
//	               no MLP is predicted
//	mlpflush-rs  — alternative (d): MLP distance window, flush past the
//	               initial load on a resource-stall cycle
//	binflush-rs  — alternative (e): binary MLP predictor, flush past the
//	               initial load on a resource-stall cycle
//
// All long-latency-aware policies implement the continue-oldest-thread (COT)
// mechanism of Cazorla et al.: when every thread is stalled on a
// long-latency load, the thread that stalled first keeps fetching. In the
// absence of long-latency loads every policy behaves as ICOUNT (thread
// selection order is built into the core's fetch stage).
package policy

import (
	"encoding/json"
	"fmt"

	"smtmlp/internal/core"
)

// Kind enumerates the fetch policies.
type Kind int

// Fetch policy kinds, in the order the paper's figures present them.
const (
	ICount Kind = iota
	Stall
	PredStall
	MLPStall
	Flush
	MLPFlush
	BinaryFlush        // Section 6.5 alternative (c)
	MLPFlushAtStall    // Section 6.5 alternative (d)
	BinaryFlushAtStall // Section 6.5 alternative (e)
	numKinds
)

// Paper enumerates the six policies of the main evaluation (Figures 9-18).
func Paper() []Kind {
	return []Kind{ICount, Stall, PredStall, MLPStall, Flush, MLPFlush}
}

// Alternatives enumerates the Section 6.5 design space (Figures 20 and 21):
// (a) flush, (b) MLP distance + flush, (c) binary MLP + flush, (d) MLP
// distance + flush at resource stall, (e) binary MLP + flush at resource
// stall.
func Alternatives() []Kind {
	return []Kind{Flush, MLPFlush, BinaryFlush, MLPFlushAtStall, BinaryFlushAtStall}
}

// String returns the policy's short name used throughout the experiments.
func (k Kind) String() string {
	switch k {
	case ICount:
		return "icount"
	case Stall:
		return "stall"
	case PredStall:
		return "pstall"
	case MLPStall:
		return "mlpstall"
	case Flush:
		return "flush"
	case MLPFlush:
		return "mlpflush"
	case BinaryFlush:
		return "binflush"
	case MLPFlushAtStall:
		return "mlpflush-rs"
	case BinaryFlushAtStall:
		return "binflush-rs"
	default:
		return fmt.Sprintf("policy(%d)", int(k))
	}
}

// Kinds enumerates every implemented policy kind in definition order.
func Kinds() []Kind {
	out := make([]Kind, 0, int(numKinds))
	for k := ICount; k < numKinds; k++ {
		out = append(out, k)
	}
	return out
}

// Parse resolves a policy's short name (the String form used throughout the
// experiments, e.g. "mlpflush") back to its Kind.
func Parse(name string) (Kind, error) {
	for k := ICount; k < numKinds; k++ {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("policy: unknown policy %q", name)
}

// MarshalJSON encodes the kind as its short name, keeping the wire format
// stable even if the enum is ever reordered.
func (k Kind) MarshalJSON() ([]byte, error) {
	if k < ICount || k >= numKinds {
		return nil, fmt.Errorf("policy: cannot marshal unknown kind %d", int(k))
	}
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON decodes a short policy name.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return fmt.Errorf("policy: kind must be a JSON string, got %s", data)
	}
	parsed, err := Parse(name)
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// New returns a fresh policy instance of the given kind. Instances carry
// per-run state and must not be shared between cores.
func New(k Kind) core.Policy {
	switch k {
	case ICount:
		return core.ICount{}
	case Stall:
		return &llPolicy{kind: k, onDetect: true}
	case PredStall:
		return &llPolicy{kind: k, onPredict: true}
	case MLPStall:
		return &llPolicy{kind: k, onPredict: true, useDistance: true}
	case Flush:
		return &llPolicy{kind: k, onDetect: true, flushOnTrigger: true}
	case MLPFlush:
		return &llPolicy{kind: k, onDetect: true, useDistance: true, flushOnTrigger: true}
	case BinaryFlush:
		return &llPolicy{kind: k, onDetect: true, useBinary: true, flushOnTrigger: true}
	case MLPFlushAtStall:
		return &llPolicy{kind: k, onDetect: true, useDistance: true, flushAtResourceStall: true}
	case BinaryFlushAtStall:
		return &llPolicy{kind: k, onDetect: true, useBinary: true, flushOnTrigger: true, flushAtResourceStall: true}
	default:
		panic(fmt.Sprintf("policy: unknown kind %d", int(k)))
	}
}

// threadState is the per-thread gating state of llPolicy. The gate and
// active sets are arena-indexed bitmaps (core.UopSet), so the hooks on the
// simulator's hot path do word operations instead of map lookups.
type threadState struct {
	gate       core.UopSet // loads whose completion re-enables fetch
	active     core.UopSet // detected outstanding LLLs (flush-at-stall targets)
	stopSeq    uint64      // fetch window end (valid while gated)
	stallStart int64       // cycle the current gating episode began (COT)
}

// llPolicy is the shared implementation of all long-latency-aware fetch
// policies; the flags select the paper's design points.
type llPolicy struct {
	kind                 Kind
	onDetect             bool // trigger on detected long-latency misses
	onPredict            bool // trigger on front-end miss-pattern predictions
	useDistance          bool // open an MLP-distance fetch window
	useBinary            bool // consult the binary MLP predictor at detection
	flushOnTrigger       bool // flush back to the window end at trigger time
	flushAtResourceStall bool // flush past the initial load on resource stalls

	c  *core.Core
	ts []threadState
}

// Name implements core.Policy.
func (p *llPolicy) Name() string { return p.kind.String() }

// Attach implements core.Policy.
func (p *llPolicy) Attach(c *core.Core) {
	p.c = c
	p.ts = make([]threadState, c.Threads())
	for i := range p.ts {
		p.ts[i] = threadState{
			gate:       c.NewUopSet(),
			active:     c.NewUopSet(),
			stallStart: -1,
		}
	}
}

// stalled reports whether thread tid is gated with an exhausted window.
func (p *llPolicy) stalled(tid int) bool {
	t := &p.ts[tid]
	return t.gate.Len() > 0 && p.c.NextFetchSeq(tid) > t.stopSeq
}

// CanFetch implements core.Policy with the COT escape hatch.
func (p *llPolicy) CanFetch(tid int) bool {
	if !p.stalled(tid) {
		return true
	}
	// Continue the oldest thread: if every thread is stalled on a
	// long-latency load, the one that stalled first keeps allocating.
	best := -1
	var bestStart int64
	for i := 0; i < p.c.Threads(); i++ {
		if !p.stalled(i) {
			return false
		}
		if s := p.ts[i].stallStart; best == -1 || s < bestStart {
			best, bestStart = i, s
		}
	}
	return tid == best
}

// engage gates thread tid behind load u with a fetch window ending at
// stopSeq (never shrinking an existing window).
func (p *llPolicy) engage(u *core.Uop, stopSeq uint64) {
	t := &p.ts[u.Tid]
	if t.gate.Len() == 0 {
		t.stallStart = p.c.Now()
		t.stopSeq = stopSeq
	} else if stopSeq > t.stopSeq {
		t.stopSeq = stopSeq
	}
	t.gate.Add(u)
}

// release removes u from all tracking and clears the episode when the last
// gating load completes.
func (p *llPolicy) release(u *core.Uop) {
	t := &p.ts[u.Tid]
	t.gate.Remove(u)
	t.active.Remove(u)
	if t.gate.Len() == 0 {
		t.stopSeq = 0
		t.stallStart = -1
	}
}

// OnFetch implements core.Policy: prediction-triggered policies gate as soon
// as a predicted long-latency load is fetched.
func (p *llPolicy) OnFetch(u *core.Uop) {
	if !p.onPredict || !u.PredictedLLL {
		return
	}
	m := 0
	if p.useDistance {
		m = p.c.MLPState(u.Tid).Distance.Predict(u.In.PC)
	}
	p.engage(u, u.Seq()+uint64(m))
}

// OnLLLDetected implements core.Policy: detection-triggered policies react
// when the memory system reports an L3/D-TLB miss.
func (p *llPolicy) OnLLLDetected(u *core.Uop) {
	t := &p.ts[u.Tid]
	if p.flushAtResourceStall {
		t.active.Add(u)
	}
	if !p.onDetect {
		return
	}
	if p.useBinary && p.c.MLPState(u.Tid).Binary.Predict(u.In.PC) {
		// MLP predicted: let the thread keep fetching under ICOUNT.
		return
	}
	m := 0
	if p.useDistance {
		m = p.c.MLPState(u.Tid).Distance.Predict(u.In.PC)
	}
	p.engage(u, u.Seq()+uint64(m))
	if p.flushOnTrigger && p.c.NextFetchSeq(u.Tid) > t.stopSeq+1 {
		p.c.FlushAfter(u.Tid, t.stopSeq)
	}
}

// OnLoadComplete implements core.Policy.
func (p *llPolicy) OnLoadComplete(u *core.Uop) { p.release(u) }

// OnSquash implements core.Policy.
func (p *llPolicy) OnSquash(u *core.Uop) { p.release(u) }

// OnResourceStall implements core.Policy: the Section 6.5 "flush at resource
// stall" alternatives free a stalled thread's window when no thread can
// dispatch, keeping the prefetching effect of the in-flight misses.
func (p *llPolicy) OnResourceStall(now int64) {
	if !p.flushAtResourceStall {
		return
	}
	for tid := range p.ts {
		t := &p.ts[tid]
		if t.active.Len() == 0 {
			continue
		}
		// Alternative (d) only flushes threads that are sitting in their
		// post-window stall; alternative (e) flushes any thread with an
		// outstanding detected long-latency load.
		if !p.useBinary && !p.stalled(tid) {
			continue
		}
		// Every set member is live: OnSquash removed flushed loads before
		// their arena slots could be recycled.
		var oldest *core.Uop
		t.active.ForEach(func(u *core.Uop) {
			if oldest == nil || u.Seq() < oldest.Seq() {
				oldest = u
			}
		})
		if oldest == nil {
			continue
		}
		p.c.FlushAfter(tid, oldest.Seq())
		p.engage(oldest, oldest.Seq()) // stall until the initial load returns
		if t.stopSeq > oldest.Seq() {
			t.stopSeq = oldest.Seq()
		}
	}
}
