// Direct unit coverage for the resource limiters (StaticPartition, DCRA):
// the per-resource dispatch-gating arithmetic against cores in known states,
// and end-to-end occupancy invariants on real simulations.
package policy_test

import (
	"testing"

	"smtmlp/internal/bench"
	"smtmlp/internal/core"
	"smtmlp/internal/isa"
	"smtmlp/internal/policy"
	"smtmlp/internal/sim"
	"smtmlp/internal/trace"
)

// freshCore builds an idle two-thread core (zero resource occupancy) on cfg.
func freshCore(cfg core.Config) *core.Core {
	return core.New(cfg, []trace.Model{
		bench.MustGet("mcf").Model,
		bench.MustGet("galgel").Model,
	}, nil, nil)
}

// uop crafts a micro-op of the given class for gating tests.
func uop(class isa.Class, dest int16) *core.Uop {
	return &core.Uop{In: isa.Instr{Class: class, Dest: dest, Src1: isa.RegNone, Src2: isa.RegNone}}
}

func TestLimiterNames(t *testing.T) {
	if (policy.StaticPartition{}).Name() != "static" {
		t.Fatal("StaticPartition name")
	}
	if (policy.DCRA{}).Name() != "dcra" {
		t.Fatal("DCRA name")
	}
}

// TestStaticPartitionGating exercises the per-resource share arithmetic: on
// an idle core a thread may dispatch while its 1/n share is positive, and is
// gated the moment a share resolves to zero entries.
func TestStaticPartitionGating(t *testing.T) {
	lim := policy.StaticPartition{}

	// Generous baseline: every class dispatches on an idle core.
	c := freshCore(core.DefaultConfig(2))
	for _, class := range []isa.Class{isa.IntALU, isa.Load, isa.Store, isa.FPALU, isa.Branch} {
		if !lim.MayDispatch(c, 0, uop(class, isa.RegNone)) {
			t.Fatalf("idle core gated class %v", class)
		}
	}

	// ROB share of zero (ROBSize < threads) gates everything immediately.
	cfg := core.DefaultConfig(2)
	cfg.ROBSize = 1 // share = 1/2 = 0
	if lim.MayDispatch(freshCore(cfg), 0, uop(isa.IntALU, isa.RegNone)) {
		t.Fatal("zero ROB share not gated")
	}

	// LSQ share of zero gates memory ops only.
	cfg = core.DefaultConfig(2)
	cfg.LSQSize = 1
	c = freshCore(cfg)
	if lim.MayDispatch(c, 0, uop(isa.Load, isa.RegNone)) {
		t.Fatal("zero LSQ share did not gate a load")
	}
	if !lim.MayDispatch(c, 0, uop(isa.IntALU, isa.RegNone)) {
		t.Fatal("zero LSQ share gated a non-memory op")
	}

	// Issue-queue shares gate by class: FP queue exhaustion leaves integer
	// ops alone and vice versa.
	cfg = core.DefaultConfig(2)
	cfg.IQFP = 1
	c = freshCore(cfg)
	if lim.MayDispatch(c, 0, uop(isa.FPALU, isa.RegNone)) {
		t.Fatal("zero FP IQ share did not gate an FP op")
	}
	if !lim.MayDispatch(c, 0, uop(isa.IntALU, isa.RegNone)) {
		t.Fatal("zero FP IQ share gated an integer op")
	}
	cfg = core.DefaultConfig(2)
	cfg.IQInt = 1
	c = freshCore(cfg)
	if lim.MayDispatch(c, 0, uop(isa.IntALU, isa.RegNone)) {
		t.Fatal("zero int IQ share did not gate an integer op")
	}
	if !lim.MayDispatch(c, 0, uop(isa.FPALU, isa.RegNone)) {
		t.Fatal("zero int IQ share gated an FP op")
	}

	// Rename-register shares gate only register-writing ops of the matching
	// file (FP destinations live at isa.FPRegBase and up).
	cfg = core.DefaultConfig(2)
	cfg.RenameInt = 1
	c = freshCore(cfg)
	if lim.MayDispatch(c, 0, uop(isa.IntALU, 3)) {
		t.Fatal("zero int rename share did not gate an int-dest op")
	}
	if !lim.MayDispatch(c, 0, uop(isa.IntALU, isa.RegNone)) {
		t.Fatal("zero int rename share gated a destination-less op")
	}
	if !lim.MayDispatch(c, 0, uop(isa.FPALU, isa.FPRegBase+3)) {
		t.Fatal("zero int rename share gated an FP-dest op")
	}
	cfg = core.DefaultConfig(2)
	cfg.RenameFP = 1
	c = freshCore(cfg)
	if lim.MayDispatch(c, 0, uop(isa.FPALU, isa.FPRegBase+3)) {
		t.Fatal("zero FP rename share did not gate an FP-dest op")
	}
	if !lim.MayDispatch(c, 0, uop(isa.IntALU, 3)) {
		t.Fatal("zero FP rename share gated an int-dest op")
	}
}

// TestDCRAGating pins DCRA's distinguishing arithmetic: with no outstanding
// L1 misses every thread weighs 1, and the at-least-one-entry floor keeps
// dispatch open where StaticPartition would deadlock a thread entirely.
func TestDCRAGating(t *testing.T) {
	lim := policy.DCRA{}
	c := freshCore(core.DefaultConfig(2))
	if !lim.MayDispatch(c, 0, uop(isa.Load, 3)) || !lim.MayDispatch(c, 1, uop(isa.FPALU, isa.FPRegBase+1)) {
		t.Fatal("idle core gated under DCRA")
	}

	// ROBSize 1 on two threads: static's share is 0 (gated); DCRA's floor
	// grants one entry, so an idle thread may still dispatch.
	cfg := core.DefaultConfig(2)
	cfg.ROBSize = 1
	c = freshCore(cfg)
	if !lim.MayDispatch(c, 0, uop(isa.IntALU, isa.RegNone)) {
		t.Fatal("DCRA one-entry floor not honored")
	}
	if (policy.StaticPartition{}).MayDispatch(c, 0, uop(isa.IntALU, isa.RegNone)) {
		t.Fatal("static partition contrast broken: zero share dispatched")
	}
}

// TestDCRADefaultSlowWeight pins the zero-value default: DCRA{} behaves
// exactly like an explicit 2:1 slow:fast weighting.
func TestDCRADefaultSlowWeight(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full simulations; skipped in -short")
	}
	r := sim.NewRunner(sim.Params{Instructions: 6_000, Warmup: 1_500, Parallelism: 1})
	cfg := core.DefaultConfig(2)
	w := bench.Workload{Benchmarks: []string{"mcf", "galgel"}}
	def := r.RunWorkload(cfg, w, policy.ICount, policy.DCRA{})
	explicit := r.RunWorkload(cfg, w, policy.ICount, policy.DCRA{SlowWeight: 2})
	if def.Result.Cycles != explicit.Result.Cycles || def.STP != explicit.STP {
		t.Fatalf("DCRA{} (cycles=%d STP=%v) differs from SlowWeight:2 (cycles=%d STP=%v)",
			def.Result.Cycles, def.STP, explicit.Result.Cycles, explicit.STP)
	}
}

// TestStaticPartitionBoundsOccupancy is the end-to-end invariant: under the
// static partitioner no thread's mean ROB occupancy can exceed its 1/n
// share, while an unlimited run of the same workload does exceed it (so the
// limiter demonstrably constrained something).
func TestStaticPartitionBoundsOccupancy(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full simulations; skipped in -short")
	}
	r := sim.NewRunner(sim.Params{Instructions: 8_000, Warmup: 2_000, Parallelism: 1})
	cfg := core.DefaultConfig(2)
	w := bench.Workload{Benchmarks: []string{"mcf", "galgel"}}
	share := float64(cfg.ROBSize / 2)

	limited := r.RunWorkload(cfg, w, policy.ICount, policy.StaticPartition{})
	exceeded := false
	for tid, occ := range limited.Result.AvgROBOccupancy {
		if occ > share {
			t.Fatalf("thread %d mean ROB occupancy %.1f exceeds the static share %.0f", tid, occ, share)
		}
	}
	free := r.RunWorkload(cfg, w, policy.ICount, nil)
	for _, occ := range free.Result.AvgROBOccupancy {
		if occ > share {
			exceeded = true
		}
	}
	if !exceeded {
		t.Skip("unlimited run never exceeded the share at this budget; invariant check vacuous")
	}
}
