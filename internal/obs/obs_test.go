package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"testing"
)

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("want 16 hex digits, got %q, %q", a, b)
	}
	if a == b {
		t.Fatalf("two IDs collided: %q", a)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"WARN": slog.LevelWarn, "warning": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel(loud) accepted")
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hello", KeyRequestID, "abc123")
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("json format did not produce JSON: %v (%s)", err, buf.Bytes())
	}
	if line[KeyRequestID] != "abc123" {
		t.Fatalf("request_id missing from %s", buf.Bytes())
	}

	buf.Reset()
	l, err = NewLogger(&buf, "text", "debug")
	if err != nil {
		t.Fatal(err)
	}
	l.Debug("lowlevel")
	if !bytes.Contains(buf.Bytes(), []byte("lowlevel")) {
		t.Fatalf("debug line suppressed at level debug: %s", buf.Bytes())
	}

	// Levels filter.
	buf.Reset()
	l, err = NewLogger(&buf, "text", "error")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("quiet")
	if buf.Len() != 0 {
		t.Fatalf("info line escaped at level error: %s", buf.Bytes())
	}

	if _, err := NewLogger(&buf, "yaml", "info"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if got := RequestID(ctx); got != "" {
		t.Fatalf("empty context carries %q", got)
	}
	ctx = WithRequestID(ctx, "deadbeef")
	if got := RequestID(ctx); got != "deadbeef" {
		t.Fatalf("RequestID = %q, want deadbeef", got)
	}
}
