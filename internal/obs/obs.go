// Package obs is the service stack's observability toolkit: structured
// logger construction (log/slog, JSON or text), request-ID generation, and
// the header/context conventions that correlate one unit of work across the
// fleet coordinator, the worker's HTTP server and the persistent store.
//
// Conventions:
//
//   - Request IDs are generated at the edge that originates the work — the
//     fleet coordinator for lease traffic, the HTTP server for requests that
//     arrive without one — and travel in the X-Request-Id header. A retried
//     lease is a new delivery and gets a fresh request ID.
//   - Campaign IDs name the long-running unit (a fleet campaign run) and
//     travel in X-Campaign-Id; every delivery of the campaign carries the
//     same value.
//   - Log lines attach these as "request_id" and "campaign_id" attributes,
//     plus "lease_id" where a lease is in play, so one grep correlates both
//     sides of the wire.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Header names for correlation IDs.
const (
	RequestIDHeader  = "X-Request-Id"
	CampaignIDHeader = "X-Campaign-Id"
)

// Log attribute keys. Loggers on both sides of the wire use these exact
// names, so logs from a coordinator and its workers join on the values.
const (
	KeyRequestID  = "request_id"
	KeyCampaignID = "campaign_id"
	KeyLeaseID    = "lease_id"
)

// NewRequestID returns a fresh 16-hex-digit random request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID beats a
		// panic in a logging path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger builds a logger writing to w in the given format ("json" or
// "text") at the given level ("debug", "info", "warn", "error"; empty means
// info). The CLIs route these to stderr so structured logs never interleave
// with the stdout lines existing tooling greps.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	lvl, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want json or text)", format)
}

// Discard returns a logger that drops everything — the default for servers
// and coordinators constructed without an explicit logger, keeping the
// observability layer strictly opt-in.
func Discard() *slog.Logger { return slog.New(slog.DiscardHandler) }

// ctxKey is the private context key type for the request ID.
type ctxKey struct{}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// RequestID returns the request ID carried by ctx ("" when absent).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}
