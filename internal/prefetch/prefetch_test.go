package prefetch

import (
	"testing"
	"testing/quick"
)

func TestStridePredictorLearnsConstantStride(t *testing.T) {
	p := NewStridePredictor(DefaultConfig())
	const pc = 0x100
	addr := uint64(0x1000)
	var stride int64
	var confident bool
	for i := 0; i < 10; i++ {
		stride, confident = p.Observe(pc, addr)
		addr += 64
	}
	if !confident || stride != 64 {
		t.Fatalf("stride=%d confident=%t after 10 constant-stride loads", stride, confident)
	}
}

func TestStridePredictorNotConfidentOnRandom(t *testing.T) {
	p := NewStridePredictor(DefaultConfig())
	x := uint64(99)
	for i := 0; i < 100; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if _, confident := p.Observe(0x100, x); confident {
			t.Fatal("random addresses produced a confident stride")
		}
	}
}

func TestStridePredictorRecovers(t *testing.T) {
	p := NewStridePredictor(DefaultConfig())
	addr := uint64(0)
	for i := 0; i < 8; i++ {
		p.Observe(0x10, addr)
		addr += 64
	}
	// Phase change: new stride. Confidence must decay and re-learn.
	addr = 1 << 20
	var confident bool
	var stride int64
	for i := 0; i < 12; i++ {
		stride, confident = p.Observe(0x10, addr)
		addr += 128
	}
	if !confident || stride != 128 {
		t.Fatalf("did not re-learn new stride: stride=%d confident=%t", stride, confident)
	}
}

func TestStrideZeroNeverConfident(t *testing.T) {
	p := NewStridePredictor(DefaultConfig())
	for i := 0; i < 20; i++ {
		if _, confident := p.Observe(0x10, 0x5000); confident {
			t.Fatal("zero stride reported confident")
		}
	}
}

func constFill(lat int64) FillFunc { return func(uint64) int64 { return lat } }

func TestBuffersAllocateAndHit(t *testing.T) {
	b := NewBuffers(DefaultConfig())
	b.Allocate(100, 1, 0, constFill(50))
	ready, hit := b.Probe(101, 10, constFill(50))
	if !hit {
		t.Fatal("prefetched line not found")
	}
	if ready != 50 {
		t.Fatalf("ready = %d, want 50 (prefetch issued at 0)", ready)
	}
}

func TestBuffersMissOutsideStream(t *testing.T) {
	b := NewBuffers(DefaultConfig())
	b.Allocate(100, 1, 0, constFill(10))
	if _, hit := b.Probe(50, 5, constFill(10)); hit {
		t.Fatal("unrelated line hit a stream buffer")
	}
	if _, hit := b.Probe(100, 5, constFill(10)); hit {
		t.Fatal("the trigger line itself should not be in the buffer (prefetch starts one stride ahead)")
	}
}

func TestBuffersConsumeAndExtend(t *testing.T) {
	cfg := DefaultConfig()
	b := NewBuffers(cfg)
	b.Allocate(100, 1, 0, constFill(10))
	// Hit the 3rd entry (line 103): entries 101-103 are consumed and the
	// buffer extends to keep cfg.Entries lines ahead.
	if _, hit := b.Probe(103, 100, constFill(10)); !hit {
		t.Fatal("line 103 not prefetched")
	}
	// The stream should now cover 104..111.
	if _, hit := b.Probe(111, 200, constFill(10)); !hit {
		t.Fatal("stream did not extend after consumption")
	}
	if _, hit := b.Probe(103, 300, constFill(10)); hit {
		t.Fatal("consumed entry still present")
	}
}

func TestBuffersNegativeStride(t *testing.T) {
	b := NewBuffers(DefaultConfig())
	b.Allocate(1000, -1, 0, constFill(10))
	if _, hit := b.Probe(999, 50, constFill(10)); !hit {
		t.Fatal("descending stream not prefetched")
	}
}

func TestBuffersZeroStrideIgnored(t *testing.T) {
	b := NewBuffers(DefaultConfig())
	b.Allocate(100, 0, 0, constFill(10))
	if b.Allocations != 0 {
		t.Fatal("zero-stride allocation accepted")
	}
}

func TestBuffersLRUVictim(t *testing.T) {
	cfg := Config{Buffers: 2, Entries: 4, StrideEntries: 64, MinConfidence: 2}
	b := NewBuffers(cfg)
	b.Allocate(100, 1, 0, constFill(10))
	b.Allocate(200, 1, 0, constFill(10))
	// Touch stream 1 so stream 2 is LRU.
	b.Probe(101, 20, constFill(10))
	b.Allocate(300, 1, 30, constFill(10))
	if _, hit := b.Probe(201, 40, constFill(10)); hit {
		t.Fatal("LRU stream survived eviction")
	}
	if _, hit := b.Probe(102, 40, constFill(10)); !hit {
		t.Fatal("recently used stream was evicted")
	}
}

func TestBuffersNoDuplicateStreams(t *testing.T) {
	b := NewBuffers(DefaultConfig())
	b.Allocate(100, 1, 0, constFill(10))
	b.Allocate(100, 1, 5, constFill(10)) // same stream again
	if b.Allocations != 1 {
		t.Fatalf("duplicate stream allocated: %d allocations", b.Allocations)
	}
}

func TestBuffersInvalidate(t *testing.T) {
	b := NewBuffers(DefaultConfig())
	b.Allocate(100, 1, 0, constFill(10))
	b.Invalidate()
	if _, hit := b.Probe(101, 10, constFill(10)); hit {
		t.Fatal("invalidated buffer still hits")
	}
}

func TestBuffersInFlightHitWaits(t *testing.T) {
	b := NewBuffers(DefaultConfig())
	b.Allocate(100, 1, 0, constFill(500))
	ready, hit := b.Probe(101, 100, constFill(500))
	if !hit {
		t.Fatal("in-flight prefetch not matched")
	}
	if ready != 500 {
		t.Fatalf("in-flight ready = %d, want 500", ready)
	}
}

func TestQuickStridePredictorConverges(t *testing.T) {
	f := func(pc uint64, start uint64, strideRaw int16) bool {
		stride := int64(strideRaw)
		if stride == 0 {
			stride = 64
		}
		p := NewStridePredictor(DefaultConfig())
		addr := start
		var got int64
		var conf bool
		for i := 0; i < 8; i++ {
			got, conf = p.Observe(pc, addr)
			addr = uint64(int64(addr) + stride)
		}
		return conf && got == stride
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
