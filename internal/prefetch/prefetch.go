// Package prefetch implements the baseline hardware prefetcher of Table IV:
// eight stream buffers of eight entries each, allocated under the guidance of
// a 2K-entry stride predictor indexed by load PC, following the
// predictor-directed stream buffer scheme of Sherwood, Sair and Calder
// (MICRO 2000) with the confidence-based allocation the paper cites.
//
// The package is deliberately independent of the cache model: stream buffers
// operate on cache-line numbers, and the caller supplies a fill function that
// reports how long a prefetch to a given line takes. internal/mem wires the
// prefetcher between the L1 data cache and the rest of the hierarchy.
package prefetch

// Config sizes the prefetcher. DefaultConfig matches the paper's baseline.
type Config struct {
	Buffers       int `json:"buffers"`        // number of stream buffers
	Entries       int `json:"entries"`        // entries (prefetched lines) per buffer
	StrideEntries int `json:"stride_entries"` // stride predictor table entries (power of two)
	MinConfidence int `json:"min_confidence"` // 2-bit confidence threshold for allocating a buffer
}

// DefaultConfig returns the Table IV prefetcher: 8 stream buffers, 8 entries
// each, guided by a 2K-entry stride predictor.
func DefaultConfig() Config {
	return Config{Buffers: 8, Entries: 8, StrideEntries: 2048, MinConfidence: 2}
}

type strideEntry struct {
	valid    bool
	lastAddr uint64
	stride   int64
	conf     int8
}

// StridePredictor is a PC-indexed last-stride predictor with a 2-bit
// confidence counter per entry. It observes every executed load and reports
// whether the load has a stable non-zero stride.
type StridePredictor struct {
	cfg     Config
	entries []strideEntry
}

// NewStridePredictor returns a predictor with cfg.StrideEntries entries.
func NewStridePredictor(cfg Config) *StridePredictor {
	n := cfg.StrideEntries
	if n <= 0 {
		n = DefaultConfig().StrideEntries
	}
	return &StridePredictor{cfg: cfg, entries: make([]strideEntry, n)}
}

// Observe records the load at pc touching addr and returns the predicted
// stride and whether the prediction is confident enough to direct a stream
// buffer allocation.
func (p *StridePredictor) Observe(pc, addr uint64) (stride int64, confident bool) {
	e := &p.entries[pc%uint64(len(p.entries))]
	if !e.valid {
		*e = strideEntry{valid: true, lastAddr: addr}
		return 0, false
	}
	s := int64(addr) - int64(e.lastAddr)
	if s == e.stride {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		if e.conf > 0 {
			e.conf--
		} else {
			e.stride = s
		}
	}
	e.lastAddr = addr
	min := int8(p.cfg.MinConfidence)
	if min <= 0 {
		min = 2
	}
	return e.stride, e.conf >= min && e.stride != 0
}

type bufferEntry struct {
	line  uint64
	ready int64 // cycle the prefetched line arrives
}

type streamBuffer struct {
	valid      bool
	lineStride int64
	entries    []bufferEntry
	lastUse    uint64
}

// Buffers is a set of stream buffers holding prefetched cache lines.
// Probe is checked in parallel with the L1 data cache; a hit supplies the
// line (once its prefetch has arrived) and advances the stream.
type Buffers struct {
	cfg  Config
	bufs []streamBuffer
	tick uint64

	// Statistics.
	Allocations uint64
	Hits        uint64
	Prefetches  uint64
}

// NewBuffers returns an empty stream buffer set sized by cfg.
func NewBuffers(cfg Config) *Buffers {
	if cfg.Buffers <= 0 || cfg.Entries <= 0 {
		cfg = DefaultConfig()
	}
	bufs := make([]streamBuffer, cfg.Buffers)
	for i := range bufs {
		bufs[i].entries = make([]bufferEntry, 0, cfg.Entries)
	}
	return &Buffers{cfg: cfg, bufs: bufs}
}

// FillFunc reports the latency (in cycles) of fetching a line from below the
// L1 data cache, as seen at the time the prefetch is issued.
type FillFunc func(line uint64) int64

// Probe looks line up in every buffer. On a hit it returns the cycle at
// which the data is available (which may be in the future if the prefetch is
// still in flight), consumes the stream up to and including the hit entry,
// and tops the buffer back up with further prefetches issued at time now.
func (b *Buffers) Probe(line uint64, now int64, fill FillFunc) (ready int64, hit bool) {
	for i := range b.bufs {
		sb := &b.bufs[i]
		if !sb.valid {
			continue
		}
		for j := range sb.entries {
			if sb.entries[j].line == line {
				b.Hits++
				b.tick++
				sb.lastUse = b.tick
				ready = sb.entries[j].ready
				// Consume entries up to and including j, then extend the
				// stream so the buffer keeps cfg.Entries lines ahead.
				last := sb.entries[len(sb.entries)-1].line
				sb.entries = append(sb.entries[:0], sb.entries[j+1:]...)
				for len(sb.entries) < b.cfg.Entries {
					next := uint64(int64(last) + sb.lineStride)
					last = next
					b.Prefetches++
					sb.entries = append(sb.entries, bufferEntry{line: next, ready: now + fill(next)})
				}
				return ready, true
			}
		}
	}
	return 0, false
}

// Allocate claims the least recently used buffer for a new stream starting
// one stride beyond line, prefetching cfg.Entries lines. lineStride must be
// non-zero; it is the per-access stride expressed in whole cache lines
// (callers round sub-line strides to ±1 line).
func (b *Buffers) Allocate(line uint64, lineStride int64, now int64, fill FillFunc) {
	if lineStride == 0 {
		return
	}
	// Avoid duplicate streams: if some buffer already covers the next line,
	// leave it alone.
	next := uint64(int64(line) + lineStride)
	for i := range b.bufs {
		sb := &b.bufs[i]
		if !sb.valid {
			continue
		}
		for j := range sb.entries {
			if sb.entries[j].line == next {
				return
			}
		}
	}
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range b.bufs {
		if !b.bufs[i].valid {
			victim, oldest = i, 0
			break
		}
		if b.bufs[i].lastUse < oldest {
			victim, oldest = i, b.bufs[i].lastUse
		}
	}
	_ = oldest
	b.tick++
	b.Allocations++
	sb := &b.bufs[victim]
	sb.valid = true
	sb.lineStride = lineStride
	sb.lastUse = b.tick
	sb.entries = sb.entries[:0]
	cur := int64(line)
	for len(sb.entries) < b.cfg.Entries {
		cur += lineStride
		b.Prefetches++
		sb.entries = append(sb.entries, bufferEntry{line: uint64(cur), ready: now + fill(uint64(cur))})
	}
}

// Invalidate clears all buffers (used between simulation phases in tests).
func (b *Buffers) Invalidate() {
	for i := range b.bufs {
		b.bufs[i].valid = false
		b.bufs[i].entries = b.bufs[i].entries[:0]
	}
}
