// The /v1/work endpoints: the worker half of distributed campaign
// execution. A fleet coordinator (internal/fleet, cmd/smtfleet) partitions a
// campaign's missing cells into leases and delivers each lease to a worker
// with POST /v1/work/lease; the worker executes the cells asynchronously
// through its own per-lease engine (sharing the server's reference cache)
// and the coordinator collects the finished results — plus the
// single-threaded reference profiles the lease needed — with a long-polling
// POST /v1/work/complete.
//
// The protocol is built for an unreliable fleet:
//
//   - Leases are idempotent on lease_id: re-POSTing a lease the worker
//     already holds (the coordinator's 202 got lost) returns the current
//     status without restarting execution.
//   - Results are content-addressed: every cell carries the campaign
//     fingerprint, and the worker verifies it against the request before
//     accepting the lease, so a coordinator/worker version skew cannot
//     poison a store.
//   - In-flight leases are bounded (worker_busy beyond the bound) and every
//     lease carries a TTL; an uncollected lease expires, its execution is
//     canceled and its state dropped, so a dead coordinator cannot pin
//     worker memory.
//   - Workers never see the store. They are pure executors; all persistence
//     and ordering happens at the coordinator, which is what makes retries
//     and duplicate deliveries converge (dedupe-on-append by fingerprint).
//
// The wire is built for throughput on large leases:
//
//   - Request bodies may be gzip-compressed (Content-Encoding: gzip); every
//     /v1/work response carries an X-Work-Gzip: 1 capability header so a
//     coordinator learns it may compress after its first exchange, keeping
//     old coordinators against new workers (and vice versa) working.
//   - /v1/work/complete responses honor Accept-Encoding: gzip, and with
//     Accept: application/x-ndjson the results are streamed one NDJSON line
//     at a time (lease line, then result lines in cell order, then ref
//     lines) instead of one buffered JSON array, so encoding is O(1) in the
//     lease size on both ends of the connection.
//   - Re-POSTing a held lease_id renews its TTL (the heartbeat that keeps a
//     slow-but-alive worker's long lease from being expired mid-execution);
//     a cells-free body {"lease_id": ...} is the cheap renewal form.
package server

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"smtmlp"
	"smtmlp/internal/obs"
	"smtmlp/internal/sim"
	"smtmlp/internal/tenant"
)

// Defaults for the work-lease bounds.
const (
	// DefaultMaxLeases bounds concurrently-held (uncollected) leases.
	DefaultMaxLeases = 4
	// DefaultLeaseTTL is how long an uncollected lease survives before the
	// worker cancels it and drops its state. A coordinator that needs longer
	// renews by re-POSTing the lease_id before the TTL elapses.
	DefaultLeaseTTL = 10 * time.Minute
	// maxCompleteWait caps the long-poll duration of /v1/work/complete; a
	// larger wait_ms is clamped and the effective value returned as the
	// response's wait_ms field.
	maxCompleteWait = 30 * time.Second
	// maxWorkBodyBytes caps a /v1/work request body after gzip decompression
	// (the wire bytes are capped at maxBodyBytes before inflation).
	maxWorkBodyBytes = 8 << 20
	// WorkGzipHeader advertises gzip request-body support on every /v1/work
	// response, so coordinators can negotiate compression transparently.
	WorkGzipHeader = "X-Work-Gzip"
)

// WorkCell is one leased simulation: the campaign's content address plus the
// full request. The worker recomputes the fingerprint under the lease's
// budget and rejects the lease on a mismatch.
type WorkCell struct {
	Fingerprint string         `json:"fp"`
	Request     smtmlp.Request `json:"request"`
}

// LeaseRequest is the POST /v1/work/lease body: a batch of cells to execute
// under the given measurement budget. TTLMillis caps how long the worker
// holds the lease awaiting collection (0 = the server default).
type LeaseRequest struct {
	LeaseID      string     `json:"lease_id"`
	Instructions uint64     `json:"instructions,omitempty"`
	Warmup       uint64     `json:"warmup,omitempty"`
	TTLMillis    int64      `json:"ttl_ms,omitempty"`
	Cells        []WorkCell `json:"cells"`
}

// LeaseStatus is the JSON shape of one lease in work responses.
type LeaseStatus struct {
	LeaseID string `json:"lease_id"`
	// RequestID is the correlation ID of the delivery that created the
	// lease (the coordinator's X-Request-Id, or a server-generated one),
	// echoed so GET /v1/work and lease logs join on the same value.
	RequestID string `json:"request_id,omitempty"`
	// Status is "running", "done", "canceled" (server shutdown) or
	// "expired" (TTL elapsed before collection).
	Status   string `json:"status"`
	Total    int    `json:"total"`
	Executed int    `json:"executed"`
	Failed   int    `json:"failed"`
}

// CompleteRequest is the POST /v1/work/complete body. WaitMillis long-polls:
// the worker holds the request up to that long (capped server-side) waiting
// for the lease to finish before answering.
type CompleteRequest struct {
	LeaseID    string `json:"lease_id"`
	WaitMillis int64  `json:"wait_ms,omitempty"`
}

// WorkResult is one executed cell: the fingerprint it was leased under and
// either a result or a deterministic failure message.
type WorkResult struct {
	Fingerprint string                 `json:"fp"`
	Request     smtmlp.Request         `json:"request"`
	Result      *smtmlp.WorkloadResult `json:"result,omitempty"`
	Error       string                 `json:"error,omitempty"`
}

// CompleteResponse is the /v1/work/complete body. Results (in cell order)
// and Refs (the single-threaded reference profiles this lease's cells
// needed, sorted by key) are present only once the lease status is "done";
// a successful collection removes the lease from the worker. WaitMillis is
// the long-poll wait the server actually applied — the requested wait_ms
// clamped to the 30s cap — so a coordinator can see its value was trimmed
// rather than silently honored.
type CompleteResponse struct {
	Lease      LeaseStatus         `json:"lease"`
	WaitMillis int64               `json:"wait_ms"`
	Results    []WorkResult        `json:"results,omitempty"`
	Refs       []smtmlp.RefProfile `json:"refs,omitempty"`
}

// CompleteLine is one line of a streamed (Accept: application/x-ndjson)
// /v1/work/complete response; exactly one pointer field is set per line.
// The first line always carries the lease status plus the effective
// long-poll wait; when the lease is "done" it is followed by one result
// line per cell (in cell order) and one ref line per lease-scoped reference
// profile (in key order). The streamed form carries exactly the same data
// as the buffered CompleteResponse.
type CompleteLine struct {
	Lease      *LeaseStatus       `json:"lease,omitempty"`
	WaitMillis int64              `json:"wait_ms,omitempty"`
	Result     *WorkResult        `json:"result,omitempty"`
	Ref        *smtmlp.RefProfile `json:"ref,omitempty"`
}

// WorkListResponse is the GET /v1/work body: every lease the worker
// currently holds, in acceptance order, plus the lifetime counters — the
// operator's answer to "what is this worker doing right now".
type WorkListResponse struct {
	Leases  []LeaseStatus `json:"leases"`
	Metrics WorkMetrics   `json:"metrics"`
}

// WorkMetrics are the worker-side lease counters exposed on /metrics. The
// byte counters cover the /v1/work wire: BytesIn/BytesOut count the JSON
// bytes before compression (request) / after encoding (response), and the
// Wire variants count what actually crossed the socket — their ratio is the
// compression factor the fleet transfer is achieving on this worker.
type WorkMetrics struct {
	LeasesAccepted  int64 `json:"leases_accepted"`
	LeasesActive    int64 `json:"leases_active"`
	LeasesRenewed   int64 `json:"leases_renewed"`
	LeasesCollected int64 `json:"leases_collected"`
	LeasesExpired   int64 `json:"leases_expired"`
	CellsExecuted   int64 `json:"cells_executed"`
	CellsFailed     int64 `json:"cells_failed"`
	BytesIn         int64 `json:"bytes_in"`
	BytesInWire     int64 `json:"bytes_in_wire"`
	BytesOut        int64 `json:"bytes_out"`
	BytesOutWire    int64 `json:"bytes_out_wire"`
}

// workLease is the server-side state of one lease.
type workLease struct {
	id        string
	requestID string    // correlation ID of the delivery that created the lease
	accepted  time.Time // lease acceptance, the lifetime histogram's origin
	cells     []WorkCell
	tenant    *tenant.Tenant // lease holder; nil on untenanted servers

	mu       sync.Mutex
	status   string // "running", "done", "canceled", "expired"
	executed int
	failed   int
	results  []WorkResult
	refs     []smtmlp.RefProfile
	deadline time.Time // expiry deadline; pushed forward by renewals

	cancel context.CancelFunc
	expire *time.Timer
	done   chan struct{} // closed when the execution goroutine finishes
}

// renew pushes the lease's expiry deadline ttl into the future and re-arms
// the timer. It is safe against a concurrently-firing expiry: expireLease
// re-checks the deadline under the lease lock and re-arms instead of
// expiring when a renewal got there first.
func (l *workLease) renew(ttl time.Duration) {
	l.mu.Lock()
	l.deadline = time.Now().Add(ttl)
	l.mu.Unlock()
	l.expire.Reset(ttl)
}

// snapshot renders the lease under its lock.
func (l *workLease) snapshot() LeaseStatus {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LeaseStatus{
		LeaseID:   l.id,
		RequestID: l.requestID,
		Status:    l.status,
		Total:     len(l.cells),
		Executed:  l.executed,
		Failed:    l.failed,
	}
}

// decodeWorkBody decodes a /v1/work request body, transparently inflating
// a Content-Encoding: gzip payload, and counts both the wire bytes and the
// decoded JSON bytes for /metrics.
func (s *Server) decodeWorkBody(w http.ResponseWriter, r *http.Request, v any) bool {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeInvalidRequest,
				"request body exceeds %d bytes", tooLarge.Limit)
		} else {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, "reading request body: %v", err)
		}
		return false
	}
	s.workBytesInWire.Add(int64(len(raw)))
	body := raw
	if enc := r.Header.Get("Content-Encoding"); enc != "" {
		if !strings.EqualFold(enc, "gzip") {
			writeError(w, http.StatusUnsupportedMediaType, CodeInvalidRequest,
				"unsupported Content-Encoding %q (gzip or identity)", enc)
			return false
		}
		zr, err := gzip.NewReader(bytes.NewReader(raw))
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, "malformed gzip body: %v", err)
			return false
		}
		// Cap the inflated size too, so a tiny wire body cannot decompress
		// into an allocation bomb.
		body, err = io.ReadAll(io.LimitReader(zr, maxWorkBodyBytes+1))
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, "decompressing request body: %v", err)
			return false
		}
		if len(body) > maxWorkBodyBytes {
			writeError(w, http.StatusRequestEntityTooLarge, CodeInvalidRequest,
				"decompressed request body exceeds %d bytes", maxWorkBodyBytes)
			return false
		}
	}
	s.workBytesIn.Add(int64(len(body)))
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "decoding request body: %v", err)
		return false
	}
	return true
}

// handleWorkLease accepts a lease, renews one the worker already holds (the
// idempotent re-POST doubles as the coordinator's TTL heartbeat), and
// starts executing fresh leases on the server's lifecycle context.
func (s *Server) handleWorkLease(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(WorkGzipHeader, "1")
	var lr LeaseRequest
	if !s.decodeWorkBody(w, r, &lr) {
		return
	}
	if lr.LeaseID == "" {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "lease has no lease_id")
		return
	}

	ttl := s.leaseTTL
	if lr.TTLMillis > 0 {
		if reqTTL := time.Duration(lr.TTLMillis) * time.Millisecond; reqTTL < ttl {
			ttl = reqTTL
		}
	}

	// Renewal / idempotent re-delivery: a lease the worker already holds is
	// acknowledged with its live snapshot and its TTL pushed forward —
	// checked before cell validation so the cells-free heartbeat form
	// {"lease_id": ...} works and costs nothing.
	s.mu.Lock()
	if existing, ok := s.leases[lr.LeaseID]; ok {
		existing.renew(ttl)
		s.mu.Unlock()
		s.leasesRenewed.Add(1)
		s.logger(r).Debug("lease renewed", obs.KeyLeaseID, lr.LeaseID, "ttl", ttl)
		writeJSON(w, existing.snapshot())
		return
	}
	s.mu.Unlock()

	// Fresh leases pass tenant admission (renewals above are free: the work
	// was already admitted; throttling the heartbeat would only expire it).
	t, _ := tenant.FromContext(r.Context())
	if !s.takeToken(w, t) {
		return
	}

	if len(lr.Cells) == 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "lease %q has no cells", lr.LeaseID)
		return
	}
	if len(lr.Cells) > s.maxBatch {
		writeError(w, http.StatusBadRequest, CodeBatchTooLarge,
			"lease of %d cells exceeds the server limit of %d", len(lr.Cells), s.maxBatch)
		return
	}

	// The per-lease engine: the lease's measurement budget (part of every
	// fingerprint), the service engine's parallelism, and — crucially — the
	// service engine's reference cache, so leases, /v1/run and /v1/batch all
	// warm each other.
	eng := smtmlp.NewEngine(
		smtmlp.WithInstructions(lr.Instructions),
		smtmlp.WithWarmup(lr.Warmup),
		smtmlp.WithParallelism(s.eng.Parallelism()),
		smtmlp.WithCache(s.eng.Cache()),
		smtmlp.WithSlotGate(s.gate),
	)
	for _, cell := range lr.Cells {
		if !s.checkWorkload(w, cell.Request.Workload.Benchmarks) {
			return
		}
		if fp := smtmlp.Fingerprint(cell.Request, eng.Instructions(), eng.Warmup()); fp != cell.Fingerprint {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest,
				"cell fingerprint %q does not match its request (worker computes %q); coordinator/worker mismatch?",
				cell.Fingerprint, fp)
			return
		}
	}

	s.mu.Lock()
	if existing, ok := s.leases[lr.LeaseID]; ok {
		// A concurrent re-POST of the same lease raced us past the renewal
		// check above; acknowledge and renew it without restarting.
		existing.renew(ttl)
		s.mu.Unlock()
		s.leasesRenewed.Add(1)
		writeJSON(w, existing.snapshot())
		return
	}
	// Per-tenant quota first: a tenant at its own lease limit is told
	// quota_exceeded (its problem) even when the worker as a whole still has
	// room; worker_busy (everyone's problem) is reserved for the global bound.
	// Both checks share the registration critical section so racing leases
	// cannot sneak under either limit.
	if limit := t.Limits.MaxLeases; s.tenants != nil && limit > 0 && s.activeLeasesFor(t) >= limit {
		s.mu.Unlock()
		t.CountQuotaDenied()
		writeError(w, http.StatusTooManyRequests, CodeQuotaExceeded,
			"tenant %q already holds %d running leases (limit %d); collect one before leasing more",
			t.Name, limit, limit)
		return
	}
	active := int64(0)
	for _, l := range s.leases {
		if l.snapshotStatus() == "running" {
			active++
		}
	}
	if active >= int64(s.maxLeases) {
		s.mu.Unlock()
		writeError(w, http.StatusTooManyRequests, CodeWorkerBusy,
			"worker already holds %d running leases (limit %d); try another worker or retry later",
			active, s.maxLeases)
		return
	}
	baseCtx := s.baseCtx
	if s.tenants != nil {
		// Lease cells are the holder's bulk work at the slot gate.
		baseCtx = tenant.NewContext(baseCtx, t, tenant.Bulk)
	}
	ctx, cancel := context.WithCancel(baseCtx)
	lease := &workLease{
		id:        lr.LeaseID,
		requestID: obs.RequestID(r.Context()),
		accepted:  time.Now(),
		cells:     lr.Cells,
		status:    "running",
		deadline:  time.Now().Add(ttl),
		cancel:    cancel,
		done:      make(chan struct{}),
	}
	if s.tenants != nil {
		lease.tenant = t
		t.CountAdmitted()
	}
	lease.expire = time.AfterFunc(ttl, func() { s.expireLease(lease) })
	s.leases[lr.LeaseID] = lease
	s.leaseOrder = append(s.leaseOrder, lr.LeaseID)
	s.mu.Unlock()
	s.leasesAccepted.Add(1)
	s.logger(r).Info("lease accepted",
		obs.KeyLeaseID, lr.LeaseID, "cells", len(lr.Cells), "ttl", ttl)

	go s.runLease(ctx, lease, eng)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeLine(w, lease.snapshot())
}

// snapshotStatus reads the status under the lease lock.
func (l *workLease) snapshotStatus() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.status
}

// expireLease is the TTL path: cancel execution, drop the lease state and
// count it. A lease that finished collection just before the timer fired is
// already gone from the map and is not double-counted; a lease whose
// deadline a renewal pushed forward after this timer was armed is re-armed
// for the remainder instead of expired.
func (s *Server) expireLease(lease *workLease) {
	s.mu.Lock()
	if _, ok := s.leases[lease.id]; !ok {
		s.mu.Unlock()
		return
	}
	lease.mu.Lock()
	remaining := time.Until(lease.deadline)
	lease.mu.Unlock()
	if remaining > 0 {
		s.mu.Unlock()
		lease.expire.Reset(remaining)
		return
	}
	delete(s.leases, lease.id)
	s.mu.Unlock()
	lease.mu.Lock()
	if lease.status == "running" || lease.status == "done" {
		lease.status = "expired"
	}
	lease.mu.Unlock()
	lease.cancel()
	s.leasesExpired.Add(1)
	s.leaseLifetime.Observe(time.Since(lease.accepted))
	s.log.Warn("lease expired uncollected",
		obs.KeyLeaseID, lease.id, obs.KeyRequestID, lease.requestID,
		"lifetime", time.Since(lease.accepted))
}

// runLease executes the lease's cells through the per-lease engine and
// stores the results (in cell order) plus the reference profiles this lease
// needed, filtered from the shared cache by key so unrelated traffic never
// leaks into a coordinator's store.
func (s *Server) runLease(ctx context.Context, lease *workLease, eng *smtmlp.Engine) {
	defer close(lease.done)
	defer lease.cancel()
	reqs := make([]smtmlp.Request, len(lease.cells))
	for i, c := range lease.cells {
		reqs[i] = c.Request
	}
	results := make([]WorkResult, len(lease.cells))
	canceled := false
	for br := range eng.RunBatch(ctx, reqs) {
		wr := WorkResult{Fingerprint: lease.cells[br.Index].Fingerprint, Request: br.Request}
		switch {
		case br.Err != nil && errors.Is(br.Err, smtmlp.ErrCanceled):
			canceled = true
		case br.Err != nil:
			// A deterministic per-cell failure: report it as data, not as a
			// lease failure — the coordinator skips it exactly like local
			// execution does.
			wr.Error = br.Err.Error()
			lease.mu.Lock()
			lease.failed++
			lease.mu.Unlock()
			s.cellsFailed.Add(1)
		default:
			res := br.Result
			wr.Result = &res
			lease.mu.Lock()
			lease.executed++
			lease.mu.Unlock()
			s.cellsExecuted.Add(1)
		}
		results[br.Index] = wr
	}

	lease.mu.Lock()
	defer lease.mu.Unlock()
	if canceled {
		if lease.status == "running" {
			lease.status = "canceled"
		}
		return
	}
	lease.results = results
	lease.refs = leaseRefs(eng, lease.cells)
	if lease.status == "running" {
		lease.status = "done"
	}
}

// leaseRefs exports the single-threaded reference profiles the lease's cells
// depend on — and only those. The shared cache may hold profiles from other
// traffic (other budgets, other configs); filtering by the exact reference
// keys keeps a coordinator's merged refs snapshot byte-identical to what
// single-node execution of the same spec would have persisted.
func leaseRefs(eng *smtmlp.Engine, cells []WorkCell) []smtmlp.RefProfile {
	want := make(map[string]bool)
	for _, c := range cells {
		for _, b := range c.Request.Workload.Benchmarks {
			want[sim.RefKey(c.Request.Config, b, eng.Instructions(), eng.Warmup())] = true
		}
	}
	var out []smtmlp.RefProfile
	for _, rec := range eng.Cache().Export() { // Export is sorted by key
		if want[rec.Key] {
			out = append(out, rec)
		}
	}
	return out
}

// handleWorkComplete long-polls one lease and, once it is done, hands the
// results (and lease-scoped reference profiles) to the coordinator and
// forgets the lease. The response honors Accept: application/x-ndjson
// (streamed, one line per result) and Accept-Encoding: gzip; absent those
// headers it is the buffered JSON body old coordinators expect.
func (s *Server) handleWorkComplete(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(WorkGzipHeader, "1")
	var cr CompleteRequest
	if !s.decodeWorkBody(w, r, &cr) {
		return
	}
	if cr.LeaseID == "" {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "complete has no lease_id")
		return
	}
	if cr.WaitMillis < 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest,
			"wait_ms %d is negative; use 0 (answer immediately) up to the %dms cap",
			cr.WaitMillis, maxCompleteWait.Milliseconds())
		return
	}
	s.mu.Lock()
	lease, ok := s.leases[cr.LeaseID]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, CodeUnknownLease,
			"no lease %q on this worker (completed, expired, or never delivered here)", cr.LeaseID)
		return
	}

	// Clamp silently-unbounded waits to the cap; the effective value is
	// echoed in the response so the trim is visible to the coordinator.
	wait := time.Duration(cr.WaitMillis) * time.Millisecond
	if wait > maxCompleteWait {
		wait = maxCompleteWait
	}
	if wait > 0 {
		timer := time.NewTimer(wait)
		select {
		case <-lease.done:
		case <-timer.C:
		case <-r.Context().Done():
		}
		timer.Stop()
	}

	lease.mu.Lock()
	status := LeaseStatus{
		LeaseID:   lease.id,
		RequestID: lease.requestID,
		Status:    lease.status,
		Total:     len(lease.cells),
		Executed:  lease.executed,
		Failed:    lease.failed,
	}
	resp := CompleteResponse{Lease: status, WaitMillis: wait.Milliseconds()}
	if status.Status == "done" {
		resp.Results = lease.results
		resp.Refs = lease.refs
	}
	lease.mu.Unlock()

	if status.Status == "done" {
		// Collected: the lease's job is over. Forget it so the slot frees up;
		// if this response is lost on the wire, the coordinator re-leases the
		// same cells and the store's dedupe-on-append absorbs the repeat.
		s.mu.Lock()
		collected := false
		if _, ok := s.leases[lease.id]; ok {
			delete(s.leases, lease.id)
			s.leasesCollected.Add(1)
			collected = true
		}
		s.mu.Unlock()
		lease.expire.Stop()
		if collected {
			lifetime := time.Since(lease.accepted)
			s.leaseLifetime.Observe(lifetime)
			s.logger(r).Info("lease collected",
				obs.KeyLeaseID, lease.id, "executed", status.Executed,
				"failed", status.Failed, "lifetime", lifetime)
		}
	}
	s.writeCompleteResponse(w, r, resp)
}

// countWriter counts the bytes written through it into an atomic counter.
type countWriter struct {
	n *atomic.Int64
	w io.Writer
}

func (cw countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n.Add(int64(n))
	return n, err
}

// writeCompleteResponse encodes the /v1/work/complete response per the
// request's negotiation headers. With Accept: application/x-ndjson the body
// streams one CompleteLine at a time — encoding cost is O(1) in the lease
// size instead of one giant buffered array — and with Accept-Encoding: gzip
// it is compressed on the wire. Both byte counters (pre- and
// post-compression) feed /metrics.
func (s *Server) writeCompleteResponse(w http.ResponseWriter, r *http.Request, resp CompleteResponse) {
	ndjson := strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "application/json")
	}
	var out io.Writer = countWriter{&s.workBytesOutWire, w}
	if strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
		w.Header().Set("Content-Encoding", "gzip")
		zw := gzip.NewWriter(out)
		defer zw.Close()
		out = zw
	}
	enc := json.NewEncoder(countWriter{&s.workBytesOut, out})
	if !ndjson {
		enc.Encode(resp)
		return
	}
	enc.Encode(CompleteLine{Lease: &resp.Lease, WaitMillis: resp.WaitMillis})
	for i := range resp.Results {
		enc.Encode(CompleteLine{Result: &resp.Results[i]})
	}
	for i := range resp.Refs {
		enc.Encode(CompleteLine{Ref: &resp.Refs[i]})
	}
}

// handleWorkList reports every lease the worker holds plus the lifetime
// counters.
func (s *Server) handleWorkList(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set(WorkGzipHeader, "1")
	s.mu.Lock()
	var held []*workLease
	live := s.leaseOrder[:0]
	for _, id := range s.leaseOrder {
		if l, ok := s.leases[id]; ok {
			held = append(held, l)
			live = append(live, id)
		}
	}
	s.leaseOrder = live // compact away collected/expired leases
	s.mu.Unlock()
	resp := WorkListResponse{Leases: []LeaseStatus{}, Metrics: s.workMetrics()}
	for _, l := range held {
		resp.Leases = append(resp.Leases, l.snapshot())
	}
	writeJSON(w, resp)
}

// workMetrics gathers the lease counters.
func (s *Server) workMetrics() WorkMetrics {
	s.mu.Lock()
	active := int64(len(s.leases))
	s.mu.Unlock()
	return WorkMetrics{
		LeasesAccepted:  s.leasesAccepted.Load(),
		LeasesActive:    active,
		LeasesRenewed:   s.leasesRenewed.Load(),
		LeasesCollected: s.leasesCollected.Load(),
		LeasesExpired:   s.leasesExpired.Load(),
		CellsExecuted:   s.cellsExecuted.Load(),
		CellsFailed:     s.cellsFailed.Load(),
		BytesIn:         s.workBytesIn.Load(),
		BytesInWire:     s.workBytesInWire.Load(),
		BytesOut:        s.workBytesOut.Load(),
		BytesOutWire:    s.workBytesOutWire.Load(),
	}
}

// DrainWork blocks until every lease execution goroutine has finished. Call
// it during shutdown after canceling the base context: running leases
// observe the cancellation and exit promptly.
func (s *Server) DrainWork() {
	s.mu.Lock()
	held := make([]*workLease, 0, len(s.leases))
	for _, l := range s.leases {
		held = append(held, l)
	}
	s.mu.Unlock()
	for _, l := range held {
		<-l.done
	}
}
