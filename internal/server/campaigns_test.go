package server_test

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"smtmlp/internal/server"
	"smtmlp/internal/store"
)

// campaignSpec is a fast 1x2x2 = 4-cell campaign.
const campaignSpec = `{
  "name": "srv",
  "instructions": 5000,
  "warmup": 1000,
  "policies": ["icount", "mlpflush"],
  "workloads": {"mixes": [["mcf","galgel"], ["swim","twolf"]]}
}`

// campaignServer builds a store-backed server over a tmpdir store.
func campaignServer(t *testing.T, opts ...server.Option) (*server.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return server.New(testEngine(), append([]server.Option{server.WithStore(st)}, opts...)...), st
}

// awaitCampaign polls GET /v1/campaigns/{id} until the campaign leaves
// "running".
func awaitCampaign(t *testing.T, srv http.Handler, id string) server.CampaignStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var status server.CampaignStatus
		decodeInto(t, get(t, srv, "/v1/campaigns/"+id), &status)
		if status.Status != "running" {
			return status
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s still running after 30s: %+v", id, status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCampaignLifecycle(t *testing.T) {
	srv, st := campaignServer(t)

	rec := post(t, srv, "/v1/campaigns", campaignSpec)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("create status %d, body %s", rec.Code, rec.Body)
	}
	var created server.CampaignStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		t.Fatalf("202 body %s: %v", rec.Body, err)
	}
	if created.ID == "" || created.Status != "running" || created.Total != 4 || created.Skipped != 0 {
		t.Fatalf("created %+v", created)
	}

	final := awaitCampaign(t, srv, created.ID)
	if final.Status != "done" || final.Executed != 4 || final.Failed != 0 {
		t.Fatalf("final %+v", final)
	}
	if final.Summary == nil || final.Summary.Executed != 4 || final.Summary.RefsSaved == 0 {
		t.Fatalf("final summary %+v", final.Summary)
	}
	if st.Len() != 4 {
		t.Fatalf("store holds %d results, want 4", st.Len())
	}

	// Re-POSTing the same spec skips everything: the store deduplicates
	// across campaigns (and across restarts).
	rec = post(t, srv, "/v1/campaigns", campaignSpec)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("re-create status %d", rec.Code)
	}
	var again server.CampaignStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &again); err != nil {
		t.Fatal(err)
	}
	if again.ID == created.ID || again.Skipped != 4 {
		t.Fatalf("re-created %+v", again)
	}
	final2 := awaitCampaign(t, srv, again.ID)
	if final2.Status != "done" || final2.Executed != 0 || final2.Summary.Skipped != 4 {
		t.Fatalf("re-run final %+v", final2)
	}
	if st.Len() != 4 {
		t.Fatalf("store grew to %d results on a duplicate campaign", st.Len())
	}

	// The list endpoint shows both campaigns in creation order.
	var list server.CampaignListResponse
	decodeInto(t, get(t, srv, "/v1/campaigns"), &list)
	if len(list.Campaigns) != 2 || list.Campaigns[0].ID != created.ID || list.Campaigns[1].ID != again.ID {
		t.Fatalf("list %+v", list)
	}
	if list.StoredResults != 4 {
		t.Fatalf("list reports %d stored results", list.StoredResults)
	}
}

func TestCampaignValidationErrors(t *testing.T) {
	srv, _ := campaignServer(t, server.WithMaxBatch(8), server.WithMaxThreads(2))
	cases := []struct {
		name, body, code string
		status           int
	}{
		{"malformed", `{`, server.CodeInvalidRequest, http.StatusBadRequest},
		{"unknown field", `{"bogus": 1}`, server.CodeInvalidRequest, http.StatusBadRequest},
		{"no workloads", `{"policies":["icount"]}`, server.CodeInvalidRequest, http.StatusBadRequest},
		{"unknown policy", `{"policies":["nope"],"workloads":{"mixes":[["mcf","swim"]]}}`,
			server.CodeUnknownPolicy, http.StatusBadRequest},
		{"unknown benchmark", `{"workloads":{"mixes":[["mcf","nope"]]}}`,
			server.CodeUnknownBenchmark, http.StatusBadRequest},
		{"workload/threads mismatch", `{"workloads":{"threads":4,"mixes":[["mcf","swim"]]}}`,
			server.CodeInvalidWorkload, http.StatusBadRequest},
		{"too large", `{"workloads":{"tables":["two_thread"]}}`,
			server.CodeBatchTooLarge, http.StatusBadRequest},
		{"too many threads", `{"policies":["icount"],"workloads":{"mixes":[["mcf","swim","gcc"]]}}`,
			server.CodeTooManyThreads, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantError(t, post(t, srv, "/v1/campaigns", tc.body), tc.status, tc.code)
		})
	}
}

func TestCampaignEndpointsWithoutStore(t *testing.T) {
	srv := server.New(testEngine())
	wantError(t, post(t, srv, "/v1/campaigns", campaignSpec), http.StatusServiceUnavailable, server.CodeStoreUnavailable)
	wantError(t, get(t, srv, "/v1/campaigns"), http.StatusServiceUnavailable, server.CodeStoreUnavailable)
	wantError(t, get(t, srv, "/v1/campaigns/c1"), http.StatusServiceUnavailable, server.CodeStoreUnavailable)
}

func TestCampaignUnknownID(t *testing.T) {
	srv, _ := campaignServer(t)
	wantError(t, get(t, srv, "/v1/campaigns/c999"), http.StatusNotFound, server.CodeUnknownCampaign)
}

// TestRunWorkloadMismatchError pins the server-side invalid_workload body
// for the new engine-boundary thread-count validation: an explicit threads
// override that disagrees with the benchmark count is a 400, not a
// confusing simulation failure.
func TestRunWorkloadMismatchError(t *testing.T) {
	srv := server.New(testEngine())
	rec := post(t, srv, "/v1/run",
		`{"benchmarks":["mcf","galgel"],"policy":"icount","config":{"threads":4}}`)
	wantError(t, rec, http.StatusBadRequest, server.CodeInvalidWorkload)

	// A matching explicit threads override still works.
	rec = post(t, srv, "/v1/run",
		`{"benchmarks":["mcf","galgel"],"policy":"icount","config":{"threads":2}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("matching threads override rejected: %d %s", rec.Code, rec.Body)
	}
}
