// Integration suite for the HTTP surface: every endpoint's happy path, the
// typed validation errors, incremental NDJSON streaming, the golden
// determinism property (same batch twice — cold cache, then warm — yields
// byte-identical payloads), client-disconnect cancellation with a clean
// drain, and a concurrency hammer pitting parallel clients against one
// shared engine. Everything runs real simulations at a tiny instruction
// budget; determinism makes every assertion exact.
package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"smtmlp"
	"smtmlp/internal/server"
	"smtmlp/internal/sim"
	"smtmlp/internal/store"
)

// testEngine returns a laptop-fast engine; simulations take ~20ms each.
func testEngine(opts ...smtmlp.Option) *smtmlp.Engine {
	return smtmlp.NewEngine(append([]smtmlp.Option{
		smtmlp.WithInstructions(6_000), smtmlp.WithWarmup(1_500),
	}, opts...)...)
}

// post drives one request through the handler without a network socket.
func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

// decodeInto fails the test unless the recorder holds status 200 and a JSON
// body decoding into v.
func decodeInto(t *testing.T, rec *httptest.ResponseRecorder, v any) {
	t.Helper()
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), v); err != nil {
		t.Fatalf("decoding %s: %v", rec.Body, err)
	}
}

// wantError asserts a typed error body with the given status and code.
func wantError(t *testing.T, rec *httptest.ResponseRecorder, status int, code string) {
	t.Helper()
	if rec.Code != status {
		t.Fatalf("status %d, want %d (body %s)", rec.Code, status, rec.Body)
	}
	var body struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("error body is not JSON: %s", rec.Body)
	}
	if body.Error.Code != code || body.Error.Message == "" {
		t.Fatalf("error body %s, want code %q with a message", rec.Body, code)
	}
}

func TestHealthz(t *testing.T) {
	srv := server.New(testEngine())
	var body map[string]string
	decodeInto(t, get(t, srv, "/healthz"), &body)
	if body["status"] != "ok" {
		t.Fatalf("healthz body %v", body)
	}
}

func TestDiscoveryEndpoints(t *testing.T) {
	srv := server.New(testEngine())

	var pol server.PoliciesResponse
	decodeInto(t, get(t, srv, "/v1/policies"), &pol)
	if len(pol.Policies) != 9 || len(pol.Paper) != 6 {
		t.Fatalf("policies %d / paper %d, want 9 / 6", len(pol.Policies), len(pol.Paper))
	}
	if pol.Paper[0] != "icount" || pol.Paper[5] != "mlpflush" {
		t.Fatalf("paper policies out of order: %v", pol.Paper)
	}

	var wl server.WorkloadsResponse
	decodeInto(t, get(t, srv, "/v1/workloads"), &wl)
	if len(wl.Benchmarks) != 26 || len(wl.TwoThread) != 36 || len(wl.FourThread) != 30 {
		t.Fatalf("catalog %d/%d/%d, want 26/36/30",
			len(wl.Benchmarks), len(wl.TwoThread), len(wl.FourThread))
	}
}

func TestRunHappyPathMatchesEngine(t *testing.T) {
	eng := testEngine()
	srv := server.New(eng)

	var got smtmlp.WorkloadResult
	decodeInto(t, post(t, srv, "/v1/run",
		`{"benchmarks":["mcf","galgel"],"policy":"mlpflush"}`), &got)

	want, err := testEngine().RunWorkload(context.Background(),
		smtmlp.DefaultConfig(2), smtmlp.Mix("mcf", "galgel"), smtmlp.MLPFlush)
	if err != nil {
		t.Fatal(err)
	}
	if got.STP != want.STP || got.ANTT != want.ANTT || got.Cycles != want.Cycles {
		t.Fatalf("served result STP=%v ANTT=%v cycles=%d; engine STP=%v ANTT=%v cycles=%d",
			got.STP, got.ANTT, got.Cycles, want.STP, want.ANTT, want.Cycles)
	}
	if got.Policy != "mlpflush" || len(got.Threads) != 2 || got.Threads[0].Benchmark != "mcf" {
		t.Fatalf("served result malformed: %+v", got)
	}
}

func TestRunConfigOverrides(t *testing.T) {
	srv := server.New(testEngine())

	var small, base smtmlp.WorkloadResult
	decodeInto(t, post(t, srv, "/v1/run",
		`{"benchmarks":["mcf","galgel"],"policy":"icount","config":{"rob_size":64,"mem_latency":600,"prefetch":false}}`), &small)
	decodeInto(t, post(t, srv, "/v1/run",
		`{"benchmarks":["mcf","galgel"],"policy":"icount"}`), &base)
	if small.Cycles == base.Cycles {
		t.Fatal("config overrides had no effect on the simulation")
	}

	cfg := smtmlp.DefaultConfig(2).ScaleWindow(64)
	cfg.Mem.MemLatency = 600
	cfg.Mem.EnablePrefetch = false
	want, err := testEngine().RunWorkload(context.Background(), cfg,
		smtmlp.Mix("mcf", "galgel"), smtmlp.ICount)
	if err != nil {
		t.Fatal(err)
	}
	if small.STP != want.STP || small.Cycles != want.Cycles {
		t.Fatalf("override result STP=%v cycles=%d; direct engine STP=%v cycles=%d",
			small.STP, small.Cycles, want.STP, want.Cycles)
	}
}

func TestRunValidationErrors(t *testing.T) {
	srv := server.New(testEngine(), server.WithMaxThreads(4))
	cases := []struct {
		name, body, code string
	}{
		{"unknown benchmark", `{"benchmarks":["mcf","nope"],"policy":"icount"}`, server.CodeUnknownBenchmark},
		{"unknown policy", `{"benchmarks":["mcf"],"policy":"nope"}`, server.CodeUnknownPolicy},
		{"empty workload", `{"benchmarks":[],"policy":"icount"}`, server.CodeInvalidRequest},
		{"malformed json", `{"benchmarks":`, server.CodeInvalidRequest},
		{"unknown field", `{"benchmarks":["mcf"],"policy":"icount","bogus":1}`, server.CodeInvalidRequest},
		{"too many threads", `{"benchmarks":["mcf","swim","galgel","twolf","gcc"],"policy":"icount"}`, server.CodeTooManyThreads},
		{"bad rob_size", `{"benchmarks":["mcf"],"policy":"icount","config":{"rob_size":5000}}`, server.CodeInvalidRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantError(t, post(t, srv, "/v1/run", tc.body), http.StatusBadRequest, tc.code)
		})
	}
}

func TestBatchValidationErrors(t *testing.T) {
	srv := server.New(testEngine(), server.WithMaxBatch(4))
	cases := []struct {
		name, body, code string
	}{
		{"empty", `{"workloads":[],"policies":["icount"]}`, server.CodeInvalidRequest},
		{"no policies", `{"workloads":[["mcf"]],"policies":[]}`, server.CodeInvalidRequest},
		{"unknown benchmark", `{"workloads":[["mcf","nope"]],"policies":["icount"]}`, server.CodeUnknownBenchmark},
		{"unknown policy", `{"workloads":[["mcf"]],"policies":["icount","nope"]}`, server.CodeUnknownPolicy},
		{"too large", `{"workloads":[["mcf"],["swim"],["gcc"]],"policies":["icount","flush"]}`, server.CodeBatchTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantError(t, post(t, srv, "/v1/batch", tc.body), http.StatusBadRequest, tc.code)
		})
	}
}

// TestOversizedBodyRejected pins the pre-decode size cap: a huge body is
// refused with 413 before it can allocate, not after parsing.
func TestOversizedBodyRejected(t *testing.T) {
	srv := server.New(testEngine())
	body := `{"benchmarks":["mcf","` + strings.Repeat("x", 2<<20) + `"],"policy":"icount"}`
	rec := post(t, srv, "/v1/run", body)
	wantError(t, rec, http.StatusRequestEntityTooLarge, server.CodeInvalidRequest)
}

func TestMethodAndPathErrors(t *testing.T) {
	srv := server.New(testEngine())
	if rec := get(t, srv, "/v1/run"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/run status %d, want 405", rec.Code)
	}
	if rec := get(t, srv, "/nope"); rec.Code != http.StatusNotFound {
		t.Fatalf("GET /nope status %d, want 404", rec.Code)
	}
}

// readBatchLines decodes every NDJSON line of a finished batch response.
func readBatchLines(t *testing.T, body []byte) []smtmlp.BatchResult {
	t.Helper()
	var out []smtmlp.BatchResult
	for _, line := range bytes.Split(bytes.TrimSpace(body), []byte("\n")) {
		var br smtmlp.BatchResult
		if err := json.Unmarshal(line, &br); err != nil {
			t.Fatalf("bad NDJSON line %s: %v", line, err)
		}
		out = append(out, br)
	}
	return out
}

const smallBatch = `{"workloads":[["mcf","galgel"],["swim","twolf"]],"policies":["icount","flush","mlpflush"]}`

// TestBatchPolicyMajorOrder pins the execution/emission order: all workloads
// under the first policy, then the next — and results arrive in submission
// order with contiguous indexes.
func TestBatchPolicyMajorOrder(t *testing.T) {
	srv := server.New(testEngine())
	rec := post(t, srv, "/v1/batch", smallBatch)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", ct)
	}
	lines := readBatchLines(t, rec.Body.Bytes())
	wantTags := []string{
		"mcf-galgel/icount", "swim-twolf/icount",
		"mcf-galgel/flush", "swim-twolf/flush",
		"mcf-galgel/mlpflush", "swim-twolf/mlpflush",
	}
	if len(lines) != len(wantTags) {
		t.Fatalf("%d lines, want %d", len(lines), len(wantTags))
	}
	for i, br := range lines {
		if br.Index != i {
			t.Fatalf("line %d has index %d — stream must be in submission order", i, br.Index)
		}
		if br.Request.Tag != wantTags[i] {
			t.Fatalf("line %d tag %q, want %q (policy-major order)", i, br.Request.Tag, wantTags[i])
		}
		if br.Err != nil {
			t.Fatalf("line %d failed: %v", i, br.Err)
		}
		if br.Result.STP <= 0 {
			t.Fatalf("line %d degenerate result: %+v", i, br.Result)
		}
	}
}

// TestBatchMatchesSequential verifies the streamed results equal direct
// sequential engine runs exactly (the simulator is deterministic).
func TestBatchMatchesSequential(t *testing.T) {
	srv := server.New(testEngine())
	lines := readBatchLines(t, post(t, srv, "/v1/batch", smallBatch).Body.Bytes())

	seq := testEngine()
	for _, br := range lines {
		want, err := seq.RunWorkload(context.Background(), br.Request.Config,
			br.Request.Workload, br.Request.Policy)
		if err != nil {
			t.Fatal(err)
		}
		if br.Result.STP != want.STP || br.Result.ANTT != want.ANTT || br.Result.Cycles != want.Cycles {
			t.Fatalf("%s: served STP=%v ANTT=%v cycles=%d; sequential STP=%v ANTT=%v cycles=%d",
				br.Request.Tag, br.Result.STP, br.Result.ANTT, br.Result.Cycles,
				want.STP, want.ANTT, want.Cycles)
		}
	}
}

// TestBatchGoldenDeterminism submits the same batch twice — cold cache, then
// warm — and requires byte-identical NDJSON payloads: cache state must be
// observationally invisible, and the stream order deterministic.
func TestBatchGoldenDeterminism(t *testing.T) {
	eng := testEngine()
	srv := server.New(eng)

	cold := post(t, srv, "/v1/batch", smallBatch)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold status %d: %s", cold.Code, cold.Body)
	}
	m := eng.Metrics()
	if m.CacheMisses == 0 {
		t.Fatal("cold run computed no references — test setup broken")
	}

	warm := post(t, srv, "/v1/batch", smallBatch)
	m2 := eng.Metrics()
	if m2.CacheMisses != m.CacheMisses {
		t.Fatalf("warm run recomputed references: misses %d -> %d", m.CacheMisses, m2.CacheMisses)
	}
	if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
		t.Fatalf("cold and warm payloads differ:\ncold:\n%s\nwarm:\n%s", cold.Body, warm.Body)
	}
}

// TestBatchStreamsIncrementally is the acceptance-criterion test: over a
// real HTTP connection, the first NDJSON line is readable while most of the
// batch is still queued — results arrive before the batch finishes.
func TestBatchStreamsIncrementally(t *testing.T) {
	eng := testEngine(smtmlp.WithParallelism(1))
	srv := server.New(eng)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// 12 requests on one worker: after the first result arrives, ~11 are
	// still queued behind it.
	body := `{"workloads":[["mcf","galgel"],["swim","twolf"]],"policies":["icount","stall","pstall","mlpstall","flush","mlpflush"]}`
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	r := bufio.NewReader(resp.Body)
	first, err := r.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var br smtmlp.BatchResult
	if err := json.Unmarshal(first, &br); err != nil {
		t.Fatalf("first line %s: %v", first, err)
	}
	if br.Index != 0 || br.Err != nil {
		t.Fatalf("first line index %d err %v", br.Index, br.Err)
	}
	if depth := eng.Metrics().QueueDepth; depth == 0 {
		t.Fatal("queue already empty when the first line arrived — streaming is not incremental")
	}

	rest, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if lines := readBatchLines(t, append(first, rest...)); len(lines) != 12 {
		t.Fatalf("%d lines, want 12", len(lines))
	}
}

// waitForDrain polls until the engine reports no queued or executing work.
func waitForDrain(t *testing.T, eng *smtmlp.Engine, deadline time.Duration) time.Duration {
	t.Helper()
	start := time.Now()
	for time.Since(start) < deadline {
		m := eng.Metrics()
		if m.QueueDepth == 0 && m.InFlight == 0 {
			return time.Since(start)
		}
		time.Sleep(5 * time.Millisecond)
	}
	m := eng.Metrics()
	t.Fatalf("engine did not drain within %v (queue=%d, in-flight=%d)", deadline, m.QueueDepth, m.InFlight)
	return 0
}

// TestBatchClientDisconnectCancelsAndDrains is the other acceptance
// criterion: a client that walks away mid-stream cancels the batch; the
// worker pool drains promptly (not after finishing the whole batch) and no
// goroutines leak.
func TestBatchClientDisconnectCancelsAndDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("disconnect test runs a deliberately long batch")
	}
	eng := testEngine(smtmlp.WithParallelism(1))
	srv := server.New(eng)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	goroutinesBefore := runtime.NumGoroutine()

	// 80 workloads x 3 policies = 240 sequential simulations: running the
	// whole batch takes >1s even with the fast cycle kernel, so a prompt
	// drain is distinguishable from "finished everything anyway".
	var workloads []string
	for i := 0; i < 40; i++ {
		workloads = append(workloads, `["mcf","galgel"]`, `["swim","twolf"]`)
	}
	body := fmt.Sprintf(`{"workloads":[%s],"policies":["icount","stall","flush"]}`,
		strings.Join(workloads, ","))

	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(resp.Body)
	if _, err := r.ReadBytes('\n'); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() // the client walks away mid-stream

	drain := waitForDrain(t, eng, 10*time.Second)
	// A canceled batch drains in roughly one in-flight simulation; the full
	// batch would need over a second even on a fast machine.
	if drain > 3*time.Second {
		t.Fatalf("drain took %v — looks like the batch ran to completion instead of canceling", drain)
	}

	var metrics server.MetricsResponse
	decodeInto(t, get(t, srv, "/metrics"), &metrics)
	if metrics.Server.ClientsDropped == 0 {
		t.Fatal("server never observed the disconnect")
	}
	if metrics.Server.BatchesActive != 0 {
		t.Fatalf("batches_active %d after drain", metrics.Server.BatchesActive)
	}

	// No leaked workers: the goroutine count returns to (near) baseline once
	// the pool drains and idle conns close.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= goroutinesBefore+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines %d, started with %d — batch workers leaked", runtime.NumGoroutine(), goroutinesBefore)
}

func TestMetricsEndpoint(t *testing.T) {
	eng := testEngine()
	srv := server.New(eng)

	var before server.MetricsResponse
	decodeInto(t, get(t, srv, "/metrics"), &before)

	post(t, srv, "/v1/run", `{"benchmarks":["mcf","galgel"],"policy":"icount"}`)

	var after server.MetricsResponse
	decodeInto(t, get(t, srv, "/metrics"), &after)
	if after.Server.RequestsTotal <= before.Server.RequestsTotal {
		t.Fatalf("requests_total did not advance: %d -> %d",
			before.Server.RequestsTotal, after.Server.RequestsTotal)
	}
	if after.Engine.CacheMisses == 0 || after.Engine.CacheEntries == 0 {
		t.Fatalf("engine cache counters empty after a run: %+v", after.Engine)
	}
	if after.Engine.InFlight != 0 || after.Engine.QueueDepth != 0 {
		t.Fatalf("idle server reports in_flight=%d queue_depth=%d",
			after.Engine.InFlight, after.Engine.QueueDepth)
	}
	// A store-less server must not report store gauges at all.
	if after.Store != nil {
		t.Fatalf("store-less server reports store metrics %+v", after.Store)
	}

	// Lease traffic shows up in the work gauges.
	cells := leaseCells(5_000, 1_000, []string{"mcf", "galgel"})
	rec := post(t, srv, "/v1/work/lease", leaseBody(t, server.LeaseRequest{
		LeaseID: "m1", Instructions: 5_000, Warmup: 1_000, Cells: cells,
	}))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("lease status %d, body %s", rec.Code, rec.Body)
	}
	collect(t, srv, "m1")
	decodeInto(t, get(t, srv, "/metrics"), &after)
	if after.Work.LeasesAccepted != 1 || after.Work.LeasesCollected != 1 ||
		after.Work.CellsExecuted != int64(len(cells)) {
		t.Fatalf("work metrics after one collected lease: %+v", after.Work)
	}
}

// TestMetricsEndpointStoreGauges pins the store block of /metrics: appended
// results, dedupe hits, and the refs snapshot age a fleet operator watches
// to confirm merges are landing.
func TestMetricsEndpointStoreGauges(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := server.New(testEngine(), server.WithStore(st))

	var m server.MetricsResponse
	decodeInto(t, get(t, srv, "/metrics"), &m)
	if m.Store == nil {
		t.Fatal("store-backed server reports no store metrics")
	}
	if m.Store.Results != 0 || m.Store.AppendsTotal != 0 || m.Store.RefsSnapshotAgeSeconds != -1 {
		t.Fatalf("fresh store metrics %+v", m.Store)
	}

	req := smtmlp.Request{Tag: "t", Config: smtmlp.DefaultConfig(2),
		Workload: smtmlp.Mix("mcf", "galgel"), Policy: smtmlp.ICount}
	rec := store.Record{Fingerprint: smtmlp.Fingerprint(req, 5_000, 1_000), Request: req}
	for i := 0; i < 2; i++ { // second append is a dedupe hit
		if _, err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.MergeRefs([]sim.RefRecord{{Key: "metrics-test-key"}}); err != nil {
		t.Fatal(err)
	}
	decodeInto(t, get(t, srv, "/metrics"), &m)
	if m.Store.Results != 1 || m.Store.AppendsTotal != 1 || m.Store.DedupeHits != 1 {
		t.Fatalf("store metrics after append+dup: %+v", m.Store)
	}
	if m.Store.RefsSnapshotAgeSeconds < 0 {
		t.Fatalf("refs snapshot written but age is %v", m.Store.RefsSnapshotAgeSeconds)
	}
}

// TestConcurrentClientsHammer pits parallel clients against one server (one
// engine, one shared RefCache) and requires every response to match the
// sequential ground truth exactly. Run under -race in CI, this doubles as
// the data-race check on the cache single-flight and counter paths.
func TestConcurrentClientsHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer runs dozens of simulations across parallel clients")
	}
	eng := testEngine()
	srv := server.New(eng)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	type runCase struct {
		body string
		wl   smtmlp.Workload
		p    smtmlp.Policy
	}
	cases := []runCase{
		{`{"benchmarks":["mcf","galgel"],"policy":"mlpflush"}`, smtmlp.Mix("mcf", "galgel"), smtmlp.MLPFlush},
		{`{"benchmarks":["swim","twolf"],"policy":"icount"}`, smtmlp.Mix("swim", "twolf"), smtmlp.ICount},
		{`{"benchmarks":["mcf","galgel"],"policy":"flush"}`, smtmlp.Mix("mcf", "galgel"), smtmlp.Flush},
		{`{"benchmarks":["swim","twolf"],"policy":"stall"}`, smtmlp.Mix("swim", "twolf"), smtmlp.Stall},
	}
	// Sequential ground truth from an independent cold engine.
	want := make([]smtmlp.WorkloadResult, len(cases))
	seq := testEngine()
	for i, c := range cases {
		res, err := seq.RunWorkload(context.Background(),
			smtmlp.DefaultConfig(2), c.wl, c.p)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients*(len(cases)+1))
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			for i, tc := range cases {
				resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(tc.body))
				if err != nil {
					errs <- err
					return
				}
				var got smtmlp.WorkloadResult
				err = json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if got.STP != want[i].STP || got.ANTT != want[i].ANTT || got.Cycles != want[i].Cycles {
					errs <- fmt.Errorf("client %d case %d: got STP=%v ANTT=%v, want STP=%v ANTT=%v",
						client, i, got.STP, got.ANTT, want[i].STP, want[i].ANTT)
					return
				}
			}
			// And one streamed batch per client.
			resp, err := http.Post(ts.URL+"/v1/batch", "application/json",
				strings.NewReader(`{"workloads":[["mcf","galgel"],["swim","twolf"]],"policies":["icount","mlpflush"]}`))
			if err != nil {
				errs <- err
				return
			}
			raw, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
			if len(lines) != 4 {
				errs <- fmt.Errorf("client %d: %d batch lines, want 4", client, len(lines))
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := eng.Metrics()
	if m.CacheMisses > 4 {
		t.Fatalf("hammer recomputed references: %d misses for 4 distinct benchmarks", m.CacheMisses)
	}
}
