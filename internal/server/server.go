// Package server exposes the smtmlp Engine over HTTP: the batch-simulation
// service cmd/smtserved serves. One long-lived Engine (with its shared
// reference cache) backs every request; handlers propagate the request
// context into the engine, so a client disconnect cancels the simulations it
// requested and the batch worker pool drains cleanly.
//
// Endpoints:
//
//	GET  /healthz      — liveness probe
//	GET  /metrics      — engine gauges (in-flight sims, queue depth, cache
//	                     hit/miss/eviction counters) and server counters
//	GET  /v1/policies  — the implemented fetch policies
//	GET  /v1/workloads — the benchmark catalog and Table II/III workloads
//	POST /v1/run       — one simulation, JSON in / JSON out
//	POST /v1/batch     — a policy x workload cross-product, streamed back as
//	                     NDJSON (one smtmlp.BatchResult per line) in
//	                     submission order as results complete
//	POST /v1/campaigns — start an asynchronous, persistent campaign (an
//	                     internal/campaign.Spec) against the server's result
//	                     store; answers 202 with the campaign id
//	GET  /v1/campaigns — list campaigns; /v1/campaigns/{id} polls one
//	POST /v1/work/lease    — accept a lease of campaign cells from a fleet
//	                         coordinator (see work.go); answers 202
//	POST /v1/work/complete — long-poll a lease and collect its results
//	GET  /v1/work          — list the leases this worker currently holds
//
// Errors are JSON bodies {"error":{"code":...,"message":...}} with stable
// codes (unknown_benchmark, unknown_policy, invalid_request,
// invalid_workload, batch_too_large, too_many_threads, unknown_campaign,
// unknown_lease, worker_busy, store_unavailable).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"smtmlp"
	"smtmlp/internal/metrics"
	"smtmlp/internal/obs"
	"smtmlp/internal/store"
	"smtmlp/internal/tenant"
)

// Defaults for the request-validation bounds.
const (
	DefaultMaxBatch   = 4096 // requests per /v1/batch call
	DefaultMaxThreads = 8    // benchmarks per workload

	// maxBodyBytes caps request bodies before decoding: even a full-size
	// batch (4096 workloads of 8 names plus config overrides) is far under
	// 1MB, so anything bigger is rejected before it can allocate.
	maxBodyBytes = 1 << 20
)

// Error codes returned in the typed error body.
const (
	CodeInvalidRequest   = "invalid_request"
	CodeInvalidWorkload  = "invalid_workload"
	CodeUnknownBenchmark = "unknown_benchmark"
	CodeUnknownPolicy    = "unknown_policy"
	CodeUnknownCampaign  = "unknown_campaign"
	CodeUnknownLease     = "unknown_lease"
	CodeBatchTooLarge    = "batch_too_large"
	CodeTooManyThreads   = "too_many_threads"
	CodeStoreUnavailable = "store_unavailable"
	CodeWorkerBusy       = "worker_busy"
	CodeCanceled         = "canceled"
	CodeInternal         = "internal"

	// Tenancy codes (servers running with a tenant table): unauthorized is
	// the 401 for a missing/unknown API key; rate_limited is the 429 for a
	// drained token bucket (with an honest Retry-After header); and
	// quota_exceeded is the 429 for a concurrency quota (in-flight cells,
	// campaigns, leases) — no Retry-After, because quota frees when work
	// finishes, not with time.
	CodeUnauthorized  = "unauthorized"
	CodeRateLimited   = "rate_limited"
	CodeQuotaExceeded = "quota_exceeded"
)

// Server is the HTTP surface over one long-lived Engine. It implements
// http.Handler and is safe for concurrent use.
type Server struct {
	eng        *smtmlp.Engine
	maxBatch   int
	maxThreads int
	mux        *http.ServeMux

	// Campaign state (nil store disables the campaign endpoints).
	store     *store.Store
	baseCtx   context.Context
	mu        sync.Mutex
	campaigns map[string]*campaignRun
	order     []string // campaign ids in creation order
	nextID    int

	// Work-lease state (the /v1/work worker protocol; see work.go). Guarded
	// by mu alongside the campaign maps.
	leases     map[string]*workLease
	leaseOrder []string // lease ids in acceptance order
	maxLeases  int
	leaseTTL   time.Duration

	// Multi-tenancy (nil table = single-tenant: no auth, no admission, no
	// slot scheduling — see tenancy.go). gate is shared with the service
	// engine and installed on per-lease and campaign engines so every
	// simulation cell passes the same tenant scheduler.
	tenants *tenant.Table
	gate    smtmlp.SlotGate

	// Observability: the structured logger (obs.Discard() unless WithLogger
	// installs one; every line carries the request's correlation IDs) and the
	// latency histograms exposed on /metrics — JSON summaries always,
	// full buckets under ?format=prometheus.
	log           *slog.Logger
	runLatency    metrics.Histogram
	batchDuration metrics.Histogram
	leaseLifetime metrics.Histogram

	// Server-level counters for /metrics.
	requestsTotal  atomic.Int64
	batchesActive  atomic.Int64
	batchResults   atomic.Int64
	clientsDropped atomic.Int64
	unauthorized   atomic.Int64

	// Work-lease counters for /metrics. The byte counters track the
	// /v1/work wire on both sides of the gzip boundary (see WorkMetrics).
	leasesAccepted   atomic.Int64
	leasesRenewed    atomic.Int64
	leasesCollected  atomic.Int64
	leasesExpired    atomic.Int64
	cellsExecuted    atomic.Int64
	cellsFailed      atomic.Int64
	workBytesIn      atomic.Int64
	workBytesInWire  atomic.Int64
	workBytesOut     atomic.Int64
	workBytesOutWire atomic.Int64
}

// Option configures a Server under construction.
type Option func(*Server)

// WithMaxBatch bounds the number of simulations one /v1/batch call may
// request (the policy x workload product); n <= 0 keeps the default.
func WithMaxBatch(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBatch = n
		}
	}
}

// WithMaxThreads bounds the number of benchmarks per workload; n <= 0 keeps
// the default.
func WithMaxThreads(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxThreads = n
		}
	}
}

// WithStore backs the campaign endpoints (POST/GET /v1/campaigns) with a
// persistent result store. Without a store those endpoints answer 503.
func WithStore(st *store.Store) Option {
	return func(s *Server) { s.store = st }
}

// WithMaxLeases bounds the number of running work leases the server holds at
// once (further leases answer 429 worker_busy); n <= 0 keeps the default.
func WithMaxLeases(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxLeases = n
		}
	}
}

// WithLeaseTTL sets how long an uncollected work lease survives before the
// worker cancels and forgets it; d <= 0 keeps the default. A lease may
// request a shorter TTL than the server's, never a longer one.
func WithLeaseTTL(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.leaseTTL = d
		}
	}
}

// WithLogger installs a structured logger; every handler log line carries
// the request's correlation IDs (request_id, and lease_id/campaign_id where
// a lease is in play). The default discards everything, so logging is
// strictly opt-in and the untenanted fast path stays silent.
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) {
		if l != nil {
			s.log = l
		}
	}
}

// WithBaseContext sets the lifecycle context for asynchronous campaign
// execution (campaigns outlive the POST request that started them).
// Canceling it — e.g. on SIGTERM — cleanly interrupts running campaigns;
// everything committed so far stays in the store and a later identical POST
// resumes the gaps. The default is context.Background().
func WithBaseContext(ctx context.Context) Option {
	return func(s *Server) {
		if ctx != nil {
			s.baseCtx = ctx
		}
	}
}

// New builds a Server over eng. The engine is owned by the caller and may be
// shared (e.g. with a second server or background sweeps); its reference
// cache warms across all of them.
func New(eng *smtmlp.Engine, opts ...Option) *Server {
	s := &Server{
		eng:        eng,
		maxBatch:   DefaultMaxBatch,
		maxThreads: DefaultMaxThreads,
		baseCtx:    context.Background(),
		campaigns:  make(map[string]*campaignRun),
		leases:     make(map[string]*workLease),
		maxLeases:  DefaultMaxLeases,
		leaseTTL:   DefaultLeaseTTL,
		log:        obs.Discard(),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/policies", s.handlePolicies)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/campaigns", s.handleCampaignCreate)
	s.mux.HandleFunc("GET /v1/campaigns", s.handleCampaignList)
	s.mux.HandleFunc("GET /v1/campaigns/{id}", s.handleCampaignGet)
	s.mux.HandleFunc("POST /v1/work/lease", s.handleWorkLease)
	s.mux.HandleFunc("POST /v1/work/complete", s.handleWorkComplete)
	s.mux.HandleFunc("GET /v1/work", s.handleWorkList)
	return s
}

// ServeHTTP implements http.Handler. Every request is assigned a request ID
// here — the X-Request-Id header when the caller (e.g. a fleet coordinator)
// sent one, a fresh random ID otherwise — which is echoed on the response,
// carried in the request context and attached to every log line the request
// produces. With a tenant table installed, /v1 requests authenticate here
// (401 unauthorized otherwise) and carry their resolved tenant in the
// request context from this point on.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requestsTotal.Add(1)
	reqID := r.Header.Get(obs.RequestIDHeader)
	if reqID == "" {
		reqID = obs.NewRequestID()
	}
	w.Header().Set(obs.RequestIDHeader, reqID)
	r = r.WithContext(obs.WithRequestID(r.Context(), reqID))
	r, ok := s.resolveTenant(w, r)
	if !ok {
		return
	}
	s.mux.ServeHTTP(w, r)
}

// logger returns the server logger bound to the request's correlation IDs.
func (s *Server) logger(r *http.Request) *slog.Logger {
	l := s.log.With(obs.KeyRequestID, obs.RequestID(r.Context()))
	if cid := r.Header.Get(obs.CampaignIDHeader); cid != "" {
		l = l.With(obs.KeyCampaignID, cid)
	}
	return l
}

// apiError is the typed error body.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorBody struct {
	Error apiError `json:"error"`
}

// writeError sends the typed error body with the given status.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: apiError{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// writeJSON sends a 200 JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// decodeBody strictly decodes the request body into v (unknown fields are
// rejected, so typos fail loudly instead of being silently ignored). The
// body is size-capped before decoding, so an oversized request is rejected
// before it can allocate.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeInvalidRequest,
				"request body exceeds %d bytes", tooLarge.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "decoding request body: %v", err)
		return false
	}
	return true
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	// Liveness answers must never be served stale by an intermediary cache.
	w.Header().Set("Cache-Control", "no-store")
	writeJSON(w, map[string]string{"status": "ok"})
}

// MetricsResponse is the /metrics body. Store is present only on
// store-backed servers; its gauges (results appended, dedupe hits, refs
// snapshot age) are what make fleet convergence observable per node.
type MetricsResponse struct {
	Engine smtmlp.EngineMetrics `json:"engine"`
	Server ServerMetrics        `json:"server"`
	Work   WorkMetrics          `json:"work"`
	Store  *store.Metrics       `json:"store,omitempty"`
	// Tenants is present only on multi-tenant servers: one row per
	// configured tenant, sorted by name.
	Tenants []TenantMetrics `json:"tenants,omitempty"`
	// Latency summarizes the server's latency histograms (count and sum;
	// the full bucket vectors are exposed under /metrics?format=prometheus).
	Latency LatencyMetrics `json:"latency"`
}

// LatencyMetrics are the /metrics summaries of the latency histograms.
type LatencyMetrics struct {
	// Run is the /v1/run engine execution latency; BatchStream the
	// /v1/batch stream duration (first cell to last NDJSON line);
	// LeaseLifetime the accept-to-collection (or expiry) lifetime of work
	// leases; TenantQueueWait the slot-scheduler queue wait (multi-tenant
	// servers only — zero otherwise).
	Run             metrics.HistogramSnapshot `json:"run"`
	BatchStream     metrics.HistogramSnapshot `json:"batch_stream"`
	LeaseLifetime   metrics.HistogramSnapshot `json:"lease_lifetime"`
	TenantQueueWait metrics.HistogramSnapshot `json:"tenant_queue_wait"`
}

// queueWaitHistogram is implemented by slot gates that track queue wait
// (internal/tenant.Scheduler); other gates report an empty histogram.
type queueWaitHistogram interface {
	QueueWaitHistogram() *metrics.Histogram
}

// latencyMetrics snapshots the four histograms.
func (s *Server) latencyMetrics() LatencyMetrics {
	lm := LatencyMetrics{
		Run:           s.runLatency.Snapshot(),
		BatchStream:   s.batchDuration.Snapshot(),
		LeaseLifetime: s.leaseLifetime.Snapshot(),
	}
	if g, ok := s.gate.(queueWaitHistogram); ok {
		lm.TenantQueueWait = g.QueueWaitHistogram().Snapshot()
	}
	return lm
}

// ServerMetrics are the handler-level counters.
type ServerMetrics struct {
	RequestsTotal        int64 `json:"requests_total"`
	BatchesActive        int64 `json:"batches_active"`
	BatchResultsStreamed int64 `json:"batch_results_streamed"`
	ClientsDropped       int64 `json:"clients_dropped"`
	// Unauthorized counts /v1 requests refused for a missing or unknown API
	// key (multi-tenant servers only; a key is a secret, so the counter is
	// global rather than per guessed identity).
	Unauthorized int64 `json:"unauthorized,omitempty"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Metrics are a point-in-time reading; a cached answer is a wrong answer.
	w.Header().Set("Cache-Control", "no-store")
	resp := MetricsResponse{
		Engine: s.eng.Metrics(),
		Server: ServerMetrics{
			RequestsTotal:        s.requestsTotal.Load(),
			BatchesActive:        s.batchesActive.Load(),
			BatchResultsStreamed: s.batchResults.Load(),
			ClientsDropped:       s.clientsDropped.Load(),
			Unauthorized:         s.unauthorized.Load(),
		},
		Work:    s.workMetrics(),
		Tenants: s.tenantMetrics(),
		Latency: s.latencyMetrics(),
	}
	if s.store != nil {
		m := s.store.Metrics()
		resp.Store = &m
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, resp)
	case "prometheus":
		writePrometheus(w, resp)
	default:
		writeError(w, http.StatusBadRequest, CodeInvalidRequest,
			"unknown metrics format %q (want json or prometheus)", format)
	}
}

// PoliciesResponse is the /v1/policies body.
type PoliciesResponse struct {
	// Policies lists every implemented policy name.
	Policies []string `json:"policies"`
	// Paper lists the six policies of the paper's main evaluation.
	Paper []string `json:"paper"`
}

func (s *Server) handlePolicies(w http.ResponseWriter, _ *http.Request) {
	resp := PoliciesResponse{}
	for _, p := range smtmlp.AllPolicies() {
		resp.Policies = append(resp.Policies, p.String())
	}
	for _, p := range smtmlp.Policies() {
		resp.Paper = append(resp.Paper, p.String())
	}
	writeJSON(w, resp)
}

// WorkloadsResponse is the /v1/workloads body.
type WorkloadsResponse struct {
	// Benchmarks lists the Table I catalog.
	Benchmarks []string `json:"benchmarks"`
	// TwoThread and FourThread are the Table II / Table III workloads.
	TwoThread  []smtmlp.Workload `json:"two_thread"`
	FourThread []smtmlp.Workload `json:"four_thread"`
}

func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, WorkloadsResponse{
		Benchmarks: smtmlp.Benchmarks(),
		TwoThread:  smtmlp.TwoThreadWorkloads(),
		FourThread: smtmlp.FourThreadWorkloads(),
	})
}

// ConfigSpec is the client-facing configuration surface: a small set of
// overrides applied to the Table IV default for the workload's thread count.
// The zero spec is the paper's baseline.
type ConfigSpec struct {
	// Threads overrides the hardware thread count; omitted (0) sizes the
	// machine to the workload. A value that disagrees with the workload's
	// benchmark count is rejected at the engine boundary with an
	// invalid_workload error (every thread runs exactly one benchmark).
	Threads int `json:"threads,omitempty"`
	// ROBSize rescales the out-of-order window (Figure 17/18 style): LSQ,
	// issue queues and rename registers scale proportionally.
	ROBSize int `json:"rob_size,omitempty"`
	// MemLatency overrides the main-memory latency (the paper sweeps
	// 200..800 cycles).
	MemLatency int64 `json:"mem_latency,omitempty"`
	// Prefetch enables/disables the stream-buffer prefetcher; omitted keeps
	// the baseline (enabled).
	Prefetch *bool `json:"prefetch,omitempty"`
}

// config materializes the spec for a workload of the given thread count.
func (c *ConfigSpec) config(threads int) smtmlp.Config {
	if c != nil && c.Threads > 0 {
		threads = c.Threads
	}
	cfg := smtmlp.DefaultConfig(threads)
	if c == nil {
		return cfg
	}
	if c.ROBSize > 0 {
		cfg = cfg.ScaleWindow(c.ROBSize)
	}
	if c.MemLatency > 0 {
		cfg.Mem.MemLatency = c.MemLatency
	}
	if c.Prefetch != nil {
		cfg.Mem.EnablePrefetch = *c.Prefetch
	}
	return cfg
}

// validate bounds-checks the spec.
func (c *ConfigSpec) validate() error {
	if c == nil {
		return nil
	}
	if c.Threads < 0 || c.Threads > 8 {
		return fmt.Errorf("threads %d outside [0, 8]", c.Threads)
	}
	if c.ROBSize < 0 || (c.ROBSize > 0 && c.ROBSize < 16) || c.ROBSize > 4096 {
		return fmt.Errorf("rob_size %d outside [16, 4096]", c.ROBSize)
	}
	if c.MemLatency < 0 || c.MemLatency > 100_000 {
		return fmt.Errorf("mem_latency %d outside [0, 100000]", c.MemLatency)
	}
	return nil
}

// RunRequest is the /v1/run body: one workload under one policy.
type RunRequest struct {
	Benchmarks []string    `json:"benchmarks"`
	Policy     string      `json:"policy"`
	Config     *ConfigSpec `json:"config,omitempty"`
	// TraceInterval opts the run into interval traces: one sample per
	// hardware thread every TraceInterval cycles, returned on the result's
	// threads[].intervals (a bounded ring keeps the tail of long runs).
	// 0 (the default) disables tracing; the knob never changes the
	// simulated outcome or the result's store fingerprint.
	TraceInterval int64 `json:"trace_interval,omitempty"`
}

// validateTraceInterval bounds-checks a trace_interval field.
func validateTraceInterval(w http.ResponseWriter, every int64) bool {
	if every < 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest,
			"trace_interval %d is negative; use 0 (off) or a positive cycle count", every)
		return false
	}
	return true
}

// checkWorkload validates one benchmark list against the catalog and the
// thread bound, writing the typed error body itself on failure.
func (s *Server) checkWorkload(w http.ResponseWriter, benchmarks []string) bool {
	if len(benchmarks) == 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "workload has no benchmarks")
		return false
	}
	if len(benchmarks) > s.maxThreads {
		writeError(w, http.StatusBadRequest, CodeTooManyThreads,
			"workload has %d benchmarks, server limit is %d", len(benchmarks), s.maxThreads)
		return false
	}
	for _, b := range benchmarks {
		if !knownBenchmarks[b] {
			writeError(w, http.StatusBadRequest, CodeUnknownBenchmark,
				"unknown benchmark %q (see GET /v1/workloads)", b)
			return false
		}
	}
	return true
}

// knownBenchmarks is the catalog as a set, for O(1) request validation.
var knownBenchmarks = func() map[string]bool {
	m := make(map[string]bool)
	for _, b := range smtmlp.Benchmarks() {
		m[b] = true
	}
	return m
}()

// parsePolicy validates a policy name, writing the typed error body itself
// on failure.
func parsePolicy(w http.ResponseWriter, name string) (smtmlp.Policy, bool) {
	p, err := smtmlp.ParsePolicy(name)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeUnknownPolicy,
			"unknown policy %q (see GET /v1/policies)", name)
		return 0, false
	}
	return p, true
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if !s.checkWorkload(w, req.Benchmarks) {
		return
	}
	p, ok := parsePolicy(w, req.Policy)
	if !ok {
		return
	}
	if err := req.Config.validate(); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "config: %v", err)
		return
	}
	if !validateTraceInterval(w, req.TraceInterval) {
		return
	}

	// One interactive cell: admission (rate limit + in-flight quota) here,
	// slot scheduling downstream in the engine's gate — interactive class
	// wins the next free engine slot over any tenant's bulk backlog.
	ctx, release, ok := s.admit(w, r, tenant.Interactive, 1)
	if !ok {
		return
	}
	defer release()

	wl := smtmlp.Mix(req.Benchmarks...)
	start := time.Now()
	res, err := s.eng.RunRequest(ctx, smtmlp.Request{
		Config:        req.Config.config(len(req.Benchmarks)),
		Workload:      wl,
		Policy:        p,
		TraceInterval: req.TraceInterval,
	})
	elapsed := time.Since(start)
	s.runLatency.Observe(elapsed)
	switch {
	case errors.Is(err, smtmlp.ErrWorkloadMismatch):
		writeError(w, http.StatusBadRequest, CodeInvalidWorkload, "%v", err)
		return
	case errors.Is(err, smtmlp.ErrCanceled):
		// The request context was canceled: either the client went away (the
		// write below goes nowhere) or the server is draining for shutdown
		// (the client gets a retryable 503). The two are indistinguishable
		// here, so answer as if the client is still listening.
		writeError(w, http.StatusServiceUnavailable, CodeCanceled, "run canceled: %v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, CodeInternal, "%v", err)
		return
	}
	s.logger(r).Info("run complete",
		"workload", wl.Name(), "policy", req.Policy, "elapsed", elapsed)
	writeJSON(w, res)
}

// BatchRequest is the /v1/batch body: the policy x workload cross-product on
// one configuration point. The server executes (and streams) it policy-major
// — all workloads under the first policy, then the second, ... — so the
// first wave of workers covers distinct benchmarks and warms the reference
// cache as broadly as possible.
type BatchRequest struct {
	Workloads [][]string  `json:"workloads"`
	Policies  []string    `json:"policies"`
	Config    *ConfigSpec `json:"config,omitempty"`
	// TraceInterval opts every cell of the batch into interval traces (see
	// RunRequest.TraceInterval); each NDJSON result line then carries its
	// threads' interval samples. 0 disables.
	TraceInterval int64 `json:"trace_interval,omitempty"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Workloads) == 0 || len(req.Policies) == 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest,
			"batch needs at least one workload and one policy")
		return
	}
	if n := len(req.Workloads) * len(req.Policies); n > s.maxBatch {
		writeError(w, http.StatusBadRequest, CodeBatchTooLarge,
			"batch of %d simulations exceeds the server limit of %d", n, s.maxBatch)
		return
	}
	policies := make([]smtmlp.Policy, len(req.Policies))
	for i, name := range req.Policies {
		p, ok := parsePolicy(w, name)
		if !ok {
			return
		}
		policies[i] = p
	}
	for _, benchmarks := range req.Workloads {
		if !s.checkWorkload(w, benchmarks) {
			return
		}
	}
	if err := req.Config.validate(); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "config: %v", err)
		return
	}
	if !validateTraceInterval(w, req.TraceInterval) {
		return
	}

	// Policy-major request order: under one policy every workload needs a
	// distinct set of single-threaded references, so the first wave of
	// workers fans across benchmarks and warms the shared cache instead of
	// piling onto one workload's references.
	reqs := make([]smtmlp.Request, 0, len(req.Workloads)*len(req.Policies))
	for _, p := range policies {
		for _, benchmarks := range req.Workloads {
			wl := smtmlp.Mix(benchmarks...)
			reqs = append(reqs, smtmlp.Request{
				Tag:           fmt.Sprintf("%s/%s", wl.Name(), p),
				Config:        req.Config.config(len(benchmarks)),
				Workload:      wl,
				Policy:        p,
				TraceInterval: req.TraceInterval,
			})
		}
	}

	// Bulk admission: one token plus an in-flight reservation for the whole
	// cross-product, held until the stream drains. Each cell still queues
	// for its own engine slot, where interactive traffic outranks it.
	ctx, release, ok := s.admit(w, r, tenant.Bulk, len(reqs))
	if !ok {
		return
	}
	defer release()

	s.batchesActive.Add(1)
	defer s.batchesActive.Add(-1)
	start := time.Now()
	s.streamBatch(ctx, w, reqs)
	elapsed := time.Since(start)
	s.batchDuration.Observe(elapsed)
	s.logger(r).Info("batch streamed", "cells", len(reqs), "elapsed", elapsed)
}

// streamBatch runs the batch and streams one NDJSON line per result, in
// submission order (a tiny reorder buffer holds out-of-order completions).
// Submission-order emission keeps the byte stream deterministic — the
// simulator itself is deterministic, so the same batch always yields the
// identical payload — while results still reach the client incrementally,
// well before the batch finishes. If the client disconnects, the request
// context cancels the batch; the worker pool drains fully (the engine
// guarantees exactly len(reqs) results) before the handler returns.
func (s *Server) streamBatch(ctx context.Context, w http.ResponseWriter, reqs []smtmlp.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Batch-Size", fmt.Sprint(len(reqs)))
	flusher, _ := w.(http.Flusher)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	ch := s.eng.RunBatch(ctx, reqs)
	pending := make(map[int]smtmlp.BatchResult)
	next := 0
	clientGone := false
	for br := range ch {
		pending[br.Index] = br
		for {
			line, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if clientGone {
				continue
			}
			if err := writeLine(w, line); err != nil {
				// The client stopped reading; cancel the rest of the batch
				// and keep draining the channel so no worker leaks.
				clientGone = true
				s.clientsDropped.Add(1)
				cancel()
				continue
			}
			s.batchResults.Add(1)
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

// writeLine encodes one NDJSON line.
func writeLine(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
