// Prometheus text exposition (format version 0.0.4) of the /metrics body.
// The JSON body stays the default; GET /metrics?format=prometheus renders
// the same counters and gauges — plus the full bucket vectors of the latency
// histograms, which the JSON body only summarizes — for any Prometheus-
// compatible scraper. Dependency-free by design: the format is plain text
// and the renderer is ~a page of fmt.Fprintf.
package server

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"smtmlp/internal/metrics"
)

// promContentType is the Prometheus text exposition content type.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// promWriter accumulates exposition lines; its methods emit the HELP/TYPE
// header once per metric family followed by the sample lines.
type promWriter struct {
	w io.Writer
}

// family writes the # HELP / # TYPE preamble.
func (p promWriter) family(name, typ, help string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample writes one un-labeled sample line.
func (p promWriter) sample(name string, value float64) {
	fmt.Fprintf(p.w, "%s %s\n", name, formatPromValue(value))
}

// labeled writes one sample line with a single label.
func (p promWriter) labeled(name, label, labelValue string, value float64) {
	fmt.Fprintf(p.w, "%s{%s=%q} %s\n", name, label, escapePromLabel(labelValue), formatPromValue(value))
}

// counter and gauge emit a complete single-sample family.
func (p promWriter) counter(name, help string, value int64) {
	p.family(name, "counter", help)
	p.sample(name, float64(value))
}

func (p promWriter) gauge(name, help string, value float64) {
	p.family(name, "gauge", help)
	p.sample(name, value)
}

// histogram emits a full histogram family: cumulative buckets (with the
// mandatory +Inf bucket equal to _count), _sum and _count.
func (p promWriter) histogram(name, help string, s metrics.HistogramSnapshot) {
	p.family(name, "histogram", help)
	for i, ub := range metrics.HistogramBuckets {
		fmt.Fprintf(p.w, "%s_bucket{le=%q} %d\n", name, formatPromValue(ub), s.Buckets[i])
	}
	fmt.Fprintf(p.w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	fmt.Fprintf(p.w, "%s_sum %s\n", name, formatPromValue(s.SumSeconds))
	fmt.Fprintf(p.w, "%s_count %d\n", name, s.Count)
}

// formatPromValue renders a float the exposition-format way: integral values
// without an exponent, everything else in Go's shortest form.
func formatPromValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapePromLabel escapes a label value per the exposition format.
func escapePromLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

// writePrometheus renders the full metrics response as text exposition.
func writePrometheus(w http.ResponseWriter, resp MetricsResponse) {
	w.Header().Set("Content-Type", promContentType)
	p := promWriter{w: w}

	// Engine gauges and cache counters.
	p.gauge("smtmlp_engine_in_flight", "Simulations executing right now.", float64(resp.Engine.InFlight))
	p.gauge("smtmlp_engine_queue_depth", "Batch requests accepted but not yet finished.", float64(resp.Engine.QueueDepth))
	p.gauge("smtmlp_engine_cache_entries", "Reference profiles held in the shared cache.", float64(resp.Engine.CacheEntries))
	p.counter("smtmlp_engine_cache_hits_total", "Reference cache hits.", int64(resp.Engine.CacheHits))
	p.counter("smtmlp_engine_cache_misses_total", "Reference cache misses.", int64(resp.Engine.CacheMisses))
	p.counter("smtmlp_engine_cache_evictions_total", "Reference cache evictions.", int64(resp.Engine.CacheEvictions))

	// Handler-level counters.
	p.counter("smtmlp_server_requests_total", "HTTP requests received.", resp.Server.RequestsTotal)
	p.gauge("smtmlp_server_batches_active", "Batch streams in flight.", float64(resp.Server.BatchesActive))
	p.counter("smtmlp_server_batch_results_streamed_total", "NDJSON batch result lines written.", resp.Server.BatchResultsStreamed)
	p.counter("smtmlp_server_clients_dropped_total", "Batch clients that disconnected mid-stream.", resp.Server.ClientsDropped)
	p.counter("smtmlp_server_unauthorized_total", "Requests refused for a missing or unknown API key.", resp.Server.Unauthorized)

	// Work-lease counters (the /v1/work worker protocol).
	p.counter("smtmlp_work_leases_accepted_total", "Work leases accepted.", resp.Work.LeasesAccepted)
	p.gauge("smtmlp_work_leases_active", "Work leases currently held.", float64(resp.Work.LeasesActive))
	p.counter("smtmlp_work_leases_renewed_total", "Lease TTL renewals (idempotent re-deliveries).", resp.Work.LeasesRenewed)
	p.counter("smtmlp_work_leases_collected_total", "Leases collected by a coordinator.", resp.Work.LeasesCollected)
	p.counter("smtmlp_work_leases_expired_total", "Leases expired uncollected.", resp.Work.LeasesExpired)
	p.counter("smtmlp_work_cells_executed_total", "Lease cells executed successfully.", resp.Work.CellsExecuted)
	p.counter("smtmlp_work_cells_failed_total", "Lease cells that failed deterministically.", resp.Work.CellsFailed)
	p.counter("smtmlp_work_bytes_in_total", "Decoded /v1/work request bytes.", resp.Work.BytesIn)
	p.counter("smtmlp_work_bytes_in_wire_total", "On-the-wire /v1/work request bytes (post-compression).", resp.Work.BytesInWire)
	p.counter("smtmlp_work_bytes_out_total", "Encoded /v1/work response bytes.", resp.Work.BytesOut)
	p.counter("smtmlp_work_bytes_out_wire_total", "On-the-wire /v1/work response bytes (post-compression).", resp.Work.BytesOutWire)

	// Store gauges, present only on store-backed servers.
	if st := resp.Store; st != nil {
		p.gauge("smtmlp_store_results", "Persisted campaign results.", float64(st.Results))
		p.gauge("smtmlp_store_refs", "Persisted reference profiles.", float64(st.Refs))
		p.counter("smtmlp_store_appends_total", "Results appended since the store opened.", st.AppendsTotal)
		p.counter("smtmlp_store_dedupe_hits_total", "Appends absorbed as duplicates.", st.DedupeHits)
		p.gauge("smtmlp_store_refs_snapshot_age_seconds", "Age of the refs.ndjson snapshot (-1 before the first write).", st.RefsSnapshotAgeSeconds)
	}

	// Per-tenant rows, one labeled sample per tenant per family.
	if len(resp.Tenants) > 0 {
		for _, f := range []struct {
			name, typ, help string
			value           func(TenantMetrics) float64
		}{
			{"smtmlp_tenant_in_flight", "gauge", "Engine slots held by the tenant.", func(t TenantMetrics) float64 { return float64(t.InFlight) }},
			{"smtmlp_tenant_queued", "gauge", "Tenant work queued for an engine slot.", func(t TenantMetrics) float64 { return float64(t.Queued) }},
			{"smtmlp_tenant_cells_in_flight", "gauge", "Admitted but unfinished cells.", func(t TenantMetrics) float64 { return float64(t.CellsInFlight) }},
			{"smtmlp_tenant_admitted_total", "counter", "Requests past admission.", func(t TenantMetrics) float64 { return float64(t.Admitted) }},
			{"smtmlp_tenant_rate_limited_total", "counter", "Requests refused rate_limited.", func(t TenantMetrics) float64 { return float64(t.RateLimited) }},
			{"smtmlp_tenant_quota_denied_total", "counter", "Requests refused quota_exceeded.", func(t TenantMetrics) float64 { return float64(t.QuotaDenied) }},
			{"smtmlp_tenant_slots_granted_total", "counter", "Engine slots granted by the scheduler.", func(t TenantMetrics) float64 { return float64(t.SlotsGranted) }},
			{"smtmlp_tenant_queue_wait_seconds_total", "counter", "Total time tenant work waited for a slot.", func(t TenantMetrics) float64 { return float64(t.QueueWaitMillis) / 1000 }},
			{"smtmlp_tenant_active_campaigns", "gauge", "Running campaigns started by the tenant.", func(t TenantMetrics) float64 { return float64(t.ActiveCampaigns) }},
			{"smtmlp_tenant_active_leases", "gauge", "Running leases held by the tenant.", func(t TenantMetrics) float64 { return float64(t.ActiveLeases) }},
		} {
			p.family(f.name, f.typ, f.help)
			for _, t := range resp.Tenants {
				p.labeled(f.name, "tenant", t.Name, f.value(t))
			}
		}
	}

	// Latency histograms.
	p.histogram("smtmlp_run_duration_seconds", "Engine execution latency of /v1/run.", resp.Latency.Run)
	p.histogram("smtmlp_batch_stream_duration_seconds", "Duration of /v1/batch NDJSON streams.", resp.Latency.BatchStream)
	p.histogram("smtmlp_lease_lifetime_seconds", "Work lease lifetime, accept to collection or expiry.", resp.Latency.LeaseLifetime)
	p.histogram("smtmlp_tenant_queue_wait_seconds", "Per-acquisition slot-scheduler queue wait.", resp.Latency.TenantQueueWait)
}
