package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"smtmlp"
	"smtmlp/internal/campaign"
	"smtmlp/internal/obs"
	"smtmlp/internal/tenant"
)

// campaignRun is the server-side state of one asynchronous campaign.
type campaignRun struct {
	id     string
	spec   campaign.Spec
	tenant *tenant.Tenant // creator; nil on untenanted servers

	mu       sync.Mutex
	status   string // "running", "done", "canceled", "failed"
	progress campaign.Progress
	summary  campaign.Summary
	errMsg   string
	done     chan struct{} // closed when the campaign goroutine finishes
}

// snapshotStatus reads the run's status under its lock.
func (c *campaignRun) snapshotStatus() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.status
}

// CampaignStatus is the JSON shape of one campaign in GET responses and the
// 202 creation response.
type CampaignStatus struct {
	ID       string `json:"id"`
	Name     string `json:"name,omitempty"`
	Status   string `json:"status"`
	Total    int    `json:"total"`
	Skipped  int    `json:"skipped"`
	Executed int    `json:"executed"`
	Failed   int    `json:"failed"`
	Error    string `json:"error,omitempty"`
	// Summary carries the final counters (including warm-start stats) once
	// the campaign has finished.
	Summary *campaign.Summary `json:"summary,omitempty"`
}

// snapshot renders the run under its lock.
func (c *campaignRun) snapshot() CampaignStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CampaignStatus{
		ID:       c.id,
		Name:     c.spec.Name,
		Status:   c.status,
		Total:    c.progress.Total,
		Skipped:  c.progress.Skipped,
		Executed: c.progress.Executed,
		Failed:   c.progress.Failed,
		Error:    c.errMsg,
	}
	if c.status != "running" {
		sum := c.summary
		st.Summary = &sum
	}
	return st
}

// requireStore answers 503 (and reports false) when the campaign endpoints
// are hit on a server running without a result store.
func (s *Server) requireStore(w http.ResponseWriter) bool {
	if s.store == nil {
		writeError(w, http.StatusServiceUnavailable, CodeStoreUnavailable,
			"this server runs without a result store; start it with -store to enable campaigns")
		return false
	}
	return true
}

// DrainCampaigns blocks until every campaign goroutine has finished. Call it
// during shutdown, after canceling the base context and before closing the
// store: campaigns observe the cancellation, commit what completed, persist
// their references and exit — so nothing appends to a closed store.
func (s *Server) DrainCampaigns() {
	s.mu.Lock()
	runs := make([]*campaignRun, 0, len(s.order))
	for _, id := range s.order {
		runs = append(runs, s.campaigns[id])
	}
	s.mu.Unlock()
	for _, run := range runs {
		<-run.done
	}
}

// handleCampaignCreate validates the spec, registers the campaign and starts
// it on the server's lifecycle context (campaigns outlive the POST). The
// expansion is diffed against the store up front so the 202 body already
// reports how much of the grid is cached.
func (s *Server) handleCampaignCreate(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) {
		return
	}
	var spec campaign.Spec
	if !decodeBody(w, r, &spec) {
		return
	}
	reqs, fps, err := spec.Requests()
	switch {
	case errors.Is(err, smtmlp.ErrUnknownPolicy):
		writeError(w, http.StatusBadRequest, CodeUnknownPolicy, "%v", err)
		return
	case errors.Is(err, smtmlp.ErrUnknownBenchmark):
		writeError(w, http.StatusBadRequest, CodeUnknownBenchmark, "%v", err)
		return
	case errors.Is(err, smtmlp.ErrWorkloadMismatch):
		writeError(w, http.StatusBadRequest, CodeInvalidWorkload, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "%v", err)
		return
	}
	if len(reqs) > s.maxBatch {
		writeError(w, http.StatusBadRequest, CodeBatchTooLarge,
			"campaign of %d simulations exceeds the server limit of %d", len(reqs), s.maxBatch)
		return
	}
	for _, req := range reqs {
		if len(req.Workload.Benchmarks) > s.maxThreads {
			writeError(w, http.StatusBadRequest, CodeTooManyThreads,
				"workload %s has %d benchmarks, server limit is %d",
				req.Workload.Name(), len(req.Workload.Benchmarks), s.maxThreads)
			return
		}
	}
	t, _ := tenant.FromContext(r.Context())
	if !s.takeToken(w, t) {
		return
	}
	skipped := 0
	for _, fp := range fps {
		if s.store.Has(fp) {
			skipped++
		}
	}

	run := &campaignRun{
		spec:     spec,
		status:   "running",
		progress: campaign.Progress{Total: len(reqs), Skipped: skipped},
		done:     make(chan struct{}),
	}
	if s.tenants != nil {
		run.tenant = t
	}
	s.mu.Lock()
	// The quota check and the registration are one critical section, so two
	// racing creates cannot both sneak under the limit.
	if limit := t.Limits.MaxCampaigns; s.tenants != nil && limit > 0 && s.activeCampaignsFor(t) >= limit {
		s.mu.Unlock()
		t.CountQuotaDenied()
		writeError(w, http.StatusTooManyRequests, CodeQuotaExceeded,
			"tenant %q already has %d running campaigns (limit %d); wait for one to finish",
			t.Name, limit, limit)
		return
	}
	if s.tenants != nil {
		t.CountAdmitted()
	}
	s.nextID++
	run.id = fmt.Sprintf("c%d", s.nextID)
	s.campaigns[run.id] = run
	s.order = append(s.order, run.id)
	s.mu.Unlock()
	s.logger(r).Info("campaign created",
		obs.KeyCampaignID, run.id, "name", spec.Name,
		"total", len(reqs), "skipped", skipped)

	go s.runCampaign(run)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeLine(w, run.snapshot())
}

// runCampaign executes one campaign to completion on the server's lifecycle
// context, sharing the long-lived engine's reference cache so campaigns,
// /v1/run and /v1/batch all warm each other.
func (s *Server) runCampaign(run *campaignRun) {
	defer close(run.done)
	ctx := s.baseCtx
	if run.tenant != nil {
		// Campaign cells compete for engine slots as the creator's bulk work,
		// so a running campaign cannot starve other tenants' interactive
		// traffic.
		ctx = tenant.NewContext(ctx, run.tenant, tenant.Bulk)
	}
	sum, err := campaign.Run(ctx, s.store, run.spec, campaign.Options{
		Cache:       s.eng.Cache(),
		Parallelism: s.eng.Parallelism(),
		Gate:        s.gate,
		Logger:      s.log.With(obs.KeyCampaignID, run.id),
		Progress: func(p campaign.Progress) {
			run.mu.Lock()
			run.progress = p
			run.mu.Unlock()
		},
	})
	run.mu.Lock()
	defer run.mu.Unlock()
	run.summary = sum
	switch {
	case err == nil:
		run.status = "done"
	case errors.Is(err, smtmlp.ErrCanceled) || errors.Is(err, context.Canceled):
		run.status = "canceled"
		run.errMsg = err.Error()
	default:
		run.status = "failed"
		run.errMsg = err.Error()
	}
}

// CampaignListResponse is the GET /v1/campaigns body.
type CampaignListResponse struct {
	Campaigns []CampaignStatus `json:"campaigns"`
	// StoredResults is the store's total persisted result count (across all
	// campaigns, including previous processes).
	StoredResults int `json:"stored_results"`
}

func (s *Server) handleCampaignList(w http.ResponseWriter, _ *http.Request) {
	if !s.requireStore(w) {
		return
	}
	s.mu.Lock()
	runs := make([]*campaignRun, 0, len(s.order))
	for _, id := range s.order {
		runs = append(runs, s.campaigns[id])
	}
	s.mu.Unlock()
	resp := CampaignListResponse{Campaigns: []CampaignStatus{}, StoredResults: s.store.Len()}
	for _, run := range runs {
		resp.Campaigns = append(resp.Campaigns, run.snapshot())
	}
	writeJSON(w, resp)
}

func (s *Server) handleCampaignGet(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) {
		return
	}
	id := r.PathValue("id")
	s.mu.Lock()
	run, ok := s.campaigns[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, CodeUnknownCampaign,
			"no campaign %q (see GET /v1/campaigns)", id)
		return
	}
	writeJSON(w, run.snapshot())
}
