// Tenant resolution and admission control: the middleware half of
// internal/tenant. With a tenant table installed (smtserved -tenants), every
// /v1 request authenticates by API key, passes the tenant's token bucket and
// concurrency quotas, and carries its tenant + scheduling class in the
// request context so the engine's slot gate can arbitrate capacity
// downstream. Without a table the server is single-tenant and none of this
// runs — the untenanted code path is byte-identical to the pre-tenancy
// server.
package server

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"strings"
	"time"

	"smtmlp"
	"smtmlp/internal/tenant"
)

// WithTenants installs multi-tenancy: requests to /v1 endpoints must carry
// an API key from the table (Authorization: Bearer <key> or X-API-Key),
// admission enforces each tenant's rate limit and quotas, and gate — shared
// with the engine via smtmlp.WithSlotGate and with per-lease engines by the
// server itself — schedules engine slots across tenants. gate may be nil
// (admission without scheduling); tbl must not be.
func WithTenants(tbl *tenant.Table, gate smtmlp.SlotGate) Option {
	return func(s *Server) {
		s.tenants = tbl
		s.gate = gate
	}
}

// apiKey extracts the request's API key: Authorization: Bearer <key> first,
// X-API-Key as the curl-friendly fallback.
func apiKey(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		if key, ok := strings.CutPrefix(auth, "Bearer "); ok {
			return strings.TrimSpace(key)
		}
		return "" // a non-Bearer Authorization never matches a key
	}
	return strings.TrimSpace(r.Header.Get("X-API-Key"))
}

// resolveTenant authenticates a /v1 request against the tenant table and
// attaches the tenant to the request context at Bulk class (handlers of
// latency-sensitive endpoints upgrade the class themselves). It reports
// false after writing the 401 when the key is missing or unknown. Servers
// without a table admit everything as the Anonymous tenant.
func (s *Server) resolveTenant(w http.ResponseWriter, r *http.Request) (*http.Request, bool) {
	if s.tenants == nil || !strings.HasPrefix(r.URL.Path, "/v1/") {
		return r, true
	}
	t, ok := s.tenants.Resolve(apiKey(r))
	if !ok {
		s.unauthorized.Add(1)
		w.Header().Set("WWW-Authenticate", `Bearer realm="smtmlp"`)
		writeError(w, http.StatusUnauthorized, CodeUnauthorized,
			"missing or unknown API key (Authorization: Bearer <key> or X-API-Key)")
		return r, false
	}
	return r.WithContext(tenant.NewContext(r.Context(), t, tenant.Bulk)), true
}

// admit runs tenant admission for a request carrying `cells` simulation
// cells at the given scheduling class: one token from the tenant's bucket
// (429 rate_limited with an honest Retry-After on refusal) and a
// MaxInFlight reservation for the cells (429 quota_exceeded). It returns
// the tenant-and-class request context to run under and a release for the
// reserved cells. On refusal it writes the error body itself and reports
// ok=false.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, class tenant.Class, cells int) (ctx context.Context, release func(), ok bool) {
	t, _ := tenant.FromContext(r.Context())
	ctx = tenant.NewContext(r.Context(), t, class)
	if s.tenants == nil {
		return ctx, func() {}, true
	}
	if !s.takeToken(w, t) {
		return nil, nil, false
	}
	if !t.AcquireCells(cells) {
		t.CountQuotaDenied()
		writeError(w, http.StatusTooManyRequests, CodeQuotaExceeded,
			"tenant %q at its in-flight limit of %d cells (%d requested); finish or cancel work and retry",
			t.Name, t.Limits.MaxInFlight, cells)
		return nil, nil, false
	}
	t.CountAdmitted()
	return ctx, func() { t.ReleaseCells(cells) }, true
}

// takeToken spends one token from the tenant's rate bucket, writing the 429
// rate_limited body with an honest Retry-After — derived from the bucket's
// actual refill time — when the bucket is empty. It reports whether the
// request may proceed. No-op (always true) on untenanted servers.
func (s *Server) takeToken(w http.ResponseWriter, t *tenant.Tenant) bool {
	if s.tenants == nil {
		return true
	}
	ok, retry := t.TakeToken(time.Now())
	if ok {
		return true
	}
	t.CountRateLimited()
	// Retry-After is in whole seconds per RFC 9110; round up so a client
	// honoring it is guaranteed a token.
	w.Header().Set("Retry-After", fmt.Sprint(int64(math.Ceil(retry.Seconds()))))
	writeError(w, http.StatusTooManyRequests, CodeRateLimited,
		"tenant %q over its rate limit of %g requests/s; retry in %v",
		t.Name, t.Limits.Rate, retry.Round(time.Millisecond))
	return false
}

// TenantMetrics is one tenant's row in the /metrics body: the admission and
// scheduler counters plus the server-side concurrency gauges.
type TenantMetrics struct {
	tenant.Metrics
	ActiveCampaigns int `json:"active_campaigns"`
	ActiveLeases    int `json:"active_leases"`
}

// tenantMetrics renders the per-tenant metrics rows, sorted by tenant name.
func (s *Server) tenantMetrics() []TenantMetrics {
	if s.tenants == nil {
		return nil
	}
	campaigns := make(map[string]int)
	leases := make(map[string]int)
	s.mu.Lock()
	for _, run := range s.campaigns {
		if run.tenant != nil && run.snapshotStatus() == "running" {
			campaigns[run.tenant.Key]++
		}
	}
	for _, l := range s.leases {
		if l.tenant != nil && l.snapshotStatus() == "running" {
			leases[l.tenant.Key]++
		}
	}
	s.mu.Unlock()
	tenants := s.tenants.Tenants()
	out := make([]TenantMetrics, 0, len(tenants))
	for _, t := range tenants {
		out = append(out, TenantMetrics{
			Metrics:         t.MetricsSnapshot(),
			ActiveCampaigns: campaigns[t.Key],
			ActiveLeases:    leases[t.Key],
		})
	}
	return out
}

// activeLeasesFor counts running leases held by the tenant (matched by key,
// so leases admitted before a hot reload count against the reloaded tenant).
// Callers hold s.mu.
func (s *Server) activeLeasesFor(t *tenant.Tenant) int {
	n := 0
	for _, l := range s.leases {
		if l.tenant != nil && l.tenant.Key == t.Key && l.snapshotStatus() == "running" {
			n++
		}
	}
	return n
}

// activeCampaignsFor counts running campaigns started by the tenant.
// Callers hold s.mu.
func (s *Server) activeCampaignsFor(t *tenant.Tenant) int {
	n := 0
	for _, run := range s.campaigns {
		if run.tenant != nil && run.tenant.Key == t.Key && run.snapshotStatus() == "running" {
			n++
		}
	}
	return n
}
