// Tests for the /v1/work lease protocol: lifecycle (lease → execute →
// long-poll collect → forget), idempotent re-delivery, validation, the
// busy bound, TTL expiry, shutdown cancellation, and the lease-scoped
// reference export that keeps fleet refs snapshots byte-identical to
// single-node execution.
package server_test

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"smtmlp"
	"smtmlp/internal/server"
)

// leaseCells builds verified work cells for the given mixes under the given
// budget (the fingerprint must be computed exactly as the worker will).
func leaseCells(instructions, warmup uint64, mixes ...[]string) []server.WorkCell {
	cells := make([]server.WorkCell, 0, 2*len(mixes))
	for _, mix := range mixes {
		for _, p := range []smtmlp.Policy{smtmlp.ICount, smtmlp.MLPFlush} {
			req := smtmlp.Request{
				Tag:      fmt.Sprintf("%s/%s", strings.Join(mix, "-"), p),
				Config:   smtmlp.DefaultConfig(len(mix)),
				Workload: smtmlp.Mix(mix...),
				Policy:   p,
			}
			cells = append(cells, server.WorkCell{
				Fingerprint: smtmlp.Fingerprint(req, instructions, warmup),
				Request:     req,
			})
		}
	}
	return cells
}

// leaseBody marshals a LeaseRequest.
func leaseBody(t *testing.T, lr server.LeaseRequest) string {
	t.Helper()
	b, err := json.Marshal(lr)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// collect long-polls /v1/work/complete until the lease leaves "running".
func collect(t *testing.T, srv http.Handler, leaseID string) server.CompleteResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var resp server.CompleteResponse
		decodeInto(t, post(t, srv, "/v1/work/complete",
			fmt.Sprintf(`{"lease_id":%q,"wait_ms":1000}`, leaseID)), &resp)
		if resp.Lease.Status != "running" {
			return resp
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease %s still running after 30s", leaseID)
		}
	}
}

func TestWorkLeaseLifecycle(t *testing.T) {
	srv := server.New(testEngine())
	const instructions, warmup = 5_000, 1_000
	cells := leaseCells(instructions, warmup, []string{"mcf", "galgel"}, []string{"swim", "twolf"})
	body := leaseBody(t, server.LeaseRequest{
		LeaseID: "l1", Instructions: instructions, Warmup: warmup, Cells: cells,
	})

	rec := post(t, srv, "/v1/work/lease", body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("lease status %d, body %s", rec.Code, rec.Body)
	}
	var status server.LeaseStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &status); err != nil {
		t.Fatal(err)
	}
	if status.LeaseID != "l1" || status.Status != "running" || status.Total != len(cells) {
		t.Fatalf("accepted lease %+v", status)
	}

	// Re-delivering the same lease is idempotent: acknowledged (200, not
	// 202), not restarted.
	rec = post(t, srv, "/v1/work/lease", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("re-delivery status %d, body %s", rec.Code, rec.Body)
	}

	resp := collect(t, srv, "l1")
	if resp.Lease.Status != "done" || resp.Lease.Executed != len(cells) || resp.Lease.Failed != 0 {
		t.Fatalf("collected lease %+v", resp.Lease)
	}
	if len(resp.Results) != len(cells) {
		t.Fatalf("collected %d results, want %d", len(resp.Results), len(cells))
	}
	for i, wr := range resp.Results {
		if wr.Fingerprint != cells[i].Fingerprint {
			t.Fatalf("result %d out of cell order: %s", i, wr.Fingerprint)
		}
		if wr.Result == nil || wr.Error != "" || wr.Result.STP <= 0 {
			t.Fatalf("result %d: %+v", i, wr)
		}
	}
	// The lease needed references for its 4 distinct benchmarks, under the
	// lease budget.
	if len(resp.Refs) != 4 {
		t.Fatalf("lease returned %d refs, want 4", len(resp.Refs))
	}
	for _, ref := range resp.Refs {
		if !strings.Contains(ref.Key, fmt.Sprintf("i=%d", instructions)) {
			t.Fatalf("ref key %q is not under the lease budget", ref.Key)
		}
	}

	// Collection forgets the lease.
	wantError(t, post(t, srv, "/v1/work/complete", `{"lease_id":"l1"}`),
		http.StatusNotFound, server.CodeUnknownLease)
	var list server.WorkListResponse
	decodeInto(t, get(t, srv, "/v1/work"), &list)
	if len(list.Leases) != 0 {
		t.Fatalf("worker still lists %d leases after collection", len(list.Leases))
	}
	m := list.Metrics
	if m.LeasesAccepted != 1 || m.LeasesCollected != 1 || m.LeasesActive != 0 ||
		m.CellsExecuted != int64(len(cells)) || m.CellsFailed != 0 {
		t.Fatalf("work metrics %+v", m)
	}
}

func TestWorkLeaseValidation(t *testing.T) {
	srv := server.New(testEngine(), server.WithMaxBatch(4))
	const instructions, warmup = 5_000, 1_000
	cells := leaseCells(instructions, warmup, []string{"mcf", "galgel"})
	okLease := server.LeaseRequest{LeaseID: "v1", Instructions: instructions, Warmup: warmup, Cells: cells}

	t.Run("missing lease_id", func(t *testing.T) {
		lr := okLease
		lr.LeaseID = ""
		wantError(t, post(t, srv, "/v1/work/lease", leaseBody(t, lr)),
			http.StatusBadRequest, server.CodeInvalidRequest)
	})
	t.Run("no cells", func(t *testing.T) {
		lr := okLease
		lr.Cells = nil
		wantError(t, post(t, srv, "/v1/work/lease", leaseBody(t, lr)),
			http.StatusBadRequest, server.CodeInvalidRequest)
	})
	t.Run("oversized lease", func(t *testing.T) {
		lr := okLease
		lr.Cells = leaseCells(instructions, warmup,
			[]string{"mcf", "galgel"}, []string{"swim", "twolf"}, []string{"vortex", "parser"})
		wantError(t, post(t, srv, "/v1/work/lease", leaseBody(t, lr)),
			http.StatusBadRequest, server.CodeBatchTooLarge)
	})
	t.Run("unknown benchmark", func(t *testing.T) {
		lr := okLease
		bad := cells[0]
		bad.Request.Workload = smtmlp.Mix("mcf", "nope")
		lr.Cells = []server.WorkCell{bad}
		wantError(t, post(t, srv, "/v1/work/lease", leaseBody(t, lr)),
			http.StatusBadRequest, server.CodeUnknownBenchmark)
	})
	t.Run("fingerprint mismatch", func(t *testing.T) {
		lr := okLease
		bad := cells[0]
		bad.Fingerprint = "not-the-fingerprint"
		lr.Cells = []server.WorkCell{bad}
		wantError(t, post(t, srv, "/v1/work/lease", leaseBody(t, lr)),
			http.StatusBadRequest, server.CodeInvalidRequest)
	})
	t.Run("budget mismatch changes fingerprint", func(t *testing.T) {
		// The same cells delivered under a different budget must be
		// rejected: the fingerprint pins the budget.
		lr := okLease
		lr.Instructions = 9_999
		wantError(t, post(t, srv, "/v1/work/lease", leaseBody(t, lr)),
			http.StatusBadRequest, server.CodeInvalidRequest)
	})
	t.Run("complete without lease_id", func(t *testing.T) {
		wantError(t, post(t, srv, "/v1/work/complete", `{}`),
			http.StatusBadRequest, server.CodeInvalidRequest)
	})
	t.Run("complete unknown lease", func(t *testing.T) {
		wantError(t, post(t, srv, "/v1/work/complete", `{"lease_id":"never-sent"}`),
			http.StatusNotFound, server.CodeUnknownLease)
	})
}

func TestWorkerBusyBound(t *testing.T) {
	// A deliberately slow engine (large budget, serial) so the first lease
	// is still running when the second arrives.
	srv := server.New(testEngine(smtmlp.WithParallelism(1)), server.WithMaxLeases(1))
	const instructions, warmup = 200_000, 50_000
	mixes := [][]string{{"mcf", "galgel"}, {"swim", "twolf"}}
	lr := server.LeaseRequest{
		LeaseID: "busy1", Instructions: instructions, Warmup: warmup,
		Cells: leaseCells(instructions, warmup, mixes...),
	}
	if rec := post(t, srv, "/v1/work/lease", leaseBody(t, lr)); rec.Code != http.StatusAccepted {
		t.Fatalf("first lease status %d", rec.Code)
	}
	lr.LeaseID = "busy2"
	wantError(t, post(t, srv, "/v1/work/lease", leaseBody(t, lr)),
		http.StatusTooManyRequests, server.CodeWorkerBusy)

	// Collecting the first lease frees the slot.
	if resp := collect(t, srv, "busy1"); resp.Lease.Status != "done" {
		t.Fatalf("first lease %+v", resp.Lease)
	}
	if rec := post(t, srv, "/v1/work/lease", leaseBody(t, lr)); rec.Code != http.StatusAccepted {
		t.Fatalf("post-collection lease status %d, body %s", rec.Code, rec.Body)
	}
	collect(t, srv, "busy2")
}

// TestLeaseQuotaPerTenant is the regression test for lease acceptance
// counting only the global -max-leases bound: a tenant at its own MaxLeases
// quota must be refused with quota_exceeded (its problem — collect a lease)
// while the global bound still answers worker_busy (everyone's problem — try
// another worker), and one tenant's quota must not block another.
func TestLeaseQuotaPerTenant(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	srv := tenantServer(t, `{
		"tenants": [
			{"key": "k-alice", "name": "alice", "max_leases": 1},
			{"key": "k-bob", "name": "bob"}
		]
	}`, 2, []smtmlp.Option{smtmlp.WithParallelism(1)},
		server.WithMaxLeases(2), server.WithBaseContext(ctx))
	defer func() {
		cancel()
		srv.DrainWork()
	}()

	// Slow cells so every lease is still running while the next arrives.
	const instructions, warmup = 200_000, 50_000
	lease := func(id string) string {
		return leaseBody(t, server.LeaseRequest{
			LeaseID: id, Instructions: instructions, Warmup: warmup,
			Cells: leaseCells(instructions, warmup, []string{"mcf", "galgel"}, []string{"swim", "twolf"}),
		})
	}

	if rec := postAs(t, srv, "X-API-Key", "k-alice", "/v1/work/lease", lease("a1")); rec.Code != http.StatusAccepted {
		t.Fatalf("alice's first lease: status %d body %s", rec.Code, rec.Body)
	}
	// Alice is at her own quota: quota_exceeded, NOT worker_busy — the
	// worker still has a free global slot.
	wantError(t, postAs(t, srv, "X-API-Key", "k-alice", "/v1/work/lease", lease("a2")),
		http.StatusTooManyRequests, server.CodeQuotaExceeded)
	// Bob is unaffected by alice's quota and takes the worker's second slot.
	if rec := postAs(t, srv, "X-API-Key", "k-bob", "/v1/work/lease", lease("b1")); rec.Code != http.StatusAccepted {
		t.Fatalf("bob's first lease: status %d body %s", rec.Code, rec.Body)
	}
	// Now the worker itself is full: the global bound answers worker_busy.
	wantError(t, postAs(t, srv, "X-API-Key", "k-bob", "/v1/work/lease", lease("b2")),
		http.StatusTooManyRequests, server.CodeWorkerBusy)

	// Both refusals are attributed per tenant on /metrics, and the active
	// lease gauges are scoped per tenant too.
	var m server.MetricsResponse
	decodeInto(t, get(t, srv, "/metrics"), &m)
	for _, tm := range m.Tenants {
		switch tm.Name {
		case "alice":
			if tm.QuotaDenied != 1 || tm.ActiveLeases != 1 {
				t.Fatalf("alice row %+v", tm)
			}
		case "bob":
			// worker_busy is a global condition, not a tenant quota denial.
			if tm.QuotaDenied != 0 || tm.ActiveLeases != 1 {
				t.Fatalf("bob row %+v", tm)
			}
		}
	}
}

func TestWorkLeaseExpiry(t *testing.T) {
	srv := server.New(testEngine(), server.WithLeaseTTL(30*time.Millisecond))
	const instructions, warmup = 5_000, 1_000
	lr := server.LeaseRequest{
		LeaseID: "exp1", Instructions: instructions, Warmup: warmup,
		Cells: leaseCells(instructions, warmup, []string{"mcf", "galgel"}),
	}
	if rec := post(t, srv, "/v1/work/lease", leaseBody(t, lr)); rec.Code != http.StatusAccepted {
		t.Fatalf("lease status %d", rec.Code)
	}
	// Never collect: the TTL must cancel and forget the lease.
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec := post(t, srv, "/v1/work/complete", `{"lease_id":"exp1"}`)
		if rec.Code == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease never expired; last status %d %s", rec.Code, rec.Body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	var list server.WorkListResponse
	decodeInto(t, get(t, srv, "/v1/work"), &list)
	if list.Metrics.LeasesExpired != 1 || list.Metrics.LeasesActive != 0 {
		t.Fatalf("expiry metrics %+v", list.Metrics)
	}
	srv.DrainWork()
}

func TestWorkLeaseCanceledOnShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	srv := server.New(testEngine(smtmlp.WithParallelism(1)), server.WithBaseContext(ctx))
	const instructions, warmup = 500_000, 100_000
	lr := server.LeaseRequest{
		LeaseID: "shut1", Instructions: instructions, Warmup: warmup,
		Cells: leaseCells(instructions, warmup, []string{"mcf", "galgel"}, []string{"swim", "twolf"}),
	}
	if rec := post(t, srv, "/v1/work/lease", leaseBody(t, lr)); rec.Code != http.StatusAccepted {
		t.Fatalf("lease status %d", rec.Code)
	}
	cancel()
	srv.DrainWork() // must return promptly once the base context is canceled

	var resp server.CompleteResponse
	decodeInto(t, post(t, srv, "/v1/work/complete", `{"lease_id":"shut1","wait_ms":2000}`), &resp)
	if resp.Lease.Status != "canceled" || resp.Results != nil {
		t.Fatalf("post-shutdown lease %+v with %d results", resp.Lease, len(resp.Results))
	}
}

// TestWorkCompleteWaitValidation pins the wait_ms contract: negative values
// are rejected up front, and the effective (clamped) wait is echoed in the
// response instead of being silently trimmed to the 30s cap.
func TestWorkCompleteWaitValidation(t *testing.T) {
	srv := server.New(testEngine())
	const instructions, warmup = 5_000, 1_000
	lr := server.LeaseRequest{
		LeaseID: "w1", Instructions: instructions, Warmup: warmup,
		Cells: leaseCells(instructions, warmup, []string{"mcf", "galgel"}),
	}
	if rec := post(t, srv, "/v1/work/lease", leaseBody(t, lr)); rec.Code != http.StatusAccepted {
		t.Fatalf("lease status %d", rec.Code)
	}

	wantError(t, post(t, srv, "/v1/work/complete", `{"lease_id":"w1","wait_ms":-5}`),
		http.StatusBadRequest, server.CodeInvalidRequest)

	// An in-cap wait is echoed verbatim; an over-cap wait comes back clamped
	// to 30s. The lease finishes during the first long-poll, so neither
	// request actually sleeps its full wait.
	var resp server.CompleteResponse
	decodeInto(t, post(t, srv, "/v1/work/complete", `{"lease_id":"w1","wait_ms":1000}`), &resp)
	if resp.WaitMillis != 1000 {
		t.Fatalf("wait_ms 1000 echoed as %d", resp.WaitMillis)
	}
	for resp.Lease.Status == "running" {
		decodeInto(t, post(t, srv, "/v1/work/complete", `{"lease_id":"w1","wait_ms":60000}`), &resp)
		if resp.WaitMillis != 30000 {
			t.Fatalf("wait_ms 60000 should clamp to 30000, got %d", resp.WaitMillis)
		}
	}
	if resp.Lease.Status != "done" {
		t.Fatalf("lease ended %q", resp.Lease.Status)
	}
}

// TestWorkLeaseRenewalOutlivesTTL is the TTL-vs-slow-worker regression: a
// lease whose execution takes far longer than the server TTL must survive —
// and commit — as long as the coordinator heartbeats it with idempotent
// cells-free re-POSTs.
func TestWorkLeaseRenewalOutlivesTTL(t *testing.T) {
	srv := server.New(testEngine(smtmlp.WithParallelism(1)),
		server.WithLeaseTTL(75*time.Millisecond), server.WithBaseContext(context.Background()))
	const instructions, warmup = 300_000, 50_000 // execution far exceeds the 75ms TTL
	cells := leaseCells(instructions, warmup, []string{"mcf", "galgel"})
	lr := server.LeaseRequest{LeaseID: "rn1", Instructions: instructions, Warmup: warmup, Cells: cells}
	if rec := post(t, srv, "/v1/work/lease", leaseBody(t, lr)); rec.Code != http.StatusAccepted {
		t.Fatalf("lease status %d", rec.Code)
	}

	// Heartbeat at TTL/3 until the worker reports the lease done. Each renew
	// is the cheap form: lease_id only, no cells.
	deadline := time.Now().Add(60 * time.Second)
	for {
		time.Sleep(25 * time.Millisecond)
		rec := post(t, srv, "/v1/work/lease", `{"lease_id":"rn1"}`)
		if rec.Code != http.StatusOK {
			t.Fatalf("renew status %d, body %s", rec.Code, rec.Body)
		}
		var status server.LeaseStatus
		if err := json.Unmarshal(rec.Body.Bytes(), &status); err != nil {
			t.Fatal(err)
		}
		if status.Status == "done" {
			break
		}
		if status.Status != "running" {
			t.Fatalf("renewed lease ended %q before collection", status.Status)
		}
		if time.Now().After(deadline) {
			t.Fatal("lease never finished")
		}
	}

	resp := collect(t, srv, "rn1")
	if resp.Lease.Status != "done" || len(resp.Results) != len(cells) {
		t.Fatalf("renewed lease collected %+v with %d results", resp.Lease, len(resp.Results))
	}
	var list server.WorkListResponse
	decodeInto(t, get(t, srv, "/v1/work"), &list)
	if list.Metrics.LeasesExpired != 0 || list.Metrics.LeasesRenewed == 0 || list.Metrics.LeasesCollected != 1 {
		t.Fatalf("renewal metrics %+v", list.Metrics)
	}
}

// TestWorkGzipNDJSONRoundTrip drives the compressed streaming wire end to
// end: a gzip lease body in, a gzip NDJSON complete response out, asserting
// the streamed lines reassemble into exactly the payload the plain JSON
// wire produces, and that /metrics accounts bytes on both sides of the
// compression boundary.
func TestWorkGzipNDJSONRoundTrip(t *testing.T) {
	const instructions, warmup = 5_000, 1_000
	cells := leaseCells(instructions, warmup, []string{"mcf", "galgel"}, []string{"swim", "twolf"})

	// Ground truth: the same lease over the plain buffered wire.
	plain := collectOn(t, server.New(testEngine()), "g1", cells, instructions, warmup)

	srv := server.New(testEngine())
	var zbody bytes.Buffer
	zw := gzip.NewWriter(&zbody)
	if _, err := zw.Write([]byte(leaseBody(t, server.LeaseRequest{
		LeaseID: "g1", Instructions: instructions, Warmup: warmup, Cells: cells,
	}))); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/work/lease", &zbody)
	req.Header.Set("Content-Encoding", "gzip")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("gzip lease status %d, body %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("X-Work-Gzip") != "1" {
		t.Fatal("lease response does not advertise gzip support")
	}

	// Collect over the streamed compressed wire.
	var got server.CompleteResponse
	deadline := time.Now().Add(30 * time.Second)
	for {
		req := httptest.NewRequest("POST", "/v1/work/complete",
			strings.NewReader(`{"lease_id":"g1","wait_ms":1000}`))
		req.Header.Set("Accept", "application/x-ndjson")
		req.Header.Set("Accept-Encoding", "gzip")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("complete status %d, body %s", rec.Code, rec.Body)
		}
		if rec.Header().Get("Content-Encoding") != "gzip" ||
			rec.Header().Get("Content-Type") != "application/x-ndjson" {
			t.Fatalf("negotiated headers %v", rec.Header())
		}
		zr, err := gzip.NewReader(rec.Body)
		if err != nil {
			t.Fatal(err)
		}
		dec := json.NewDecoder(zr)
		got = server.CompleteResponse{}
		for {
			var line server.CompleteLine
			if err := dec.Decode(&line); err == io.EOF {
				break
			} else if err != nil {
				t.Fatalf("decoding NDJSON line: %v", err)
			}
			switch {
			case line.Lease != nil:
				got.Lease = *line.Lease
				got.WaitMillis = line.WaitMillis
			case line.Result != nil:
				got.Results = append(got.Results, *line.Result)
			case line.Ref != nil:
				got.Refs = append(got.Refs, *line.Ref)
			}
		}
		if got.Lease.Status != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lease never finished")
		}
	}

	// The streamed lines must reassemble to exactly the buffered payload.
	if got.Lease.Status != "done" || got.WaitMillis != 1000 {
		t.Fatalf("streamed lease %+v wait %d", got.Lease, got.WaitMillis)
	}
	wantJSON, _ := json.Marshal(struct {
		R []server.WorkResult
		F []smtmlp.RefProfile
	}{plain.Results, plain.Refs})
	gotJSON, _ := json.Marshal(struct {
		R []server.WorkResult
		F []smtmlp.RefProfile
	}{got.Results, got.Refs})
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("streamed payload diverges from buffered payload\nplain: %s\nndjson: %s", wantJSON, gotJSON)
	}

	// Byte accounting: the wire side of the compressed legs must be smaller
	// than the JSON side.
	var list server.WorkListResponse
	decodeInto(t, get(t, srv, "/v1/work"), &list)
	m := list.Metrics
	if m.BytesIn == 0 || m.BytesInWire == 0 || m.BytesInWire >= m.BytesIn {
		t.Fatalf("request compression not accounted: bytes_in=%d bytes_in_wire=%d", m.BytesIn, m.BytesInWire)
	}
	if m.BytesOut == 0 || m.BytesOutWire == 0 || m.BytesOutWire >= m.BytesOut {
		t.Fatalf("response compression not accounted: bytes_out=%d bytes_out_wire=%d", m.BytesOut, m.BytesOutWire)
	}
}

// collectOn leases cells onto srv under the given id and collects them over
// the plain buffered JSON wire.
func collectOn(t *testing.T, srv *server.Server, leaseID string, cells []server.WorkCell,
	instructions, warmup uint64) server.CompleteResponse {
	t.Helper()
	lr := server.LeaseRequest{LeaseID: leaseID, Instructions: instructions, Warmup: warmup, Cells: cells}
	if rec := post(t, srv, "/v1/work/lease", leaseBody(t, lr)); rec.Code != http.StatusAccepted {
		t.Fatalf("lease status %d, body %s", rec.Code, rec.Body)
	}
	return collect(t, srv, leaseID)
}

// TestWorkLeaseRefsAreScoped pins the refs filter: traffic at another budget
// (here, /v1/run on the service engine) must not leak into a lease's
// reference export, or a fleet coordinator's refs snapshot would diverge
// from single-node execution.
func TestWorkLeaseRefsAreScoped(t *testing.T) {
	srv := server.New(testEngine()) // service engine budget: 6000/1500
	rec := post(t, srv, "/v1/run", `{"benchmarks":["vortex","parser"],"policy":"icount"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("warm-up run status %d", rec.Code)
	}

	const instructions, warmup = 5_000, 1_000 // lease budget: a different key space
	lr := server.LeaseRequest{
		LeaseID: "refs1", Instructions: instructions, Warmup: warmup,
		Cells: leaseCells(instructions, warmup, []string{"mcf", "galgel"}),
	}
	if rec := post(t, srv, "/v1/work/lease", leaseBody(t, lr)); rec.Code != http.StatusAccepted {
		t.Fatalf("lease status %d", rec.Code)
	}
	resp := collect(t, srv, "refs1")
	if len(resp.Refs) != 2 {
		t.Fatalf("lease exported %d refs, want exactly its own 2", len(resp.Refs))
	}
	for _, ref := range resp.Refs {
		if strings.Contains(ref.Key, "i=6000") || strings.Contains(ref.Key, "vortex") ||
			strings.Contains(ref.Key, "parser") {
			t.Fatalf("foreign ref leaked into the lease export: %q", ref.Key)
		}
	}
}
