// Multi-tenancy tests: the typed admission error bodies (unauthorized,
// rate_limited with an honest Retry-After, quota_exceeded), per-tenant
// /metrics rows, backward compatibility of the untenanted server, a
// two-tenant race hammer proving interactive latency stays bounded while a
// bulk batch saturates the engine AND that tenancy never changes bytes, and
// the campaign-under-contention determinism proof against a direct
// single-tenant campaign.Run.
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"smtmlp"
	"smtmlp/internal/campaign"
	"smtmlp/internal/server"
	"smtmlp/internal/store"
	"smtmlp/internal/tenant"
)

// tenantTable parses an inline tenants.json.
func tenantTable(t *testing.T, cfg string) *tenant.Table {
	t.Helper()
	tbl, err := tenant.Parse([]byte(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// tenantServer builds a multi-tenant server: the table, a slot scheduler of
// the given capacity shared between the engine and the server, and the
// engine itself at the test budget.
func tenantServer(t *testing.T, cfg string, slots int, engOpts []smtmlp.Option, opts ...server.Option) *server.Server {
	t.Helper()
	tbl := tenantTable(t, cfg)
	sched := tenant.NewScheduler(slots, tbl.Boost())
	eng := testEngine(append([]smtmlp.Option{smtmlp.WithSlotGate(sched)}, engOpts...)...)
	return server.New(eng, append([]server.Option{server.WithTenants(tbl, sched)}, opts...)...)
}

// postAs drives one request through the handler with an API key attached
// via the named header ("X-API-Key" or "Authorization"; empty key = none).
func postAs(t *testing.T, h http.Handler, header, key, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	if key != "" {
		req.Header.Set(header, key)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

const runBody = `{"benchmarks":["mcf","galgel"],"policy":"icount"}`

// TestTenantErrorBodies walks every typed admission error the tenancy layer
// can produce, table-driven over (request, expected status, expected code).
func TestTenantErrorBodies(t *testing.T) {
	srv := tenantServer(t, `{
		"tenants": [
			{"key": "k-open", "name": "open"},
			{"key": "k-slow", "name": "slow", "rate": 0.001, "burst": 1},
			{"key": "k-tight", "name": "tight", "max_inflight": 1}
		]
	}`, 2, nil)

	// Prime slow's one-token bucket so the table's rate_limited case is
	// deterministic.
	if rec := postAs(t, srv, "X-API-Key", "k-slow", "/v1/run", runBody); rec.Code != http.StatusOK {
		t.Fatalf("priming run: status %d body %s", rec.Code, rec.Body)
	}

	cases := []struct {
		name   string
		header string
		key    string
		path   string
		body   string
		status int
		code   string
	}{
		{"missing key", "", "", "/v1/run", runBody,
			http.StatusUnauthorized, server.CodeUnauthorized},
		{"unknown key", "X-API-Key", "k-nope", "/v1/run", runBody,
			http.StatusUnauthorized, server.CodeUnauthorized},
		{"non-bearer authorization", "Authorization", "Basic a2stb3Blbg==", "/v1/run", runBody,
			http.StatusUnauthorized, server.CodeUnauthorized},
		{"empty bucket", "X-API-Key", "k-slow", "/v1/run", runBody,
			http.StatusTooManyRequests, server.CodeRateLimited},
		{"in-flight quota", "X-API-Key", "k-tight", "/v1/batch",
			`{"workloads":[["mcf","galgel"],["swim","twolf"]],"policies":["icount"]}`,
			http.StatusTooManyRequests, server.CodeQuotaExceeded},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := postAs(t, srv, tc.header, tc.key, tc.path, tc.body)
			wantError(t, rec, tc.status, tc.code)
			switch tc.code {
			case server.CodeUnauthorized:
				if rec.Header().Get("WWW-Authenticate") == "" {
					t.Fatal("401 carries no WWW-Authenticate challenge")
				}
			case server.CodeRateLimited:
				if ra, err := strconv.Atoi(rec.Header().Get("Retry-After")); err != nil || ra < 1 {
					t.Fatalf("429 Retry-After %q; want a positive integer of seconds",
						rec.Header().Get("Retry-After"))
				}
			}
		})
	}

	// Bearer authentication works too, and an authorized tenant still runs.
	if rec := postAs(t, srv, "Authorization", "Bearer k-open", "/v1/run", runBody); rec.Code != http.StatusOK {
		t.Fatalf("bearer run: status %d body %s", rec.Code, rec.Body)
	}

	// The admission outcomes above are visible per tenant on /metrics.
	var m server.MetricsResponse
	decodeInto(t, get(t, srv, "/metrics"), &m)
	if len(m.Tenants) != 3 {
		t.Fatalf("%d tenant metric rows, want 3", len(m.Tenants))
	}
	byName := map[string]server.TenantMetrics{}
	for _, tm := range m.Tenants {
		byName[tm.Name] = tm
	}
	if byName["slow"].RateLimited != 1 || byName["slow"].Admitted != 1 {
		t.Fatalf("slow row %+v", byName["slow"])
	}
	if byName["tight"].QuotaDenied != 1 {
		t.Fatalf("tight row %+v", byName["tight"])
	}
	if byName["open"].Admitted != 1 || byName["open"].SlotsGranted != 1 {
		t.Fatalf("open row %+v", byName["open"])
	}
	if m.Server.Unauthorized != 3 {
		t.Fatalf("unauthorized counter %d, want 3", m.Server.Unauthorized)
	}
}

// TestTenantCampaignQuota exercises MaxCampaigns: the second concurrent
// campaign of a bounded tenant is refused with quota_exceeded while an
// unbounded tenant still creates one.
func TestTenantCampaignQuota(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := tenantServer(t, `{
		"tenants": [
			{"key": "k-one", "name": "one", "max_campaigns": 1},
			{"key": "k-free", "name": "free"}
		]
	}`, 2, nil, server.WithStore(st), server.WithBaseContext(ctx))
	defer func() {
		cancel()
		srv.DrainCampaigns()
		st.Close()
	}()

	// A slow campaign (large budget) that is still running when the second
	// create arrives.
	slowSpec := `{
		"name": "slow", "instructions": 300000, "warmup": 75000,
		"policies": ["icount"], "workloads": {"mixes": [["mcf","galgel"]]}
	}`
	if rec := postAs(t, srv, "X-API-Key", "k-one", "/v1/campaigns", slowSpec); rec.Code != http.StatusAccepted {
		t.Fatalf("first campaign: status %d body %s", rec.Code, rec.Body)
	}
	wantError(t, postAs(t, srv, "X-API-Key", "k-one", "/v1/campaigns", slowSpec),
		http.StatusTooManyRequests, server.CodeQuotaExceeded)
	// Another tenant is not affected by one's quota.
	if rec := postAs(t, srv, "X-API-Key", "k-free", "/v1/campaigns", slowSpec); rec.Code != http.StatusAccepted {
		t.Fatalf("free tenant campaign: status %d body %s", rec.Code, rec.Body)
	}
}

// TestTenantBackwardCompat pins the acceptance criterion that a server
// without a tenant table behaves exactly as before tenancy existed: stray
// credentials are ignored, bodies are byte-identical to a plain server's,
// and /metrics carries no tenant rows.
func TestTenantBackwardCompat(t *testing.T) {
	plain := server.New(testEngine())
	want := post(t, plain, "/v1/run", runBody)
	if want.Code != http.StatusOK {
		t.Fatalf("plain run: status %d", want.Code)
	}

	srv := server.New(testEngine())
	for _, hdr := range [][2]string{{"", ""}, {"X-API-Key", "k-whatever"}, {"Authorization", "Bearer nope"}} {
		rec := postAs(t, srv, hdr[0], hdr[1], "/v1/run", runBody)
		if rec.Code != http.StatusOK {
			t.Fatalf("untenanted run with header %v: status %d body %s", hdr, rec.Code, rec.Body)
		}
		if !bytes.Equal(rec.Body.Bytes(), want.Body.Bytes()) {
			t.Fatalf("untenanted response differs from plain server:\n%s\nvs\n%s", rec.Body, want.Body)
		}
	}

	body := get(t, srv, "/metrics").Body.String()
	if strings.Contains(body, `"tenants"`) {
		t.Fatalf("untenanted /metrics grew a tenants section: %s", body)
	}
}

// TestTenantRaceHammer pits a bulk tenant's saturating /v1/batch against an
// interactive tenant's /v1/run loop on a two-slot scheduler and asserts the
// two halves of the tenancy contract at once: scheduling (every interactive
// request completes within a bound far below the bulk backlog's total
// runtime, because interactive work preempts bulk at each slot boundary) and
// determinism (every body, interactive and bulk alike, is byte-identical to
// an uncontended server's).
func TestTenantRaceHammer(t *testing.T) {
	batchBody := `{"workloads":[["mcf","galgel"],["swim","twolf"],["art","lucas"],["mcf","twolf"]],"policies":["icount","flush","mlpflush"]}`

	// Uncontended ground truth from a plain single-tenant server.
	plain := server.New(testEngine())
	wantRun := post(t, plain, "/v1/run", runBody)
	wantBatch := post(t, plain, "/v1/batch", batchBody)
	if wantRun.Code != http.StatusOK || wantBatch.Code != http.StatusOK {
		t.Fatalf("ground truth: run %d batch %d", wantRun.Code, wantBatch.Code)
	}

	srv := tenantServer(t, `{
		"interactive_boost": 8,
		"tenants": [
			{"key": "k-bulk", "name": "bulk", "weight": 1},
			{"key": "k-int", "name": "int", "weight": 1}
		]
	}`, 2, []smtmlp.Option{smtmlp.WithParallelism(2)})

	const interactiveRuns = 8
	var wg sync.WaitGroup
	var batchRec *httptest.ResponseRecorder
	interactive := make([]*httptest.ResponseRecorder, interactiveRuns)
	latencies := make([]time.Duration, interactiveRuns)

	wg.Add(1)
	go func() {
		defer wg.Done()
		batchRec = postAs(t, srv, "X-API-Key", "k-bulk", "/v1/batch", batchBody)
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < interactiveRuns; i++ {
			start := time.Now()
			interactive[i] = postAs(t, srv, "X-API-Key", "k-int", "/v1/run", runBody)
			latencies[i] = time.Since(start)
		}
	}()
	wg.Wait()

	// Determinism: contention reordered execution, never bytes.
	if batchRec.Code != http.StatusOK || !bytes.Equal(batchRec.Body.Bytes(), wantBatch.Body.Bytes()) {
		t.Fatalf("contended batch differs from uncontended ground truth (status %d, %d vs %d bytes)",
			batchRec.Code, batchRec.Body.Len(), wantBatch.Body.Len())
	}
	for i, rec := range interactive {
		if rec.Code != http.StatusOK || !bytes.Equal(rec.Body.Bytes(), wantRun.Body.Bytes()) {
			t.Fatalf("interactive run %d differs from ground truth (status %d): %s", i, rec.Code, rec.Body)
		}
	}

	// Bounded interactive latency: each /v1/run waits at most one in-flight
	// bulk cell per slot before the boost wins it the next grant, so even the
	// worst observed latency must sit far below the 12-cell bulk backlog's
	// total runtime. The generous multiple keeps slow CI honest while still
	// failing hard if interactive requests ever queue behind the whole batch.
	var worst time.Duration
	for _, d := range latencies {
		if d > worst {
			worst = d
		}
	}
	if limit := 15 * time.Second; worst > limit {
		t.Fatalf("worst interactive latency %v exceeds %v under bulk load", worst, limit)
	}

	// The scheduler actually arbitrated: both tenants were granted slots.
	var m server.MetricsResponse
	decodeInto(t, get(t, srv, "/metrics"), &m)
	for _, tm := range m.Tenants {
		if tm.SlotsGranted == 0 {
			t.Fatalf("tenant %s was never granted a slot: %+v", tm.Name, tm)
		}
	}
}

// TestCampaignDeterminismUnderContention is the acceptance proof for the
// store invariant: a campaign executed through a multi-tenant server while
// another tenant hammers interactive runs produces a store byte-identical
// to the same spec run uncontended through campaign.Run (the smtsweep
// path). Tenancy reorders scheduling, never results.
func TestCampaignDeterminismUnderContention(t *testing.T) {
	// The interactive traffic deliberately draws on the campaign's own
	// benchmark/config/budget space, so the shared reference cache the
	// campaign exports to its store holds exactly the references the
	// uncontended run would persist.
	const spec = `{
		"name": "det", "instructions": 6000, "warmup": 1500,
		"policies": ["icount", "mlpflush"],
		"workloads": {"mixes": [["mcf","galgel"], ["swim","twolf"]]}
	}`
	var parsed campaign.Spec
	if err := json.Unmarshal([]byte(spec), &parsed); err != nil {
		t.Fatal(err)
	}

	// Ground truth: the direct, uncontended campaign.
	truthDir := t.TempDir()
	truthStore, err := store.Open(truthDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Run(context.Background(), truthStore, parsed, campaign.Options{}); err != nil {
		t.Fatal(err)
	}
	truthStore.Close()

	// Contended: the same spec through a tenanted server (single engine
	// slot, so every cell queues) while an interactive tenant hammers runs.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	servedDir := t.TempDir()
	servedStore, err := store.Open(servedDir)
	if err != nil {
		t.Fatal(err)
	}
	defer servedStore.Close()
	srv := tenantServer(t, `{
		"tenants": [
			{"key": "k-camp", "name": "camp"},
			{"key": "k-int", "name": "int"}
		]
	}`, 1, nil, server.WithStore(servedStore), server.WithBaseContext(ctx))

	rec := postAs(t, srv, "X-API-Key", "k-camp", "/v1/campaigns", spec)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("campaign create: status %d body %s", rec.Code, rec.Body)
	}
	var created server.CampaignStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}

	hammerDone := make(chan struct{})
	go func() {
		defer close(hammerDone)
		for i := 0; ; i++ {
			select {
			case <-ctx.Done():
				return
			default:
			}
			body := runBody
			if i%2 == 1 {
				body = `{"benchmarks":["swim","twolf"],"policy":"mlpflush"}`
			}
			if rec := postAs(t, srv, "X-API-Key", "k-int", "/v1/run", body); rec.Code != http.StatusOK {
				t.Errorf("interactive run under contention: status %d body %s", rec.Code, rec.Body)
				return
			}
		}
	}()

	// Poll the campaign with the creator's key (the GET is tenant-gated too).
	var final server.CampaignStatus
	deadline := time.Now().Add(30 * time.Second)
	for {
		req := httptest.NewRequest("GET", "/v1/campaigns/"+created.ID, nil)
		req.Header.Set("X-API-Key", "k-camp")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		decodeInto(t, rec, &final)
		if final.Status != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s still running after 30s: %+v", created.ID, final)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-hammerDone
	if final.Status != "done" || final.Executed != 4 {
		t.Fatalf("contended campaign final %+v", final)
	}
	srv.DrainCampaigns()

	for _, name := range []string{"results.ndjson", "refs.ndjson"} {
		truth, err := os.ReadFile(filepath.Join(truthDir, name))
		if err != nil {
			t.Fatal(err)
		}
		served, err := os.ReadFile(filepath.Join(servedDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(truth, served) {
			t.Fatalf("%s differs between uncontended campaign.Run and contended served campaign (%d vs %d bytes)",
				name, len(truth), len(served))
		}
	}
}
