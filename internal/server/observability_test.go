// Observability surface tests: response cache headers, request-ID echo,
// the Prometheus text exposition of /metrics, and interval traces over
// /v1/run and /v1/batch.
package server_test

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"smtmlp"
	"smtmlp/internal/obs"
	"smtmlp/internal/server"
)

// TestNoStoreHeaders pins the cache headers on the monitoring endpoints: a
// stale liveness or metrics answer served by an intermediary cache is a
// wrong answer.
func TestNoStoreHeaders(t *testing.T) {
	srv := server.New(testEngine())
	for _, tc := range []struct {
		path, contentType string
	}{
		{"/healthz", "application/json"},
		{"/metrics", "application/json"},
		{"/metrics?format=json", "application/json"},
		{"/metrics?format=prometheus", "text/plain; version=0.0.4; charset=utf-8"},
	} {
		rec := get(t, srv, tc.path)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d", tc.path, rec.Code)
		}
		if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
			t.Errorf("%s: Cache-Control %q, want no-store", tc.path, cc)
		}
		if ct := rec.Header().Get("Content-Type"); ct != tc.contentType {
			t.Errorf("%s: Content-Type %q, want %q", tc.path, ct, tc.contentType)
		}
	}

	wantError(t, get(t, srv, "/metrics?format=bogus"),
		http.StatusBadRequest, server.CodeInvalidRequest)
}

// TestRequestIDEcho pins the correlation contract at the HTTP edge: a
// caller-supplied X-Request-Id is echoed back verbatim; a request without
// one gets a fresh generated ID.
func TestRequestIDEcho(t *testing.T) {
	srv := server.New(testEngine())

	req := httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set(obs.RequestIDHeader, "fleet-supplied-id")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if got := rec.Header().Get(obs.RequestIDHeader); got != "fleet-supplied-id" {
		t.Fatalf("supplied request ID not echoed: got %q", got)
	}

	rec = get(t, srv, "/healthz")
	if got := rec.Header().Get(obs.RequestIDHeader); len(got) != 16 {
		t.Fatalf("generated request ID %q, want 16 hex digits", got)
	}
}

// promSamples parses exposition text into name{labels} -> value, collecting
// the set of families that carried HELP and TYPE preambles.
func promSamples(t *testing.T, body string) (samples map[string]float64, help, typed map[string]bool) {
	t.Helper()
	samples = make(map[string]float64)
	help = make(map[string]bool)
	typed = make(map[string]bool)
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if name, ok := strings.CutPrefix(line, "# HELP "); ok {
			help[strings.Fields(name)[0]] = true
			continue
		}
		if name, ok := strings.CutPrefix(line, "# TYPE "); ok {
			f := strings.Fields(name)
			if len(f) != 2 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[f[0]] = true
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("sample line %q: %v", line, err)
		}
		samples[line[:i]] = v
	}
	return samples, help, typed
}

// TestPrometheusExposition is the acceptance-criterion test for the text
// format: after one /v1/run, the scrape is valid exposition — every family
// has HELP and TYPE lines, every histogram a full _bucket/_sum/_count
// triplet with a +Inf bucket equal to _count — and the run-latency
// histogram has observed the run.
func TestPrometheusExposition(t *testing.T) {
	srv := server.New(testEngine())
	if rec := post(t, srv, "/v1/run",
		`{"benchmarks":["mcf","galgel"],"policy":"icount"}`); rec.Code != http.StatusOK {
		t.Fatalf("run status %d: %s", rec.Code, rec.Body)
	}

	rec := get(t, srv, "/metrics?format=prometheus")
	if rec.Code != http.StatusOK {
		t.Fatalf("scrape status %d", rec.Code)
	}
	samples, help, typed := promSamples(t, rec.Body.String())

	// Every sample belongs to a family with HELP and TYPE preambles.
	for name := range samples {
		family := name
		if i := strings.IndexByte(family, '{'); i >= 0 {
			family = family[:i]
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(family, suffix); ok && typed[base] {
				family = base
				break
			}
		}
		if !help[family] || !typed[family] {
			t.Errorf("sample %s has no HELP/TYPE preamble for %s", name, family)
		}
	}

	// Spot-check the counter families the JSON body also reports.
	if samples["smtmlp_server_requests_total"] < 1 {
		t.Fatalf("smtmlp_server_requests_total = %v after a run", samples["smtmlp_server_requests_total"])
	}
	if samples["smtmlp_engine_cache_entries"] < 1 {
		t.Fatalf("smtmlp_engine_cache_entries = %v after a run", samples["smtmlp_engine_cache_entries"])
	}

	// Every latency histogram is a complete triplet with consistent buckets.
	for _, h := range []string{
		"smtmlp_run_duration_seconds",
		"smtmlp_batch_stream_duration_seconds",
		"smtmlp_lease_lifetime_seconds",
		"smtmlp_tenant_queue_wait_seconds",
	} {
		count, ok := samples[h+"_count"]
		if !ok {
			t.Fatalf("histogram %s has no _count sample", h)
		}
		if _, ok := samples[h+"_sum"]; !ok {
			t.Fatalf("histogram %s has no _sum sample", h)
		}
		inf, ok := samples[h+`_bucket{le="+Inf"}`]
		if !ok {
			t.Fatalf("histogram %s has no +Inf bucket", h)
		}
		if inf != count {
			t.Fatalf("histogram %s: +Inf bucket %v != count %v", h, inf, count)
		}
		buckets := 0
		for name := range samples {
			if strings.HasPrefix(name, h+"_bucket{") {
				buckets++
			}
		}
		if buckets != 17 { // 16 finite bounds + +Inf
			t.Fatalf("histogram %s has %d bucket samples, want 17", h, buckets)
		}
	}
	if samples["smtmlp_run_duration_seconds_count"] < 1 {
		t.Fatal("run-latency histogram observed nothing after a /v1/run")
	}
}

// TestRunTraceInterval opts a /v1/run into interval traces and pins the
// contract: per-thread samples on threads[].intervals, on-boundary cycles,
// byte determinism across repeats, an identical simulated outcome with the
// knob off, and a 400 for a negative interval.
func TestRunTraceInterval(t *testing.T) {
	srv := server.New(testEngine())

	body := `{"benchmarks":["mcf","galgel"],"policy":"mlpflush","trace_interval":200}`
	traced := post(t, srv, "/v1/run", body)
	var res smtmlp.WorkloadResult
	decodeInto(t, traced, &res)
	if len(res.Threads) != 2 {
		t.Fatalf("threads %d", len(res.Threads))
	}
	for i, th := range res.Threads {
		if len(th.Intervals) == 0 {
			t.Fatalf("thread %d has no interval samples", i)
		}
		prev := int64(0)
		for _, s := range th.Intervals {
			if s.Cycle <= prev {
				t.Fatalf("thread %d: non-increasing sample cycle %d after %d", i, s.Cycle, prev)
			}
			prev = s.Cycle
		}
	}

	// Byte determinism: the same traced request twice is identical.
	if again := post(t, srv, "/v1/run", body); !bytes.Equal(traced.Body.Bytes(), again.Body.Bytes()) {
		t.Fatal("traced run is not byte-deterministic across repeats")
	}

	// Tracing never perturbs the simulation: the untraced run agrees exactly.
	var plain smtmlp.WorkloadResult
	decodeInto(t, post(t, srv, "/v1/run",
		`{"benchmarks":["mcf","galgel"],"policy":"mlpflush"}`), &plain)
	if plain.Cycles != res.Cycles || plain.STP != res.STP {
		t.Fatalf("tracing changed the outcome: cycles %d vs %d", res.Cycles, plain.Cycles)
	}
	if len(plain.Threads[0].Intervals) != 0 {
		t.Fatal("untraced run carries interval samples")
	}

	wantError(t, post(t, srv, "/v1/run",
		`{"benchmarks":["mcf"],"policy":"icount","trace_interval":-1}`),
		http.StatusBadRequest, server.CodeInvalidRequest)
}

// TestBatchTraceInterval pins interval traces on the NDJSON stream: every
// result line of a traced batch carries its threads' samples.
func TestBatchTraceInterval(t *testing.T) {
	srv := server.New(testEngine())
	rec := post(t, srv, "/v1/batch",
		`{"workloads":[["mcf","galgel"],["swim","twolf"]],"policies":["icount"],"trace_interval":250}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	lines := readBatchLines(t, rec.Body.Bytes())
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	for _, br := range lines {
		if br.Err != nil {
			t.Fatalf("%s failed: %v", br.Request.Tag, br.Err)
		}
		for i, th := range br.Result.Threads {
			if len(th.Intervals) == 0 {
				t.Fatalf("%s thread %d has no interval samples", br.Request.Tag, i)
			}
		}
	}

	wantError(t, post(t, srv, "/v1/batch",
		`{"workloads":[["mcf"]],"policies":["icount"],"trace_interval":-5}`),
		http.StatusBadRequest, server.CodeInvalidRequest)
}

// TestRunLatencyInJSONMetrics pins the latency summary block of the JSON
// /metrics body: the run histogram counts runs and accumulates their time.
func TestRunLatencyInJSONMetrics(t *testing.T) {
	srv := server.New(testEngine())
	for i := 0; i < 2; i++ {
		if rec := post(t, srv, "/v1/run",
			`{"benchmarks":["mcf","galgel"],"policy":"icount"}`); rec.Code != http.StatusOK {
			t.Fatalf("run %d status %d", i, rec.Code)
		}
	}
	var m server.MetricsResponse
	decodeInto(t, get(t, srv, "/metrics"), &m)
	if m.Latency.Run.Count != 2 {
		t.Fatalf("run latency count %d, want 2", m.Latency.Run.Count)
	}
	if m.Latency.Run.SumSeconds <= 0 {
		t.Fatalf("run latency sum %v, want > 0", m.Latency.Run.SumSeconds)
	}
}
