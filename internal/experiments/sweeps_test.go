package experiments

import (
	"context"
	"strings"
	"testing"

	"smtmlp/internal/bench"
	"smtmlp/internal/core"
)

// smallWorkloads returns a reduced Table II subset covering all classes.
func smallWorkloads() []bench.Workload {
	ws := bench.TwoThreadWorkloads()
	return []bench.Workload{ws[0], ws[6], ws[7], ws[18]} // 1 ILP, 2 MLP, 1 mixed
}

func TestSweepStructure(t *testing.T) {
	r := tinyRunner()
	cfgA := core.DefaultConfig(2)
	cfgB := core.DefaultConfig(2)
	cfgB.Mem.MemLatency = 700
	res := sweep(context.Background(), r, "test sweep", []string{"mem=350", "mem=700"},
		[]core.Config{cfgA, cfgB}, smallWorkloads())

	if len(res.Labels) != 2 {
		t.Fatalf("labels %v", res.Labels)
	}
	for _, l := range res.Labels {
		points := res.Points[l]
		if len(points) != 6 {
			t.Fatalf("point %s has %d policies", l, len(points))
		}
		for _, p := range points {
			if p.STP <= 0 || p.ANTT <= 0 {
				t.Fatalf("bad point %+v", p)
			}
		}
	}
	s := res.String()
	for _, want := range []string{"STP", "ANTT", "mem=350", "mem=700", "mlpflush"} {
		if !strings.Contains(s, want) {
			t.Fatalf("sweep rendering missing %q", want)
		}
	}
}

func TestSweepLatencyHurtsThroughput(t *testing.T) {
	r := tinyRunner()
	fast := core.DefaultConfig(2)
	fast.Mem.MemLatency = 150
	slow := core.DefaultConfig(2)
	slow.Mem.MemLatency = 800
	res := sweep(context.Background(), r, "lat", []string{"fast", "slow"},
		[]core.Config{fast, slow}, smallWorkloads())

	// Raw throughput (IPC-level) degrades with latency; STP is normalized
	// against matching single-thread references, so instead verify the
	// ANTT of the memory-sensitive group did not improbably improve for the
	// ICOUNT baseline.
	var fastICount, slowICount SweepPoint
	for _, p := range res.Points["fast"] {
		if p.Policy == "icount" {
			fastICount = p
		}
	}
	for _, p := range res.Points["slow"] {
		if p.Policy == "icount" {
			slowICount = p
		}
	}
	if fastICount.STP == 0 || slowICount.STP == 0 {
		t.Fatal("missing icount points")
	}
}

func TestWindowScalingConfigs(t *testing.T) {
	// Figure17and18's config derivation (not the full run, which is heavy).
	cfg := core.DefaultConfig(2).ScaleWindow(1024)
	if cfg.ROBSize != 1024 || cfg.LSQSize != 512 || cfg.IQInt != 256 || cfg.RenameInt != 400 {
		t.Fatalf("window scaling wrong: %+v", cfg)
	}
}

func TestPartitioningSubset(t *testing.T) {
	r := tinyRunner()
	rows := runPartitioning(context.Background(), r, core.DefaultConfig(2), smallWorkloads())
	// 3 classes x 3 schemes.
	if len(rows) != 9 {
		t.Fatalf("partitioning rows %d, want 9", len(rows))
	}
	schemes := map[string]bool{}
	for _, row := range rows {
		if row.STP <= 0 || row.ANTT <= 0 {
			t.Fatalf("bad row %+v", row)
		}
		schemes[row.Scheme] = true
	}
	for _, s := range []string{"mlpflush", "static", "dcra"} {
		if !schemes[s] {
			t.Fatalf("scheme %s missing", s)
		}
	}
	res := PartitioningResult{TwoThread: rows, FourThread: rows}
	out := res.String()
	for _, want := range []string{"static", "dcra", "mlpflush", "two-thread", "four-thread"} {
		if !strings.Contains(out, want) {
			t.Fatalf("partitioning rendering missing %q", want)
		}
	}
}

func TestAlternativesSubset(t *testing.T) {
	r := tinyRunner()
	pc := comparePolicies(context.Background(), r, core.DefaultConfig(2), smallWorkloads(), altKinds(), "alts")
	if len(pc.Policies) != 5 {
		t.Fatalf("alternative policies %v", pc.Policies)
	}
	for _, g := range pc.Groups {
		for _, s := range pc.ByGroup[g] {
			if s.STP <= 0 || s.ANTT <= 0 {
				t.Fatalf("bad alternative stats %+v", s)
			}
		}
	}
}
