package experiments

import (
	"context"
	"fmt"

	"smtmlp/internal/bench"
	"smtmlp/internal/core"
	"smtmlp/internal/sim"
)

// TableIRow characterizes one benchmark on the 256-entry ROB single-thread
// baseline: long-latency loads per 1K instructions, MLP (Chou et al.), the
// performance impact of MLP (serialized vs parallel long-latency loads), and
// the resulting classification, next to the paper's reference values.
type TableIRow struct {
	Name     string
	LLLPer1K float64
	MLP      float64
	Impact   float64 // fraction of execution time removed by MLP
	Class    bench.Class
	IPC      float64
	PaperLLL float64
	PaperMLP float64
	PaperImp float64
	PaperCls bench.Class
}

// TableIResult is the Table I / Figure 1 characterization for all 26
// benchmarks.
type TableIResult struct {
	Rows []TableIRow
}

// TableI reproduces Table I (and Figure 1, whose bars are the MLP column):
// each benchmark runs alone on the baseline, once normally and once with
// long-latency loads artificially serialized; the CPI difference quantifies
// the MLP impact.
func TableI(ctx context.Context, r *sim.Runner) TableIResult {
	names := bench.Names()
	rows := make([]TableIRow, len(names))

	var jobs []sim.Job
	for i, name := range names {
		i, name := i, name
		jobs = append(jobs, func() {
			b := bench.MustGet(name)
			cfg := core.DefaultConfig(1)
			par, err := r.RunSingleCtx(ctx, cfg, name)
			if err != nil {
				return
			}

			serCfg := cfg
			serCfg.Mem.SerializeLLL = true
			ser, err := r.RunSingleCtx(ctx, serCfg, name)
			if err != nil {
				return
			}

			cpiPar := 1 / par.IPC[0]
			cpiSer := 1 / ser.IPC[0]
			impact := 0.0
			if cpiSer > 0 {
				impact = (cpiSer - cpiPar) / cpiSer
			}
			if impact < 0 {
				impact = 0
			}
			cls := bench.ILP
			if impact > 0.10 {
				cls = bench.MLP
			}
			rows[i] = TableIRow{
				Name:     name,
				LLLPer1K: par.LLLPer1K[0],
				MLP:      par.MLP[0],
				Impact:   impact,
				Class:    cls,
				IPC:      par.IPC[0],
				PaperLLL: b.PaperLLLPer1K,
				PaperMLP: b.PaperMLP,
				PaperImp: b.PaperImpact,
				PaperCls: b.PaperClass,
			}
		})
	}
	r.Parallel(jobs)
	return TableIResult{Rows: rows}
}

// String renders the Table I reproduction with measured-vs-paper columns.
func (t TableIResult) String() string {
	tbl := Table{
		Title:  "Table I / Figure 1 — benchmark characterization (256-entry ROB, single thread)",
		Header: []string{"benchmark", "LLL/1K", "MLP", "MLP impact", "type", "IPC", "paper LLL/1K", "paper MLP", "paper impact", "paper type"},
	}
	for _, r := range t.Rows {
		tbl.AddRow(r.Name, f2(r.LLLPer1K), f2(r.MLP), pct(r.Impact), r.Class.String(), f2(r.IPC),
			f2(r.PaperLLL), f2(r.PaperMLP), pct(r.PaperImp), r.PaperCls.String())
	}
	tbl.Notes = append(tbl.Notes,
		"MLP impact = (CPI_serialized - CPI_parallel) / CPI_serialized; class = MLP when impact > 10% (Section 2)")
	return tbl.String()
}

// ClassAgreement counts benchmarks whose measured class matches the paper's.
func (t TableIResult) ClassAgreement() (match, total int) {
	for _, r := range t.Rows {
		if r.Class == r.PaperCls {
			match++
		}
	}
	return match, len(t.Rows)
}

// Figure4Result is the cumulative distribution of measured/predicted MLP
// distances for the six most MLP-intensive benchmarks (128-entry LLSR).
type Figure4Result struct {
	Benchmarks []string
	// CDF[b][d] is the cumulative fraction of LLSR updates of benchmark b
	// with distance <= d (only updates with a long-latency head load).
	CDF [][]float64
}

// Figure4 reproduces Figure 4: run each of the six most MLP-intensive
// programs single-threaded with a 128-entry LLSR and collect the
// distribution of MLP distances the predictor learns.
func Figure4(ctx context.Context, r *sim.Runner) Figure4Result {
	names := bench.MostMLPIntensive(6)
	out := Figure4Result{Benchmarks: names, CDF: make([][]float64, len(names))}
	var jobs []sim.Job
	for i, name := range names {
		i, name := i, name
		jobs = append(jobs, func() {
			cfg := core.DefaultConfig(1)
			cfg.LLSRSize = 128 // the paper's Figure 4 setup
			c, _, err := r.RunSingleCoreCtx(ctx, cfg, name)
			if err != nil {
				return
			}
			out.CDF[i] = histToCDF(c.MLPState(0).DistanceHist)
		})
	}
	r.Parallel(jobs)
	return out
}

// histToCDF converts a distance histogram into a cumulative distribution.
func histToCDF(hist []uint64) []float64 {
	var total uint64
	for _, n := range hist {
		total += n
	}
	cdf := make([]float64, len(hist))
	if total == 0 {
		return cdf
	}
	var cum uint64
	for i, n := range hist {
		cum += n
		cdf[i] = float64(cum) / float64(total)
	}
	return cdf
}

// String renders Figure 4 as CDF samples at selected distances.
func (f Figure4Result) String() string {
	points := []int{0, 10, 20, 30, 40, 60, 80, 100, 120, 127}
	tbl := Table{
		Title:  "Figure 4 — cumulative distribution of MLP distance (six most MLP-intensive, 128-entry LLSR)",
		Header: append([]string{"distance<="}, f.Benchmarks...),
	}
	for _, d := range points {
		row := []string{fmt.Sprintf("%d", d)}
		for i := range f.Benchmarks {
			v := 0.0
			if d < len(f.CDF[i]) {
				v = f.CDF[i][d]
			} else if n := len(f.CDF[i]); n > 0 {
				v = f.CDF[i][n-1]
			}
			row = append(row, pct(v))
		}
		tbl.AddRow(row...)
	}
	return tbl.String()
}

// Figure5Row is one benchmark's single-thread IPC with and without the
// hardware prefetcher.
type Figure5Row struct {
	Name          string
	IPCNoPrefetch float64
	IPCPrefetch   float64
	Speedup       float64
}

// Figure5Result reproduces Figure 5.
type Figure5Result struct {
	Rows []Figure5Row
	// HarmonicSpeedup is the harmonic-average IPC ratio (the paper reports
	// 20.2% on its setup).
	HarmonicSpeedup float64
}

// Figure5 runs every benchmark single-threaded with and without prefetching.
func Figure5(ctx context.Context, r *sim.Runner) Figure5Result {
	names := bench.Names()
	rows := make([]Figure5Row, len(names))
	var jobs []sim.Job
	for i, name := range names {
		i, name := i, name
		jobs = append(jobs, func() {
			on := core.DefaultConfig(1)
			off := core.DefaultConfig(1)
			off.Mem.EnablePrefetch = false
			with, err := r.RunSingleCtx(ctx, on, name)
			if err != nil {
				return
			}
			without, err := r.RunSingleCtx(ctx, off, name)
			if err != nil {
				return
			}
			rows[i] = Figure5Row{
				Name:          name,
				IPCNoPrefetch: without.IPC[0],
				IPCPrefetch:   with.IPC[0],
				Speedup:       with.IPC[0]/without.IPC[0] - 1,
			}
		})
	}
	r.Parallel(jobs)

	// Harmonic mean of IPCs, then ratio (the paper's "harmonic average IPC
	// speed-up").
	var invOn, invOff float64
	for _, row := range rows {
		invOn += 1 / row.IPCPrefetch
		invOff += 1 / row.IPCNoPrefetch
	}
	return Figure5Result{Rows: rows, HarmonicSpeedup: invOff/invOn - 1}
}

// String renders Figure 5.
func (f Figure5Result) String() string {
	tbl := Table{
		Title:  "Figure 5 — single-threaded IPC with and without hardware prefetching",
		Header: []string{"benchmark", "IPC no-prefetch", "IPC prefetch", "speedup"},
	}
	for _, r := range f.Rows {
		tbl.AddRow(r.Name, f3(r.IPCNoPrefetch), f3(r.IPCPrefetch), pct(r.Speedup))
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("harmonic-average IPC speedup from prefetching: %s (paper: 20.2%%)", pct(f.HarmonicSpeedup)))
	return tbl.String()
}

// PredictorRow carries the Figure 6/7/8 predictor statistics for one
// benchmark.
type PredictorRow struct {
	Name string

	// Figure 6: long-latency load predictor.
	HitMissAccuracy float64 // correct hit/miss predictions per load
	MissCoverage    float64 // correctly predicted misses per miss

	// Figure 7: binary MLP prediction at LLSR-update time.
	TP, TN, FP, FN float64
	HasMLPData     bool

	// Figure 8: far-enough distance predictions.
	FarEnough float64
}

// PredictorsResult reproduces Figures 6, 7 and 8 from one characterization
// run per benchmark (single-threaded baseline, 128-entry LLSR).
type PredictorsResult struct {
	Rows []PredictorRow
}

// Predictors runs the predictor characterization behind Figures 6-8.
func Predictors(ctx context.Context, r *sim.Runner) PredictorsResult {
	names := bench.Names()
	rows := make([]PredictorRow, len(names))
	var jobs []sim.Job
	for i, name := range names {
		i, name := i, name
		jobs = append(jobs, func() {
			cfg := core.DefaultConfig(1)
			cfg.LLSRSize = 128
			c, _, err := r.RunSingleCoreCtx(ctx, cfg, name)
			if err != nil {
				return
			}
			st := c.MLPState(0)
			row := PredictorRow{
				Name:            name,
				HitMissAccuracy: st.MissPattern.Accuracy(),
				MissCoverage:    st.MissPattern.MissCoverage(),
			}
			if tp, tn, fp, fn, ok := st.BinaryAccuracy(); ok {
				row.TP, row.TN, row.FP, row.FN = tp, tn, fp, fn
				row.HasMLPData = true
			}
			if fe, ok := st.FarEnoughAccuracy(); ok {
				row.FarEnough = fe
			}
			rows[i] = row
		})
	}
	r.Parallel(jobs)
	return PredictorsResult{Rows: rows}
}

// Figure6String renders the long-latency load predictor accuracy.
func (p PredictorsResult) Figure6String() string {
	tbl := Table{
		Title:  "Figure 6 — long-latency load (miss pattern) predictor accuracy",
		Header: []string{"benchmark", "hit/miss accuracy", "miss coverage"},
	}
	var accs []float64
	for _, r := range p.Rows {
		tbl.AddRow(r.Name, pct(r.HitMissAccuracy), pct(r.MissCoverage))
		accs = append(accs, r.HitMissAccuracy)
	}
	var sum float64
	for _, a := range accs {
		sum += a
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("average hit/miss accuracy: %s (paper: 99.4%%, no benchmark below 94%%)", pct(sum/float64(len(accs)))))
	return tbl.String()
}

// Figure7String renders the binary MLP prediction quality.
func (p PredictorsResult) Figure7String() string {
	tbl := Table{
		Title:  "Figure 7 — MLP predictor: binary MLP prediction (fractions of LLSR updates)",
		Header: []string{"benchmark", "true pos", "true neg", "false pos", "false neg", "accuracy"},
	}
	var accSum float64
	var n int
	for _, r := range p.Rows {
		if !r.HasMLPData {
			tbl.AddRow(r.Name, "-", "-", "-", "-", "- (no long-latency loads)")
			continue
		}
		acc := r.TP + r.TN
		tbl.AddRow(r.Name, pct(r.TP), pct(r.TN), pct(r.FP), pct(r.FN), pct(acc))
		accSum += acc
		n++
	}
	if n > 0 {
		tbl.Notes = append(tbl.Notes,
			fmt.Sprintf("average binary MLP prediction accuracy: %s (paper: 91.5%%)", pct(accSum/float64(n))))
	}
	return tbl.String()
}

// Figure8String renders the far-enough MLP distance accuracy.
func (p PredictorsResult) Figure8String() string {
	tbl := Table{
		Title:  "Figure 8 — MLP distance predictor: far-enough predictions",
		Header: []string{"benchmark", "far-enough accuracy"},
	}
	var sum float64
	var n int
	for _, r := range p.Rows {
		if !r.HasMLPData {
			tbl.AddRow(r.Name, "- (no long-latency loads)")
			continue
		}
		tbl.AddRow(r.Name, pct(r.FarEnough))
		sum += r.FarEnough
		n++
	}
	if n > 0 {
		tbl.Notes = append(tbl.Notes,
			fmt.Sprintf("average far-enough accuracy: %s (paper: 87.8%%)", pct(sum/float64(n))))
	}
	return tbl.String()
}
