package experiments

import (
	"context"
	"fmt"

	"smtmlp/internal/bench"
	"smtmlp/internal/core"
	"smtmlp/internal/metrics"
	"smtmlp/internal/policy"
	"smtmlp/internal/sim"
)

// SweepPoint aggregates all two-thread workloads for one configuration point
// and one policy.
type SweepPoint struct {
	Label  string // e.g. "mem=400" or "rob=512"
	Policy string
	STP    float64
	ANTT   float64
}

// SweepResult is the Figure 15/16 (memory latency) or Figure 17/18 (window
// size) experiment.
type SweepResult struct {
	Title  string
	Labels []string
	Points map[string][]SweepPoint // label -> per-policy stats
}

// sweep runs all two-thread workloads under every paper policy at each
// configuration point. The whole configs x workloads x policies
// cross-product goes through one batch, so the worker pool stays saturated
// across configuration points and the reference cache deduplicates each
// point's single-threaded references.
func sweep(ctx context.Context, r *sim.Runner, title string, labels []string, configs []core.Config, workloads []bench.Workload) SweepResult {
	kinds := policy.Paper()
	out := SweepResult{Title: title, Labels: labels, Points: make(map[string][]SweepPoint)}

	// Submit policy-major so the pool's first wave spans distinct
	// (config, workload) pairs, computing their single-threaded references
	// in parallel instead of queueing behind one reference per boundary.
	perPoint := len(workloads) * len(kinds)
	reqs := make([]sim.BatchRequest, 0, len(configs)*perPoint)
	pos := make([]int, 0, len(configs)*perPoint) // submission index -> point-major slot
	for ki, k := range kinds {
		for li, cfg := range configs {
			for wi, w := range workloads {
				reqs = append(reqs, sim.BatchRequest{Config: cfg, Workload: w, Kind: k})
				pos = append(pos, li*perPoint+wi*len(kinds)+ki)
			}
		}
	}
	// results is point-major: results[li*perPoint+wi*len(kinds)+ki].
	results, finished := collectBatch(ctx, r, reqs, pos)

	for li := range configs {
		for ki, k := range kinds {
			var stps, antts []float64
			for wi := range workloads {
				if !finished[li*perPoint+wi*len(kinds)+ki] {
					continue
				}
				res := results[li*perPoint+wi*len(kinds)+ki]
				stps = append(stps, res.STP)
				antts = append(antts, res.ANTT)
			}
			out.Points[labels[li]] = append(out.Points[labels[li]], SweepPoint{
				Label:  labels[li],
				Policy: k.String(),
				STP:    metrics.HarmonicMean(stps),
				ANTT:   metrics.ArithmeticMean(antts),
			})
		}
	}
	return out
}

// Figure15and16 reproduces the main-memory latency sweep: STP (Figure 15)
// and ANTT (Figure 16) across 200-800 cycles, all two-thread workloads.
func Figure15and16(ctx context.Context, r *sim.Runner) SweepResult {
	var labels []string
	var configs []core.Config
	for _, lat := range []int64{200, 400, 600, 800} {
		cfg := core.DefaultConfig(2)
		cfg.Mem.MemLatency = lat
		labels = append(labels, fmt.Sprintf("mem=%d", lat))
		configs = append(configs, cfg)
	}
	return sweep(ctx, r, "Figures 15 & 16 — STP and ANTT vs main memory access latency (two-thread workloads)",
		labels, configs, bench.TwoThreadWorkloads())
}

// Figure17and18 reproduces the window size sweep: ROB 128-1024 with the
// LSQ, issue queues and rename registers scaled proportionally.
func Figure17and18(ctx context.Context, r *sim.Runner) SweepResult {
	var labels []string
	var configs []core.Config
	for _, rob := range []int{128, 256, 512, 1024} {
		cfg := core.DefaultConfig(2).ScaleWindow(rob)
		labels = append(labels, fmt.Sprintf("rob=%d", rob))
		configs = append(configs, cfg)
	}
	return sweep(ctx, r, "Figures 17 & 18 — STP and ANTT vs processor window size (two-thread workloads)",
		labels, configs, bench.TwoThreadWorkloads())
}

// String renders the sweep as two tables (STP, then ANTT), policies as
// columns and sweep points as rows, with relative-to-ICOUNT columns as the
// paper's figures plot.
func (s SweepResult) String() string {
	var policies []string
	if len(s.Labels) > 0 {
		for _, p := range s.Points[s.Labels[0]] {
			policies = append(policies, p.Policy)
		}
	}
	render := func(metric string, get func(SweepPoint) float64, lowerBetter bool) string {
		tbl := Table{
			Title:  fmt.Sprintf("%s — %s", s.Title, metric),
			Header: append([]string{"point"}, policies...),
		}
		for _, l := range s.Labels {
			row := []string{l}
			var icount float64
			for _, p := range s.Points[l] {
				if p.Policy == "icount" {
					icount = get(p)
				}
			}
			for _, p := range s.Points[l] {
				v := get(p)
				rel := ""
				if icount > 0 && p.Policy != "icount" {
					rel = fmt.Sprintf(" (%+.1f%%)", 100*(v/icount-1))
				}
				row = append(row, f3(v)+rel)
			}
			tbl.AddRow(row...)
		}
		if lowerBetter {
			tbl.Notes = append(tbl.Notes, "lower is better; percentages are relative to ICOUNT at the same point")
		} else {
			tbl.Notes = append(tbl.Notes, "higher is better; percentages are relative to ICOUNT at the same point")
		}
		return tbl.String()
	}
	return render("STP", func(p SweepPoint) float64 { return p.STP }, false) +
		"\n" + render("ANTT", func(p SweepPoint) float64 { return p.ANTT }, true)
}
