package experiments

import (
	"context"
	"strings"
	"testing"

	"smtmlp/internal/bench"
	"smtmlp/internal/core"
	"smtmlp/internal/policy"
	"smtmlp/internal/sim"
)

// tinyRunner keeps experiment tests fast; experiment structure, not
// measurement quality, is under test here.
func tinyRunner() *sim.Runner {
	return sim.NewRunner(sim.Params{Instructions: 8_000, Warmup: 4_000})
}

func coreConfig2() core.Config { return core.DefaultConfig(2) }

func paperKinds() []policy.Kind { return policy.Paper() }

func TestTableRendering(t *testing.T) {
	tbl := Table{Title: "T", Header: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	tbl.Notes = append(tbl.Notes, "n")
	s := tbl.String()
	for _, want := range []string{"T", "a", "bb", "1", "2", "note: n"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestTableIStructure(t *testing.T) {
	// Classification needs enough instructions for rare-burst benchmarks
	// (galgel's bursts recur every ~18K instructions) to miss at all.
	res := TableI(context.Background(), sim.NewRunner(sim.Params{Instructions: 40_000, Warmup: 10_000}))
	if len(res.Rows) != 26 {
		t.Fatalf("Table I has %d rows, want 26", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Name == "" || r.IPC <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		if r.MLP < 1 {
			t.Fatalf("%s MLP %v < 1", r.Name, r.MLP)
		}
		if r.Impact < 0 || r.Impact > 1 {
			t.Fatalf("%s impact %v out of [0,1]", r.Name, r.Impact)
		}
	}
	match, total := res.ClassAgreement()
	if total != 26 {
		t.Fatal("agreement total wrong")
	}
	// Even at reduced budgets the broad ILP/MLP split must hold.
	if match < 20 {
		t.Fatalf("only %d/26 class agreements at reduced budget", match)
	}
	if !strings.Contains(res.String(), "mcf") {
		t.Fatal("rendering lost benchmarks")
	}
}

func TestFigure4Structure(t *testing.T) {
	res := Figure4(context.Background(), tinyRunner())
	if len(res.Benchmarks) != 6 {
		t.Fatalf("Figure 4 covers %d benchmarks, want 6", len(res.Benchmarks))
	}
	for i, cdf := range res.CDF {
		if len(cdf) == 0 {
			t.Fatalf("%s has an empty CDF", res.Benchmarks[i])
		}
		last := 0.0
		for d, v := range cdf {
			if v < last-1e-9 {
				t.Fatalf("%s CDF not monotonic at %d", res.Benchmarks[i], d)
			}
			last = v
		}
		if last < 0.99 {
			t.Fatalf("%s CDF does not reach 1 (%v)", res.Benchmarks[i], last)
		}
	}
	_ = res.String()
}

func TestFigure5Structure(t *testing.T) {
	res := Figure5(context.Background(), tinyRunner())
	if len(res.Rows) != 26 {
		t.Fatalf("Figure 5 rows %d", len(res.Rows))
	}
	sawSpeedup := false
	for _, r := range res.Rows {
		if r.IPCPrefetch <= 0 || r.IPCNoPrefetch <= 0 {
			t.Fatalf("%s has non-positive IPC", r.Name)
		}
		if r.Speedup > 0.05 {
			sawSpeedup = true
		}
	}
	if !sawSpeedup {
		t.Fatal("prefetching sped up no benchmark at all")
	}
	if res.HarmonicSpeedup <= 0 {
		t.Fatalf("overall prefetch speedup %v, expected positive (paper: 20.2%%)", res.HarmonicSpeedup)
	}
	_ = res.String()
}

func TestPredictorsStructure(t *testing.T) {
	res := Predictors(context.Background(), tinyRunner())
	if len(res.Rows) != 26 {
		t.Fatalf("predictor rows %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.HitMissAccuracy < 0.5 {
			t.Fatalf("%s long-latency predictor accuracy %v implausibly low", r.Name, r.HitMissAccuracy)
		}
		if r.HasMLPData {
			if s := r.TP + r.TN + r.FP + r.FN; s < 0.99 || s > 1.01 {
				t.Fatalf("%s binary fractions sum %v", r.Name, s)
			}
		}
	}
	for _, s := range []string{res.Figure6String(), res.Figure7String(), res.Figure8String()} {
		if !strings.Contains(s, "mcf") {
			t.Fatal("figure rendering incomplete")
		}
	}
}

// TestPolicyComparisonSubset runs the Figure 9/10 machinery on a reduced
// workload list to keep the test quick.
func TestPolicyComparisonSubset(t *testing.T) {
	r := tinyRunner()
	workloads := bench.TwoThreadWorkloads()[:8] // 6 ILP + 2 MLP pairs
	pc := comparePolicies(context.Background(), r, coreConfig2(), workloads, paperKinds(), "test")
	if len(pc.Policies) != 6 {
		t.Fatalf("policies %v", pc.Policies)
	}
	for _, g := range pc.Groups {
		stats := pc.ByGroup[g]
		if len(stats) != 6 {
			t.Fatalf("group %v has %d policy entries", g, len(stats))
		}
		for _, s := range stats {
			if s.STP <= 0 || s.ANTT <= 0 {
				t.Fatalf("group %v policy %s bad stats %+v", g, s.Policy, s)
			}
		}
	}
	if _, ok := pc.GroupPolicy(bench.ILPWorkload, "icount"); !ok {
		t.Fatal("GroupPolicy lookup failed")
	}
	if !strings.Contains(pc.String(), "STP") {
		t.Fatal("comparison rendering broken")
	}
	if !strings.Contains(pc.IPCStacks(bench.MLPWorkload), "mcf") {
		t.Fatal("IPC stack rendering missing workloads")
	}
}

func altKinds() []policy.Kind { return policy.Alternatives() }
