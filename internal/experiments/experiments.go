// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 2 characterization and Section 6 evaluation). Each
// experiment is a function from a sim.Runner (which fixes the instruction
// budget and parallelism) to a result struct that renders the same rows or
// series the paper reports. cmd/repro runs them all; the root bench harness
// exposes one testing.B benchmark per experiment.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"smtmlp/internal/sim"
)

// collectBatch fans reqs over the runner's batch pool and scatters the
// results into slot order: results[pos[i]] holds the outcome of reqs[i].
// finished marks slots whose simulation completed; canceled requests leave
// their slot false so aggregations can skip them instead of feeding zeros
// to the means. Any non-cancellation failure indicates a broken experiment
// and panics (the experiment tables are curated, so such errors cannot
// occur in a healthy harness).
func collectBatch(ctx context.Context, r *sim.Runner, reqs []sim.BatchRequest, pos []int) (results []sim.WorkloadResult, finished []bool) {
	results = make([]sim.WorkloadResult, len(reqs))
	finished = make([]bool, len(reqs))
	for br := range r.RunBatch(ctx, reqs) {
		if br.Err != nil {
			if errors.Is(br.Err, context.Canceled) || errors.Is(br.Err, context.DeadlineExceeded) {
				continue
			}
			panic(fmt.Sprintf("experiments: batch request %d failed: %v", br.Index, br.Err))
		}
		results[pos[br.Index]] = br.Res
		finished[pos[br.Index]] = true
	}
	return results, finished
}

// Table is a simple aligned-text table used by all experiment renderings.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }
