package experiments

import (
	"context"
	"fmt"

	"smtmlp/internal/bench"
	"smtmlp/internal/core"
	"smtmlp/internal/metrics"
	"smtmlp/internal/policy"
	"smtmlp/internal/sim"
)

// GroupStats aggregates STP and ANTT over one workload class for one policy,
// using the paper's averaging rules (harmonic for STP, arithmetic for ANTT).
type GroupStats struct {
	Policy string
	STP    float64
	ANTT   float64
}

// PolicyComparison is the Figure 9/10 (two-thread) or Figure 13/14
// (four-thread) experiment: every workload under every fetch policy.
type PolicyComparison struct {
	Title     string
	Policies  []string
	Groups    []bench.WorkloadClass
	ByGroup   map[bench.WorkloadClass][]GroupStats
	Workloads []sim.WorkloadResult // every individual run, for Figures 11/12
}

// comparePolicies fans workloads x kinds over the runner's batch pool (the
// single-flight reference cache deduplicates the single-threaded references
// without an explicit priming pass) and aggregates per class.
func comparePolicies(ctx context.Context, r *sim.Runner, cfg core.Config, workloads []bench.Workload, kinds []policy.Kind, title string) PolicyComparison {
	// Submit policy-major so the pool's first wave spans distinct
	// workloads: each worker computes its own workload's single-threaded
	// references (the single-flight cache dedupes the rest) instead of the
	// whole pool queueing behind one reference at a workload boundary.
	reqs := make([]sim.BatchRequest, 0, len(workloads)*len(kinds))
	pos := make([]int, 0, len(workloads)*len(kinds)) // submission index -> workload-major slot
	for ki, k := range kinds {
		for wi, w := range workloads {
			reqs = append(reqs, sim.BatchRequest{Config: cfg, Workload: w, Kind: k})
			pos = append(pos, wi*len(kinds)+ki)
		}
	}
	// results is workload-major: results[wi*len(kinds)+ki] holds workload
	// wi under policy ki, as the aggregation below expects.
	results, finished := collectBatch(ctx, r, reqs, pos)

	pc := PolicyComparison{
		Title:     title,
		ByGroup:   make(map[bench.WorkloadClass][]GroupStats),
		Workloads: results,
	}
	for _, k := range kinds {
		pc.Policies = append(pc.Policies, k.String())
	}
	for _, class := range []bench.WorkloadClass{bench.ILPWorkload, bench.MLPWorkload, bench.MixedWorkload} {
		if len(bench.WorkloadsByClass(workloads, class)) == 0 {
			continue
		}
		pc.Groups = append(pc.Groups, class)
		for ki, k := range kinds {
			var stps, antts []float64
			for wi, w := range workloads {
				if w.Class != class || !finished[wi*len(kinds)+ki] {
					continue
				}
				res := results[wi*len(kinds)+ki]
				stps = append(stps, res.STP)
				antts = append(antts, res.ANTT)
			}
			pc.ByGroup[class] = append(pc.ByGroup[class], GroupStats{
				Policy: k.String(),
				STP:    metrics.HarmonicMean(stps),
				ANTT:   metrics.ArithmeticMean(antts),
			})
		}
	}
	return pc
}

// Figure9and10 reproduces the two-thread policy comparison: STP (Figure 9)
// and ANTT (Figure 10) for ILP-, MLP- and mixed-intensive workload groups
// under the six fetch policies.
func Figure9and10(ctx context.Context, r *sim.Runner) PolicyComparison {
	return comparePolicies(ctx, r, core.DefaultConfig(2), bench.TwoThreadWorkloads(), policy.Paper(),
		"Figures 9 & 10 — STP and ANTT, two-thread workloads")
}

// Figure13and14 reproduces the four-thread policy comparison (Figures 13
// and 14). The paper reports one average over all 30 workloads; the class
// grouping (all-ILP / all-MLP / mixed) is also provided.
func Figure13and14(ctx context.Context, r *sim.Runner) PolicyComparison {
	return comparePolicies(ctx, r, core.DefaultConfig(4), bench.FourThreadWorkloads(), policy.Paper(),
		"Figures 13 & 14 — STP and ANTT, four-thread workloads")
}

// String renders the group-averaged STP and ANTT tables.
func (pc PolicyComparison) String() string {
	tbl := Table{
		Title:  pc.Title,
		Header: []string{"group", "metric"},
	}
	tbl.Header = append(tbl.Header, pc.Policies...)
	for _, g := range pc.Groups {
		stp := []string{g.String(), "STP"}
		antt := []string{g.String(), "ANTT"}
		for _, s := range pc.ByGroup[g] {
			stp = append(stp, f3(s.STP))
			antt = append(antt, f3(s.ANTT))
		}
		tbl.AddRow(stp...)
		tbl.AddRow(antt...)
	}
	tbl.Notes = append(tbl.Notes,
		"STP averaged with the harmonic mean, ANTT with the arithmetic mean (John 2006)",
		"STP higher is better; ANTT lower is better")
	return tbl.String()
}

// GroupPolicy returns the aggregated stats for one class and policy name.
func (pc PolicyComparison) GroupPolicy(class bench.WorkloadClass, name string) (GroupStats, bool) {
	for _, s := range pc.ByGroup[class] {
		if s.Policy == name {
			return s, true
		}
	}
	return GroupStats{}, false
}

// IPCStacks renders Figures 11 and 12: per-thread IPC under every policy for
// the workloads of one class (MLP-intensive for Figure 11, mixed for
// Figure 12, where thread 0 is the MLP-intensive thread).
func (pc PolicyComparison) IPCStacks(class bench.WorkloadClass) string {
	tbl := Table{
		Title:  fmt.Sprintf("Figures 11 & 12 — per-thread IPC, %s two-thread workloads", class),
		Header: []string{"workload", "thread"},
	}
	tbl.Header = append(tbl.Header, pc.Policies...)
	np := len(pc.Policies)
	for wi := 0; wi*np < len(pc.Workloads); wi++ {
		w := pc.Workloads[wi*np].Workload
		if w.Class != class {
			continue
		}
		for t, b := range w.Benchmarks {
			row := []string{w.Name(), fmt.Sprintf("%d:%s", t, b)}
			for ki := range pc.Policies {
				row = append(row, f3(pc.Workloads[wi*np+ki].Result.IPC[t]))
			}
			tbl.AddRow(row...)
		}
	}
	return tbl.String()
}
