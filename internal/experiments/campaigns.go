package experiments

import (
	"context"
	"fmt"

	"smtmlp"
	"smtmlp/internal/bench"
	"smtmlp/internal/campaign"
	"smtmlp/internal/metrics"
	"smtmlp/internal/store"
)

// PolicySweepSpec expresses the paper's main policy x workload comparison —
// Figures 9/10 for two threads (Table II), Figures 13/14 for four threads
// (Table III) — as a declarative campaign spec: the same grid
// comparePolicies hand-rolls, but persistent, deduplicated and resumable
// when run through campaign.Run.
func PolicySweepSpec(threads int, instructions, warmup uint64) (campaign.Spec, error) {
	var table string
	switch threads {
	case 2:
		table = "two_thread"
	case 4:
		table = "four_thread"
	default:
		return campaign.Spec{}, fmt.Errorf("experiments: no workload table for %d threads", threads)
	}
	var policies []string
	for _, p := range smtmlp.Policies() {
		policies = append(policies, p.String())
	}
	return campaign.Spec{
		Name:         fmt.Sprintf("policy-sweep-%dt", threads),
		Instructions: instructions,
		Warmup:       warmup,
		Policies:     policies,
		Workloads:    campaign.WorkloadSpec{Tables: []string{table}},
	}, nil
}

// PolicyComparisonCampaign runs the Figure 9/10 (threads=2) or Figure 13/14
// (threads=4) comparison through the campaign subsystem: cells already in
// the store are skipped, new cells are persisted, and an interrupted run
// resumes on the next invocation. The aggregation matches comparePolicies
// (harmonic-mean STP, arithmetic-mean ANTT per workload class). A canceled
// run returns the partial comparison over whatever the store holds, along
// with the cancellation error.
func PolicyComparisonCampaign(ctx context.Context, st *store.Store, threads int,
	instructions, warmup uint64, parallelism int) (PolicyComparison, campaign.Summary, error) {
	spec, err := PolicySweepSpec(threads, instructions, warmup)
	if err != nil {
		return PolicyComparison{}, campaign.Summary{}, err
	}
	sum, runErr := campaign.Run(ctx, st, spec, campaign.Options{Parallelism: parallelism})

	pc, err := policyComparisonFromStore(st, spec, threads)
	if err != nil {
		return PolicyComparison{}, sum, err
	}
	return pc, sum, runErr
}

// policyComparisonFromStore aggregates the spec's persisted cells into the
// PolicyComparison shape.
func policyComparisonFromStore(st *store.Store, spec campaign.Spec, threads int) (PolicyComparison, error) {
	reqs, fps, err := spec.Requests()
	if err != nil {
		return PolicyComparison{}, err
	}
	title := "Figures 9 & 10 — STP and ANTT, two-thread workloads (campaign store)"
	if threads == 4 {
		title = "Figures 13 & 14 — STP and ANTT, four-thread workloads (campaign store)"
	}
	pc := PolicyComparison{
		Title:    title,
		Policies: append([]string(nil), spec.Policies...),
		ByGroup:  make(map[bench.WorkloadClass][]GroupStats),
	}

	type cell struct{ stps, antts []float64 }
	cells := make(map[bench.WorkloadClass]map[string]*cell)
	present := make(map[bench.WorkloadClass]bool)
	for i, req := range reqs {
		rec, ok := st.Get(fps[i])
		if !ok {
			continue // not yet simulated (interrupted campaign)
		}
		class := req.Workload.Class
		present[class] = true
		if cells[class] == nil {
			cells[class] = make(map[string]*cell)
		}
		c := cells[class][rec.Result.Policy]
		if c == nil {
			c = &cell{}
			cells[class][rec.Result.Policy] = c
		}
		c.stps = append(c.stps, rec.Result.STP)
		c.antts = append(c.antts, rec.Result.ANTT)
	}
	for _, class := range []bench.WorkloadClass{bench.ILPWorkload, bench.MLPWorkload, bench.MixedWorkload} {
		if !present[class] {
			continue
		}
		pc.Groups = append(pc.Groups, class)
		for _, name := range pc.Policies {
			c := cells[class][name]
			if c == nil {
				continue
			}
			pc.ByGroup[class] = append(pc.ByGroup[class], GroupStats{
				Policy: name,
				STP:    metrics.HarmonicMean(c.stps),
				ANTT:   metrics.ArithmeticMean(c.antts),
			})
		}
	}
	return pc, nil
}
