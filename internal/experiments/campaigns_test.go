package experiments

import (
	"context"
	"reflect"
	"testing"

	"smtmlp/internal/bench"
	"smtmlp/internal/core"
	"smtmlp/internal/policy"
	"smtmlp/internal/sim"
	"smtmlp/internal/store"
)

// TestPolicyComparisonCampaignMatchesDirect pins the experiments port onto
// the campaign subsystem: the store-backed Figure 9/10 comparison must
// aggregate to exactly the numbers the direct batch path computes (the
// simulator is deterministic and both use the paper's averaging rules), and
// a second invocation must come entirely from the store.
func TestPolicyComparisonCampaignMatchesDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full Table II policy grid twice; skipped in -short")
	}
	const instructions, warmup = 4_000, 1_000
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	pc, sum, err := PolicyComparisonCampaign(context.Background(), st, 2, instructions, warmup, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total != 36*6 || sum.Executed != sum.Total || sum.Failed != 0 {
		t.Fatalf("campaign summary %+v", sum)
	}

	r := sim.NewRunner(sim.Params{Instructions: instructions, Warmup: warmup})
	direct := comparePolicies(context.Background(), r, core.DefaultConfig(2),
		bench.TwoThreadWorkloads(), policy.Paper(), pc.Title)
	if !reflect.DeepEqual(pc.ByGroup, direct.ByGroup) {
		t.Fatalf("campaign aggregation diverges from direct path:\ncampaign: %+v\ndirect:   %+v",
			pc.ByGroup, direct.ByGroup)
	}
	if len(pc.Groups) != 3 || len(pc.Policies) != 6 {
		t.Fatalf("groups=%d policies=%d", len(pc.Groups), len(pc.Policies))
	}

	// Second invocation: pure store reads, identical aggregation.
	pc2, sum2, err := PolicyComparisonCampaign(context.Background(), st, 2, instructions, warmup, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Executed != 0 || sum2.Skipped != sum.Total {
		t.Fatalf("re-run summary %+v", sum2)
	}
	if !reflect.DeepEqual(pc.ByGroup, pc2.ByGroup) {
		t.Fatal("store-backed re-aggregation diverged")
	}
}

func TestPolicySweepSpecValidation(t *testing.T) {
	if _, err := PolicySweepSpec(3, 1000, 0); err == nil {
		t.Fatal("3-thread sweep spec accepted (no table exists)")
	}
	spec, err := PolicySweepSpec(4, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	reqs, _, err := spec.Requests()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 30*6 {
		t.Fatalf("four-thread sweep has %d cells, want 180", len(reqs))
	}
	if reqs[0].Config.Threads != 4 {
		t.Fatal("four-thread sweep built a non-4-thread config")
	}
}
