package experiments

import (
	"context"

	"smtmlp/internal/bench"
	"smtmlp/internal/core"
	"smtmlp/internal/metrics"
	"smtmlp/internal/policy"
	"smtmlp/internal/sim"
)

// Figure20and21 reproduces the alternative MLP-aware fetch policies study
// (Section 6.5): policies (a)-(e) of Figure 19 over the three two-thread
// workload groups, reported as STP (Figure 20) and ANTT (Figure 21).
func Figure20and21(ctx context.Context, r *sim.Runner) PolicyComparison {
	return comparePolicies(ctx, r, core.DefaultConfig(2), bench.TwoThreadWorkloads(), policy.Alternatives(),
		"Figures 20 & 21 — alternative MLP-aware fetch policies (a=flush, b=mlpflush, c=binflush, d=mlpflush-rs, e=binflush-rs)")
}

// PartitioningRow aggregates one resource-management scheme over one
// workload class.
type PartitioningRow struct {
	Scheme string
	Class  bench.WorkloadClass
	STP    float64
	ANTT   float64
}

// PartitioningResult is the Figure 22/23 comparison of the MLP-aware flush
// policy against static partitioning and DCRA, for two- and four-thread
// workloads.
type PartitioningResult struct {
	TwoThread  []PartitioningRow
	FourThread []PartitioningRow
}

// partitionSchemes defines the three contenders of Figures 22 and 23.
func partitionSchemes() []struct {
	name    string
	kind    policy.Kind
	limiter core.Limiter
} {
	return []struct {
		name    string
		kind    policy.Kind
		limiter core.Limiter
	}{
		{"mlpflush", policy.MLPFlush, nil},
		{"static", policy.ICount, policy.StaticPartition{}},
		{"dcra", policy.ICount, policy.DCRA{}},
	}
}

// Figure22and23 runs the partitioning comparison.
func Figure22and23(ctx context.Context, r *sim.Runner) PartitioningResult {
	var out PartitioningResult
	out.TwoThread = runPartitioning(ctx, r, core.DefaultConfig(2), bench.TwoThreadWorkloads())
	out.FourThread = runPartitioning(ctx, r, core.DefaultConfig(4), bench.FourThreadWorkloads())
	return out
}

func runPartitioning(ctx context.Context, r *sim.Runner, cfg core.Config, workloads []bench.Workload) []PartitioningRow {
	schemes := partitionSchemes()
	// Submit scheme-major so the pool's first wave spans distinct
	// workloads (see comparePolicies); results stay workload-major:
	// results[wi*len(schemes)+si].
	reqs := make([]sim.BatchRequest, 0, len(workloads)*len(schemes))
	pos := make([]int, 0, len(workloads)*len(schemes))
	for si, s := range schemes {
		for wi, w := range workloads {
			reqs = append(reqs, sim.BatchRequest{Config: cfg, Workload: w, Kind: s.kind, Limiter: s.limiter})
			pos = append(pos, wi*len(schemes)+si)
		}
	}
	results, finished := collectBatch(ctx, r, reqs, pos)

	var rows []PartitioningRow
	for _, class := range []bench.WorkloadClass{bench.ILPWorkload, bench.MLPWorkload, bench.MixedWorkload} {
		if len(bench.WorkloadsByClass(workloads, class)) == 0 {
			continue
		}
		for si, s := range schemes {
			var stps, antts []float64
			for wi, w := range workloads {
				if w.Class != class || !finished[wi*len(schemes)+si] {
					continue
				}
				res := results[wi*len(schemes)+si]
				stps = append(stps, res.STP)
				antts = append(antts, res.ANTT)
			}
			rows = append(rows, PartitioningRow{
				Scheme: s.name,
				Class:  class,
				STP:    metrics.HarmonicMean(stps),
				ANTT:   metrics.ArithmeticMean(antts),
			})
		}
	}
	return rows
}

// String renders Figures 22 and 23.
func (p PartitioningResult) String() string {
	render := func(title string, rows []PartitioningRow) string {
		tbl := Table{
			Title:  title,
			Header: []string{"group", "scheme", "STP", "ANTT"},
		}
		for _, r := range rows {
			tbl.AddRow(r.Class.String(), r.Scheme, f3(r.STP), f3(r.ANTT))
		}
		return tbl.String()
	}
	return render("Figures 22 & 23 — MLP-aware flush vs static partitioning vs DCRA (two-thread)", p.TwoThread) +
		"\n" + render("Figures 22 & 23 — MLP-aware flush vs static partitioning vs DCRA (four-thread)", p.FourThread)
}
