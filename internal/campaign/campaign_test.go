package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"smtmlp"
	"smtmlp/internal/bench"
	"smtmlp/internal/store"
)

// tinySpec is a fast 2x3x2 = 12-cell campaign (two config points, three
// workloads, two policies) at a few-millisecond budget per cell.
func tinySpec() Spec {
	return Spec{
		Name:         "tiny",
		Instructions: 5_000,
		Warmup:       1_000,
		Policies:     []string{"icount", "mlpflush"},
		Workloads: WorkloadSpec{
			Mixes: [][]string{{"mcf", "galgel"}, {"swim", "twolf"}, {"vortex", "parser"}},
		},
		Grid: Grid{MemLatencies: []int64{200, 500}},
	}
}

func TestSpecExpansionDeterministic(t *testing.T) {
	spec := tinySpec()
	r1, f1, err := spec.Requests()
	if err != nil {
		t.Fatal(err)
	}
	r2, f2, err := spec.Requests()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) || !reflect.DeepEqual(f1, f2) {
		t.Fatal("expansion not deterministic")
	}
	if len(r1) != 12 {
		t.Fatalf("expanded %d requests, want 12", len(r1))
	}
	// Policy-major within a grid point, grid points in declared order.
	if r1[0].Tag != "mem=200/mcf-galgel/icount" {
		t.Fatalf("first tag %q", r1[0].Tag)
	}
	if r1[3].Tag != "mem=200/mcf-galgel/mlpflush" {
		t.Fatalf("fourth tag %q (want policy-major order)", r1[3].Tag)
	}
	if r1[6].Tag != "mem=500/mcf-galgel/icount" {
		t.Fatalf("seventh tag %q", r1[6].Tag)
	}
	// The spec round-trips through JSON (it is the CLI/HTTP wire format).
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	_, f3, err := back.Requests()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f1, f3) {
		t.Fatal("JSON round-trip changed the expansion")
	}
}

func TestSpecDefaultsAndTables(t *testing.T) {
	spec := Spec{Workloads: WorkloadSpec{Tables: []string{"two_thread"}}}
	reqs, _, err := spec.Requests()
	if err != nil {
		t.Fatal(err)
	}
	// 36 Table II workloads x the paper's six policies on one point.
	if len(reqs) != 36*6 {
		t.Fatalf("expanded %d requests, want 216", len(reqs))
	}
	instr, warm := spec.Params()
	if instr != 300_000 || warm != 75_000 {
		t.Fatalf("default params %d/%d", instr, warm)
	}
	if reqs[0].Config.Threads != 2 {
		t.Fatal("table workloads must get matching thread counts")
	}
}

func TestSpecValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want error
	}{
		{"unknown policy",
			Spec{Policies: []string{"nope"}, Workloads: WorkloadSpec{Mixes: [][]string{{"mcf", "swim"}}}},
			smtmlp.ErrUnknownPolicy},
		{"unknown benchmark",
			Spec{Workloads: WorkloadSpec{Mixes: [][]string{{"mcf", "nope"}}}},
			smtmlp.ErrUnknownBenchmark},
		{"thread mismatch",
			Spec{Workloads: WorkloadSpec{Threads: 4, Mixes: [][]string{{"mcf", "swim"}}}},
			smtmlp.ErrWorkloadMismatch},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); !errors.Is(err, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, err, c.want)
		}
	}
	if err := (Spec{Workloads: WorkloadSpec{Tables: []string{"five_thread"}}}).Validate(); err == nil {
		t.Error("unknown table accepted")
	}
	if err := (Spec{}).Validate(); err == nil {
		t.Error("empty workload selector accepted")
	}
	if err := (Spec{
		Workloads: WorkloadSpec{Mixes: [][]string{{"mcf", "swim"}}},
		Grid:      Grid{ROBSizes: []int{4}},
	}).Validate(); err == nil {
		t.Error("absurd rob size accepted")
	}
	// A hostile generated count must fail fast, not spin the expander.
	if err := (Spec{
		Workloads: WorkloadSpec{Generated: &Generated{Count: 1_000_000_000}},
	}).Validate(); err == nil {
		t.Error("absurd generated count accepted")
	}
}

func TestGeneratedWorkloads(t *testing.T) {
	gen := func(seed uint64, class string, threads int) []smtmlp.Workload {
		t.Helper()
		spec := Spec{Workloads: WorkloadSpec{
			Generated: &Generated{Count: 8, Seed: seed, Class: class, Threads: threads},
		}}
		ws, err := spec.workloads()
		if err != nil {
			t.Fatal(err)
		}
		return ws
	}

	a := gen(7, "mixed", 4)
	b := gen(7, "mixed", 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different mixes")
	}
	c := gen(8, "mixed", 4)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical mixes")
	}
	seen := map[string]bool{}
	for _, w := range a {
		if len(w.Benchmarks) != 4 {
			t.Fatalf("mix %s has %d benchmarks", w.Name(), len(w.Benchmarks))
		}
		if w.Class != bench.MixedWorkload || w.MLPCount == 0 || w.MLPCount == 4 {
			t.Fatalf("mix %s is not mixed (class=%v mlp=%d)", w.Name(), w.Class, w.MLPCount)
		}
		if seen[w.Name()] {
			t.Fatalf("duplicate generated mix %s", w.Name())
		}
		seen[w.Name()] = true
		distinct := map[string]bool{}
		for _, name := range w.Benchmarks {
			if distinct[name] {
				t.Fatalf("mix %s repeats %s", w.Name(), name)
			}
			distinct[name] = true
		}
	}
	for _, w := range gen(3, "mlp", 2) {
		if w.Class != bench.MLPWorkload {
			t.Fatalf("mlp-class mix %s has class %v", w.Name(), w.Class)
		}
	}
	for _, w := range gen(3, "ilp", 2) {
		if w.Class != bench.ILPWorkload {
			t.Fatalf("ilp-class mix %s has class %v", w.Name(), w.Class)
		}
	}
}

// storeBytes reads both store files for byte-level comparisons.
func storeBytes(t *testing.T, dir string) (results, refs []byte) {
	t.Helper()
	results, err := os.ReadFile(filepath.Join(dir, "results.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	refs, err = os.ReadFile(filepath.Join(dir, "refs.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	return results, refs
}

func TestCampaignRunAndRerunIsIdempotent(t *testing.T) {
	spec := tinySpec()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	var last Progress
	sum, err := Run(context.Background(), st, spec, Options{Progress: func(p Progress) { last = p }})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total != 12 || sum.Executed != 12 || sum.Skipped != 0 || sum.Failed != 0 {
		t.Fatalf("cold summary %+v", sum)
	}
	if last.Executed != 12 || last.Total != 12 {
		t.Fatalf("final progress %+v", last)
	}
	if st.Len() != 12 {
		t.Fatalf("store holds %d results", st.Len())
	}
	if sum.RefsSaved == 0 {
		t.Fatal("no references persisted")
	}

	// Re-running the identical spec executes nothing and changes no bytes.
	before, beforeRefs := storeBytes(t, dir)
	sum2, err := Run(context.Background(), st, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Executed != 0 || sum2.Skipped != 12 {
		t.Fatalf("rerun summary %+v", sum2)
	}
	after, afterRefs := storeBytes(t, dir)
	if !bytes.Equal(before, after) || !bytes.Equal(beforeRefs, afterRefs) {
		t.Fatal("idempotent rerun changed store bytes")
	}
}

// TestCampaignResumeByteIdentical is the resumability proof: a campaign
// canceled mid-flight and then resumed leaves the store byte-identical to an
// uninterrupted cold run, with the resumed run executing strictly fewer
// cells than the grid.
func TestCampaignResumeByteIdentical(t *testing.T) {
	spec := tinySpec()

	// Uninterrupted cold run -> reference bytes.
	coldDir := t.TempDir()
	coldStore, err := store.Open(coldDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), coldStore, spec, Options{Parallelism: 2}); err != nil {
		t.Fatal(err)
	}
	coldStore.Close()
	coldResults, coldRefs := storeBytes(t, coldDir)

	// Interrupted run: cancel after the third committed cell.
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	sum, err := Run(ctx, st, spec, Options{
		Parallelism: 2,
		Progress: func(p Progress) {
			if p.Executed >= 3 {
				cancel()
			}
		},
	})
	cancel()
	if !errors.Is(err, smtmlp.ErrCanceled) {
		t.Fatalf("interrupted run returned %v, want ErrCanceled", err)
	}
	if sum.Executed < 3 || sum.Executed >= 12 {
		t.Fatalf("interrupted run executed %d of 12; the test needs a genuine mid-flight cancel", sum.Executed)
	}
	if st.Len() != sum.Executed {
		t.Fatalf("store holds %d results, summary says %d", st.Len(), sum.Executed)
	}
	st.Close()

	// Resume on a fresh open (a restart): executes strictly fewer cells
	// than the grid and finishes it.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sum2, err := Run(context.Background(), st2, spec, Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Skipped != sum.Executed || sum2.Executed != 12-sum.Executed {
		t.Fatalf("resume summary %+v after interrupted %+v", sum2, sum)
	}
	if sum2.Executed >= sum2.Total {
		t.Fatal("resumed run re-executed the whole grid")
	}
	// The interrupted run persisted its references; the resume must
	// warm-start from them rather than re-simulate.
	if sum2.RefsSeeded == 0 {
		t.Fatal("resume did not warm-start from persisted references")
	}
	st2.Close()

	gotResults, gotRefs := storeBytes(t, dir)
	if !bytes.Equal(coldResults, gotResults) {
		t.Fatalf("resumed results.ndjson differs from cold run (%d vs %d bytes)", len(gotResults), len(coldResults))
	}
	if !bytes.Equal(coldRefs, gotRefs) {
		t.Fatalf("resumed refs.ndjson differs from cold run (%d vs %d bytes)", len(gotRefs), len(coldRefs))
	}
}

// TestCampaignWarmStartSkipsReferences: extending a finished campaign with a
// new policy re-simulates no single-threaded references at all.
func TestCampaignWarmStartSkipsReferences(t *testing.T) {
	spec := tinySpec()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sum, err := Run(context.Background(), st, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.CacheMisses == 0 {
		t.Fatal("cold run computed no references?")
	}

	wider := spec
	wider.Policies = []string{"icount", "mlpflush", "flush"}
	sum2, err := Run(context.Background(), st, wider, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Skipped != 12 || sum2.Executed != 6 {
		t.Fatalf("extended summary %+v", sum2)
	}
	if sum2.CacheMisses != 0 {
		t.Fatalf("extended run re-simulated %d references despite the warm-start", sum2.CacheMisses)
	}
	if sum2.RefsSeeded == 0 {
		t.Fatal("no references seeded")
	}
}

func TestSummarize(t *testing.T) {
	spec := tinySpec()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := Run(context.Background(), st, spec, Options{}); err != nil {
		t.Fatal(err)
	}
	rows, err := Summarize(st, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 config points x 2 policies
		t.Fatalf("%d summary rows, want 4", len(rows))
	}
	if rows[0].Config != "mem=200" || rows[0].Policy != "icount" {
		t.Fatalf("first row %+v", rows[0])
	}
	for _, r := range rows {
		if r.Workloads != 3 || r.STP <= 0 || r.ANTT < 1 {
			t.Fatalf("bad row %+v", r)
		}
	}
}

// TestMissingCellsAndPartition pins the distributed-execution work list: the
// diff against the store preserves expansion order and indices, and
// Partition chunks it contiguously without reordering.
func TestMissingCellsAndPartition(t *testing.T) {
	spec := tinySpec()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	reqs, fps, err := spec.Requests()
	if err != nil {
		t.Fatal(err)
	}
	cells, total, err := MissingCells(st, spec)
	if err != nil || total != len(reqs) || len(cells) != len(reqs) {
		t.Fatalf("empty-store diff: %d cells of %d total (err %v), want all %d",
			len(cells), total, err, len(reqs))
	}
	for i, c := range cells {
		if c.Index != i || c.Fingerprint != fps[i] || c.Request.Tag != reqs[i].Tag {
			t.Fatalf("cell %d: %+v does not match expansion", i, c)
		}
	}

	// Persist a scattered subset; the diff must be exactly the complement,
	// still in expansion order with original indices.
	for _, i := range []int{0, 3, 4, 9} {
		if _, err := st.Append(store.Record{Fingerprint: fps[i], Request: reqs[i]}); err != nil {
			t.Fatal(err)
		}
	}
	cells, total, err = MissingCells(st, spec)
	if err != nil || total != len(reqs) || len(cells) != len(reqs)-4 {
		t.Fatalf("partial diff: %d cells (err %v), want %d", len(cells), err, len(reqs)-4)
	}
	prev := -1
	for _, c := range cells {
		if c.Index <= prev || c.Index == 0 || c.Index == 3 || c.Index == 4 || c.Index == 9 {
			t.Fatalf("diff returned persisted or out-of-order cell %d", c.Index)
		}
		prev = c.Index
	}

	// Partition: contiguous chunks, order preserved, sizes at most 3.
	chunks := Partition(cells, 3)
	if len(chunks) != (len(cells)+2)/3 {
		t.Fatalf("partition into %d chunks of %d cells", len(chunks), len(cells))
	}
	flat := 0
	for ci, chunk := range chunks {
		if len(chunk) == 0 || len(chunk) > 3 {
			t.Fatalf("chunk %d has %d cells", ci, len(chunk))
		}
		for _, c := range chunk {
			if c.Index != cells[flat].Index {
				t.Fatalf("partition reordered cell %d", flat)
			}
			flat++
		}
	}
	if flat != len(cells) {
		t.Fatalf("partition covered %d of %d cells", flat, len(cells))
	}
	if got := Partition(nil, 3); got != nil {
		t.Fatalf("Partition(nil) = %v", got)
	}
	if got := Partition(cells, 0); len(got) != 1 || len(got[0]) != len(cells) {
		t.Fatalf("Partition(size=0) = %d chunks", len(got))
	}
}
