// Package campaign turns declarative sweep specifications into persistent,
// resumable simulation campaigns: a Spec (policies x workloads x a grid of
// configuration variants) expands deterministically into smtmlp.Requests,
// is diffed against a result store, and only the missing cells execute —
// through one smtmlp.Engine batch — with every finished result committed to
// the store in submission order. Interrupt a campaign at any point and run
// it again: it picks up exactly where it left off, and the final store is
// byte-identical to an uninterrupted run.
package campaign

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"smtmlp"
	"smtmlp/internal/bench"
	"smtmlp/internal/rng"
	"smtmlp/internal/sim"
)

// Spec declares a sweep: which policies, over which workloads, across which
// configuration grid, at what measurement budget. The zero value of every
// field selects a sensible default, so the minimal useful spec is just a
// workload selector. Specs are plain JSON (this is the wire format of
// cmd/smtsweep specs and of POST /v1/campaigns).
type Spec struct {
	// Name labels the campaign in summaries and the service's campaign list.
	Name string `json:"name,omitempty"`

	// Instructions is the per-thread measurement budget (0 = the engine
	// default of 300K); Warmup executes before statistics reset (0 =
	// Instructions/4). Both are part of every request's fingerprint: the
	// same grid at two budgets is two disjoint sets of results.
	Instructions uint64 `json:"instructions,omitempty"`
	Warmup       uint64 `json:"warmup,omitempty"`

	// Policies lists fetch policies by short name; empty means the paper's
	// six main-evaluation policies.
	Policies []string `json:"policies,omitempty"`

	// Workloads selects the benchmark mixes.
	Workloads WorkloadSpec `json:"workloads"`

	// Grid declares configuration dimensions; empty means the Table IV
	// baseline only.
	Grid Grid `json:"grid,omitempty"`
}

// WorkloadSpec selects benchmark mixes from the paper's tables, from
// explicit lists, and/or from a seeded generator over the benchmark catalog.
// The selections are concatenated in the order of the fields below;
// duplicate mixes are fine (expansion deduplicates by fingerprint).
type WorkloadSpec struct {
	// Tables names the paper's workload tables: "two_thread" (Table II,
	// 36 mixes) and/or "four_thread" (Table III, 30 mixes).
	Tables []string `json:"tables,omitempty"`

	// Mixes lists explicit benchmark mixes. When Threads is set, every mix
	// must have exactly that many benchmarks.
	Mixes [][]string `json:"mixes,omitempty"`

	// Threads is the required thread count for explicit mixes (0 = accept
	// any size) and the default mix size for the generator.
	Threads int `json:"threads,omitempty"`

	// Generated draws additional mixes from the benchmark catalog, beyond
	// the paper's fixed tables.
	Generated *Generated `json:"generated,omitempty"`
}

// Generated is a seeded workload generator: Count distinct mixes of Threads
// distinct benchmarks each, drawn deterministically from the catalog. The
// same (seed, count, threads, class) always yields the same mixes, so
// generated campaigns fingerprint and resume exactly like table-based ones.
type Generated struct {
	Count int `json:"count"`
	// Threads is the mix size; 0 falls back to WorkloadSpec.Threads, then 2.
	Threads int `json:"threads,omitempty"`
	// Seed selects the deterministic stream (0 is a valid seed).
	Seed uint64 `json:"seed,omitempty"`
	// Class constrains mixes by the paper's benchmark classification:
	// "ilp" (all ILP-intensive), "mlp" (all MLP-intensive), "mixed" (at
	// least one of each), or "" (unconstrained).
	Class string `json:"class,omitempty"`
}

// Grid declares configuration dimensions; the cross-product of all non-empty
// dimensions is the set of configuration points. An empty dimension
// contributes the baseline value.
type Grid struct {
	// ROBSizes rescales the out-of-order window (the Figure 17/18 sweep):
	// LSQ, issue queues and rename registers scale proportionally.
	ROBSizes []int `json:"rob_sizes,omitempty"`
	// MemLatencies overrides main-memory latency (the Figure 15/16 sweep).
	MemLatencies []int64 `json:"mem_latencies,omitempty"`
	// Prefetch toggles the stream-buffer prefetcher.
	Prefetch []bool `json:"prefetch,omitempty"`
}

// Params resolves the spec's measurement budget against the engine defaults:
// the instructions and *effective* warm-up that parameterize every
// fingerprint. There is one source of truth for the defaulting rule
// (sim.Params), shared with the Engine.
func (s Spec) Params() (instructions, warmup uint64) {
	p := sim.DefaultParams()
	if s.Instructions > 0 {
		p.Instructions = s.Instructions
	}
	p.Warmup = s.Warmup
	return p.Instructions, p.EffectiveWarmup()
}

// policies resolves the policy set (default: the paper's six).
func (s Spec) policies() ([]smtmlp.Policy, error) {
	if len(s.Policies) == 0 {
		return smtmlp.Policies(), nil
	}
	out := make([]smtmlp.Policy, len(s.Policies))
	for i, name := range s.Policies {
		p, err := smtmlp.ParsePolicy(name)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// workloads resolves the workload selector into a concrete mix list.
func (s Spec) workloads() ([]smtmlp.Workload, error) {
	var out []smtmlp.Workload
	for _, table := range s.Workloads.Tables {
		switch table {
		case "two_thread":
			out = append(out, smtmlp.TwoThreadWorkloads()...)
		case "four_thread":
			out = append(out, smtmlp.FourThreadWorkloads()...)
		default:
			return nil, fmt.Errorf(`campaign: unknown workload table %q (want "two_thread" or "four_thread")`, table)
		}
	}
	for _, names := range s.Workloads.Mixes {
		if len(names) == 0 {
			return nil, errors.New("campaign: empty workload mix")
		}
		if s.Workloads.Threads > 0 && len(names) != s.Workloads.Threads {
			return nil, fmt.Errorf("%w: mix %s has %d benchmarks, spec requires threads=%d",
				smtmlp.ErrWorkloadMismatch, strings.Join(names, "-"), len(names), s.Workloads.Threads)
		}
		out = append(out, classify(names))
	}
	if g := s.Workloads.Generated; g != nil {
		gen, err := s.generate(*g)
		if err != nil {
			return nil, err
		}
		out = append(out, gen...)
	}
	if len(out) == 0 {
		return nil, errors.New("campaign: spec selects no workloads")
	}
	for _, w := range out {
		for _, b := range w.Benchmarks {
			if _, err := bench.Get(b); err != nil {
				return nil, fmt.Errorf("%w: %q", smtmlp.ErrUnknownBenchmark, b)
			}
		}
	}
	return out, nil
}

// classify builds a Workload with the paper's class annotation derived from
// the catalog, so generated and explicit mixes aggregate by class exactly
// like the table mixes do.
func classify(names []string) smtmlp.Workload {
	w := smtmlp.Workload{Benchmarks: names}
	for _, n := range names {
		if b, err := bench.Get(n); err == nil && b.PaperClass == bench.MLP {
			w.MLPCount++
		}
	}
	switch w.MLPCount {
	case 0:
		w.Class = bench.ILPWorkload
	case len(names):
		w.Class = bench.MLPWorkload
	default:
		w.Class = bench.MixedWorkload
	}
	return w
}

// maxGenerated bounds the generator: it caps both the sweep size a spec can
// demand and the attempt budget below (a count beyond the distinct-mix space
// exhausts attempts, so the cap is what keeps a hostile spec from spinning
// the expander — which the HTTP handler runs synchronously).
const maxGenerated = 10_000

// generate draws g.Count distinct mixes deterministically from the catalog.
func (s Spec) generate(g Generated) ([]smtmlp.Workload, error) {
	if g.Count <= 0 {
		return nil, fmt.Errorf("campaign: generated count %d must be positive", g.Count)
	}
	if g.Count > maxGenerated {
		return nil, fmt.Errorf("campaign: generated count %d exceeds the limit of %d", g.Count, maxGenerated)
	}
	threads := g.Threads
	if threads == 0 {
		threads = s.Workloads.Threads
	}
	if threads == 0 {
		threads = 2
	}
	if threads < 1 || threads > 8 {
		return nil, fmt.Errorf("campaign: generated threads %d outside [1, 8]", threads)
	}

	var ilp, mlp []string
	for _, b := range bench.All() {
		if b.PaperClass == bench.MLP {
			mlp = append(mlp, b.Model.Name)
		} else {
			ilp = append(ilp, b.Model.Name)
		}
	}
	var pool []string
	switch g.Class {
	case "":
		pool = append(append(pool, ilp...), mlp...)
	case "ilp":
		pool = ilp
	case "mlp":
		pool = mlp
	case "mixed":
		pool = append(append(pool, ilp...), mlp...)
		if threads < 2 {
			return nil, errors.New(`campaign: generated class "mixed" needs threads >= 2`)
		}
	default:
		return nil, fmt.Errorf(`campaign: unknown generated class %q (want "ilp", "mlp", "mixed" or "")`, g.Class)
	}
	sort.Strings(pool) // deterministic draw order, independent of catalog order
	if threads > len(pool) {
		return nil, fmt.Errorf("campaign: generated threads %d exceeds the %d candidate benchmarks", threads, len(pool))
	}

	src := rng.New(g.Seed ^ 0xca3fa16e) // decorrelate from the trace models' seed space
	seen := make(map[string]bool)
	var out []smtmlp.Workload
	for attempts := 0; len(out) < g.Count; attempts++ {
		if attempts > 100*g.Count+1000 {
			return nil, fmt.Errorf("campaign: could not generate %d distinct %q mixes of %d benchmarks", g.Count, g.Class, threads)
		}
		names := drawMix(src, pool, threads)
		w := classify(names)
		if g.Class == "mixed" && w.Class != bench.MixedWorkload {
			continue
		}
		if seen[w.Name()] {
			continue
		}
		seen[w.Name()] = true
		out = append(out, w)
	}
	return out, nil
}

// drawMix draws n distinct benchmarks (a partial Fisher-Yates shuffle).
func drawMix(src *rng.Source, pool []string, n int) []string {
	cand := make([]string, len(pool))
	copy(cand, pool)
	out := make([]string, n)
	for i := 0; i < n; i++ {
		j := i + src.Intn(len(cand)-i)
		cand[i], cand[j] = cand[j], cand[i]
		out[i] = cand[i]
	}
	return out
}

// point is one configuration point of the grid.
type point struct {
	label    string
	rob      int
	memlat   int64
	prefetch *bool
}

// points expands the grid into labelled configuration points, in declared
// order. The label ("base", "rob=512,mem=300", ...) prefixes request tags.
func (s Spec) points() ([]point, error) {
	robs := s.Grid.ROBSizes
	if len(robs) == 0 {
		robs = []int{0}
	}
	lats := s.Grid.MemLatencies
	if len(lats) == 0 {
		lats = []int64{0}
	}
	prefs := make([]*bool, 0, len(s.Grid.Prefetch))
	if len(s.Grid.Prefetch) == 0 {
		prefs = append(prefs, nil)
	}
	for i := range s.Grid.Prefetch {
		prefs = append(prefs, &s.Grid.Prefetch[i])
	}

	var out []point
	for _, rob := range robs {
		if rob != 0 && (rob < 16 || rob > 4096) {
			return nil, fmt.Errorf("campaign: rob size %d outside [16, 4096]", rob)
		}
		for _, lat := range lats {
			if lat < 0 || lat > 100_000 {
				return nil, fmt.Errorf("campaign: mem latency %d outside [0, 100000]", lat)
			}
			for _, pf := range prefs {
				var parts []string
				if rob != 0 {
					parts = append(parts, fmt.Sprintf("rob=%d", rob))
				}
				if lat != 0 {
					parts = append(parts, fmt.Sprintf("mem=%d", lat))
				}
				if pf != nil {
					if *pf {
						parts = append(parts, "pf=on")
					} else {
						parts = append(parts, "pf=off")
					}
				}
				label := strings.Join(parts, ",")
				if label == "" {
					label = "base"
				}
				out = append(out, point{label: label, rob: rob, memlat: lat, prefetch: pf})
			}
		}
	}
	return out, nil
}

// config materializes a configuration point for a workload of the given
// thread count, starting from the Table IV baseline.
func (p point) config(threads int) smtmlp.Config {
	cfg := smtmlp.DefaultConfig(threads)
	if p.rob != 0 {
		cfg = cfg.ScaleWindow(p.rob)
	}
	if p.memlat != 0 {
		cfg.Mem.MemLatency = p.memlat
	}
	if p.prefetch != nil {
		cfg.Mem.EnablePrefetch = *p.prefetch
	}
	return cfg
}

// Validate checks the spec without expanding it fully. Errors wrap the
// public typed errors where one applies (smtmlp.ErrUnknownPolicy,
// smtmlp.ErrUnknownBenchmark, smtmlp.ErrWorkloadMismatch).
func (s Spec) Validate() error {
	_, _, err := s.Requests()
	return err
}

// Requests expands the spec deterministically into the campaign's request
// list and the matching fingerprints (under the spec's resolved budget).
// Expansion order is: grid points in declared order; within a point,
// policy-major (all workloads under the first policy, then the second, ...)
// so a batch's first worker wave spans distinct workloads and warms the
// reference cache as broadly as possible. Requests are tagged
// "<point>/<workload>/<policy>". Cells that repeat an earlier fingerprint
// (e.g. a generated mix duplicating a table mix) are dropped, keeping the
// first occurrence, so the expansion is duplicate-free and stable.
func (s Spec) Requests() ([]smtmlp.Request, []string, error) {
	policies, err := s.policies()
	if err != nil {
		return nil, nil, err
	}
	workloads, err := s.workloads()
	if err != nil {
		return nil, nil, err
	}
	pts, err := s.points()
	if err != nil {
		return nil, nil, err
	}
	instructions, warmup := s.Params()

	var reqs []smtmlp.Request
	var fps []string
	seen := make(map[string]bool)
	for _, pt := range pts {
		for _, p := range policies {
			for _, w := range workloads {
				req := smtmlp.Request{
					Tag:      fmt.Sprintf("%s/%s/%s", pt.label, w.Name(), p),
					Config:   pt.config(len(w.Benchmarks)),
					Workload: w,
					Policy:   p,
				}
				fp := smtmlp.Fingerprint(req, instructions, warmup)
				if seen[fp] {
					continue
				}
				seen[fp] = true
				reqs = append(reqs, req)
				fps = append(fps, fp)
			}
		}
	}
	return reqs, fps, nil
}
