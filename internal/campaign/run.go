package campaign

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"strings"

	"smtmlp"
	"smtmlp/internal/metrics"
	"smtmlp/internal/obs"
	"smtmlp/internal/store"
)

// Cell is one unit of campaign work: a request, its content address, and its
// position in the spec's deterministic expansion. The index is what lets a
// distributed executor commit results in expansion order regardless of
// completion order, which is the store byte-determinism contract.
type Cell struct {
	// Index is the cell's position in Spec.Requests' expansion.
	Index int `json:"index"`
	// Fingerprint content-addresses the cell (smtmlp.Fingerprint under the
	// spec's resolved budget).
	Fingerprint string `json:"fp"`
	// Request is the simulation to run.
	Request smtmlp.Request `json:"request"`
}

// MissingCells expands the spec and diffs it against the store: it returns
// the cells not yet persisted, in expansion order, along with the total
// expansion size. This is the shared entry point of local execution (Run)
// and distributed execution (internal/fleet): both operate on exactly this
// work list, which is why their stores converge to the same bytes.
func MissingCells(st *store.Store, spec Spec) (missing []Cell, total int, err error) {
	reqs, fps, err := spec.Requests()
	if err != nil {
		return nil, 0, err
	}
	for i, fp := range fps {
		if st.Has(fp) {
			continue
		}
		missing = append(missing, Cell{Index: i, Fingerprint: fp, Request: reqs[i]})
	}
	return missing, len(reqs), nil
}

// Partition splits cells into contiguous chunks of at most size cells each,
// preserving expansion order (size <= 0 yields one chunk). Contiguity is
// deliberate: a chunk's results commit as one batch, so chunks that follow
// expansion order keep the merged store identical to serial execution.
func Partition(cells []Cell, size int) [][]Cell {
	if len(cells) == 0 {
		return nil
	}
	if size <= 0 {
		size = len(cells)
	}
	out := make([][]Cell, 0, (len(cells)+size-1)/size)
	for lo := 0; lo < len(cells); {
		chunk := Carve(cells, lo, size)
		out = append(out, chunk)
		lo += len(chunk)
	}
	return out
}

// Carve slices the next contiguous chunk of at most size cells starting at
// offset lo, clamped to the tail of cells. It is the single primitive behind
// both fixed-size partitioning and the fleet coordinator's adaptive sizing:
// however chunk sizes are chosen, carving contiguously from the expansion
// order keeps committed batches in expansion order and therefore the store
// byte-identical to serial execution. Returns nil when lo is past the end.
func Carve(cells []Cell, lo, size int) []Cell {
	if lo < 0 || lo >= len(cells) {
		return nil
	}
	if size <= 0 {
		size = len(cells) - lo
	}
	hi := lo + size
	if hi > len(cells) {
		hi = len(cells)
	}
	return cells[lo:hi:hi]
}

// Options tunes campaign execution.
type Options struct {
	// Cache shares an existing reference cache (e.g. a long-lived service
	// engine's) with the campaign's engine; nil uses a private cache. Either
	// way the cache is seeded from the store's persisted references before
	// execution, and new references are merged back afterwards.
	Cache *smtmlp.Cache
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Gate, when set, admits each cell at the engine-slot boundary (the
	// multi-tenant scheduler of a service hosting this campaign). Gating
	// reorders execution only; commits stay in submission order, so the
	// store bytes are identical with or without a gate.
	Gate smtmlp.SlotGate
	// Progress, when set, is invoked after every cell is accounted for
	// (persisted, skipped or failed). Calls are sequential.
	Progress func(Progress)
	// Logger receives structured campaign lifecycle logs (expansion size,
	// completion). Nil discards.
	Logger *slog.Logger
}

// Progress is a live campaign snapshot.
type Progress struct {
	// Total is the grid size; Skipped cells were already in the store.
	Total, Skipped int
	// Executed cells ran and were persisted this run; Failed cells ran and
	// failed deterministically (they are not persisted).
	Executed, Failed int
}

// Summary reports a finished (or interrupted) campaign run.
type Summary struct {
	Name string `json:"name,omitempty"`
	// Total = Skipped + Executed + Failed when the run completed; an
	// interrupted run accounts the rest as neither executed nor failed.
	Total    int `json:"total"`
	Skipped  int `json:"skipped"`
	Executed int `json:"executed"`
	Failed   int `json:"failed"`
	// RefsSeeded references were warm-started from the store; RefsSaved new
	// references were persisted back. CacheMisses counts reference
	// simulations actually run by this campaign (0 on a fully warm-started
	// store) — a delta, so a shared service cache's prior traffic does not
	// leak in.
	RefsSeeded  int    `json:"refs_seeded"`
	RefsSaved   int    `json:"refs_saved"`
	CacheMisses uint64 `json:"cache_misses"`
}

// Run executes the spec against the store: expand, diff, execute only the
// missing cells, and commit each finished result — in submission order — to
// the store. The engine is built from the spec's budget (so fingerprints
// and results always agree) and warm-started from the store's persisted
// single-threaded references.
//
// Cancellation is clean and resumable: on ctx cancellation the batch pool
// drains, everything already committed stays committed, references computed
// so far are persisted, and Run returns the partial Summary with an error
// matching smtmlp.ErrCanceled (and context.Canceled). Because results are
// committed strictly in submission order and the simulator is
// deterministic, re-running the same spec after any interruption yields a
// store byte-identical to an uninterrupted run.
func Run(ctx context.Context, st *store.Store, spec Spec, opts Options) (Summary, error) {
	sum := Summary{Name: spec.Name}
	// Diff against the store: only the missing cells execute. Because
	// results commit in submission order, the persisted set after an
	// interruption is a prefix of the (deduplicated) expansion with
	// deterministic failures removed — so the missing cells are exactly the
	// suffix, and the resumed appends continue where the interrupted run
	// stopped.
	log := opts.Logger
	if log == nil {
		log = obs.Discard()
	}
	cells, total, err := MissingCells(st, spec)
	if err != nil {
		return sum, err
	}
	sum.Total = total
	sum.Skipped = total - len(cells)
	log.Info("campaign start",
		"name", spec.Name, "total", total, "skipped", sum.Skipped, "missing", len(cells))

	instructions, warmup := spec.Params()
	eng := smtmlp.NewEngine(
		smtmlp.WithInstructions(instructions),
		smtmlp.WithWarmup(warmup),
		smtmlp.WithParallelism(opts.Parallelism),
		smtmlp.WithCache(opts.Cache),
		smtmlp.WithSlotGate(opts.Gate),
	)
	sum.RefsSeeded = eng.Cache().Seed(st.Refs())
	_, missesBefore, _ := eng.Cache().Stats()

	missing := make([]smtmlp.Request, len(cells))
	missingFP := make([]string, len(cells))
	for i, c := range cells {
		missing[i] = c.Request
		missingFP[i] = c.Fingerprint
	}
	report := func() {
		if opts.Progress != nil {
			opts.Progress(Progress{Total: sum.Total, Skipped: sum.Skipped,
				Executed: sum.Executed, Failed: sum.Failed})
		}
	}
	report()

	var runErr error
	if len(missing) > 0 {
		runErr = execute(ctx, eng, st, missing, missingFP, &sum, report)
	}

	// Persist the references computed so far — also on cancellation, so the
	// resumed run warm-starts from them.
	saved, mergeErr := st.MergeRefs(eng.Cache().Export())
	sum.RefsSaved = saved
	_, missesAfter, _ := eng.Cache().Stats()
	sum.CacheMisses = missesAfter - missesBefore
	if runErr == nil {
		runErr = mergeErr
	}
	if runErr != nil {
		log.Warn("campaign stopped",
			"name", spec.Name, "executed", sum.Executed, "failed", sum.Failed, "err", runErr)
	} else {
		log.Info("campaign finished",
			"name", spec.Name, "executed", sum.Executed, "failed", sum.Failed,
			"refs_saved", sum.RefsSaved)
	}
	return sum, runErr
}

// execute fans the missing cells over the engine's batch pool and commits
// results in submission order via a reorder buffer. A deterministic
// per-request failure is skipped (an uninterrupted run would skip it
// identically); a cancellation stops the commit cursor entirely, because
// cells behind the cursor must be re-executed for the store to stay a
// prefix of the expansion order.
func execute(ctx context.Context, eng *smtmlp.Engine, st *store.Store,
	missing []smtmlp.Request, missingFP []string, sum *Summary, report func()) error {
	// Own cancel handle: if persisting fails mid-campaign the batch must
	// stop too, or the pool would simulate the whole remaining grid into
	// results nobody commits.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	pending := make(map[int]smtmlp.BatchResult, len(missing))
	next := 0
	var canceled error
	ch := eng.RunBatch(ctx, missing)
	for br := range ch {
		if br.Err != nil && errors.Is(br.Err, smtmlp.ErrCanceled) {
			if canceled == nil {
				canceled = br.Err
			}
			continue
		}
		pending[br.Index] = br
		for {
			line, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if line.Err != nil {
				sum.Failed++
			} else {
				// A concurrent campaign may have raced us to this cell; the
				// deduplicating Append keeps the incumbent, and (the
				// simulator being deterministic) the result is identical
				// either way.
				if _, err := st.Append(store.Record{
					Fingerprint: missingFP[next],
					Request:     line.Request,
					Result:      line.Result,
				}); err != nil {
					// Stop the batch and drain it (cancellation makes the
					// remaining requests fail fast) so no worker outlives
					// the campaign simulating cells nobody will commit.
					cancel()
					for range ch {
					}
					return fmt.Errorf("campaign: persisting %s: %w", line.Request.Tag, err)
				}
				sum.Executed++
			}
			next++
			report()
		}
	}
	if canceled != nil {
		return canceled
	}
	return nil
}

// SummaryRow aggregates one (configuration point, policy) cell of a
// campaign across its workloads, using the paper's averaging rules
// (harmonic mean for STP, arithmetic mean for ANTT).
type SummaryRow struct {
	Config    string  `json:"config"`
	Policy    string  `json:"policy"`
	Workloads int     `json:"workloads"`
	STP       float64 `json:"stp"`
	ANTT      float64 `json:"antt"`
}

// Summarize aggregates the spec's persisted results from the store into one
// row per (configuration point, policy), in expansion order. Cells not yet
// in the store are simply absent from the averages, so a partially-run
// campaign summarizes over what exists.
func Summarize(st *store.Store, spec Spec) ([]SummaryRow, error) {
	reqs, fps, err := spec.Requests()
	if err != nil {
		return nil, err
	}
	type cell struct{ stps, antts []float64 }
	cells := make(map[string]*cell)
	var order []string
	for i, req := range reqs {
		rec, ok := st.Get(fps[i])
		if !ok {
			continue
		}
		label, _, _ := strings.Cut(req.Tag, "/")
		key := label + "\x00" + req.Policy.String()
		c := cells[key]
		if c == nil {
			c = &cell{}
			cells[key] = c
			order = append(order, key)
		}
		c.stps = append(c.stps, rec.Result.STP)
		c.antts = append(c.antts, rec.Result.ANTT)
	}
	rows := make([]SummaryRow, 0, len(order))
	for _, key := range order {
		c := cells[key]
		label, policy, _ := strings.Cut(key, "\x00")
		rows = append(rows, SummaryRow{
			Config:    label,
			Policy:    policy,
			Workloads: len(c.stps),
			STP:       metrics.HarmonicMean(c.stps),
			ANTT:      metrics.ArithmeticMean(c.antts),
		})
	}
	return rows, nil
}

// WriteSummaryTable renders the per-(config, policy) aggregate rows as an
// aligned text table — the shared output format of cmd/smtsweep and
// cmd/smtfleet.
func WriteSummaryTable(out io.Writer, rows []SummaryRow) {
	if len(rows) == 0 {
		fmt.Fprintln(out, "no results to summarize")
		return
	}
	wc, wp := len("config"), len("policy")
	for _, r := range rows {
		if len(r.Config) > wc {
			wc = len(r.Config)
		}
		if len(r.Policy) > wp {
			wp = len(r.Policy)
		}
	}
	fmt.Fprintf(out, "%-*s  %-*s  %9s  %9s  %9s\n", wc, "config", wp, "policy", "workloads", "STP", "ANTT")
	for _, r := range rows {
		fmt.Fprintf(out, "%-*s  %-*s  %9d  %9.3f  %9.3f\n", wc, r.Config, wp, r.Policy, r.Workloads, r.STP, r.ANTT)
	}
	fmt.Fprintln(out, "note: STP harmonic-mean (higher better), ANTT arithmetic-mean (lower better), per the paper")
}
