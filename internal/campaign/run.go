package campaign

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"smtmlp"
	"smtmlp/internal/metrics"
	"smtmlp/internal/store"
)

// Options tunes campaign execution.
type Options struct {
	// Cache shares an existing reference cache (e.g. a long-lived service
	// engine's) with the campaign's engine; nil uses a private cache. Either
	// way the cache is seeded from the store's persisted references before
	// execution, and new references are merged back afterwards.
	Cache *smtmlp.Cache
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Progress, when set, is invoked after every cell is accounted for
	// (persisted, skipped or failed). Calls are sequential.
	Progress func(Progress)
}

// Progress is a live campaign snapshot.
type Progress struct {
	// Total is the grid size; Skipped cells were already in the store.
	Total, Skipped int
	// Executed cells ran and were persisted this run; Failed cells ran and
	// failed deterministically (they are not persisted).
	Executed, Failed int
}

// Summary reports a finished (or interrupted) campaign run.
type Summary struct {
	Name string `json:"name,omitempty"`
	// Total = Skipped + Executed + Failed when the run completed; an
	// interrupted run accounts the rest as neither executed nor failed.
	Total    int `json:"total"`
	Skipped  int `json:"skipped"`
	Executed int `json:"executed"`
	Failed   int `json:"failed"`
	// RefsSeeded references were warm-started from the store; RefsSaved new
	// references were persisted back. CacheMisses counts reference
	// simulations actually run by this campaign (0 on a fully warm-started
	// store) — a delta, so a shared service cache's prior traffic does not
	// leak in.
	RefsSeeded  int    `json:"refs_seeded"`
	RefsSaved   int    `json:"refs_saved"`
	CacheMisses uint64 `json:"cache_misses"`
}

// Run executes the spec against the store: expand, diff, execute only the
// missing cells, and commit each finished result — in submission order — to
// the store. The engine is built from the spec's budget (so fingerprints
// and results always agree) and warm-started from the store's persisted
// single-threaded references.
//
// Cancellation is clean and resumable: on ctx cancellation the batch pool
// drains, everything already committed stays committed, references computed
// so far are persisted, and Run returns the partial Summary with an error
// matching smtmlp.ErrCanceled (and context.Canceled). Because results are
// committed strictly in submission order and the simulator is
// deterministic, re-running the same spec after any interruption yields a
// store byte-identical to an uninterrupted run.
func Run(ctx context.Context, st *store.Store, spec Spec, opts Options) (Summary, error) {
	sum := Summary{Name: spec.Name}
	reqs, fps, err := spec.Requests()
	if err != nil {
		return sum, err
	}
	sum.Total = len(reqs)

	instructions, warmup := spec.Params()
	eng := smtmlp.NewEngine(
		smtmlp.WithInstructions(instructions),
		smtmlp.WithWarmup(warmup),
		smtmlp.WithParallelism(opts.Parallelism),
		smtmlp.WithCache(opts.Cache),
	)
	sum.RefsSeeded = eng.Cache().Seed(st.Refs())
	_, missesBefore, _ := eng.Cache().Stats()

	// Diff against the store: only the missing cells execute. Because
	// results commit in submission order, the persisted set after an
	// interruption is a prefix of the (deduplicated) expansion with
	// deterministic failures removed — so the missing cells are exactly the
	// suffix, and the resumed appends continue where the interrupted run
	// stopped.
	var missing []smtmlp.Request
	var missingFP []string
	for i, fp := range fps {
		if st.Has(fp) {
			sum.Skipped++
			continue
		}
		missing = append(missing, reqs[i])
		missingFP = append(missingFP, fp)
	}
	report := func() {
		if opts.Progress != nil {
			opts.Progress(Progress{Total: sum.Total, Skipped: sum.Skipped,
				Executed: sum.Executed, Failed: sum.Failed})
		}
	}
	report()

	var runErr error
	if len(missing) > 0 {
		runErr = execute(ctx, eng, st, missing, missingFP, &sum, report)
	}

	// Persist the references computed so far — also on cancellation, so the
	// resumed run warm-starts from them.
	saved, mergeErr := st.MergeRefs(eng.Cache().Export())
	sum.RefsSaved = saved
	_, missesAfter, _ := eng.Cache().Stats()
	sum.CacheMisses = missesAfter - missesBefore
	if runErr == nil {
		runErr = mergeErr
	}
	return sum, runErr
}

// execute fans the missing cells over the engine's batch pool and commits
// results in submission order via a reorder buffer. A deterministic
// per-request failure is skipped (an uninterrupted run would skip it
// identically); a cancellation stops the commit cursor entirely, because
// cells behind the cursor must be re-executed for the store to stay a
// prefix of the expansion order.
func execute(ctx context.Context, eng *smtmlp.Engine, st *store.Store,
	missing []smtmlp.Request, missingFP []string, sum *Summary, report func()) error {
	// Own cancel handle: if persisting fails mid-campaign the batch must
	// stop too, or the pool would simulate the whole remaining grid into
	// results nobody commits.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	pending := make(map[int]smtmlp.BatchResult, len(missing))
	next := 0
	var canceled error
	ch := eng.RunBatch(ctx, missing)
	for br := range ch {
		if br.Err != nil && errors.Is(br.Err, smtmlp.ErrCanceled) {
			if canceled == nil {
				canceled = br.Err
			}
			continue
		}
		pending[br.Index] = br
		for {
			line, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if line.Err != nil {
				sum.Failed++
			} else {
				// A concurrent campaign may have raced us to this cell; the
				// deduplicating Append keeps the incumbent, and (the
				// simulator being deterministic) the result is identical
				// either way.
				if _, err := st.Append(store.Record{
					Fingerprint: missingFP[next],
					Request:     line.Request,
					Result:      line.Result,
				}); err != nil {
					// Stop the batch and drain it (cancellation makes the
					// remaining requests fail fast) so no worker outlives
					// the campaign simulating cells nobody will commit.
					cancel()
					for range ch {
					}
					return fmt.Errorf("campaign: persisting %s: %w", line.Request.Tag, err)
				}
				sum.Executed++
			}
			next++
			report()
		}
	}
	if canceled != nil {
		return canceled
	}
	return nil
}

// SummaryRow aggregates one (configuration point, policy) cell of a
// campaign across its workloads, using the paper's averaging rules
// (harmonic mean for STP, arithmetic mean for ANTT).
type SummaryRow struct {
	Config    string  `json:"config"`
	Policy    string  `json:"policy"`
	Workloads int     `json:"workloads"`
	STP       float64 `json:"stp"`
	ANTT      float64 `json:"antt"`
}

// Summarize aggregates the spec's persisted results from the store into one
// row per (configuration point, policy), in expansion order. Cells not yet
// in the store are simply absent from the averages, so a partially-run
// campaign summarizes over what exists.
func Summarize(st *store.Store, spec Spec) ([]SummaryRow, error) {
	reqs, fps, err := spec.Requests()
	if err != nil {
		return nil, err
	}
	type cell struct{ stps, antts []float64 }
	cells := make(map[string]*cell)
	var order []string
	for i, req := range reqs {
		rec, ok := st.Get(fps[i])
		if !ok {
			continue
		}
		label, _, _ := strings.Cut(req.Tag, "/")
		key := label + "\x00" + req.Policy.String()
		c := cells[key]
		if c == nil {
			c = &cell{}
			cells[key] = c
			order = append(order, key)
		}
		c.stps = append(c.stps, rec.Result.STP)
		c.antts = append(c.antts, rec.Result.ANTT)
	}
	rows := make([]SummaryRow, 0, len(order))
	for _, key := range order {
		c := cells[key]
		label, policy, _ := strings.Cut(key, "\x00")
		rows = append(rows, SummaryRow{
			Config:    label,
			Policy:    policy,
			Workloads: len(c.stps),
			STP:       metrics.HarmonicMean(c.stps),
			ANTT:      metrics.ArithmeticMean(c.antts),
		})
	}
	return rows, nil
}
