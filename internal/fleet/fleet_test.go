// The fleet proof-as-test: a 3-worker in-process fleet — with one worker
// killed mid-run and one lease deliberately double-delivered — must produce
// a store byte-identical to local single-node execution of the same spec.
// Plus the failure edges: hedged straggler re-dispatch, every worker lost,
// and the second run over a complete store being a pure no-op.
package fleet_test

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"smtmlp"
	"smtmlp/internal/campaign"
	"smtmlp/internal/fleet"
	"smtmlp/internal/server"
	"smtmlp/internal/store"
)

// testSpec is a 12-cell campaign (4 two-thread mixes x 3 policies) at a
// laptop-fast budget.
func testSpec() campaign.Spec {
	return campaign.Spec{
		Name:         "fleet-e2e",
		Instructions: 5_000,
		Warmup:       1_000,
		Policies:     []string{"icount", "flush", "mlpflush"},
		Workloads: campaign.WorkloadSpec{Mixes: [][]string{
			{"mcf", "galgel"}, {"swim", "twolf"}, {"vortex", "parser"}, {"art", "gzip"},
		}},
	}
}

// localGroundTruth runs the spec single-node into a fresh store and returns
// the store directory.
func localGroundTruth(t *testing.T, spec campaign.Spec) string {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sum, err := campaign.Run(context.Background(), st, spec, campaign.Options{})
	if err != nil {
		t.Fatalf("local ground-truth run: %v", err)
	}
	if sum.Executed != sum.Total || sum.Failed != 0 {
		t.Fatalf("local ground-truth run incomplete: %+v", sum)
	}
	return dir
}

// newWorker spins up one in-process smtserved worker.
func newWorker(t *testing.T, opts ...smtmlp.Option) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New(smtmlp.NewEngine(opts...)))
	t.Cleanup(ts.Close)
	return ts
}

// readStoreFile loads one of the store's NDJSON files.
func readStoreFile(t *testing.T, dir, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// assertStoresEqual compares the two stores byte for byte.
func assertStoresEqual(t *testing.T, wantDir, gotDir, when string) {
	t.Helper()
	for _, name := range []string{"results.ndjson", "refs.ndjson"} {
		want := readStoreFile(t, wantDir, name)
		got := readStoreFile(t, gotDir, name)
		if !bytes.Equal(want, got) {
			t.Errorf("%s: %s diverges from single-node execution\nlocal (%d bytes):\n%s\nfleet (%d bytes):\n%s",
				when, name, len(want), want, len(got), got)
		}
	}
}

func TestFleetByteEquivalentToLocalRun(t *testing.T) {
	ctx := context.Background()
	spec := testSpec()
	localDir := localGroundTruth(t, spec)

	w1 := newWorker(t)
	w2 := newWorker(t)

	// Worker 3 dies mid-run: it accepts leases normally, but the first time
	// the coordinator comes to collect one, the process "crashes" — from then
	// on every connection (collections, health probes) is dropped cold. The
	// accepted lease is lost with it and must be re-executed elsewhere.
	srv3 := server.New(smtmlp.NewEngine())
	var killMu sync.Mutex
	killed := false
	w3 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		killMu.Lock()
		if !killed && r.URL.Path == "/v1/work/complete" {
			killed = true
		}
		dead := killed
		killMu.Unlock()
		if dead {
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
				}
			}
			return
		}
		srv3.ServeHTTP(w, r)
	}))
	t.Cleanup(w3.Close)

	fleetDir := t.TempDir()
	st, err := store.Open(fleetDir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	var lastProgress campaign.Progress
	sum, err := fleet.Run(ctx, st, spec, fleet.Options{
		Workers:        []string{w1.URL, w2.URL, w3.URL},
		LeaseSize:      2, // 12 cells -> 6 leases, spread across 3 workers
		CompleteWait:   200 * time.Millisecond,
		ProbeRetries:   2,
		ProbeBackoff:   2 * time.Millisecond,
		StragglerAfter: -1, // hedging has its own test; keep this run's dispatch accounting exact
		Progress:       func(p campaign.Progress) { lastProgress = p },
		Eventf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("fleet run: %v (summary %+v)", err, sum)
	}
	if sum.Total != 12 || sum.Skipped != 0 || sum.Executed != 12 || sum.Failed != 0 {
		t.Fatalf("fleet summary %+v", sum)
	}
	if sum.WorkersLost != 1 {
		t.Fatalf("killed one worker, summary counts %d lost (%+v)", sum.WorkersLost, sum)
	}
	if sum.LeasesRetried == 0 {
		t.Fatalf("the dead worker's lease was never re-dispatched: %+v", sum)
	}
	if sum.LeasesDispatched < 6 {
		t.Fatalf("6 chunks need >= 6 lease deliveries, got %d", sum.LeasesDispatched)
	}
	if lastProgress.Executed != 12 || lastProgress.Total != 12 {
		t.Fatalf("final progress callback %+v", lastProgress)
	}
	if sum.RefsMerged != 8 { // 8 distinct benchmarks => 8 reference profiles
		t.Fatalf("merged %d reference profiles, want 8", sum.RefsMerged)
	}
	assertStoresEqual(t, localDir, fleetDir, "after the fleet run")

	// Deliberate double delivery: re-lease the campaign's first chunk to a
	// live worker, collect it, and commit the duplicate results and refs
	// through the same merge path. Dedupe-on-append must absorb every byte.
	reqs, fps, err := spec.Requests()
	if err != nil {
		t.Fatal(err)
	}
	dupCells := []server.WorkCell{
		{Fingerprint: fps[0], Request: reqs[0]},
		{Fingerprint: fps[1], Request: reqs[1]},
	}
	dup := collectLease(t, w1, server.LeaseRequest{
		LeaseID: "dup-delivery", Instructions: 5_000, Warmup: 1_000, Cells: dupCells,
	})
	recs := make([]store.Record, 0, len(dup.Results))
	for _, wr := range dup.Results {
		if wr.Error != "" || wr.Result == nil {
			t.Fatalf("duplicate lease cell failed: %+v", wr)
		}
		recs = append(recs, store.Record{Fingerprint: wr.Fingerprint, Request: wr.Request, Result: *wr.Result})
	}
	fresh, err := st.AppendBatch(recs)
	if err != nil {
		t.Fatal(err)
	}
	if fresh != 0 {
		t.Fatalf("duplicate delivery appended %d fresh records", fresh)
	}
	if _, err := st.MergeRefs(dup.Refs); err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, localDir, fleetDir, "after a double-delivered lease")

	// A second fleet run over the complete store is a pure no-op.
	again, err := fleet.Run(ctx, st, spec, fleet.Options{Workers: []string{w1.URL}})
	if err != nil {
		t.Fatalf("no-op rerun: %v", err)
	}
	if again.Skipped != 12 || again.Executed != 0 || again.LeasesDispatched != 0 {
		t.Fatalf("rerun over a complete store did work: %+v", again)
	}
	assertStoresEqual(t, localDir, fleetDir, "after the no-op rerun")
}

// collectLease posts one lease and long-polls it to completion over a real
// HTTP connection.
func collectLease(t *testing.T, ts *httptest.Server, lr server.LeaseRequest) server.CompleteResponse {
	t.Helper()
	body, err := json.Marshal(lr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/work/lease", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("lease status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := ts.Client().Post(ts.URL+"/v1/work/complete", "application/json",
			bytes.NewReader([]byte(fmt.Sprintf(`{"lease_id":%q,"wait_ms":1000}`, lr.LeaseID))))
		if err != nil {
			t.Fatal(err)
		}
		var cr server.CompleteResponse
		err = json.NewDecoder(resp.Body).Decode(&cr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if cr.Lease.Status == "done" {
			return cr
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease %s stuck %q", lr.LeaseID, cr.Lease.Status)
		}
	}
}

// TestFleetHedgesStragglers verifies hedged re-dispatch: one worker stalls
// every collection far longer than the straggler threshold, so whichever of
// the two chunks it holds must be finished by the healthy worker hedging it.
func TestFleetHedgesStragglers(t *testing.T) {
	spec := testSpec()
	localDir := localGroundTruth(t, spec)

	// Worker 1 executes leases but stalls every collection long enough for
	// the hedge to fire; worker 2 is healthy.
	srv1 := server.New(smtmlp.NewEngine())
	w1 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/work/complete" {
			time.Sleep(500 * time.Millisecond)
		}
		srv1.ServeHTTP(w, r)
	}))
	t.Cleanup(w1.Close)
	w2 := newWorker(t)

	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	sum, err := fleet.Run(context.Background(), st, spec, fleet.Options{
		Workers:        []string{w1.URL, w2.URL},
		LeaseSize:      6, // two chunks: one per worker, then the idle worker hedges
		CompleteWait:   20 * time.Millisecond,
		StragglerAfter: time.Millisecond,
		MaxAttempts:    10,
		Eventf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("fleet run: %v (summary %+v)", err, sum)
	}
	if sum.Executed != 12 || sum.Failed != 0 {
		t.Fatalf("fleet summary %+v", sum)
	}
	if sum.LeasesDispatched < 3 {
		t.Fatalf("straggling chunk was never hedged: %+v", sum)
	}
	assertStoresEqual(t, localDir, dir, "after a hedged run")
}

// TestFleetAllWorkersLost: a fleet whose only worker is unreachable fails
// loudly, keeping the store untouched and resumable.
func TestFleetAllWorkersLost(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // nothing listens at this URL anymore

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	sum, err := fleet.Run(context.Background(), st, testSpec(), fleet.Options{
		Workers:      []string{dead.URL},
		ProbeRetries: 2,
		ProbeBackoff: time.Millisecond,
	})
	if err == nil {
		t.Fatalf("run against a dead fleet succeeded: %+v", sum)
	}
	if sum.WorkersLost != 1 {
		t.Fatalf("summary %+v after losing the only worker", sum)
	}
	if st.Len() != 0 {
		t.Fatalf("dead fleet still appended %d results", st.Len())
	}
}

// TestFleetCancellation: canceling the context ends the run with
// smtmlp.ErrCanceled and leaves the store resumable.
func TestFleetCancellation(t *testing.T) {
	w := newWorker(t, smtmlp.WithParallelism(1))
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	spec := testSpec()
	spec.Instructions = 500_000 // slow enough to cancel mid-flight
	spec.Warmup = 100_000
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	sum, err := fleet.Run(ctx, st, spec, fleet.Options{
		Workers:      []string{w.URL},
		LeaseSize:    2,
		CompleteWait: 20 * time.Millisecond,
	})
	if !errors.Is(err, smtmlp.ErrCanceled) {
		t.Fatalf("canceled run returned %v (summary %+v)", err, sum)
	}
}

// TestFleetAdaptiveSizingConverges: in a heterogeneous fleet — two healthy
// workers and one made ~25ms/cell slower by a delay shim — adaptive sizing
// must end the run with the fast workers holding measurably larger leases
// than the slow one, while the merged store stays byte-identical to
// single-node execution (adaptivity moves chunk boundaries, never commit
// order).
func TestFleetAdaptiveSizingConverges(t *testing.T) {
	// A tiny budget keeps execution nearly free next to the slow worker's
	// injected 120ms/cell, so the throughput contrast survives even a
	// single-core CI host where "fast" workers share one saturated CPU.
	spec := campaign.Spec{
		Name:         "fleet-adaptive",
		Instructions: 2_000,
		Warmup:       400,
		Policies:     []string{"icount", "mlpflush"},
		Workloads: campaign.WorkloadSpec{
			Generated: &campaign.Generated{Count: 30, Threads: 2, Seed: 7},
		},
	}
	localDir := localGroundTruth(t, spec)

	w1 := newWorker(t)
	w2 := newWorker(t)
	slow := slowWorker(t, 120*time.Millisecond)

	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	sum, err := fleet.Run(context.Background(), st, spec, fleet.Options{
		Workers:      []string{w1.URL, w2.URL, slow.URL},
		LeaseTarget:  400 * time.Millisecond,
		MaxLeaseSize: 16,
		CompleteWait: 50 * time.Millisecond,
		Eventf:       t.Logf,
	})
	if err != nil {
		t.Fatalf("fleet run: %v (summary %+v)", err, sum)
	}
	if sum.Executed != sum.Total || sum.Failed != 0 {
		t.Fatalf("fleet summary %+v", sum)
	}
	assertStoresEqual(t, localDir, dir, "after the adaptive run")

	if len(sum.Workers) != 3 {
		t.Fatalf("per-worker stats %+v", sum.Workers)
	}
	fast, lagging := sum.Workers[0], sum.Workers[2]
	t.Logf("fast worker: %+v", fast)
	t.Logf("slow worker: %+v", lagging)
	if fast.Leases == 0 || fast.Cells == 0 || fast.CellsPerSec <= 0 {
		t.Fatalf("fast worker stats empty: %+v", fast)
	}
	// Race instrumentation slows simulation so much that the injected
	// delay no longer dominates per-cell cost, erasing the contrast the
	// divergence assertion depends on; the byte-equality and wire
	// assertions above/below still hold there.
	if !raceEnabled && fast.LeaseSize*2 < lagging.LeaseSize*3 {
		t.Errorf("adaptive sizing did not diverge: fast lease size %d vs slow %d",
			fast.LeaseSize, lagging.LeaseSize)
	}

	// The run must have negotiated compression: wire bytes strictly below
	// payload bytes in both directions.
	if sum.BytesOutWire >= sum.BytesOut || sum.BytesOut == 0 {
		t.Errorf("request compression not negotiated: bytes_out=%d wire=%d", sum.BytesOut, sum.BytesOutWire)
	}
	if sum.BytesInWire >= sum.BytesIn || sum.BytesIn == 0 {
		t.Errorf("response compression not negotiated: bytes_in=%d wire=%d", sum.BytesIn, sum.BytesInWire)
	}
}

// slowWorker wraps a real in-process worker with a shim that delays each
// lease delivery by perCell for every cell it carries — modeling a worker
// whose per-cell throughput is lower — transparently across plain and
// gzip-compressed lease bodies.
func slowWorker(t *testing.T, perCell time.Duration) *httptest.Server {
	t.Helper()
	srv := server.New(smtmlp.NewEngine())
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/work/lease" {
			raw, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			r.Body = io.NopCloser(bytes.NewReader(raw))
			plain := raw
			if r.Header.Get("Content-Encoding") == "gzip" {
				if zr, err := gzip.NewReader(bytes.NewReader(raw)); err == nil {
					if b, err := io.ReadAll(zr); err == nil {
						plain = b
					}
				}
			}
			var lr server.LeaseRequest
			if json.Unmarshal(plain, &lr) == nil && len(lr.Cells) > 0 {
				time.Sleep(time.Duration(len(lr.Cells)) * perCell)
			}
		}
		srv.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestFleetPipelinedDispatch: with the default pipeline depth a single
// driver keeps two leases in flight (lease N+1 posted while N is
// collected); forcing depth 1 restores serial dispatch. Both produce a
// byte-identical store.
func TestFleetPipelinedDispatch(t *testing.T) {
	spec := testSpec()
	localDir := localGroundTruth(t, spec)
	w := newWorker(t)

	run := func(depth int) fleet.Summary {
		dir := t.TempDir()
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		sum, err := fleet.Run(context.Background(), st, spec, fleet.Options{
			Workers:       []string{w.URL},
			LeaseSize:     2,
			PipelineDepth: depth,
			CompleteWait:  100 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("depth-%d run: %v (summary %+v)", depth, err, sum)
		}
		if sum.Executed != 12 || sum.Failed != 0 {
			t.Fatalf("depth-%d summary %+v", depth, sum)
		}
		assertStoresEqual(t, localDir, dir, fmt.Sprintf("after the depth-%d run", depth))
		return sum
	}

	piped := run(0) // 0 = DefaultPipelineDepth
	if got := piped.Workers[0].PeakDepth; got != fleet.DefaultPipelineDepth {
		t.Errorf("pipelined run peaked at depth %d, want %d", got, fleet.DefaultPipelineDepth)
	}
	serial := run(1)
	if got := serial.Workers[0].PeakDepth; got != 1 {
		t.Errorf("serial run peaked at depth %d, want 1", got)
	}
}

// TestFleetPlainWorkerFallback: against a worker that predates the wire
// upgrades — no X-Work-Gzip capability, no gzip responses, no NDJSON — the
// coordinator must fall back transparently to plain buffered JSON and still
// converge to the byte-identical store.
func TestFleetPlainWorkerFallback(t *testing.T) {
	spec := testSpec()
	localDir := localGroundTruth(t, spec)

	srv := server.New(smtmlp.NewEngine())
	old := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// An old server never saw these negotiation headers, so it behaves
		// as if they were absent; it also never advertised X-Work-Gzip.
		r.Header.Set("Accept-Encoding", "identity")
		r.Header.Del("Accept")
		srv.ServeHTTP(&stripHeaderWriter{ResponseWriter: w}, r)
	}))
	t.Cleanup(old.Close)

	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	sum, err := fleet.Run(context.Background(), st, spec, fleet.Options{
		Workers:      []string{old.URL},
		LeaseSize:    3,
		CompleteWait: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("fleet run against old worker: %v (summary %+v)", err, sum)
	}
	if sum.Executed != 12 || sum.Failed != 0 {
		t.Fatalf("fleet summary %+v", sum)
	}
	assertStoresEqual(t, localDir, dir, "after the fallback run")
	// Nothing was compressed in either direction: wire bytes == payload bytes.
	if sum.BytesOutWire != sum.BytesOut || sum.BytesOut == 0 {
		t.Errorf("requests to an old worker were compressed: bytes_out=%d wire=%d", sum.BytesOut, sum.BytesOutWire)
	}
	if sum.BytesInWire != sum.BytesIn || sum.BytesIn == 0 {
		t.Errorf("responses from an old worker counted as compressed: bytes_in=%d wire=%d", sum.BytesIn, sum.BytesInWire)
	}
}

// stripHeaderWriter drops the X-Work-Gzip capability advertisement, making
// a modern in-process server look like one that predates wire compression.
type stripHeaderWriter struct{ http.ResponseWriter }

func (s *stripHeaderWriter) WriteHeader(code int) {
	s.Header().Del(server.WorkGzipHeader)
	s.ResponseWriter.WriteHeader(code)
}

func (s *stripHeaderWriter) Write(b []byte) (int, error) {
	s.Header().Del(server.WorkGzipHeader)
	return s.ResponseWriter.Write(b)
}

// TestFleetRenewalOutlivesTTL: a lease whose execution takes far longer
// than the fleet's lease TTL survives because the driver heartbeats it, so
// slow-but-alive workers complete and commit instead of being cancelled
// mid-execution and retried.
func TestFleetRenewalOutlivesTTL(t *testing.T) {
	spec := campaign.Spec{
		Name:         "fleet-renewal",
		Instructions: 400_000, // one lease far outlives the TTL below
		Warmup:       80_000,
		Policies:     []string{"icount", "mlpflush"},
		Workloads:    campaign.WorkloadSpec{Mixes: [][]string{{"mcf", "galgel"}}},
	}
	localDir := localGroundTruth(t, spec)
	w := newWorker(t, smtmlp.WithParallelism(1))

	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const ttl = 400 * time.Millisecond
	sum, err := fleet.Run(context.Background(), st, spec, fleet.Options{
		Workers:      []string{w.URL},
		LeaseSize:    2,
		LeaseTTL:     ttl,
		CompleteWait: 50 * time.Millisecond,
		Eventf:       t.Logf,
	})
	if err != nil {
		t.Fatalf("fleet run: %v (summary %+v)", err, sum)
	}
	if sum.Executed != 2 || sum.Failed != 0 {
		t.Fatalf("fleet summary %+v", sum)
	}
	if sum.LeasesRenewed == 0 {
		t.Errorf("no renewal heartbeats were sent under a %v TTL: %+v", ttl, sum)
	}
	if sum.LeasesRetried != 0 {
		t.Errorf("renewed leases still expired and were retried: %+v", sum)
	}
	assertStoresEqual(t, localDir, dir, "after the renewed run")
}

func TestFleetNoWorkers(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := fleet.Run(context.Background(), st, testSpec(), fleet.Options{}); err == nil {
		t.Fatal("run without workers succeeded")
	}
}
