//go:build race

package fleet_test

// raceEnabled reports whether the race detector is instrumenting this run;
// timing-sensitive throughput assertions are relaxed under it.
const raceEnabled = true
