// Package fleet is the coordinator half of distributed campaign execution:
// it expands a campaign spec, diffs it against the local authoritative
// store, partitions the missing cells into leases, and drives a set of
// remote smtserved workers through the pull-based /v1/work protocol —
// POST /v1/work/lease to deliver a batch, long-polling POST
// /v1/work/complete to collect it.
//
// The design premise is that the store's content addressing does the hard
// distributed-systems work. Every cell is identified by its campaign
// fingerprint and the simulator is deterministic, so a lease that is
// retried, double-delivered (a hedge against a straggler), or re-executed
// after a worker dies produces byte-identical results, and the store's
// dedupe-on-append absorbs every repeat. The coordinator therefore never
// needs exactly-once delivery: at-least-once plus dedupe converges to the
// same store bytes as single-node execution, which is the invariant the
// package test proves.
//
// Ordering: chunks are contiguous slices of the expansion-ordered missing
// cells, and a reorder buffer commits them strictly in chunk order (each
// chunk as one store.AppendBatch), mirroring how campaign.Run commits in
// submission order. Reference profiles arrive lease-scoped from workers and
// merge through the store's sorted snapshot rewrite, so results.ndjson and
// refs.ndjson both come out byte-identical to a local run of the same spec.
//
// Failure handling: a worker that stops answering is probed with
// exponential backoff and, if still unreachable, declared lost — its
// in-flight chunk is requeued to the survivors. Leases carry a TTL so a
// worker never pins memory for a dead coordinator; an expired or canceled
// lease is simply re-dispatched. When every worker is lost the run fails,
// keeping everything committed so far (a later -resume fills the rest).
package fleet

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"smtmlp"
	"smtmlp/internal/campaign"
	"smtmlp/internal/server"
	"smtmlp/internal/store"
)

// Defaults for Options fields left zero.
const (
	DefaultLeaseSize    = 8
	DefaultLeaseTTL     = 2 * time.Minute
	DefaultCompleteWait = 2 * time.Second
	DefaultMaxAttempts  = 4
	DefaultStraggler    = 30 * time.Second

	// idlePoll paces a driver with nothing claimable (and the beat after a
	// lost lease) so it notices requeued or hedgeable work promptly without
	// spinning.
	idlePoll = 25 * time.Millisecond
)

// Options tunes a fleet run. Workers is the only required field.
type Options struct {
	// Workers lists worker base URLs (e.g. "http://host:8080"). Each worker
	// gets one driver goroutine holding at most one lease at a time.
	Workers []string
	// LeaseSize is the number of cells per lease (0 = DefaultLeaseSize).
	LeaseSize int
	// LeaseTTL caps how long a worker holds an uncollected lease before
	// canceling it (0 = DefaultLeaseTTL). It bounds how long a crashed
	// coordinator pins worker memory, and how long a lease can sit
	// uncollectable before being re-dispatched.
	LeaseTTL time.Duration
	// CompleteWait is the long-poll duration per collection request
	// (0 = DefaultCompleteWait; the worker caps it server-side).
	CompleteWait time.Duration
	// MaxAttempts bounds lease deliveries per chunk (0 = DefaultMaxAttempts);
	// beyond it the run fails rather than loop on a poisoned chunk.
	MaxAttempts int
	// ProbeRetries and ProbeBackoff shape worker health probing after a
	// transport error: ProbeRetries attempts against GET /healthz, sleeping
	// ProbeBackoff, 2x, 4x, ... between them (0 = 3 retries, 100ms base).
	ProbeRetries int
	ProbeBackoff time.Duration
	// StragglerAfter enables hedged re-dispatch: an idle driver re-delivers
	// the oldest chunk that has been in flight longer than this (the store
	// dedupes whichever copy loses). 0 = DefaultStraggler; negative disables.
	StragglerAfter time.Duration
	// Client is the HTTP client (nil = a fresh http.Client). Do not set a
	// global timeout shorter than CompleteWait: collection long-polls.
	Client *http.Client
	// Progress, when set, is invoked after every committed chunk. Calls are
	// sequential.
	Progress func(campaign.Progress)
	// Eventf, when set, receives human-readable fleet events (worker lost,
	// lease retried, hedged re-dispatch). Calls are serialized.
	Eventf func(format string, args ...any)
}

// Summary reports a finished (or failed) fleet run.
type Summary struct {
	Name string `json:"name,omitempty"`
	// Total is the grid size; Skipped cells were already in the store;
	// Executed cells ran remotely and were committed; Failed cells failed
	// deterministically on a worker (not persisted, exactly like local
	// execution skips them).
	Total    int `json:"total"`
	Skipped  int `json:"skipped"`
	Executed int `json:"executed"`
	Failed   int `json:"failed"`
	// Duplicates counts result cells absorbed by dedupe (hedged leases,
	// re-deliveries after a lost collection, races with other writers).
	Duplicates int `json:"duplicates"`
	// LeasesDispatched counts every lease delivery, including hedges and
	// retries; LeasesRetried counts chunks requeued after a lost, expired,
	// canceled or busy lease; WorkersLost counts workers declared dead.
	LeasesDispatched int `json:"leases_dispatched"`
	LeasesRetried    int `json:"leases_retried"`
	WorkersLost      int `json:"workers_lost"`
	// RefsMerged counts reference profiles newly persisted to the store.
	RefsMerged int `json:"refs_merged"`
}

// Run executes the spec's missing cells across the workers and commits the
// results to the local store. On return the store holds everything that
// committed — also on failure or cancellation, so re-running (or falling
// back to local cmd/smtsweep -resume) completes the grid. The returned
// error matches smtmlp.ErrCanceled when ctx was canceled.
func Run(ctx context.Context, st *store.Store, spec campaign.Spec, opts Options) (Summary, error) {
	sum := Summary{Name: spec.Name}
	if len(opts.Workers) == 0 {
		return sum, errors.New("fleet: no workers")
	}
	if opts.LeaseSize <= 0 {
		opts.LeaseSize = DefaultLeaseSize
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = DefaultLeaseTTL
	}
	if opts.CompleteWait <= 0 {
		opts.CompleteWait = DefaultCompleteWait
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = DefaultMaxAttempts
	}
	if opts.ProbeRetries <= 0 {
		opts.ProbeRetries = 3
	}
	if opts.ProbeBackoff <= 0 {
		opts.ProbeBackoff = 100 * time.Millisecond
	}
	if opts.StragglerAfter == 0 {
		opts.StragglerAfter = DefaultStraggler
	}
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}

	cells, total, err := campaign.MissingCells(st, spec)
	if err != nil {
		return sum, err
	}
	sum.Total = total
	sum.Skipped = total - len(cells)
	if opts.Progress != nil {
		opts.Progress(campaign.Progress{Total: sum.Total, Skipped: sum.Skipped})
	}
	if len(cells) == 0 {
		return sum, nil
	}

	instructions, warmup := spec.Params()
	chunks := campaign.Partition(cells, opts.LeaseSize)
	c := &coord{
		st:           st,
		chunks:       chunks,
		instructions: instructions,
		warmup:       warmup,
		opts:         opts,
		runID:        newRunID(),
		queue:        make([]int, len(chunks)),
		attempts:     make([]int, len(chunks)),
		inflight:     make(map[int]*flight),
		finished:     make(map[int][]server.WorkResult, len(chunks)),
		refs:         make(map[string]smtmlp.RefProfile),
		sum:          &sum,
		live:         len(opts.Workers),
		done:         make(chan struct{}),
	}
	for i := range chunks {
		c.queue[i] = i
	}

	// Drivers get a context canceled the moment the run ends (all chunks
	// committed, or failed), so in-flight hedge duplicates stop promptly
	// instead of long-polling a result nobody will commit.
	dctx, dcancel := context.WithCancel(ctx)
	defer dcancel()
	go func() {
		select {
		case <-c.done:
			dcancel()
		case <-dctx.Done():
		}
	}()

	var wg sync.WaitGroup
	for _, w := range opts.Workers {
		base := strings.TrimRight(w, "/")
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.driver(dctx, base)
		}()
	}
	wg.Wait()

	// Persist the reference profiles gathered so far — also on failure, so
	// the next attempt warm-starts from them.
	refs := make([]smtmlp.RefProfile, 0, len(c.refs))
	for _, r := range c.refs {
		refs = append(refs, r)
	}
	saved, mergeErr := st.MergeRefs(refs)
	sum.RefsMerged = saved

	c.mu.Lock()
	runErr := c.runErr
	committed := c.next
	c.mu.Unlock()
	if runErr == nil && committed < len(chunks) {
		if ctx.Err() != nil {
			runErr = fmt.Errorf("fleet: %w", smtmlp.ErrCanceled)
		} else {
			runErr = fmt.Errorf("fleet: run stopped with %d of %d chunks uncommitted", len(chunks)-committed, len(chunks))
		}
	}
	if runErr == nil {
		runErr = mergeErr
	}
	return sum, runErr
}

// flight tracks one chunk currently leased out.
type flight struct {
	started time.Time
	holders map[string]bool // worker base URLs holding a live lease for it
}

// coord is the shared state of one fleet run.
type coord struct {
	st           *store.Store
	chunks       [][]campaign.Cell
	instructions uint64
	warmup       uint64
	opts         Options
	runID        string

	mu       sync.Mutex
	queue    []int // chunk indexes awaiting dispatch, FIFO
	attempts []int // lease deliveries per chunk
	inflight map[int]*flight
	finished map[int][]server.WorkResult // collected, awaiting the cursor
	next     int                         // commit cursor: chunks [0, next) are in the store
	refs     map[string]smtmlp.RefProfile
	sum      *Summary
	live     int
	runErr   error
	closed   bool
	seq      int
	done     chan struct{}

	eventMu sync.Mutex
}

func newRunID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "fleet"
	}
	return hex.EncodeToString(b[:])
}

func (c *coord) eventf(format string, args ...any) {
	if c.opts.Eventf == nil {
		return
	}
	c.eventMu.Lock()
	defer c.eventMu.Unlock()
	c.opts.Eventf(format, args...)
}

// claim hands the worker its next chunk: the head of the queue, or — when
// the queue is drained and hedging is enabled — the oldest straggling
// in-flight chunk this worker is not already running. Every claim gets a
// fresh lease ID: lease IDs are idempotency keys on the worker, so a
// re-delivery after cancellation must not collide with the dead lease.
func (c *coord) claim(base string) (idx int, leaseID string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, "", false
	}
	hedged := false
	if len(c.queue) > 0 {
		idx = c.queue[0]
		c.queue = c.queue[1:]
	} else {
		if c.opts.StragglerAfter < 0 {
			return 0, "", false
		}
		best := -1
		for i, f := range c.inflight {
			if f.holders[base] || time.Since(f.started) < c.opts.StragglerAfter {
				continue
			}
			if best == -1 || f.started.Before(c.inflight[best].started) {
				best = i
			}
		}
		if best == -1 {
			return 0, "", false
		}
		idx = best
		hedged = true
	}
	f := c.inflight[idx]
	if f == nil {
		f = &flight{started: time.Now(), holders: make(map[string]bool, 1)}
		c.inflight[idx] = f
	}
	f.holders[base] = true
	c.attempts[idx]++
	c.seq++
	leaseID = fmt.Sprintf("%s-%d.%d", c.runID, idx, c.seq)
	c.sum.LeasesDispatched++
	if hedged {
		go c.eventf("fleet: hedging straggler chunk %d on %s as lease %s", idx, base, leaseID)
	}
	return idx, leaseID, true
}

// release drops the worker's hold on a chunk that did not complete. If no
// hedge partner still holds it and it is not already committed, the chunk
// goes back to the front of the queue (front, so the commit cursor unblocks
// as soon as possible); a chunk that exhausted its attempts fails the run.
func (c *coord) release(idx int, base string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := c.inflight[idx]
	if f != nil {
		delete(f.holders, base)
	}
	if idx < c.next || c.finished[idx] != nil {
		return // already collected elsewhere
	}
	if f != nil && len(f.holders) > 0 {
		return // a hedge partner is still running it
	}
	delete(c.inflight, idx)
	if c.attempts[idx] >= c.opts.MaxAttempts {
		c.closeLocked(fmt.Errorf("fleet: chunk %d failed after %d lease attempts", idx, c.attempts[idx]))
		return
	}
	c.queue = append([]int{idx}, c.queue...)
	c.sum.LeasesRetried++
}

// finish records a collected lease and advances the commit cursor. A chunk
// already collected (a hedge or re-delivery landing second) is discarded —
// the store would have deduplicated it anyway; discarding just skips the
// no-op write.
func (c *coord) finish(idx int, base string, results []server.WorkResult, refs []smtmlp.RefProfile) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f := c.inflight[idx]; f != nil {
		delete(f.holders, base)
		if len(f.holders) == 0 {
			delete(c.inflight, idx)
		}
	}
	if idx < c.next || c.finished[idx] != nil {
		c.sum.Duplicates += len(results)
		return
	}
	c.finished[idx] = results
	for _, r := range refs {
		if _, ok := c.refs[r.Key]; !ok {
			c.refs[r.Key] = r
		}
	}
	c.advanceLocked()
}

// advanceLocked commits every consecutive finished chunk at the cursor, each
// as one atomic batch append, preserving expansion order end to end.
func (c *coord) advanceLocked() {
	for {
		results, ok := c.finished[c.next]
		if !ok {
			return
		}
		delete(c.finished, c.next)
		recs := make([]store.Record, 0, len(results))
		failed := 0
		for _, wr := range results {
			if wr.Error != "" || wr.Result == nil {
				failed++
				continue
			}
			recs = append(recs, store.Record{
				Fingerprint: wr.Fingerprint,
				Request:     wr.Request,
				Result:      *wr.Result,
			})
		}
		fresh, err := c.st.AppendBatch(recs)
		if err != nil {
			c.closeLocked(fmt.Errorf("fleet: persisting chunk %d: %w", c.next, err))
			return
		}
		c.sum.Executed += len(recs)
		c.sum.Duplicates += len(recs) - fresh
		c.sum.Failed += failed
		c.next++
		if c.opts.Progress != nil {
			c.opts.Progress(campaign.Progress{Total: c.sum.Total, Skipped: c.sum.Skipped,
				Executed: c.sum.Executed, Failed: c.sum.Failed})
		}
		if c.next == len(c.chunks) {
			c.closeLocked(nil)
			return
		}
	}
}

// closeLocked ends the run (idempotently), keeping the first error.
func (c *coord) closeLocked(err error) {
	if err != nil && c.runErr == nil {
		c.runErr = err
	}
	if !c.closed {
		c.closed = true
		close(c.done)
	}
}

func (c *coord) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closeLocked(err)
}

// loseWorker retires a worker that failed its health probes. When the last
// worker dies with work outstanding, the run fails (everything committed so
// far stays committed).
func (c *coord) loseWorker(base string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sum.WorkersLost++
	c.live--
	if c.live == 0 && c.next < len(c.chunks) {
		c.closeLocked(fmt.Errorf("fleet: all %d workers lost with %d of %d chunks uncommitted",
			len(c.opts.Workers), len(c.chunks)-c.next, len(c.chunks)))
	}
}

// errLeaseLost marks a lease that ended without results (canceled, expired,
// unknown to the worker, or refused busy): requeue and move on.
var errLeaseLost = errors.New("fleet: lease lost")

// transportError marks a network-level failure talking to a worker; it
// triggers the health-probe path rather than a simple requeue.
type transportError struct{ err error }

func (e *transportError) Error() string { return e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

// driver runs one worker: claim a chunk, deliver it as a lease, long-poll
// the collection, commit; on trouble, requeue and either retry, probe, or
// retire the worker.
func (c *coord) driver(ctx context.Context, base string) {
	for {
		select {
		case <-c.done:
			return
		case <-ctx.Done():
			return
		default:
		}
		idx, leaseID, ok := c.claim(base)
		if !ok {
			if !c.sleep(ctx, idlePoll) {
				return
			}
			continue
		}
		out, err := c.execChunk(ctx, base, idx, leaseID)
		if err == nil {
			c.finish(idx, base, out.results, out.refs)
			continue
		}
		c.release(idx, base)
		var te *transportError
		switch {
		case ctx.Err() != nil:
			return
		case errors.Is(err, errLeaseLost):
			c.eventf("fleet: %v; requeued chunk %d", err, idx)
			if !c.sleep(ctx, idlePoll) {
				return
			}
		case errors.As(err, &te):
			c.eventf("fleet: worker %s unreachable (%v); probing", base, te.err)
			if !c.probe(ctx, base) {
				c.eventf("fleet: worker %s lost; chunk %d requeued to survivors", base, idx)
				c.loseWorker(base)
				return
			}
			c.eventf("fleet: worker %s recovered", base)
		default:
			// A protocol-level rejection (validation, version skew): every
			// worker would refuse the same lease, so retrying is pointless.
			c.fail(fmt.Errorf("fleet: worker %s rejected lease %s: %w", base, leaseID, err))
			return
		}
	}
}

// sleep waits d, or returns false if the run or context ended first.
func (c *coord) sleep(ctx context.Context, d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-c.done:
		return false
	case <-ctx.Done():
		return false
	}
}

// leaseOut is a collected lease.
type leaseOut struct {
	results []server.WorkResult
	refs    []smtmlp.RefProfile
}

// execChunk delivers one chunk as a lease and long-polls until the worker
// finishes it. The collection loop is bounded by the lease TTL: a lease
// stuck "running" past it has been (or is about to be) expired worker-side,
// so the chunk is reported lost rather than polled forever.
func (c *coord) execChunk(ctx context.Context, base string, idx int, leaseID string) (leaseOut, error) {
	chunk := c.chunks[idx]
	cells := make([]server.WorkCell, len(chunk))
	for i, cell := range chunk {
		cells[i] = server.WorkCell{Fingerprint: cell.Fingerprint, Request: cell.Request}
	}
	var status server.LeaseStatus
	apiErr, err := c.post(ctx, base, "/v1/work/lease", server.LeaseRequest{
		LeaseID:      leaseID,
		Instructions: c.instructions,
		Warmup:       c.warmup,
		TTLMillis:    c.opts.LeaseTTL.Milliseconds(),
		Cells:        cells,
	}, &status)
	if err != nil {
		return leaseOut{}, &transportError{err}
	}
	if apiErr != nil {
		if apiErr.Code == server.CodeWorkerBusy {
			return leaseOut{}, fmt.Errorf("%w: worker %s busy", errLeaseLost, base)
		}
		return leaseOut{}, apiErr
	}

	deadline := time.Now().Add(c.opts.LeaseTTL + c.opts.CompleteWait + 5*time.Second)
	for {
		var resp server.CompleteResponse
		apiErr, err := c.post(ctx, base, "/v1/work/complete", server.CompleteRequest{
			LeaseID:    leaseID,
			WaitMillis: c.opts.CompleteWait.Milliseconds(),
		}, &resp)
		if err != nil {
			return leaseOut{}, &transportError{err}
		}
		if apiErr != nil {
			if apiErr.Code == server.CodeUnknownLease {
				return leaseOut{}, fmt.Errorf("%w: lease %s gone from worker %s", errLeaseLost, leaseID, base)
			}
			return leaseOut{}, apiErr
		}
		switch resp.Lease.Status {
		case "done":
			return leaseOut{results: resp.Results, refs: resp.Refs}, nil
		case "running":
			if time.Now().After(deadline) {
				return leaseOut{}, fmt.Errorf("%w: lease %s still running on %s past its TTL", errLeaseLost, leaseID, base)
			}
		default: // "canceled", "expired"
			return leaseOut{}, fmt.Errorf("%w: lease %s %s on worker %s", errLeaseLost, leaseID, resp.Lease.Status, base)
		}
	}
}

// apiError is a worker's structured error envelope.
type apiError struct {
	Status  int
	Code    string
	Message string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("HTTP %d %s: %s", e.Status, e.Code, e.Message)
}

// post sends one JSON request. It returns (nil, nil) with out decoded on a
// 2xx, the worker's error envelope on any other status, and a plain error
// on a network-level failure.
func (c *coord) post(ctx context.Context, base, path string, in, out any) (*apiError, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return nil, fmt.Errorf("encoding %s body: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.opts.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out != nil {
			if err := json.Unmarshal(data, out); err != nil {
				return nil, fmt.Errorf("decoding %s response: %w", path, err)
			}
		}
		return nil, nil
	}
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	_ = json.Unmarshal(data, &env) // a non-JSON error body still reports the status
	return &apiError{Status: resp.StatusCode, Code: env.Error.Code, Message: env.Error.Message}, nil
}

// probe checks worker health with exponential backoff after a transport
// error. True means the worker answered /healthz and the driver may resume.
func (c *coord) probe(ctx context.Context, base string) bool {
	backoff := c.opts.ProbeBackoff
	for i := 0; i < c.opts.ProbeRetries; i++ {
		if !c.sleep(ctx, backoff) {
			return false
		}
		backoff *= 2
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
		if err != nil {
			return false
		}
		resp, err := c.opts.Client.Do(req)
		if err != nil {
			continue
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return true
		}
	}
	return false
}
