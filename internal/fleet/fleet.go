// Package fleet is the coordinator half of distributed campaign execution:
// it expands a campaign spec, diffs it against the local authoritative
// store, carves the missing cells into leases, and drives a set of remote
// smtserved workers through the pull-based /v1/work protocol — POST
// /v1/work/lease to deliver a batch, long-polling POST /v1/work/complete to
// collect it.
//
// The design premise is that the store's content addressing does the hard
// distributed-systems work. Every cell is identified by its campaign
// fingerprint and the simulator is deterministic, so a lease that is
// retried, double-delivered (a hedge against a straggler), or re-executed
// after a worker dies produces byte-identical results, and the store's
// dedupe-on-append absorbs every repeat. The coordinator therefore never
// needs exactly-once delivery: at-least-once plus dedupe converges to the
// same store bytes as single-node execution, which is the invariant the
// package test proves.
//
// Throughput: the coordinator applies the paper's resource-allocation
// insight one level up — size each worker's outstanding work to its
// measured ability to retire it. Each driver keeps a cells/sec EWMA over
// its completed leases and carves the next lease to a target wall-time
// (clamped), so a fast worker gets proportionally more cells per round
// trip than a slow one instead of lockstep chunks. Drivers are also
// pipelined: up to PipelineDepth leases are in flight per worker, so lease
// N+1 is already executing while lease N is long-polled, eliminating the
// idle gap between leases. Wire bodies are gzip-compressed when the worker
// advertises support (X-Work-Gzip response header; plain JSON first
// request learns the capability), and complete responses are streamed as
// NDJSON when the worker speaks it — both degrade transparently against
// old servers.
//
// Ordering: chunks are contiguous slices of the expansion-ordered missing
// cells, carved in chunk-index order, and a reorder buffer commits them
// strictly in that order (each chunk as one store.AppendBatch), mirroring
// how campaign.Run commits in submission order. Adaptive sizing only
// changes where the chunk boundaries fall, never their order, so
// results.ndjson and refs.ndjson both come out byte-identical to a local
// run of the same spec.
//
// Failure handling: a worker that stops answering is probed with
// exponential backoff and, if still unreachable, declared lost — its
// in-flight chunks are requeued to the survivors. Leases carry a TTL so a
// worker never pins memory for a dead coordinator, and drivers heartbeat
// every active lease (an idempotent cells-free re-POST) at TTL/3 so a
// slow-but-alive worker is never cancelled mid-execution; an expired or
// canceled lease is simply re-dispatched. When every worker is lost the
// run fails, keeping everything committed so far (a later -resume fills
// the rest).
package fleet

import (
	"bytes"
	"compress/gzip"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"smtmlp"
	"smtmlp/internal/campaign"
	"smtmlp/internal/obs"
	"smtmlp/internal/server"
	"smtmlp/internal/store"
)

// Defaults for Options fields left zero.
const (
	// DefaultLeaseSize seeds adaptive sizing (the first lease to a worker
	// with no throughput sample yet) and remains the fixed size used by
	// legacy callers that set LeaseSize explicitly.
	DefaultLeaseSize     = 8
	DefaultLeaseTTL      = 2 * time.Minute
	DefaultLeaseTarget   = 2 * time.Second
	DefaultMaxLeaseSize  = 128
	DefaultPipelineDepth = 2
	DefaultCompleteWait  = 2 * time.Second
	DefaultMaxAttempts   = 4
	DefaultStraggler     = 30 * time.Second

	// ewmaAlpha weights the newest cells/sec sample in a worker's
	// throughput estimate; 0.3 converges in a handful of leases without
	// chasing single-lease noise.
	ewmaAlpha = 0.3

	// idlePoll paces a driver with nothing claimable (and the beat after a
	// lost lease) so it notices requeued or hedgeable work promptly without
	// spinning.
	idlePoll = 25 * time.Millisecond
)

// Options tunes a fleet run. Workers is the only required field.
type Options struct {
	// Workers lists worker base URLs (e.g. "http://host:8080"). Each worker
	// gets one driver goroutine holding up to PipelineDepth leases.
	Workers []string
	// LeaseSize fixes the number of cells per lease. 0 (the default) means
	// adaptive: each lease is sized from the worker's cells/sec EWMA to
	// take about LeaseTarget of wall time, clamped to
	// [MinLeaseSize, MaxLeaseSize].
	LeaseSize int
	// LeaseTarget is the wall time an adaptive lease aims for
	// (0 = DefaultLeaseTarget). Ignored when LeaseSize > 0.
	LeaseTarget time.Duration
	// MinLeaseSize and MaxLeaseSize clamp adaptive sizing
	// (0 = 1 and DefaultMaxLeaseSize). Ignored when LeaseSize > 0.
	MinLeaseSize int
	MaxLeaseSize int
	// PipelineDepth bounds leases in flight per worker
	// (0 = DefaultPipelineDepth; 1 restores serial dispatch). Keep it at or
	// below the worker's -max-leases or top-up POSTs bounce off worker_busy.
	PipelineDepth int
	// LeaseTTL caps how long a worker holds a lease between heartbeats
	// before canceling it (0 = DefaultLeaseTTL). Drivers renew active
	// leases at TTL/4, so it bounds how long a crashed coordinator pins
	// worker memory — not how long a lease may execute.
	LeaseTTL time.Duration
	// CompleteWait is the long-poll duration per collection request
	// (0 = DefaultCompleteWait; the worker caps it server-side at 30s and
	// drivers shorten it to the renewal cadence when the TTL is tighter).
	CompleteWait time.Duration
	// MaxAttempts bounds lease deliveries per chunk (0 = DefaultMaxAttempts);
	// beyond it the run fails rather than loop on a poisoned chunk.
	MaxAttempts int
	// ProbeRetries and ProbeBackoff shape worker health probing after a
	// transport error: ProbeRetries attempts against GET /healthz, sleeping
	// ProbeBackoff, 2x, 4x, ... between them (0 = 3 retries, 100ms base).
	ProbeRetries int
	ProbeBackoff time.Duration
	// StragglerAfter enables hedged re-dispatch: an idle driver re-delivers
	// the oldest chunk that has been in flight longer than this (the store
	// dedupes whichever copy loses). 0 = DefaultStraggler; negative disables.
	StragglerAfter time.Duration
	// NoCompression disables gzip on /v1/work bodies in both directions
	// (requests are sent plain and responses requested identity-encoded).
	// NDJSON streaming is unaffected — it changes framing, not bytes.
	NoCompression bool
	// Client is the HTTP client (nil = a fresh http.Client). Do not set a
	// global timeout shorter than CompleteWait: collection long-polls.
	Client *http.Client
	// Progress, when set, is invoked after every committed chunk. Calls are
	// sequential.
	Progress func(campaign.Progress)
	// Eventf, when set, receives human-readable fleet events (worker lost,
	// lease retried, hedged re-dispatch). Calls are serialized.
	Eventf func(format string, args ...any)
	// Logger receives structured lease-lifecycle logs (dispatch, renew,
	// collect, retry). Every line carries the run's campaign_id plus the
	// per-delivery request_id that also travels to the worker in the
	// X-Request-Id header, so coordinator and worker logs join on the same
	// values. Nil discards everything.
	Logger *slog.Logger
}

// WorkerStats reports one worker's view of a finished run.
type WorkerStats struct {
	Worker string `json:"worker"`
	// Leases and Cells count completed collections credited to this worker
	// (hedge losers and lost leases are not credited).
	Leases int `json:"leases"`
	Cells  int `json:"cells"`
	// CellsPerSec is the final throughput EWMA; LeaseSize is the adaptive
	// size the next lease would have used (the fixed size under -lease-size).
	CellsPerSec float64 `json:"cells_per_sec"`
	LeaseSize   int     `json:"lease_size"`
	// PeakDepth is the most leases this worker held in flight at once.
	PeakDepth int `json:"peak_depth"`
}

// Summary reports a finished (or failed) fleet run.
type Summary struct {
	Name string `json:"name,omitempty"`
	// Total is the grid size; Skipped cells were already in the store;
	// Executed cells ran remotely and were committed; Failed cells failed
	// deterministically on a worker (not persisted, exactly like local
	// execution skips them).
	Total    int `json:"total"`
	Skipped  int `json:"skipped"`
	Executed int `json:"executed"`
	Failed   int `json:"failed"`
	// Duplicates counts result cells absorbed by dedupe (hedged leases,
	// re-deliveries after a lost collection, races with other writers).
	Duplicates int `json:"duplicates"`
	// LeasesDispatched counts every lease delivery, including hedges and
	// retries; LeasesRenewed counts heartbeat re-POSTs that extended a
	// lease TTL; LeasesRetried counts chunks requeued after a lost,
	// expired, canceled or busy lease; WorkersLost counts workers declared
	// dead.
	LeasesDispatched int `json:"leases_dispatched"`
	LeasesRenewed    int `json:"leases_renewed"`
	LeasesRetried    int `json:"leases_retried"`
	WorkersLost      int `json:"workers_lost"`
	// RefsMerged counts reference profiles newly persisted to the store.
	RefsMerged int `json:"refs_merged"`
	// Wire accounting for /v1/work traffic: BytesOut/BytesIn are JSON
	// payload bytes sent/received, BytesOutWire/BytesInWire what actually
	// crossed the wire (smaller when gzip was negotiated).
	BytesOut     int64 `json:"bytes_out"`
	BytesOutWire int64 `json:"bytes_out_wire"`
	BytesIn      int64 `json:"bytes_in"`
	BytesInWire  int64 `json:"bytes_in_wire"`
	// Workers reports per-worker throughput, in Options.Workers order.
	Workers []WorkerStats `json:"workers,omitempty"`
}

// Run executes the spec's missing cells across the workers and commits the
// results to the local store. On return the store holds everything that
// committed — also on failure or cancellation, so re-running (or falling
// back to local cmd/smtsweep -resume) completes the grid. The returned
// error matches smtmlp.ErrCanceled when ctx was canceled.
func Run(ctx context.Context, st *store.Store, spec campaign.Spec, opts Options) (Summary, error) {
	sum := Summary{Name: spec.Name}
	if len(opts.Workers) == 0 {
		return sum, errors.New("fleet: no workers")
	}
	if opts.LeaseTarget <= 0 {
		opts.LeaseTarget = DefaultLeaseTarget
	}
	if opts.MinLeaseSize <= 0 {
		opts.MinLeaseSize = 1
	}
	if opts.MaxLeaseSize <= 0 {
		opts.MaxLeaseSize = DefaultMaxLeaseSize
	}
	if opts.MaxLeaseSize < opts.MinLeaseSize {
		opts.MaxLeaseSize = opts.MinLeaseSize
	}
	if opts.PipelineDepth <= 0 {
		opts.PipelineDepth = DefaultPipelineDepth
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = DefaultLeaseTTL
	}
	if opts.CompleteWait <= 0 {
		opts.CompleteWait = DefaultCompleteWait
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = DefaultMaxAttempts
	}
	if opts.ProbeRetries <= 0 {
		opts.ProbeRetries = 3
	}
	if opts.ProbeBackoff <= 0 {
		opts.ProbeBackoff = 100 * time.Millisecond
	}
	if opts.StragglerAfter == 0 {
		opts.StragglerAfter = DefaultStraggler
	}
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}

	cells, total, err := campaign.MissingCells(st, spec)
	if err != nil {
		return sum, err
	}
	sum.Total = total
	sum.Skipped = total - len(cells)
	if opts.Progress != nil {
		opts.Progress(campaign.Progress{Total: sum.Total, Skipped: sum.Skipped})
	}
	if len(cells) == 0 {
		return sum, nil
	}

	instructions, warmup := spec.Params()
	runID := newRunID()
	logger := opts.Logger
	if logger == nil {
		logger = obs.Discard()
	}
	c := &coord{
		st:           st,
		cells:        cells,
		instructions: instructions,
		warmup:       warmup,
		opts:         opts,
		runID:        runID,
		log:          logger.With(obs.KeyCampaignID, runID),
		inflight:     make(map[int]*flight),
		finished:     make(map[int][]server.WorkResult),
		refs:         make(map[string]smtmlp.RefProfile),
		sum:          &sum,
		live:         len(opts.Workers),
		done:         make(chan struct{}),
	}

	bootstrap := opts.LeaseSize
	if bootstrap <= 0 {
		bootstrap = clamp(DefaultLeaseSize, opts.MinLeaseSize, opts.MaxLeaseSize)
	}
	workers := make([]*workerState, len(opts.Workers))
	for i, w := range opts.Workers {
		workers[i] = &workerState{base: strings.TrimRight(w, "/"), size: bootstrap}
	}

	// Drivers get a context canceled the moment the run ends (all chunks
	// committed, or failed), so in-flight hedge duplicates stop promptly
	// instead of long-polling a result nobody will commit.
	dctx, dcancel := context.WithCancel(ctx)
	defer dcancel()
	go func() {
		select {
		case <-c.done:
			dcancel()
		case <-dctx.Done():
		}
	}()

	var wg sync.WaitGroup
	for _, ws := range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.driver(dctx, ws)
		}()
	}
	wg.Wait()

	// Persist the reference profiles gathered so far — also on failure, so
	// the next attempt warm-starts from them.
	refs := make([]smtmlp.RefProfile, 0, len(c.refs))
	for _, r := range c.refs {
		refs = append(refs, r)
	}
	saved, mergeErr := st.MergeRefs(refs)
	sum.RefsMerged = saved

	sum.LeasesRenewed = int(c.renewed.Load())
	sum.BytesOut = c.bytesOut.Load()
	sum.BytesOutWire = c.bytesOutWire.Load()
	sum.BytesIn = c.bytesIn.Load()
	sum.BytesInWire = c.bytesInWire.Load()
	sum.Workers = make([]WorkerStats, len(workers))
	for i, ws := range workers {
		sum.Workers[i] = WorkerStats{
			Worker: ws.base, Leases: ws.leases, Cells: ws.cellsDone,
			CellsPerSec: ws.ewma, LeaseSize: ws.size, PeakDepth: ws.peak,
		}
	}

	c.mu.Lock()
	runErr := c.runErr
	complete := c.next == len(c.chunks) && c.carve == len(c.cells)
	remaining := len(c.chunks) - c.next + (len(c.cells) - c.carve)
	c.mu.Unlock()
	if runErr == nil && !complete {
		if ctx.Err() != nil {
			runErr = fmt.Errorf("fleet: %w", smtmlp.ErrCanceled)
		} else {
			runErr = fmt.Errorf("fleet: run stopped with work for %d chunks/cells uncommitted", remaining)
		}
	}
	if runErr == nil {
		runErr = mergeErr
	}
	return sum, runErr
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// workerState is one driver's private view of its worker: the throughput
// EWMA behind adaptive sizing, the negotiated wire capabilities, and
// pipeline accounting. Only its own driver goroutine mutates it (claim
// reads size under c.mu, but claim is only ever called by that driver);
// Run reads it after all drivers exit.
type workerState struct {
	base      string
	gzipOK    bool    // worker advertised X-Work-Gzip: request bodies may compress
	ewma      float64 // cells/sec, 0 until the first completed lease
	size      int     // next adaptive lease size (fixed size under LeaseSize>0)
	leases    int
	cellsDone int
	depth     int
	peak      int
}

// observe folds one completed lease into the worker's throughput estimate
// and recomputes the adaptive size. Under pipelining the elapsed time of
// overlapping leases overstates per-lease latency (the worker splits
// itself across PipelineDepth leases), but it does so by the same factor
// on every worker, so relative sizing — the thing that matters for
// balancing heterogeneous workers — still converges.
func (c *coord) observe(ws *workerState, al *activeLease) {
	elapsed := time.Since(al.sent).Seconds()
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	sample := float64(al.cells) / elapsed
	if ws.ewma == 0 {
		ws.ewma = sample
	} else {
		ws.ewma = ewmaAlpha*sample + (1-ewmaAlpha)*ws.ewma
	}
	ws.leases++
	ws.cellsDone += al.cells
	if c.opts.LeaseSize > 0 {
		return
	}
	c.mu.Lock()
	ws.size = clamp(int(ws.ewma*c.opts.LeaseTarget.Seconds()+0.5), c.opts.MinLeaseSize, c.opts.MaxLeaseSize)
	c.mu.Unlock()
}

// flight tracks one chunk currently leased out.
type flight struct {
	started time.Time
	holders map[*workerState]bool
}

// span is one chunk's contiguous cell range: c.cells[lo:hi].
type span struct{ lo, hi int }

// coord is the shared state of one fleet run.
type coord struct {
	st           *store.Store
	cells        []campaign.Cell
	instructions uint64
	warmup       uint64
	opts         Options
	runID        string
	log          *slog.Logger // always bound to campaign_id = runID

	mu       sync.Mutex
	carve    int    // cells [0, carve) have been carved into chunks
	chunks   []span // carved chunks, in expansion order; grows during the run
	queue    []int  // chunk indexes awaiting re-dispatch, FIFO
	attempts []int  // lease deliveries per chunk
	inflight map[int]*flight
	finished map[int][]server.WorkResult // collected, awaiting the cursor
	next     int                         // commit cursor: chunks [0, next) are in the store
	refs     map[string]smtmlp.RefProfile
	sum      *Summary
	live     int
	runErr   error
	closed   bool
	seq      int
	done     chan struct{}

	renewed      atomic.Int64
	bytesOut     atomic.Int64 // JSON request bytes
	bytesOutWire atomic.Int64 // request bytes on the wire
	bytesIn      atomic.Int64 // JSON response bytes
	bytesInWire  atomic.Int64 // response bytes on the wire

	eventMu sync.Mutex
}

func newRunID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "fleet"
	}
	return hex.EncodeToString(b[:])
}

func (c *coord) eventf(format string, args ...any) {
	if c.opts.Eventf == nil {
		return
	}
	c.eventMu.Lock()
	defer c.eventMu.Unlock()
	c.opts.Eventf(format, args...)
}

// claim hands the worker its next chunk: a requeued chunk from the head of
// the queue, else a fresh chunk carved from the uncarved tail at the
// worker's current adaptive size, else — when hedging is enabled — the
// oldest straggling in-flight chunk this worker is not already running.
// Every claim gets a fresh lease ID: lease IDs are idempotency keys on the
// worker, so a re-delivery after cancellation must not collide with the
// dead lease. The returned cell slice aliases the immutable expansion
// order, so it is safe to use outside the lock.
func (c *coord) claim(ws *workerState) (idx int, cells []campaign.Cell, leaseID string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, nil, "", false
	}
	hedged := false
	switch {
	case len(c.queue) > 0:
		idx = c.queue[0]
		c.queue = c.queue[1:]
	case c.carve < len(c.cells):
		chunk := campaign.Carve(c.cells, c.carve, ws.size)
		idx = len(c.chunks)
		c.chunks = append(c.chunks, span{c.carve, c.carve + len(chunk)})
		c.attempts = append(c.attempts, 0)
		c.carve += len(chunk)
	default:
		if c.opts.StragglerAfter < 0 {
			return 0, nil, "", false
		}
		best := -1
		for i, f := range c.inflight {
			if f.holders[ws] || time.Since(f.started) < c.opts.StragglerAfter {
				continue
			}
			if best == -1 || f.started.Before(c.inflight[best].started) {
				best = i
			}
		}
		if best == -1 {
			return 0, nil, "", false
		}
		idx = best
		hedged = true
	}
	f := c.inflight[idx]
	if f == nil {
		f = &flight{started: time.Now(), holders: make(map[*workerState]bool, 1)}
		c.inflight[idx] = f
	}
	f.holders[ws] = true
	c.attempts[idx]++
	c.seq++
	leaseID = fmt.Sprintf("%s-%d.%d", c.runID, idx, c.seq)
	c.sum.LeasesDispatched++
	sp := c.chunks[idx]
	cells = c.cells[sp.lo:sp.hi:sp.hi]
	if hedged {
		go c.eventf("fleet: hedging straggler chunk %d on %s as lease %s", idx, ws.base, leaseID)
	}
	return idx, cells, leaseID, true
}

// release drops the worker's hold on a chunk that did not complete. If no
// hedge partner still holds it and it is not already committed, the chunk
// goes back to the front of the queue (front, so the commit cursor unblocks
// as soon as possible); a chunk that exhausted its attempts fails the run.
func (c *coord) release(idx int, ws *workerState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := c.inflight[idx]
	if f != nil {
		if !f.holders[ws] {
			return // already released (driver exit path)
		}
		delete(f.holders, ws)
	}
	if idx < c.next || c.finished[idx] != nil {
		return // already collected elsewhere
	}
	if f != nil && len(f.holders) > 0 {
		return // a hedge partner is still running it
	}
	delete(c.inflight, idx)
	if c.attempts[idx] >= c.opts.MaxAttempts {
		c.closeLocked(fmt.Errorf("fleet: chunk %d failed after %d lease attempts", idx, c.attempts[idx]))
		return
	}
	c.queue = append([]int{idx}, c.queue...)
	c.sum.LeasesRetried++
}

// overtaken reports whether a chunk has already been collected or committed
// (a hedge partner won); drivers use it to abandon a redundant lease
// instead of polling and renewing it to completion.
func (c *coord) overtaken(idx int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return idx < c.next || c.finished[idx] != nil
}

// finish records a collected lease and advances the commit cursor. A chunk
// already collected (a hedge or re-delivery landing second) is discarded —
// the store would have deduplicated it anyway; discarding just skips the
// no-op write.
func (c *coord) finish(idx int, ws *workerState, results []server.WorkResult, refs []smtmlp.RefProfile) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f := c.inflight[idx]; f != nil {
		delete(f.holders, ws)
		if len(f.holders) == 0 {
			delete(c.inflight, idx)
		}
	}
	if idx < c.next || c.finished[idx] != nil {
		c.sum.Duplicates += len(results)
		return
	}
	c.finished[idx] = results
	for _, r := range refs {
		if _, ok := c.refs[r.Key]; !ok {
			c.refs[r.Key] = r
		}
	}
	c.advanceLocked()
}

// advanceLocked commits every consecutive finished chunk at the cursor, each
// as one atomic batch append, preserving expansion order end to end.
func (c *coord) advanceLocked() {
	for {
		results, ok := c.finished[c.next]
		if !ok {
			break
		}
		delete(c.finished, c.next)
		recs := make([]store.Record, 0, len(results))
		failed := 0
		for _, wr := range results {
			if wr.Error != "" || wr.Result == nil {
				failed++
				continue
			}
			recs = append(recs, store.Record{
				Fingerprint: wr.Fingerprint,
				Request:     wr.Request,
				Result:      *wr.Result,
			})
		}
		fresh, err := c.st.AppendBatch(recs)
		if err != nil {
			c.closeLocked(fmt.Errorf("fleet: persisting chunk %d: %w", c.next, err))
			return
		}
		c.sum.Executed += len(recs)
		c.sum.Duplicates += len(recs) - fresh
		c.sum.Failed += failed
		c.next++
		if c.opts.Progress != nil {
			c.opts.Progress(campaign.Progress{Total: c.sum.Total, Skipped: c.sum.Skipped,
				Executed: c.sum.Executed, Failed: c.sum.Failed})
		}
	}
	if c.next == len(c.chunks) && c.carve == len(c.cells) {
		c.closeLocked(nil)
	}
}

// closeLocked ends the run (idempotently), keeping the first error.
func (c *coord) closeLocked(err error) {
	if err != nil && c.runErr == nil {
		c.runErr = err
	}
	if !c.closed {
		c.closed = true
		close(c.done)
	}
}

func (c *coord) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closeLocked(err)
}

// loseWorker retires a worker that failed its health probes. When the last
// worker dies with work outstanding, the run fails (everything committed so
// far stays committed).
func (c *coord) loseWorker(ws *workerState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sum.WorkersLost++
	c.live--
	if c.live == 0 && (c.next < len(c.chunks) || c.carve < len(c.cells)) {
		c.closeLocked(fmt.Errorf("fleet: all %d workers lost with work uncommitted", len(c.opts.Workers)))
	}
}

// errLeaseLost marks a lease that ended without results (canceled, expired,
// unknown to the worker, or refused busy): requeue and move on.
var errLeaseLost = errors.New("fleet: lease lost")

// transportError marks a network-level failure talking to a worker; it
// triggers the health-probe path rather than a simple requeue.
type transportError struct{ err error }

func (e *transportError) Error() string { return e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

// activeLease is one lease in a driver's pipeline.
type activeLease struct {
	idx       int
	leaseID   string
	requestID string // correlation ID of this delivery; fresh per dispatch
	cells     int
	sent      time.Time
	renewed   time.Time
}

// driver runs one worker as a bounded pipeline: keep up to PipelineDepth
// leases posted (so the worker is already executing lease N+1 while lease
// N is collected), heartbeat every active lease at TTL/3, and long-poll
// the oldest lease; on trouble, requeue and either retry, probe, or retire
// the worker. recoverLease classifies an error after its lease has been
// dropped from the pipeline; false means the driver must exit (remaining
// pipeline entries are released by the deferred cleanup).
func (c *coord) driver(ctx context.Context, ws *workerState) {
	// Heartbeat at TTL/4 (not /3): a renewal can lag one long-poll plus
	// scheduler jitter behind its due time, and it must still land well
	// inside the worker's deadline.
	renewEvery := c.opts.LeaseTTL / 4
	wait := c.opts.CompleteWait
	if wait > renewEvery {
		wait = renewEvery // poll often enough to heartbeat the pipeline
	}
	var act []*activeLease
	defer func() {
		for _, al := range act {
			c.release(al.idx, ws)
		}
	}()

	recoverLease := func(idx int, err error) bool {
		var te *transportError
		switch {
		case ctx.Err() != nil:
			return false
		case errors.Is(err, errLeaseLost):
			c.eventf("fleet: %v; requeued chunk %d", err, idx)
			c.log.Warn("lease lost; chunk requeued", "chunk", idx, "worker", ws.base, "err", err)
			return c.sleep(ctx, idlePoll)
		case errors.As(err, &te):
			c.eventf("fleet: worker %s unreachable (%v); probing", ws.base, te.err)
			if !c.probe(ctx, ws.base) {
				c.eventf("fleet: worker %s lost; its chunks requeue to survivors", ws.base)
				c.log.Warn("worker lost", "worker", ws.base, "err", te.err)
				c.loseWorker(ws)
				return false
			}
			c.eventf("fleet: worker %s recovered", ws.base)
			return true
		default:
			// A protocol-level rejection (validation, version skew): every
			// worker would refuse the same lease, so retrying is pointless.
			c.fail(fmt.Errorf("fleet: worker %s rejected chunk %d: %w", ws.base, idx, err))
			return false
		}
	}

	for {
		select {
		case <-c.done:
			return
		case <-ctx.Done():
			return
		default:
		}

		// Top up the pipeline.
		for len(act) < c.opts.PipelineDepth {
			idx, cells, leaseID, ok := c.claim(ws)
			if !ok {
				break
			}
			al, err := c.sendLease(ctx, ws, cells, leaseID)
			if err != nil {
				c.release(idx, ws)
				if !recoverLease(idx, err) {
					return
				}
				break // re-claim on the next beat rather than hammering
			}
			al.idx = idx
			act = append(act, al)
			if len(act) > ws.peak {
				ws.peak = len(act)
			}
		}
		if len(act) == 0 {
			if !c.sleep(ctx, idlePoll) {
				return
			}
			continue
		}

		// Heartbeat every active lease that is due, head included: complete
		// long-polls deliberately do not renew (expiry must win against a
		// coordinator that merely polls), so execution outliving the TTL
		// survives only through these re-POSTs.
		stumbled := false
		for i := 0; i < len(act); {
			al := act[i]
			if time.Since(al.renewed) < renewEvery {
				i++
				continue
			}
			if err := c.renewLease(ctx, ws, al); err != nil {
				act = append(act[:i], act[i+1:]...)
				c.release(al.idx, ws)
				if !recoverLease(al.idx, err) {
					return
				}
				stumbled = true
				break
			}
			i++
		}
		if stumbled || len(act) == 0 {
			continue
		}

		// Long-poll the pipeline head.
		head := act[0]
		out, done, err := c.pollLease(ctx, ws, head, wait)
		switch {
		case err != nil:
			act = act[1:]
			c.release(head.idx, ws)
			if !recoverLease(head.idx, err) {
				return
			}
		case done:
			c.finish(head.idx, ws, out.results, out.refs)
			c.observe(ws, head)
			c.log.Info("lease collected",
				obs.KeyLeaseID, head.leaseID, obs.KeyRequestID, head.requestID,
				"worker", ws.base, "cells", head.cells)
			act = act[1:]
		case c.overtaken(head.idx):
			// A hedge partner already delivered this chunk: stop polling and
			// renewing; the worker-side TTL reclaims the redundant lease.
			act = act[1:]
			c.release(head.idx, ws)
		}
	}
}

// sleep waits d, or returns false if the run or context ended first.
func (c *coord) sleep(ctx context.Context, d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-c.done:
		return false
	case <-ctx.Done():
		return false
	}
}

// leaseOut is a collected lease.
type leaseOut struct {
	results []server.WorkResult
	refs    []smtmlp.RefProfile
}

// sendLease delivers one chunk as a lease (202 accept; execution is async
// worker-side). The caller owns the returned activeLease's idx field.
func (c *coord) sendLease(ctx context.Context, ws *workerState, chunk []campaign.Cell, leaseID string) (*activeLease, error) {
	cells := make([]server.WorkCell, len(chunk))
	for i, cell := range chunk {
		cells[i] = server.WorkCell{Fingerprint: cell.Fingerprint, Request: cell.Request}
	}
	// The throughput clock starts before the POST: delivery time is part of
	// what a lease costs on this worker, so it belongs in the EWMA that
	// sizes the next one.
	start := time.Now()
	// Every delivery — including a retry of the same chunk — is a new unit
	// of work on the wire and gets a fresh request ID; the campaign ID stays
	// constant across the whole run.
	requestID := obs.NewRequestID()
	var status server.LeaseStatus
	apiErr, err := c.workPost(ctx, ws, "/v1/work/lease", requestID, server.LeaseRequest{
		LeaseID:      leaseID,
		Instructions: c.instructions,
		Warmup:       c.warmup,
		TTLMillis:    c.opts.LeaseTTL.Milliseconds(),
		Cells:        cells,
	}, &status)
	if err != nil {
		return nil, &transportError{err}
	}
	if apiErr != nil {
		if apiErr.Code == server.CodeWorkerBusy {
			return nil, fmt.Errorf("%w: worker %s busy", errLeaseLost, ws.base)
		}
		return nil, apiErr
	}
	c.log.Info("lease dispatched",
		obs.KeyLeaseID, leaseID, obs.KeyRequestID, requestID,
		"worker", ws.base, "cells", len(cells))
	return &activeLease{leaseID: leaseID, requestID: requestID, cells: len(cells), sent: start, renewed: time.Now()}, nil
}

// renewLease heartbeats one lease: an idempotent cells-free re-POST of its
// lease ID, which the worker answers by resetting the TTL and returning the
// live snapshot. Any structured refusal means the lease is gone worker-side
// (expired and forgotten → the cells-free body fails validation as a new
// lease), so it maps to errLeaseLost rather than a run failure.
func (c *coord) renewLease(ctx context.Context, ws *workerState, al *activeLease) error {
	var status server.LeaseStatus
	apiErr, err := c.workPost(ctx, ws, "/v1/work/lease", al.requestID, server.LeaseRequest{
		LeaseID:   al.leaseID,
		TTLMillis: c.opts.LeaseTTL.Milliseconds(),
	}, &status)
	if err != nil {
		return &transportError{err}
	}
	if apiErr != nil {
		return fmt.Errorf("%w: lease %s gone from worker %s (%v)", errLeaseLost, al.leaseID, ws.base, apiErr)
	}
	switch status.Status {
	case "running", "done":
		al.renewed = time.Now()
		c.renewed.Add(1)
		c.log.Debug("lease renewed",
			obs.KeyLeaseID, al.leaseID, obs.KeyRequestID, al.requestID, "worker", ws.base)
		return nil
	default: // "canceled", "expired"
		return fmt.Errorf("%w: lease %s %s on worker %s", errLeaseLost, al.leaseID, status.Status, ws.base)
	}
}

// pollLease issues one long-poll against a lease. done reports collection;
// (zero, false, nil) means the lease is still running.
func (c *coord) pollLease(ctx context.Context, ws *workerState, al *activeLease, wait time.Duration) (leaseOut, bool, error) {
	var resp server.CompleteResponse
	apiErr, err := c.workPost(ctx, ws, "/v1/work/complete", al.requestID, server.CompleteRequest{
		LeaseID:    al.leaseID,
		WaitMillis: wait.Milliseconds(),
	}, &resp)
	if err != nil {
		return leaseOut{}, false, &transportError{err}
	}
	if apiErr != nil {
		if apiErr.Code == server.CodeUnknownLease {
			return leaseOut{}, false, fmt.Errorf("%w: lease %s gone from worker %s", errLeaseLost, al.leaseID, ws.base)
		}
		return leaseOut{}, false, apiErr
	}
	switch resp.Lease.Status {
	case "done":
		return leaseOut{results: resp.Results, refs: resp.Refs}, true, nil
	case "running":
		return leaseOut{}, false, nil
	default: // "canceled", "expired"
		return leaseOut{}, false, fmt.Errorf("%w: lease %s %s on worker %s", errLeaseLost, al.leaseID, resp.Lease.Status, ws.base)
	}
}

// apiError is a worker's structured error envelope.
type apiError struct {
	Status  int
	Code    string
	Message string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("HTTP %d %s: %s", e.Status, e.Code, e.Message)
}

// countReader counts bytes as they stream through.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// workPost sends one /v1/work request with the negotiated wire encodings:
// the body is gzip-compressed once the worker has advertised X-Work-Gzip
// (the first request goes plain and learns the capability from the
// response), responses are requested gzip-encoded, and complete responses
// are requested as streamed NDJSON — each degrading transparently when the
// worker predates the encoding. It returns (nil, nil) with out decoded on
// a 2xx, the worker's error envelope on any other status, and a plain
// error on a network-level failure. Payload and wire byte counts feed the
// run summary.
func (c *coord) workPost(ctx context.Context, ws *workerState, path, requestID string, in, out any) (*apiError, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return nil, fmt.Errorf("encoding %s body: %w", path, err)
	}
	c.bytesOut.Add(int64(len(body)))
	var rd io.Reader = bytes.NewReader(body)
	gzipped := false
	if !c.opts.NoCompression && ws.gzipOK {
		var zbuf bytes.Buffer
		zw := gzip.NewWriter(&zbuf)
		if _, err := zw.Write(body); err == nil && zw.Close() == nil {
			rd = &zbuf
			gzipped = true
			c.bytesOutWire.Add(int64(zbuf.Len()))
		}
	}
	if !gzipped {
		c.bytesOutWire.Add(int64(len(body)))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ws.base+path, rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	// Correlation IDs: the per-delivery request ID and the run-constant
	// campaign ID, which the worker attaches to its own logs and lease state.
	req.Header.Set(obs.RequestIDHeader, requestID)
	req.Header.Set(obs.CampaignIDHeader, c.runID)
	if gzipped {
		req.Header.Set("Content-Encoding", "gzip")
	}
	// Setting Accept-Encoding explicitly disables the transport's hidden
	// auto-gzip, so the wire counters see what actually crossed the wire
	// (and identity keeps the uncompressed baseline genuinely uncompressed).
	if c.opts.NoCompression {
		req.Header.Set("Accept-Encoding", "identity")
	} else {
		req.Header.Set("Accept-Encoding", "gzip")
	}
	_, isComplete := out.(*server.CompleteResponse)
	if isComplete {
		req.Header.Set("Accept", "application/x-ndjson")
	}
	resp, err := c.opts.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.Header.Get(server.WorkGzipHeader) == "1" {
		ws.gzipOK = true
	}

	wire := &countReader{r: io.LimitReader(resp.Body, 64<<20)}
	defer func() {
		c.bytesInWire.Add(wire.n)
	}()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		data, err := io.ReadAll(wire)
		if err != nil {
			return nil, err
		}
		c.bytesIn.Add(int64(len(data)))
		var env struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		_ = json.Unmarshal(data, &env) // a non-JSON error body still reports the status
		return &apiError{Status: resp.StatusCode, Code: env.Error.Code, Message: env.Error.Message}, nil
	}

	var stream io.Reader = wire
	if resp.Header.Get("Content-Encoding") == "gzip" {
		zr, err := gzip.NewReader(wire)
		if err != nil {
			return nil, fmt.Errorf("decoding %s response: %w", path, err)
		}
		defer zr.Close()
		stream = zr
	}
	payload := &countReader{r: stream}
	defer func() {
		c.bytesIn.Add(payload.n)
	}()
	if out == nil {
		_, err := io.Copy(io.Discard, payload)
		return nil, err
	}
	if isComplete && strings.HasPrefix(resp.Header.Get("Content-Type"), "application/x-ndjson") {
		return nil, decodeCompleteStream(payload, out.(*server.CompleteResponse))
	}
	if err := json.NewDecoder(payload).Decode(out); err != nil {
		return nil, fmt.Errorf("decoding %s response: %w", path, err)
	}
	return nil, nil
}

// decodeCompleteStream reassembles a streamed NDJSON complete response —
// one lease-status line followed by one line per result and ref — into the
// buffered form the rest of the coordinator consumes. Decoding is
// line-at-a-time, so a huge lease never materializes twice in memory.
func decodeCompleteStream(r io.Reader, resp *server.CompleteResponse) error {
	dec := json.NewDecoder(r)
	seen := false
	for {
		var line server.CompleteLine
		if err := dec.Decode(&line); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("decoding complete stream: %w", err)
		}
		switch {
		case line.Lease != nil:
			resp.Lease = *line.Lease
			resp.WaitMillis = line.WaitMillis
			seen = true
		case line.Result != nil:
			resp.Results = append(resp.Results, *line.Result)
		case line.Ref != nil:
			resp.Refs = append(resp.Refs, *line.Ref)
		}
	}
	if !seen {
		return errors.New("decoding complete stream: no lease status line")
	}
	return nil
}

// probe checks worker health with exponential backoff after a transport
// error. True means the worker answered /healthz and the driver may resume.
func (c *coord) probe(ctx context.Context, base string) bool {
	backoff := c.opts.ProbeBackoff
	for i := 0; i < c.opts.ProbeRetries; i++ {
		if !c.sleep(ctx, backoff) {
			return false
		}
		backoff *= 2
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
		if err != nil {
			return false
		}
		resp, err := c.opts.Client.Do(req)
		if err != nil {
			continue
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return true
		}
	}
	return false
}
