// Fleet throughput snapshot: TestFleetPerfSnapshot runs the same campaign
// twice against an in-process 3-worker fleet whose every request pays a
// simulated network round trip, and writes cells/sec plus wire-byte
// accounting for both configurations to -fleet-perf-out (committed as
// BENCH_8.json). The baseline is the pre-adaptive data path — fixed lease
// size, serial dispatch, no compression; the tuned run is what fleet.Run
// does by default — adaptive sizing, pipelined dispatch, gzip. The gate is
// the within-run speedup (tuned cells/sec over baseline cells/sec), which
// is machine-independent: both runs share the host, the injected RTT, and
// the deterministic simulator, so only the dispatch strategy differs. The
// RTT is injected with time.Sleep, which yields the CPU — so pipelining
// shows its overlap even on a single-core runner. Both stores must stay
// byte-identical to single-node execution; that is asserted always, gate or
// not. Without -fleet-perf-out the test skips.
package fleet_test

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"smtmlp/internal/campaign"
	"smtmlp/internal/fleet"
	"smtmlp/internal/store"
)

var (
	fleetPerfOut  = flag.String("fleet-perf-out", "", "write the fleet throughput snapshot JSON (e.g. BENCH_8.json) to this path")
	fleetPerfGate = flag.Float64("fleet-perf-gate", 0, "fail if tuned cells/sec is below this multiple of the baseline's (0 disables; CI uses 1.5)")
)

// fleetPerfSection is one measured fleet configuration.
type fleetPerfSection struct {
	Config           string  `json:"config"`
	Seconds          float64 `json:"seconds"`
	Cells            int     `json:"cells"`
	CellsPerSec      float64 `json:"cells_per_sec"`
	LeasesDispatched int     `json:"leases_dispatched"`
	BytesOut         int64   `json:"bytes_out"`
	BytesOutWire     int64   `json:"bytes_out_wire"`
	BytesIn          int64   `json:"bytes_in"`
	BytesInWire      int64   `json:"bytes_in_wire"`
}

// fleetPerfSnapshot is the BENCH_8.json schema.
type fleetPerfSnapshot struct {
	Schema   string           `json:"schema"`
	Workers  int              `json:"workers"`
	RTTMs    int              `json:"rtt_ms"`
	Budget   uint64           `json:"budget"`
	Warmup   uint64           `json:"warmup"`
	Baseline fleetPerfSection `json:"baseline"`
	Tuned    fleetPerfSection `json:"tuned"`
	// Speedup is tuned cells/sec over baseline cells/sec; WireFraction is
	// tuned response wire bytes over baseline's (gzip's share of the win).
	Speedup      float64 `json:"speedup"`
	WireFraction float64 `json:"wire_fraction"`
}

// rttWorker is an in-process worker whose every request sleeps one simulated
// network round trip before being served. Sleeping yields the scheduler, so
// concurrent requests overlap their RTTs the way real network I/O would.
func rttWorker(t *testing.T, rtt time.Duration) *httptest.Server {
	t.Helper()
	srv := newWorker(t)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(rtt)
		srv.Config.Handler.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestFleetPerfSnapshot(t *testing.T) {
	if *fleetPerfOut == "" {
		t.Skip("no -fleet-perf-out path; fleet throughput snapshot not requested")
	}
	// The RTT is sized to dominate simulation cost even on a single-core
	// host, where one worker's round-trip sleep overlaps another worker's
	// compute: what must differ between the runs is how many round trips
	// each worker serializes, so the round trip has to be the expensive part.
	const (
		budget, warmup = 500, 100
		rtt            = 100 * time.Millisecond
		nWorkers       = 3
	)
	// 150 generated 2-thread mixes x 2 policies = 300 cells, each nearly
	// free to simulate, so the round trips injected above dominate the wall
	// time — exactly the regime where dispatch strategy decides throughput.
	spec := campaign.Spec{
		Name:         "fleet-perf",
		Instructions: budget,
		Warmup:       warmup,
		Policies:     []string{"icount", "mlpflush"},
		Workloads: campaign.WorkloadSpec{
			Generated: &campaign.Generated{Count: 150, Threads: 2, Seed: 11},
		},
	}
	localDir := localGroundTruth(t, spec)

	// run executes the spec against a fresh fleet (cold RefCaches both times,
	// so neither configuration inherits the other's warmup) and returns the
	// measured section. Hedging is disabled to keep the byte accounting an
	// honest function of the dispatch strategy alone.
	run := func(config string, opts fleet.Options) fleetPerfSection {
		workers := make([]string, nWorkers)
		for i := range workers {
			workers[i] = rttWorker(t, rtt).URL
		}
		opts.Workers = workers
		opts.CompleteWait = 250 * time.Millisecond
		opts.StragglerAfter = -1

		dir := t.TempDir()
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()

		start := time.Now()
		sum, err := fleet.Run(context.Background(), st, spec, opts)
		secs := time.Since(start).Seconds()
		if err != nil {
			t.Fatalf("%s run: %v (summary %+v)", config, err, sum)
		}
		if sum.Executed != sum.Total || sum.Failed != 0 {
			t.Fatalf("%s summary %+v", config, sum)
		}
		assertStoresEqual(t, localDir, dir, "after the "+config+" run")
		return fleetPerfSection{
			Config:           config,
			Seconds:          secs,
			Cells:            sum.Executed,
			CellsPerSec:      float64(sum.Executed) / secs,
			LeasesDispatched: sum.LeasesDispatched,
			BytesOut:         sum.BytesOut,
			BytesOutWire:     sum.BytesOutWire,
			BytesIn:          sum.BytesIn,
			BytesInWire:      sum.BytesInWire,
		}
	}

	// The pre-adaptive data path: every lease the old default size, one lease
	// in flight per worker, plain JSON on the wire.
	baseline := run("fixed-serial-plain", fleet.Options{
		LeaseSize:     fleet.DefaultLeaseSize,
		PipelineDepth: 1,
		NoCompression: true,
	})
	// The current defaults: adaptive sizing toward DefaultLeaseTarget,
	// double-buffered dispatch, gzip negotiation.
	tuned := run("adaptive-pipelined-gzip", fleet.Options{})

	snap := fleetPerfSnapshot{
		Schema:   "smtmlp/fleet-perf/v1",
		Workers:  nWorkers,
		RTTMs:    int(rtt / time.Millisecond),
		Budget:   budget,
		Warmup:   warmup,
		Baseline: baseline,
		Tuned:    tuned,
		Speedup:  tuned.CellsPerSec / baseline.CellsPerSec,
	}
	if baseline.BytesInWire > 0 {
		snap.WireFraction = float64(tuned.BytesInWire) / float64(baseline.BytesInWire)
	}

	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(*fleetPerfOut, out, 0o644); err != nil {
		t.Fatalf("writing -fleet-perf-out: %v", err)
	}
	fmt.Printf("fleet-perf: baseline %.1f cells/sec (%d leases, %d wire bytes in)\n",
		baseline.CellsPerSec, baseline.LeasesDispatched, baseline.BytesInWire)
	fmt.Printf("fleet-perf: tuned    %.1f cells/sec (%d leases, %d wire bytes in)\n",
		tuned.CellsPerSec, tuned.LeasesDispatched, tuned.BytesInWire)
	fmt.Printf("fleet-perf: speedup %.2fx, response wire bytes at %.0f%% of baseline\n",
		snap.Speedup, snap.WireFraction*100)

	// Compression is deterministic for a deterministic payload: the tuned
	// run's response bytes must cross the wire strictly smaller than the
	// uncompressed baseline's.
	if tuned.BytesInWire >= baseline.BytesInWire {
		t.Errorf("gzip saved nothing on responses: tuned wire %d >= baseline wire %d",
			tuned.BytesInWire, baseline.BytesInWire)
	}
	if *fleetPerfGate > 0 && snap.Speedup < *fleetPerfGate {
		t.Errorf("fleet throughput gate: tuned/baseline speedup %.2fx below required %.2fx",
			snap.Speedup, *fleetPerfGate)
	}
}
