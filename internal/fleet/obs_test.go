// Correlation-ID propagation across the fleet wire: the request ID a
// coordinator mints per lease delivery must appear in its own structured
// logs, in the worker's lease logs, and in the worker's GET /v1/work
// listing — and a retried chunk must get a fresh request ID under the same
// campaign ID.
package fleet_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"smtmlp"
	"smtmlp/internal/campaign"
	"smtmlp/internal/fleet"
	"smtmlp/internal/obs"
	"smtmlp/internal/server"
	"smtmlp/internal/store"
)

// syncBuf is a concurrency-safe log sink: slog handlers serialize their own
// writes, but the test reads while worker-side timers may still fire.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// logLine is the decoded shape of one JSON log line.
type logLine struct {
	Msg        string `json:"msg"`
	RequestID  string `json:"request_id"`
	CampaignID string `json:"campaign_id"`
	LeaseID    string `json:"lease_id"`
}

// linesWithMsg decodes a JSON log stream and returns the lines with the
// given msg.
func linesWithMsg(t *testing.T, raw, msg string) []logLine {
	t.Helper()
	var out []logLine
	for _, line := range strings.Split(strings.TrimSpace(raw), "\n") {
		if line == "" {
			continue
		}
		var ll logLine
		if err := json.Unmarshal([]byte(line), &ll); err != nil {
			t.Fatalf("log line is not JSON: %s (%v)", line, err)
		}
		if ll.Msg == msg {
			out = append(out, ll)
		}
	}
	return out
}

func TestFleetRequestIDPropagation(t *testing.T) {
	var coordLog, workerLog syncBuf
	coordLogger, err := obs.NewLogger(&coordLog, "json", "debug")
	if err != nil {
		t.Fatal(err)
	}
	workerLogger, err := obs.NewLogger(&workerLog, "json", "debug")
	if err != nil {
		t.Fatal(err)
	}

	worker := server.New(smtmlp.NewEngine(), server.WithLogger(workerLogger))

	// The wrapper snapshots GET /v1/work right after each accepted lease
	// delivery, while the lease is still listed, and fakes the first
	// collection poll as "expired" so the coordinator loses that lease and
	// re-dispatches the chunk.
	var wrapMu sync.Mutex
	var listings []string
	faked := false
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == "POST" && r.URL.Path == "/v1/work/complete" {
			wrapMu.Lock()
			fake := !faked
			faked = true
			wrapMu.Unlock()
			if fake {
				// The coordinator keys only on the status; the (possibly
				// gzipped) request body can be ignored.
				w.Header().Set("Content-Type", "application/json")
				json.NewEncoder(w).Encode(server.CompleteResponse{
					Lease: server.LeaseStatus{Status: "expired"},
				})
				return
			}
		}
		worker.ServeHTTP(w, r)
		if r.Method == "POST" && r.URL.Path == "/v1/work/lease" {
			rec := httptest.NewRecorder()
			worker.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/work", nil))
			wrapMu.Lock()
			listings = append(listings, rec.Body.String())
			wrapMu.Unlock()
		}
	}))
	defer ts.Close()

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	spec := campaign.Spec{
		Name:         "obs-e2e",
		Instructions: 5_000,
		Warmup:       1_000,
		Policies:     []string{"icount"},
		Workloads: campaign.WorkloadSpec{Mixes: [][]string{
			{"mcf", "galgel"}, {"swim", "twolf"},
		}},
	}
	sum, err := fleet.Run(t.Context(), st, spec, fleet.Options{
		Workers:        []string{ts.URL},
		LeaseSize:      2,
		PipelineDepth:  1,
		CompleteWait:   100 * time.Millisecond,
		StragglerAfter: -1,
		Logger:         coordLogger,
	})
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	if sum.Executed != 2 || sum.LeasesRetried == 0 {
		t.Fatalf("summary %+v, want 2 executed with at least one retried lease", sum)
	}

	dispatched := linesWithMsg(t, coordLog.String(), "lease dispatched")
	if len(dispatched) < 2 {
		t.Fatalf("%d 'lease dispatched' coordinator lines, want >= 2 (original + retry)", len(dispatched))
	}

	// One campaign ID across every delivery; a fresh request ID per delivery.
	ids := make(map[string]bool)
	for _, d := range dispatched {
		if d.CampaignID != dispatched[0].CampaignID || d.CampaignID == "" {
			t.Fatalf("campaign IDs differ across deliveries: %q vs %q", d.CampaignID, dispatched[0].CampaignID)
		}
		if d.RequestID == "" || ids[d.RequestID] {
			t.Fatalf("request ID %q missing or reused across deliveries", d.RequestID)
		}
		ids[d.RequestID] = true
	}

	// The retry lost a lease: the requeue is logged under the campaign ID.
	if lost := linesWithMsg(t, coordLog.String(), "lease lost; chunk requeued"); len(lost) == 0 {
		t.Fatal("no 'lease lost; chunk requeued' line after the faked expiry")
	}

	// Worker side: every delivery's request ID appears on its lease-accepted
	// log line together with the coordinator's campaign ID.
	accepted := linesWithMsg(t, workerLog.String(), "lease accepted")
	if len(accepted) != len(dispatched) {
		t.Fatalf("worker logged %d accepted leases, coordinator dispatched %d", len(accepted), len(dispatched))
	}
	for _, a := range accepted {
		if !ids[a.RequestID] {
			t.Fatalf("worker 'lease accepted' request_id %q never dispatched by the coordinator", a.RequestID)
		}
		if a.CampaignID != dispatched[0].CampaignID {
			t.Fatalf("worker campaign_id %q, coordinator %q", a.CampaignID, dispatched[0].CampaignID)
		}
		if a.LeaseID == "" {
			t.Fatal("worker 'lease accepted' line has no lease_id")
		}
	}

	// The GET /v1/work listing echoes each delivery's request ID while the
	// lease is held.
	wrapMu.Lock()
	allListings := strings.Join(listings, "\n")
	wrapMu.Unlock()
	for id := range ids {
		if !strings.Contains(allListings, `"request_id":"`+id+`"`) {
			t.Fatalf("request ID %s missing from the GET /v1/work listings:\n%s", id, allListings)
		}
	}
}
