package mlp

// LLSR is the long-latency shift register of Section 4.2 (Figure 3).
//
// One LLSR exists per hardware thread and has as many entries as the
// thread's ROB share. On every instruction commit the register shifts one
// position from tail to head and a new bit enters at the tail: 1 if the
// committed instruction is a long-latency load, 0 otherwise. Alongside each
// bit the LLSR records the committing load's PC so the MLP distance
// predictor entry of that load can be updated when its bit reaches the head.
//
// When a 1 reaches the head, the MLP distance is the bit position of the
// last (youngest) 1 found when reading the LLSR from head to tail — i.e. the
// number of instructions one must fetch past the head load to cover every
// long-latency load that could overlap with it within one ROB worth of
// instructions. In the worked example of Figure 3 this distance is 6.
type LLSR struct {
	bits []bool
	pcs  []uint64
	head int // index of the oldest entry; the ring grows towards the tail
	n    int // number of valid entries (fills up at the start of execution)
}

// NewLLSR returns an LLSR with size entries (the paper uses ROB size divided
// by the number of threads; its characterization runs use 128).
func NewLLSR(size int) *LLSR {
	if size <= 0 {
		size = 128
	}
	return &LLSR{bits: make([]bool, size), pcs: make([]uint64, size)}
}

// Size returns the capacity of the shift register.
func (l *LLSR) Size() int { return len(l.bits) }

// Commit shifts the register and inserts the new bit at the tail. If the bit
// shifted out of the head was a 1, Commit returns that load's PC and its
// measured MLP distance (0 means no MLP: no other long-latency load within
// the register).
func (l *LLSR) Commit(longLatency bool, pc uint64) (headPC uint64, distance int, update bool) {
	if l.n < len(l.bits) {
		// Register still filling: insert at tail, nothing leaves yet.
		i := (l.head + l.n) % len(l.bits)
		l.bits[i] = longLatency
		l.pcs[i] = pc
		l.n++
		return 0, 0, false
	}
	// Full: the head entry leaves.
	outBit := l.bits[l.head]
	outPC := l.pcs[l.head]
	if outBit {
		update = true
		headPC = outPC
		distance = l.lastOneDistance()
	}
	l.bits[l.head] = longLatency
	l.pcs[l.head] = pc
	l.head = (l.head + 1) % len(l.bits)
	return headPC, distance, update
}

// lastOneDistance scans from just past the head towards the tail and returns
// the position (1-based distance from the head) of the youngest 1, or 0 if
// none is set. It is called just before the head entry is replaced, so
// position i corresponds to the instruction committed i instructions after
// the head load.
func (l *LLSR) lastOneDistance() int {
	dist := 0
	for i := 1; i < len(l.bits); i++ {
		if l.bits[(l.head+i)%len(l.bits)] {
			dist = i
		}
	}
	return dist
}

// DistancePredictor is the PC-indexed MLP distance predictor of Section 4.2:
// a last-value predictor whose entries hold the most recently observed MLP
// distance for a static long-latency load. The paper's configuration is 2K
// entries of 7 bits (distances up to the per-thread ROB share).
type DistancePredictor struct {
	dist  []uint16
	valid []bool
	max   uint16
}

// NewDistancePredictor returns a predictor with entries slots whose stored
// distances saturate at maxDistance. The paper's configuration is
// NewDistancePredictor(2048, 128).
func NewDistancePredictor(entries, maxDistance int) *DistancePredictor {
	if entries <= 0 {
		entries = 2048
	}
	if maxDistance <= 0 {
		maxDistance = 128
	}
	return &DistancePredictor{
		dist:  make([]uint16, entries),
		valid: make([]bool, entries),
		max:   uint16(maxDistance),
	}
}

// idx maps a 4-byte-aligned load PC onto the table.
func (p *DistancePredictor) idx(pc uint64) int { return int((pc >> 2) % uint64(len(p.dist))) }

// Predict returns the predicted MLP distance for the long-latency load at
// pc. Zero means "no MLP expected"; loads never seen by the trainer predict
// zero, which makes the MLP-aware policies degenerate to plain stall/flush —
// the paper's conservative default.
func (p *DistancePredictor) Predict(pc uint64) int {
	i := p.idx(pc)
	if !p.valid[i] {
		return 0
	}
	return int(p.dist[i])
}

// Update stores the distance observed by the LLSR for the load at pc.
func (p *DistancePredictor) Update(pc uint64, distance int) {
	i := p.idx(pc)
	d := uint16(distance)
	if d > p.max {
		d = p.max
	}
	p.dist[i] = d
	p.valid[i] = true
}

// BinaryPredictor is the 1-bit-per-entry MLP predictor used by the
// alternative fetch policies of Section 6.5 (alternatives c and e): each
// entry records whether MLP was observed at the previous long-latency miss
// of the same static load.
type BinaryPredictor struct {
	bit []bool
}

// NewBinaryPredictor returns a predictor with entries slots (2K in the
// paper).
func NewBinaryPredictor(entries int) *BinaryPredictor {
	if entries <= 0 {
		entries = 2048
	}
	return &BinaryPredictor{bit: make([]bool, entries)}
}

// Predict reports whether MLP is predicted for the long-latency load at pc.
func (p *BinaryPredictor) Predict(pc uint64) bool { return p.bit[(pc>>2)%uint64(len(p.bit))] }

// Update records whether MLP was observed for the load at pc.
func (p *BinaryPredictor) Update(pc uint64, hadMLP bool) { p.bit[(pc>>2)%uint64(len(p.bit))] = hadMLP }
