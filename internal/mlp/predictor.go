// Package mlp implements the memory-level-parallelism machinery that is the
// paper's contribution (Sections 4.1 and 4.2):
//
//   - a long-latency load predictor using the miss-pattern scheme of
//     Limousin et al. (a last-value predictor for the number of hits between
//     two long-latency misses of the same static load, 2K entries x 6 bits);
//   - the long-latency shift register (LLSR), a per-thread bit history of
//     committed instructions used to measure MLP distances at commit time;
//   - the MLP distance predictor (2K entries x 7 bits, last-value), which
//     predicts how far down the dynamic instruction stream fetch must
//     continue past a long-latency load to expose the maximum MLP the ROB
//     can exploit;
//   - a binary MLP predictor (2K entries x 1 bit) used by the alternative
//     fetch policies of Section 6.5.
//
// All predictor tables are indexed by load PC, one instance per hardware
// thread, exactly as the paper assumes.
package mlp

// MissPatternPredictor predicts, in the processor front end, whether a load
// is going to be a long-latency load (an L3 or D-TLB miss).
//
// Each entry records the number of hits by the same static load between the
// two most recent long-latency misses, and the number of hits since the last
// long-latency miss. When the latter reaches the former, the next execution
// of the load is predicted long-latency. Entries saturate at 2^bits - 1 hits
// (6 bits in the paper, total cost 12Kbits for 2K entries).
type MissPatternPredictor struct {
	period []uint16 // hits observed between the last two LLL misses
	count  []uint16 // hits since the last LLL miss
	valid  []bool
	max    uint16

	// Statistics (counted at update time, against the prediction that the
	// front end would have made for this execution).
	Predictions     uint64 // loads seen
	Correct         uint64 // correct hit/miss predictions
	Misses          uint64 // actual long-latency loads seen
	MissesPredicted uint64 // actual LLLs that were predicted as LLLs
}

// NewMissPatternPredictor returns a predictor with entries table slots and
// counters of the given bit width. The paper's configuration is
// NewMissPatternPredictor(2048, 6).
func NewMissPatternPredictor(entries, bits int) *MissPatternPredictor {
	if entries <= 0 {
		entries = 2048
	}
	if bits <= 0 || bits > 15 {
		bits = 6
	}
	return &MissPatternPredictor{
		period: make([]uint16, entries),
		count:  make([]uint16, entries),
		valid:  make([]bool, entries),
		max:    uint16(1)<<uint(bits) - 1,
	}
}

// idx maps a 4-byte-aligned load PC onto the table.
func (p *MissPatternPredictor) idx(pc uint64) int { return int((pc >> 2) % uint64(len(p.period))) }

// Predict reports whether the next execution of the load at pc is predicted
// to be a long-latency load: exactly when the number of hits since the last
// long-latency miss equals the recorded hit count between the two most
// recent misses (the paper's wording is "in case the latter matches the
// former"). The equality test matters: a load whose misses stop recurring
// (for example because the prefetcher now covers it) overshoots its recorded
// period and stops being predicted long-latency, instead of sticking at a
// stale miss prediction forever.
//
// Predict does not modify predictor state and may be called from the front
// end at every fetch of the load.
func (p *MissPatternPredictor) Predict(pc uint64) bool {
	i := p.idx(pc)
	return p.valid[i] && p.count[i] == p.period[i]
}

// Update trains the predictor with the actual outcome of an executed load at
// pc and returns what the predictor would have predicted for it (so callers
// can account accuracy without a separate Predict call).
func (p *MissPatternPredictor) Update(pc uint64, longLatency bool) (predicted bool) {
	i := p.idx(pc)
	predicted = p.valid[i] && p.count[i] == p.period[i]

	p.Predictions++
	if predicted == longLatency {
		p.Correct++
	}
	if longLatency {
		p.Misses++
		if predicted {
			p.MissesPredicted++
		}
	}

	if longLatency {
		p.period[i] = p.count[i]
		p.count[i] = 0
		p.valid[i] = true
	} else if p.count[i] < p.max {
		p.count[i]++
	}
	return predicted
}

// Accuracy returns the fraction of correct hit/miss predictions per load
// (Figure 6's metric), or 1 when no loads have been observed.
func (p *MissPatternPredictor) Accuracy() float64 {
	if p.Predictions == 0 {
		return 1
	}
	return float64(p.Correct) / float64(p.Predictions)
}

// MissCoverage returns the fraction of actual long-latency loads that were
// predicted long-latency (the secondary metric discussed with Figure 6).
func (p *MissPatternPredictor) MissCoverage() float64 {
	if p.Misses == 0 {
		return 1
	}
	return float64(p.MissesPredicted) / float64(p.Misses)
}
