package mlp

import (
	"testing"
	"testing/quick"
)

// --- LLSR -----------------------------------------------------------------

// TestLLSRFigure3Example reproduces the paper's worked example: when a
// long-latency load reaches the head of the LLSR and the youngest other
// long-latency load is 6 positions behind it, the MLP distance is 6.
func TestLLSRFigure3Example(t *testing.T) {
	l := NewLLSR(8)
	pattern := []bool{true, false, false, false, false, false, true, false}
	for i, bit := range pattern {
		pc := uint64(0)
		if bit {
			pc = 0x1000 + uint64(i)
		}
		if _, _, update := l.Commit(bit, pc); update {
			t.Fatal("update fired while register still filling")
		}
	}
	headPC, dist, update := l.Commit(false, 0)
	if !update {
		t.Fatal("head 1-bit did not trigger an update")
	}
	if headPC != 0x1000 {
		t.Fatalf("head PC %#x, want 0x1000", headPC)
	}
	if dist != 6 {
		t.Fatalf("MLP distance %d, want 6 (Figure 3)", dist)
	}
}

func TestLLSRIsolatedLoadDistanceZero(t *testing.T) {
	l := NewLLSR(8)
	l.Commit(true, 0x2000)
	for i := 0; i < 7; i++ {
		l.Commit(false, 0)
	}
	_, dist, update := l.Commit(false, 0)
	if !update || dist != 0 {
		t.Fatalf("isolated load: update=%t dist=%d, want true/0", update, dist)
	}
}

func TestLLSRZeroHeadNoUpdate(t *testing.T) {
	l := NewLLSR(4)
	for i := 0; i < 16; i++ {
		if _, _, update := l.Commit(false, 0); update {
			t.Fatal("update fired with no long-latency loads at all")
		}
	}
}

func TestLLSRAdjacentLoads(t *testing.T) {
	l := NewLLSR(4)
	l.Commit(true, 0xA)
	l.Commit(true, 0xB)
	l.Commit(false, 0)
	l.Commit(false, 0)
	headPC, dist, update := l.Commit(false, 0)
	if !update || headPC != 0xA || dist != 1 {
		t.Fatalf("adjacent loads: update=%t pc=%#x dist=%d, want true/0xA/1", update, headPC, dist)
	}
	// Next commit pushes out the second load; no other 1s remain.
	headPC, dist, update = l.Commit(false, 0)
	if !update || headPC != 0xB || dist != 0 {
		t.Fatalf("second load: update=%t pc=%#x dist=%d, want true/0xB/0", update, headPC, dist)
	}
}

func TestLLSRMaxDistance(t *testing.T) {
	l := NewLLSR(8)
	l.Commit(true, 0x1)
	for i := 0; i < 6; i++ {
		l.Commit(false, 0)
	}
	l.Commit(true, 0x2) // tail position: distance 7 from head
	_, dist, update := l.Commit(false, 0)
	if !update || dist != 7 {
		t.Fatalf("tail-position second load: dist=%d, want 7", dist)
	}
}

func TestLLSRSizeDefault(t *testing.T) {
	if NewLLSR(0).Size() != 128 {
		t.Fatal("default LLSR size not 128")
	}
	if NewLLSR(64).Size() != 64 {
		t.Fatal("explicit LLSR size ignored")
	}
}

func TestQuickLLSRDistanceBounds(t *testing.T) {
	f := func(bits []bool) bool {
		l := NewLLSR(16)
		for i, b := range bits {
			_, dist, update := l.Commit(b, uint64(i))
			if dist < 0 || dist > 15 {
				return false
			}
			if update && dist == 15 && !b {
				// fine; just exercising bounds
				_ = update
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLLSRUpdateOnlyOnHeadOne: an update fires exactly when the bit
// that left the register was a 1, once the register is full.
func TestQuickLLSRUpdateMatchesHistory(t *testing.T) {
	f := func(bits []bool) bool {
		const size = 8
		l := NewLLSR(size)
		var history []bool
		for i, b := range bits {
			_, _, update := l.Commit(b, uint64(i))
			history = append(history, b)
			leaving := len(history) - size - 1
			wantUpdate := leaving >= 0 && history[leaving]
			if update != wantUpdate {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- distance predictor -----------------------------------------------------

func TestDistancePredictorLastValue(t *testing.T) {
	p := NewDistancePredictor(2048, 128)
	const pc = 0x4000
	if p.Predict(pc) != 0 {
		t.Fatal("untrained entry did not predict 0")
	}
	p.Update(pc, 42)
	if p.Predict(pc) != 42 {
		t.Fatalf("predicted %d, want 42", p.Predict(pc))
	}
	p.Update(pc, 7)
	if p.Predict(pc) != 7 {
		t.Fatalf("last-value semantics violated: predicted %d, want 7", p.Predict(pc))
	}
}

func TestDistancePredictorSaturates(t *testing.T) {
	p := NewDistancePredictor(16, 128)
	p.Update(0x10, 100000)
	if p.Predict(0x10) != 128 {
		t.Fatalf("distance did not saturate: %d", p.Predict(0x10))
	}
}

func TestDistancePredictorAliasing(t *testing.T) {
	p := NewDistancePredictor(16, 128)
	// PCs 4 bytes apart; table indexed by pc>>2 modulo 16: pc and pc+64*4
	// alias.
	p.Update(0x100, 10)
	p.Update(0x100+16*4, 20)
	if p.Predict(0x100) != 20 {
		t.Fatalf("aliased entry not shared: %d", p.Predict(0x100))
	}
}

func TestQuickDistancePredictorBounds(t *testing.T) {
	p := NewDistancePredictor(64, 128)
	f := func(pc uint64, d uint16) bool {
		p.Update(pc, int(d))
		v := p.Predict(pc)
		return v >= 0 && v <= 128
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- binary predictor -------------------------------------------------------

func TestBinaryPredictor(t *testing.T) {
	p := NewBinaryPredictor(2048)
	const pc = 0x8000
	if p.Predict(pc) {
		t.Fatal("untrained binary predictor predicts MLP")
	}
	p.Update(pc, true)
	if !p.Predict(pc) {
		t.Fatal("did not learn MLP")
	}
	p.Update(pc, false)
	if p.Predict(pc) {
		t.Fatal("did not unlearn MLP")
	}
}

// --- miss pattern predictor ---------------------------------------------------

func TestMissPatternPerfectPeriod(t *testing.T) {
	p := NewMissPatternPredictor(2048, 6)
	const pc = 0x1000
	// Period 8: 7 hits then a miss. After one full period of training the
	// predictor should be exact.
	correct := 0
	total := 0
	for i := 0; i < 160; i++ {
		miss := i%8 == 7
		predicted := p.Update(pc, miss)
		if i >= 16 {
			total++
			if predicted == miss {
				correct++
			}
		}
	}
	if correct != total {
		t.Fatalf("periodic pattern: %d/%d correct", correct, total)
	}
}

func TestMissPatternAlwaysMiss(t *testing.T) {
	p := NewMissPatternPredictor(2048, 6)
	for i := 0; i < 10; i++ {
		p.Update(0x10, true)
	}
	if !p.Predict(0x10) {
		t.Fatal("always-missing load not predicted to miss")
	}
}

func TestMissPatternNeverMiss(t *testing.T) {
	p := NewMissPatternPredictor(2048, 6)
	for i := 0; i < 1000; i++ {
		if p.Update(0x10, false) {
			t.Fatal("never-missing load predicted to miss")
		}
	}
}

func TestMissPatternOvershootStopsPredicting(t *testing.T) {
	// Train a period, then let the load stop missing (e.g. a prefetcher now
	// covers it): once the hit counter overshoots the recorded period, the
	// predictor must stop predicting long-latency.
	p := NewMissPatternPredictor(16, 6)
	for i := 0; i < 32; i++ {
		p.Update(0x10, i%8 == 7) // learn period 7
	}
	for i := 0; i < 20; i++ {
		p.Update(0x10, false) // misses stop
	}
	if p.Predict(0x10) {
		t.Fatal("stale miss prediction persisted after the period was overshot")
	}
}

func TestMissPatternCounterSaturationNoWrap(t *testing.T) {
	p := NewMissPatternPredictor(16, 6) // counters saturate at 63
	p.Update(0x10, true)                // period 0
	for i := 0; i < 200; i++ {
		p.Update(0x10, false)
	}
	// The counter must saturate, not wrap back around to the period value.
	if p.Predict(0x10) {
		t.Fatal("hit counter wrapped and re-triggered a miss prediction")
	}
}

func TestMissPatternAccuracyStats(t *testing.T) {
	p := NewMissPatternPredictor(2048, 6)
	for i := 0; i < 80; i++ {
		p.Update(0x40, i%8 == 7)
	}
	if p.Predictions != 80 {
		t.Fatalf("Predictions = %d, want 80", p.Predictions)
	}
	if p.Misses != 10 {
		t.Fatalf("Misses = %d, want 10", p.Misses)
	}
	if acc := p.Accuracy(); acc < 0.9 {
		t.Fatalf("accuracy %v too low for a perfectly periodic load", acc)
	}
	if cov := p.MissCoverage(); cov < 0.8 {
		t.Fatalf("miss coverage %v too low", cov)
	}
}

func TestMissPatternEmptyStats(t *testing.T) {
	p := NewMissPatternPredictor(2048, 6)
	if p.Accuracy() != 1 || p.MissCoverage() != 1 {
		t.Fatal("empty predictor stats not 1")
	}
}

func TestDefaultSizes(t *testing.T) {
	if p := NewMissPatternPredictor(0, 0); len(p.period) != 2048 || p.max != 63 {
		t.Fatal("miss pattern defaults wrong")
	}
	if p := NewDistancePredictor(0, 0); len(p.dist) != 2048 || p.max != 128 {
		t.Fatal("distance predictor defaults wrong")
	}
	if p := NewBinaryPredictor(0); len(p.bit) != 2048 {
		t.Fatal("binary predictor default wrong")
	}
}
