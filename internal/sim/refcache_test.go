package sim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"smtmlp/internal/core"
)

// fakeProfile builds a trivially valid profile for cache plumbing tests.
func fakeProfile(name string) *STProfile {
	return &STProfile{Benchmark: name, Result: core.Result{IPC: []float64{1}}}
}

func TestRefCacheLRUBound(t *testing.T) {
	c := NewRefCache(2)
	var computes int64
	get := func(key string) {
		t.Helper()
		_, err := c.getOrCompute(context.Background(), key, func(context.Context) (*STProfile, error) {
			atomic.AddInt64(&computes, 1)
			return fakeProfile(key), nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	get("a")
	get("b")
	get("c") // evicts a (least recently used)
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want bound 2", c.Len())
	}
	get("b") // still resident: no recompute
	if computes != 3 {
		t.Fatalf("computes = %d after b rehit, want 3", computes)
	}
	get("a") // evicted: recomputes (and evicts c, the LRU after b's touch)
	if computes != 4 {
		t.Fatalf("computes = %d after a reload, want 4", computes)
	}
	get("c")
	if computes != 5 {
		t.Fatalf("computes = %d: touch on hit did not refresh b/a recency", computes)
	}
	_, misses, evictions := func() (uint64, uint64, uint64) { return c.Stats() }()
	if misses != 5 || evictions != 3 {
		t.Fatalf("stats misses=%d evictions=%d, want 5 and 3", misses, evictions)
	}
}

func TestRefCacheSingleFlight(t *testing.T) {
	c := NewRefCache(8)
	var computes int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := c.getOrCompute(context.Background(), "k", func(context.Context) (*STProfile, error) {
				atomic.AddInt64(&computes, 1)
				<-release
				return fakeProfile("k"), nil
			})
			if err != nil || p == nil {
				t.Errorf("getOrCompute: %v %v", p, err)
			}
		}()
	}
	close(release)
	wg.Wait()
	if computes != 1 {
		t.Fatalf("concurrent same-key lookups ran %d computations, want 1", computes)
	}
}

func TestRefCacheWaiterCancellation(t *testing.T) {
	c := NewRefCache(8)
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.getOrCompute(context.Background(), "k", func(context.Context) (*STProfile, error) {
			close(started)
			<-release
			return fakeProfile("k"), nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.getOrCompute(ctx, "k", func(context.Context) (*STProfile, error) {
		return fakeProfile("k"), nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter returned %v, want context.Canceled", err)
	}
	close(release)
}

func TestRefCacheFailedComputeVacatesSlot(t *testing.T) {
	c := NewRefCache(8)
	boom := errors.New("boom")
	if _, err := c.getOrCompute(context.Background(), "k", func(context.Context) (*STProfile, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	// The failed slot must not poison later lookups.
	p, err := c.getOrCompute(context.Background(), "k", func(context.Context) (*STProfile, error) {
		return fakeProfile("k"), nil
	})
	if err != nil || p == nil {
		t.Fatalf("slot poisoned after failed compute: %v %v", p, err)
	}
	if c.Len() != 1 {
		t.Fatalf("cache Len %d, want 1", c.Len())
	}
}

func TestRefKeyCoversFullConfig(t *testing.T) {
	base := core.DefaultConfig(2)
	key := RefKey(base, "gcc", 1000, 250)
	if RefKey(base, "gcc", 1000, 250) != key {
		t.Fatal("RefKey not deterministic")
	}
	// Fields the historical hand-enumerated key ignored must now matter.
	variants := []core.Config{base, base, base, base}
	variants[0].Mem.L2.SizeBytes *= 2
	variants[1].Bpred.HistoryBits = 1
	variants[2].MispredictPenalty++
	variants[3].Mem.SerializeLLL = true
	for i, v := range variants {
		if RefKey(v, "gcc", 1000, 250) == key {
			t.Errorf("variant %d: config change not reflected in key", i)
		}
	}
	if RefKey(base, "mcf", 1000, 250) == key {
		t.Error("benchmark not reflected in key")
	}
	if RefKey(base, "gcc", 2000, 250) == key || RefKey(base, "gcc", 1000, 500) == key {
		t.Error("measurement budget not reflected in key")
	}
	for i := 0; i < len(key); i++ {
		if key[i] == '\n' {
			t.Fatal("key contains newline")
		}
	}
	_ = fmt.Sprintf("%q", key)
}

func TestRefCacheExportSeed(t *testing.T) {
	c := NewRefCache(8)
	ctx := context.Background()
	for _, key := range []string{"zz", "aa", "mm"} {
		key := key
		if _, err := c.getOrCompute(ctx, key, func(context.Context) (*STProfile, error) {
			return fakeProfile(key), nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	recs := c.Export()
	if len(recs) != 3 {
		t.Fatalf("exported %d records, want 3", len(recs))
	}
	for i, want := range []string{"aa", "mm", "zz"} {
		if recs[i].Key != want {
			t.Fatalf("export[%d].Key = %q, want %q (sorted)", i, recs[i].Key, want)
		}
		if recs[i].Profile.Benchmark != want {
			t.Fatalf("export[%d] carries profile %q", i, recs[i].Profile.Benchmark)
		}
	}

	// Seed a fresh cache: entries are resident (hits, not recomputation).
	fresh := NewRefCache(8)
	if n := fresh.Seed(recs); n != 3 {
		t.Fatalf("seeded %d, want 3", n)
	}
	if fresh.Len() != 3 {
		t.Fatalf("seeded cache Len %d", fresh.Len())
	}
	prof, err := fresh.getOrCompute(ctx, "mm", func(context.Context) (*STProfile, error) {
		t.Fatal("seeded entry recomputed")
		return nil, nil
	})
	if err != nil || prof.Benchmark != "mm" {
		t.Fatalf("seeded lookup: %v %v", prof, err)
	}
	hits, misses, _ := fresh.Stats()
	if hits != 1 || misses != 0 {
		t.Fatalf("stats hits=%d misses=%d after seeded lookup", hits, misses)
	}

	// Seeding existing keys is a no-op; the resident profile wins.
	if n := fresh.Seed([]RefRecord{{Key: "mm", Profile: *fakeProfile("imposter")}}); n != 0 {
		t.Fatalf("re-seed inserted %d", n)
	}

	// Seeding respects the LRU bound.
	tiny := NewRefCache(2)
	if n := tiny.Seed(recs); n != 3 {
		t.Fatalf("bounded seed inserted %d, want 3 (with evictions)", n)
	}
	if tiny.Len() != 2 {
		t.Fatalf("bounded cache Len %d, want 2", tiny.Len())
	}
	if _, _, evictions := tiny.Stats(); evictions != 1 {
		t.Fatalf("bounded seed evicted %d, want 1", evictions)
	}
}

func TestConfigHashCoversEveryField(t *testing.T) {
	base := core.DefaultConfig(2)
	h := ConfigHash(base)
	if h != ConfigHash(base) {
		t.Fatal("ConfigHash not deterministic")
	}
	mut := base
	mut.Mem.L2.SizeBytes *= 2
	if ConfigHash(mut) == h {
		t.Fatal("deep memory-hierarchy change did not change the hash")
	}
	mut = base
	mut.Bpred.HistoryBits++
	if ConfigHash(mut) == h {
		t.Fatal("branch predictor change did not change the hash")
	}
}
