package sim

import (
	"testing"

	"smtmlp/internal/bench"
	"smtmlp/internal/core"
	"smtmlp/internal/policy"
)

// TestSmokeSingleThread runs one benchmark briefly and checks basic sanity.
func TestSmokeSingleThread(t *testing.T) {
	r := NewRunner(Params{Instructions: 50_000})
	for _, b := range []string{"mcf", "swim", "gcc"} {
		res := r.RunSingle(core.DefaultConfig(1), b)
		if res.Committed[0] < 50_000 {
			t.Fatalf("%s: committed %d < budget", b, res.Committed[0])
		}
		ipc := res.IPC[0]
		if ipc <= 0 || ipc > 4 {
			t.Fatalf("%s: implausible IPC %.3f", b, ipc)
		}
		t.Logf("%s: ipc=%.3f lll/1k=%.2f mlp=%.2f bmr=%.3f cycles=%d",
			b, ipc, res.LLLPer1K[0], res.MLP[0], res.BranchMispredictRate[0], res.Cycles)
	}
}

// TestSmokeTwoThread runs a two-thread workload under every paper policy.
func TestSmokeTwoThread(t *testing.T) {
	r := NewRunner(Params{Instructions: 30_000})
	w := bench.Workload{Benchmarks: []string{"mcf", "galgel"}, Class: bench.MLPWorkload}
	for _, k := range policy.Paper() {
		res := r.RunWorkload(core.DefaultConfig(2), w, k, nil)
		if res.STP <= 0 || res.ANTT <= 0 {
			t.Fatalf("%s: bad metrics STP=%.3f ANTT=%.3f", k, res.STP, res.ANTT)
		}
		t.Logf("%-9s STP=%.3f ANTT=%.3f ipc=[%.3f %.3f] rob=[%.0f %.0f] flushes=%v cpiST=[%.2f %.2f]",
			k, res.STP, res.ANTT, res.Result.IPC[0], res.Result.IPC[1],
			res.Result.AvgROBOccupancy[0], res.Result.AvgROBOccupancy[1],
			res.Result.Flushes, res.PerThread[0].CPIST, res.PerThread[1].CPIST)
	}
}
