package sim

import (
	"context"
	"sync"

	"smtmlp/internal/bench"
	"smtmlp/internal/core"
	"smtmlp/internal/policy"
)

// BatchRequest is one multiprogrammed simulation in a batch: a configuration
// point, a workload, a fetch policy and an optional resource limiter. Tag is
// caller-chosen and echoed on the result.
type BatchRequest struct {
	Tag      string
	Config   core.Config
	Workload bench.Workload
	Kind     policy.Kind
	Limiter  core.Limiter
	// TraceInterval > 0 enables interval tracing for this request alone;
	// 0 inherits the runner's Params.TraceInterval.
	TraceInterval int64
}

// BatchResult pairs a finished request with its outcome. Index is the
// request's position in the submitted slice, so callers can restore
// deterministic order regardless of completion order; exactly one
// BatchResult is delivered per request.
type BatchResult struct {
	Index int
	Tag   string
	Res   WorkloadResult
	Err   error
}

// RunBatch fans the requests over a worker pool bounded by the runner's
// Parallelism and returns a channel of results in completion order. The
// channel is buffered for the whole batch and always closes after exactly
// len(reqs) results, so a batch drains cleanly even if the caller stops
// reading or the context is canceled; once ctx is done, requests not yet
// started complete immediately with Err = ctx.Err() (simulations already in
// flight run to completion — an individual simulation is at most one
// laptop-scale unit of work).
//
// Single-threaded references resolve through the runner's RefCache, so a
// policy x workload cross-product computes each reference once no matter
// how the pool interleaves.
func (r *Runner) RunBatch(ctx context.Context, reqs []BatchRequest) <-chan BatchResult {
	out := make(chan BatchResult, len(reqs))
	workers := r.Params.workers()
	if workers > len(reqs) {
		workers = len(reqs)
	}
	r.queued.Add(int64(len(reqs)))

	idx := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				req := reqs[i]
				br := BatchResult{Index: i, Tag: req.Tag}
				if err := ctx.Err(); err != nil {
					br.Err = err
				} else {
					every := req.TraceInterval
					if every == 0 {
						every = r.Params.TraceInterval
					}
					br.Res, br.Err = r.RunWorkloadTracedCtx(ctx, req.Config, req.Workload, req.Kind, req.Limiter, every)
				}
				r.queued.Add(-1)
				out <- br
			}
		}()
	}
	go func() {
		for i := range reqs {
			idx <- i
		}
		close(idx)
		wg.Wait()
		close(out)
	}()
	return out
}
