// Package sim drives simulations for the experiment harness: it builds
// cores from benchmark names, runs single-threaded reference simulations
// with CPI checkpoint profiles, runs multiprogrammed workloads under the
// paper's stopping rule, and computes STP/ANTT following the paper's
// methodology ("the single-threaded CPI_ST used in the formulas then equals
// single-threaded CPI after x_i million instructions").
//
// A Runner draws single-threaded reference profiles from a RefCache — a
// concurrency-safe, size-bounded cache keyed by benchmark, budget and a full
// configuration hash — which may be private to the Runner or shared between
// any number of concurrent Runners (the public smtmlp.Engine shares one per
// engine, or across engines via smtmlp.WithCache). Simulation fan-out goes
// through RunBatch, which spreads requests over a bounded worker pool with
// context cancellation; each simulation itself is single-threaded and
// deterministic.
package sim

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"smtmlp/internal/bench"
	"smtmlp/internal/core"
	"smtmlp/internal/metrics"
	"smtmlp/internal/policy"
	"smtmlp/internal/trace"
)

// Params bundles the knobs shared by all experiments.
type Params struct {
	// Instructions is the per-thread instruction budget: multiprogram runs
	// stop when the first thread commits this many (the paper uses 200M
	// SimPoints; the harness defaults to a laptop-scale budget).
	Instructions uint64

	// Warmup is the number of instructions executed before statistics are
	// reset (SimPoint-style warm-up: caches, TLBs and predictors train;
	// compulsory misses fall outside the measurement). 0 means
	// Instructions/4.
	Warmup uint64

	// Parallelism bounds concurrent simulations; 0 means GOMAXPROCS.
	Parallelism int

	// TraceInterval, when > 0, enables the core's interval-trace recorder on
	// single and multiprogram runs: one per-thread sample every TraceInterval
	// cycles, carried on core.Result.Intervals. Single-threaded reference
	// runs never trace — their results are cached and persisted under keys
	// that deliberately exclude this knob, so reference bytes are identical
	// whether or not a caller asked for traces.
	TraceInterval int64
}

// DefaultParams returns the harness defaults.
func DefaultParams() Params {
	return Params{Instructions: 300_000}
}

// EffectiveWarmup resolves the warm-up budget: Warmup when set, otherwise
// a quarter of the instruction budget. It is the single source of the
// defaulting rule for callers that report or key on the warm-up.
func (p Params) EffectiveWarmup() uint64 {
	if p.Warmup > 0 {
		return p.Warmup
	}
	return p.Instructions / 4
}

func (p Params) warmup() uint64 { return p.EffectiveWarmup() }

func (p Params) workers() int {
	if p.Parallelism > 0 {
		return p.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// models resolves benchmark names to trace models.
func models(names []string) []trace.Model {
	ms := make([]trace.Model, len(names))
	for i, n := range names {
		ms[i] = bench.MustGet(n).Model
	}
	return ms
}

// STProfile is a single-threaded reference run: a CPI checkpoint curve used
// to evaluate CPI_ST at arbitrary instruction counts.
type STProfile struct {
	Benchmark string
	Result    core.Result
}

// CPIAt returns the single-threaded CPI after n committed instructions,
// linearly interpolating cumulative cycles between checkpoints (and
// extrapolating with the final average CPI beyond the profile).
func (p *STProfile) CPIAt(n uint64) float64 {
	prof := p.Result.Profiles[0]
	if n == 0 || len(prof) == 0 {
		if p.Result.IPC[0] > 0 {
			return 1 / p.Result.IPC[0]
		}
		return 0
	}
	var prevI uint64
	var prevC int64
	for _, pt := range prof {
		if pt.Instructions >= n {
			di := pt.Instructions - prevI
			if di == 0 {
				return float64(pt.Cycles) / float64(pt.Instructions)
			}
			cycles := float64(prevC) + float64(pt.Cycles-prevC)*float64(n-prevI)/float64(di)
			return cycles / float64(n)
		}
		prevI, prevC = pt.Instructions, pt.Cycles
	}
	last := prof[len(prof)-1]
	return float64(last.Cycles) / float64(last.Instructions)
}

// SlotGate admits simulations at the engine-slot boundary. When a Runner
// carries a gate, every multiprogram simulation acquires one slot before it
// starts executing (its single-threaded reference resolutions ride along
// under the same slot) and releases it when it finishes — so an external
// scheduler can arbitrate engine capacity among competing request streams
// one simulation at a time, without ever touching a simulation in flight.
// Acquire blocks until a slot is granted or ctx is done; the returned
// release must be called exactly once (extra calls must be no-ops on the
// implementation's side or guarded by the caller).
//
// Gating reorders only *when* simulations run, never what they compute: each
// simulation is deterministic and independent, and all batch consumers
// restore submission order, so gated and ungated executions produce
// byte-identical results.
type SlotGate interface {
	Acquire(ctx context.Context) (release func(), err error)
}

// Runner executes simulations against a single-threaded reference cache.
type Runner struct {
	Params Params

	// Gate, when non-nil, admits each multiprogram simulation at the slot
	// boundary (see SlotGate). Set it before the Runner serves traffic.
	Gate SlotGate

	refs *RefCache

	// Live-traffic gauges for a service built on the runner. inFlight counts
	// simulations executing right now (multiprogram runs and reference runs
	// alike); queued counts batch requests accepted by RunBatch but not yet
	// finished.
	inFlight atomic.Int64
	queued   atomic.Int64
}

// InFlight reports the number of simulations executing at this instant.
func (r *Runner) InFlight() int64 { return r.inFlight.Load() }

// QueueDepth reports the number of batch requests accepted but not yet
// finished (including those currently executing).
func (r *Runner) QueueDepth() int64 { return r.queued.Load() }

// NewRunner returns a Runner with the given parameters and a private
// reference cache. A zero Instructions budget falls back to the harness
// default; explicitly set Warmup and Parallelism are preserved either way.
func NewRunner(p Params) *Runner {
	return NewRunnerWithCache(p, NewRefCache(DefaultCacheSize))
}

// NewRunnerWithCache is NewRunner drawing single-threaded references from
// (and publishing them to) the given shared cache.
func NewRunnerWithCache(p Params, refs *RefCache) *Runner {
	if p.Instructions == 0 {
		p.Instructions = DefaultParams().Instructions
	}
	if refs == nil {
		refs = NewRefCache(DefaultCacheSize)
	}
	return &Runner{Params: p, refs: refs}
}

// Refs returns the runner's reference cache.
func (r *Runner) Refs() *RefCache { return r.refs }

// RunSingle simulates one benchmark alone on cfg (single-threaded mode of
// the same SMT core) for the runner's instruction budget, after warm-up.
func (r *Runner) RunSingle(cfg core.Config, benchmark string) core.Result {
	res, _ := r.RunSingleCtx(context.Background(), cfg, benchmark)
	return res
}

// RunSingleCtx is RunSingle under a context: it returns the context's error
// without simulating if ctx is already done. (A simulation in progress runs
// to completion; cancellation is observed between simulations, which is the
// granularity batch execution needs.)
func (r *Runner) RunSingleCtx(ctx context.Context, cfg core.Config, benchmark string) (core.Result, error) {
	_, res, err := r.RunSingleCoreCtx(ctx, cfg, benchmark)
	return res, err
}

// RunSingleCore is RunSingle but also returns the core, so characterization
// experiments can read predictor state (MLP distance histograms, accuracy
// counters) after the run.
func (r *Runner) RunSingleCore(cfg core.Config, benchmark string) (*core.Core, core.Result) {
	c, res, _ := r.RunSingleCoreCtx(context.Background(), cfg, benchmark)
	return c, res
}

// RunSingleCoreCtx is RunSingleCore under a context.
func (r *Runner) RunSingleCoreCtx(ctx context.Context, cfg core.Config, benchmark string) (*core.Core, core.Result, error) {
	return r.runSingleCore(ctx, cfg, benchmark, r.Params.TraceInterval)
}

func (r *Runner) runSingleCore(ctx context.Context, cfg core.Config, benchmark string, traceEvery int64) (*core.Core, core.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, core.Result{}, err
	}
	c := core.New(cfg, models([]string{benchmark}), core.ICount{}, nil)
	res := r.runWarm(c, traceEvery)
	return c, res, nil
}

// runWarm executes the warm-up phase, resets statistics and runs the
// measured phase, counting the whole execution as one in-flight simulation.
// traceEvery > 0 arms the interval recorder before warm-up; the stats reset
// restarts it, so only measured-phase samples survive.
func (r *Runner) runWarm(c *core.Core, traceEvery int64) core.Result {
	r.inFlight.Add(1)
	defer r.inFlight.Add(-1)
	if traceEvery > 0 {
		c.EnableIntervalTrace(traceEvery)
	}
	if w := r.Params.warmup(); w > 0 {
		c.Run(w)
		c.ResetStats()
	}
	return c.Run(r.Params.Instructions)
}

// STReference returns (computing and caching as needed) the single-threaded
// reference profile of benchmark under cfg's per-thread configuration.
func (r *Runner) STReference(cfg core.Config, benchmark string) *STProfile {
	p, _ := r.STReferenceCtx(context.Background(), cfg, benchmark)
	return p
}

// STReferenceCtx is STReference under a context. Concurrent callers (from
// any Runner sharing the cache) requesting the same reference share one
// simulation.
func (r *Runner) STReferenceCtx(ctx context.Context, cfg core.Config, benchmark string) (*STProfile, error) {
	key := RefKey(cfg, benchmark, r.Params.Instructions, r.Params.warmup())
	return r.refs.getOrCompute(ctx, key, func(ctx context.Context) (*STProfile, error) {
		// References never trace (traceEvery 0): their bytes are cached and
		// persisted under keys that exclude the trace knob.
		_, res, err := r.runSingleCore(ctx, cfg, benchmark, 0)
		if err != nil {
			return nil, err
		}
		return &STProfile{Benchmark: benchmark, Result: res}, nil
	})
}

// WorkloadResult is one multiprogram simulation with its system metrics.
type WorkloadResult struct {
	Workload bench.Workload
	Policy   string
	Result   core.Result
	STP      float64
	ANTT     float64
	// PerThread holds the CPI pairs behind STP/ANTT, in workload order.
	PerThread []metrics.ThreadPerf
}

// RunWorkload simulates the workload under the given fetch policy kind and
// optional limiter, computing STP and ANTT against cached single-threaded
// references at matched instruction counts.
func (r *Runner) RunWorkload(cfg core.Config, w bench.Workload, kind policy.Kind, limiter core.Limiter) WorkloadResult {
	res, _ := r.RunWorkloadCtx(context.Background(), cfg, w, kind, limiter)
	return res
}

// RunWorkloadCtx is RunWorkload under a context: it refuses to start once
// ctx is done and propagates cancellation encountered while resolving the
// single-threaded references.
func (r *Runner) RunWorkloadCtx(ctx context.Context, cfg core.Config, w bench.Workload, kind policy.Kind, limiter core.Limiter) (WorkloadResult, error) {
	return r.RunWorkloadTracedCtx(ctx, cfg, w, kind, limiter, r.Params.TraceInterval)
}

// RunWorkloadTracedCtx is RunWorkloadCtx with an explicit interval-trace
// setting for this one simulation (0 disables tracing regardless of the
// runner's Params.TraceInterval).
func (r *Runner) RunWorkloadTracedCtx(ctx context.Context, cfg core.Config, w bench.Workload, kind policy.Kind, limiter core.Limiter, traceEvery int64) (WorkloadResult, error) {
	if err := ctx.Err(); err != nil {
		return WorkloadResult{}, err
	}
	if r.Gate != nil {
		release, err := r.Gate.Acquire(ctx)
		if err != nil {
			return WorkloadResult{}, err
		}
		defer release()
	}
	c := core.New(cfg, models(w.Benchmarks), policy.New(kind), limiter)
	res := r.runWarm(c, traceEvery)

	name := kind.String()
	if limiter != nil {
		name = limiter.Name()
	}
	out := WorkloadResult{Workload: w, Policy: name, Result: res}
	for i, b := range w.Benchmarks {
		ref, err := r.STReferenceCtx(ctx, cfg, b)
		if err != nil {
			return WorkloadResult{}, err
		}
		cpiST := ref.CPIAt(res.Committed[i])
		cpiMT := 0.0
		if res.Committed[i] > 0 {
			cpiMT = float64(res.Cycles) / float64(res.Committed[i])
		}
		out.PerThread = append(out.PerThread, metrics.ThreadPerf{CPIST: cpiST, CPIMT: cpiMT})
	}
	out.STP = metrics.STP(out.PerThread)
	out.ANTT = metrics.ANTT(out.PerThread)
	return out, nil
}

// Job is one simulation unit for Parallel.
type Job func()

// Parallel runs jobs over the runner's worker pool and waits for all.
func (r *Runner) Parallel(jobs []Job) {
	workers := r.Params.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, j := range jobs {
			j()
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan Job)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				j()
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
}

// PrimeSTReferences precomputes single-threaded references for the given
// benchmarks in parallel. With the single-flight cache this is an
// optimization, not a requirement: unprimed batch runs deduplicate the
// reference simulations on their own.
func (r *Runner) PrimeSTReferences(cfg core.Config, benchmarks []string) {
	seen := map[string]bool{}
	var jobs []Job
	for _, b := range benchmarks {
		if seen[b] {
			continue
		}
		seen[b] = true
		b := b
		jobs = append(jobs, func() { r.STReference(cfg, b) })
	}
	r.Parallel(jobs)
}
