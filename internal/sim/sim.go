// Package sim drives simulations for the experiment harness: it builds
// cores from benchmark names, runs single-threaded reference simulations
// with CPI checkpoint profiles, runs multiprogrammed workloads under the
// paper's stopping rule, and computes STP/ANTT following the paper's
// methodology ("the single-threaded CPI_ST used in the formulas then equals
// single-threaded CPI after x_i million instructions").
//
// A Runner caches single-threaded reference profiles per (config,
// benchmark), so a sweep over policies reuses the same references the way
// the paper's normalization does, and fans experiment units out over a
// bounded number of goroutines (each simulation itself is single-threaded
// and deterministic).
package sim

import (
	"fmt"
	"runtime"
	"sync"

	"smtmlp/internal/bench"
	"smtmlp/internal/core"
	"smtmlp/internal/metrics"
	"smtmlp/internal/policy"
	"smtmlp/internal/trace"
)

// Params bundles the knobs shared by all experiments.
type Params struct {
	// Instructions is the per-thread instruction budget: multiprogram runs
	// stop when the first thread commits this many (the paper uses 200M
	// SimPoints; the harness defaults to a laptop-scale budget).
	Instructions uint64

	// Warmup is the number of instructions executed before statistics are
	// reset (SimPoint-style warm-up: caches, TLBs and predictors train;
	// compulsory misses fall outside the measurement). 0 means
	// Instructions/4.
	Warmup uint64

	// Parallelism bounds concurrent simulations; 0 means GOMAXPROCS.
	Parallelism int
}

// DefaultParams returns the harness defaults.
func DefaultParams() Params {
	return Params{Instructions: 300_000}
}

func (p Params) warmup() uint64 {
	if p.Warmup > 0 {
		return p.Warmup
	}
	return p.Instructions / 4
}

func (p Params) workers() int {
	if p.Parallelism > 0 {
		return p.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// models resolves benchmark names to trace models.
func models(names []string) []trace.Model {
	ms := make([]trace.Model, len(names))
	for i, n := range names {
		ms[i] = bench.MustGet(n).Model
	}
	return ms
}

// STProfile is a single-threaded reference run: a CPI checkpoint curve used
// to evaluate CPI_ST at arbitrary instruction counts.
type STProfile struct {
	Benchmark string
	Result    core.Result
}

// CPIAt returns the single-threaded CPI after n committed instructions,
// interpolating between checkpoints (and extrapolating with the final
// average CPI beyond the profile).
func (p *STProfile) CPIAt(n uint64) float64 {
	prof := p.Result.Profiles[0]
	if n == 0 || len(prof) == 0 {
		if p.Result.IPC[0] > 0 {
			return 1 / p.Result.IPC[0]
		}
		return 0
	}
	for _, pt := range prof {
		if pt.Instructions >= n {
			return float64(pt.Cycles) / float64(pt.Instructions)
		}
	}
	last := prof[len(prof)-1]
	return float64(last.Cycles) / float64(last.Instructions)
}

// Runner executes simulations with a shared single-threaded reference cache.
type Runner struct {
	Params Params

	mu      sync.Mutex
	stCache map[string]*STProfile
}

// NewRunner returns a Runner with the given parameters.
func NewRunner(p Params) *Runner {
	if p.Instructions == 0 {
		p = DefaultParams()
	}
	return &Runner{Params: p, stCache: make(map[string]*STProfile)}
}

// RunSingle simulates one benchmark alone on cfg (single-threaded mode of
// the same SMT core) for the runner's instruction budget, after warm-up.
func (r *Runner) RunSingle(cfg core.Config, benchmark string) core.Result {
	_, res := r.RunSingleCore(cfg, benchmark)
	return res
}

// RunSingleCore is RunSingle but also returns the core, so characterization
// experiments can read predictor state (MLP distance histograms, accuracy
// counters) after the run.
func (r *Runner) RunSingleCore(cfg core.Config, benchmark string) (*core.Core, core.Result) {
	c := core.New(cfg, models([]string{benchmark}), core.ICount{}, nil)
	res := r.runWarm(c)
	return c, res
}

// runWarm executes the warm-up phase, resets statistics and runs the
// measured phase.
func (r *Runner) runWarm(c *core.Core) core.Result {
	if w := r.Params.warmup(); w > 0 {
		c.Run(w)
		c.ResetStats()
	}
	return c.Run(r.Params.Instructions)
}

// stKey builds the reference-cache key: the configuration fields that affect
// single-threaded performance, plus the benchmark name.
func stKey(cfg core.Config, benchmark string) string {
	return fmt.Sprintf("%s|rob=%d|lsq=%d|iq=%d/%d|ren=%d/%d|mem=%d|pf=%t|w=%d",
		benchmark, cfg.ROBSize, cfg.LSQSize, cfg.IQInt, cfg.IQFP,
		cfg.RenameInt, cfg.RenameFP, cfg.Mem.MemLatency, cfg.Mem.EnablePrefetch,
		cfg.FetchWidth)
}

// STReference returns (computing and caching as needed) the single-threaded
// reference profile of benchmark under cfg's per-thread configuration.
func (r *Runner) STReference(cfg core.Config, benchmark string) *STProfile {
	key := stKey(cfg, benchmark)
	r.mu.Lock()
	if p, ok := r.stCache[key]; ok {
		r.mu.Unlock()
		return p
	}
	r.mu.Unlock()

	res := r.RunSingle(cfg, benchmark)
	p := &STProfile{Benchmark: benchmark, Result: res}

	r.mu.Lock()
	r.stCache[key] = p
	r.mu.Unlock()
	return p
}

// WorkloadResult is one multiprogram simulation with its system metrics.
type WorkloadResult struct {
	Workload bench.Workload
	Policy   string
	Result   core.Result
	STP      float64
	ANTT     float64
	// PerThread holds the CPI pairs behind STP/ANTT, in workload order.
	PerThread []metrics.ThreadPerf
}

// RunWorkload simulates the workload under the given fetch policy kind and
// optional limiter, computing STP and ANTT against cached single-threaded
// references at matched instruction counts.
func (r *Runner) RunWorkload(cfg core.Config, w bench.Workload, kind policy.Kind, limiter core.Limiter) WorkloadResult {
	c := core.New(cfg, models(w.Benchmarks), policy.New(kind), limiter)
	res := r.runWarm(c)

	name := kind.String()
	if limiter != nil {
		name = limiter.Name()
	}
	out := WorkloadResult{Workload: w, Policy: name, Result: res}
	for i, b := range w.Benchmarks {
		ref := r.STReference(cfg, b)
		cpiST := ref.CPIAt(res.Committed[i])
		cpiMT := 0.0
		if res.Committed[i] > 0 {
			cpiMT = float64(res.Cycles) / float64(res.Committed[i])
		}
		out.PerThread = append(out.PerThread, metrics.ThreadPerf{CPIST: cpiST, CPIMT: cpiMT})
	}
	out.STP = metrics.STP(out.PerThread)
	out.ANTT = metrics.ANTT(out.PerThread)
	return out
}

// Job is one simulation unit for Parallel.
type Job func()

// Parallel runs jobs over the runner's worker pool and waits for all.
func (r *Runner) Parallel(jobs []Job) {
	workers := r.Params.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, j := range jobs {
			j()
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan Job)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				j()
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
}

// PrimeSTReferences precomputes single-threaded references for the given
// benchmarks in parallel (so later workload sweeps only read the cache).
func (r *Runner) PrimeSTReferences(cfg core.Config, benchmarks []string) {
	seen := map[string]bool{}
	var jobs []Job
	for _, b := range benchmarks {
		if seen[b] {
			continue
		}
		seen[b] = true
		b := b
		jobs = append(jobs, func() { r.STReference(cfg, b) })
	}
	r.Parallel(jobs)
}
