package sim

import (
	"container/list"
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"smtmlp/internal/core"
)

// DefaultCacheSize is the reference-cache bound used when a caller does not
// choose one: generous enough to hold a full Table II/III sweep (26
// benchmarks x a handful of configuration points) without eviction.
const DefaultCacheSize = 256

// ConfigHash is the FNV-64a hash of the full processor configuration. It is
// the configuration component of both the reference-cache key and the result
// store's request fingerprint: the hash covers every Config field — including
// the whole memory hierarchy and branch predictor — so any config change
// yields a distinct hash, up to the negligible (~2^-64 per config pair)
// chance of a collision.
func ConfigHash(cfg core.Config) uint64 {
	h := fnv.New64a()
	// Config is a tree of plain value structs (no pointers, maps or
	// slices), so %+v is a deterministic full-value serialization.
	fmt.Fprintf(h, "%+v", cfg)
	return h.Sum64()
}

// RefKey builds the reference-cache key for one single-threaded reference
// run: the benchmark name, the measurement budget, and the ConfigHash of the
// full processor configuration. Unlike the historical per-Runner cache
// (which enumerated the handful of fields it believed mattered), the hash
// covers every Config field, so any config change yields a distinct key.
func RefKey(cfg core.Config, benchmark string, instructions, warmup uint64) string {
	return fmt.Sprintf("%s|i=%d|w=%d|cfg=%016x", benchmark, instructions, warmup, ConfigHash(cfg))
}

// RefCache is a concurrency-safe, size-bounded (LRU) cache of single-threaded
// reference profiles. It is safe to share one RefCache between any number of
// Runners and engines running concurrently; concurrent requests for the same
// key are deduplicated so each reference simulation runs at most once
// (single-flight), which is what makes batch sweeps cheap without an
// explicit priming pass.
type RefCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*refEntry
	lru     *list.List // resident keys, front = most recently used

	hits, misses, evictions uint64
}

// refEntry is one cache slot. ready is closed once prof/err are set; elem is
// non-nil only for resident (successfully computed) entries.
type refEntry struct {
	ready chan struct{}
	prof  *STProfile
	err   error
	elem  *list.Element
}

// NewRefCache returns a cache bounded to maxEntries resident profiles;
// maxEntries <= 0 selects DefaultCacheSize.
func NewRefCache(maxEntries int) *RefCache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheSize
	}
	return &RefCache{
		max:     maxEntries,
		entries: make(map[string]*refEntry),
		lru:     list.New(),
	}
}

// Len reports the number of resident profiles (in-flight computations are
// not counted).
func (c *RefCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats reports lookup hits (including waits on an in-flight computation),
// misses (computations started) and LRU evictions.
func (c *RefCache) Stats() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// RefRecord is the serializable form of one resident reference profile,
// used to persist single-threaded references (the result store's warm-start
// path) and seed them back into a fresh cache after a restart.
type RefRecord struct {
	Key     string    `json:"key"`
	Profile STProfile `json:"profile"`
}

// Export snapshots every resident profile, sorted by key so the export is
// deterministic regardless of insertion or LRU order. In-flight computations
// are not included.
func (c *RefCache) Export() []RefRecord {
	c.mu.Lock()
	out := make([]RefRecord, 0, c.lru.Len())
	for key, e := range c.entries {
		if e.elem == nil || e.prof == nil {
			continue // still computing, or failed
		}
		out = append(out, RefRecord{Key: key, Profile: *e.prof})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Seed inserts records as resident profiles, skipping keys already present
// (resident or in flight). Seeded entries obey the LRU bound: seeding more
// records than the cache holds evicts the earliest-seeded ones. It returns
// the number of records inserted.
func (c *RefCache) Seed(recs []RefRecord) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	inserted := 0
	for _, rec := range recs {
		if _, ok := c.entries[rec.Key]; ok {
			continue
		}
		prof := rec.Profile
		e := &refEntry{ready: make(chan struct{}), prof: &prof}
		close(e.ready)
		e.elem = c.lru.PushFront(rec.Key)
		c.entries[rec.Key] = e
		inserted++
		for c.lru.Len() > c.max {
			back := c.lru.Back()
			c.lru.Remove(back)
			delete(c.entries, back.Value.(string))
			c.evictions++
		}
	}
	return inserted
}

// getOrCompute returns the cached profile for key, computing it with compute
// on a miss. Concurrent callers with the same key share one computation; a
// caller whose context is canceled while waiting returns early without
// disturbing the computation. If the computing caller fails (its context was
// canceled mid-run), the slot is vacated and waiters retry with their own
// context.
func (c *RefCache) getOrCompute(ctx context.Context, key string, compute func(context.Context) (*STProfile, error)) (*STProfile, error) {
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.hits++
			c.mu.Unlock()
			select {
			case <-e.ready:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if e.err != nil {
				// The computation failed and the slot was vacated;
				// compute under our own context instead.
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				continue
			}
			c.mu.Lock()
			if e.elem != nil {
				c.lru.MoveToFront(e.elem)
			}
			c.mu.Unlock()
			return e.prof, nil
		}
		c.misses++
		e := &refEntry{ready: make(chan struct{})}
		c.entries[key] = e
		c.mu.Unlock()

		prof, err := compute(ctx)

		c.mu.Lock()
		if err != nil {
			delete(c.entries, key)
			e.err = err
		} else {
			e.prof = prof
			e.elem = c.lru.PushFront(key)
			for c.lru.Len() > c.max {
				back := c.lru.Back()
				c.lru.Remove(back)
				delete(c.entries, back.Value.(string))
				c.evictions++
			}
		}
		c.mu.Unlock()
		close(e.ready)
		return prof, err
	}
}
