package sim

import (
	"math"
	"sync/atomic"
	"testing"

	"smtmlp/internal/bench"
	"smtmlp/internal/core"
	"smtmlp/internal/metrics"
	"smtmlp/internal/policy"
)

func testRunner() *Runner {
	return NewRunner(Params{Instructions: 20_000, Warmup: 5_000})
}

func TestDefaultParams(t *testing.T) {
	r := NewRunner(Params{})
	if r.Params.Instructions == 0 {
		t.Fatal("zero params not defaulted")
	}
	if r.Params.warmup() != r.Params.Instructions/4 {
		t.Fatal("default warmup is not budget/4")
	}
	p := Params{Instructions: 100, Warmup: 7}
	if p.warmup() != 7 {
		t.Fatal("explicit warmup ignored")
	}
}

// TestNewRunnerPreservesParams is the regression test for the historical bug
// where a zero Instructions budget made NewRunner replace the entire Params
// with DefaultParams(), silently discarding caller-set Warmup/Parallelism.
func TestNewRunnerPreservesParams(t *testing.T) {
	r := NewRunner(Params{Warmup: 7_000, Parallelism: 3})
	if r.Params.Instructions != DefaultParams().Instructions {
		t.Fatalf("Instructions %d not defaulted", r.Params.Instructions)
	}
	if r.Params.Warmup != 7_000 {
		t.Fatalf("caller-set Warmup discarded: %d", r.Params.Warmup)
	}
	if r.Params.Parallelism != 3 {
		t.Fatalf("caller-set Parallelism discarded: %d", r.Params.Parallelism)
	}
}

func TestRunSingleCompletes(t *testing.T) {
	r := testRunner()
	res := r.RunSingle(core.DefaultConfig(1), "gcc")
	if res.Committed[0] < 20_000 {
		t.Fatalf("committed %d < budget", res.Committed[0])
	}
	if res.IPC[0] <= 0 {
		t.Fatal("non-positive IPC")
	}
}

func TestSTReferenceCached(t *testing.T) {
	r := testRunner()
	cfg := core.DefaultConfig(2)
	a := r.STReference(cfg, "gcc")
	b := r.STReference(cfg, "gcc")
	if a != b {
		t.Fatal("single-thread reference not cached")
	}
	// A different memory latency is a different reference.
	cfg2 := cfg
	cfg2.Mem.MemLatency = 800
	if r.STReference(cfg2, "gcc") == a {
		t.Fatal("different config shared a cached reference")
	}
}

func TestCPIAtInterpolation(t *testing.T) {
	prof := &STProfile{
		Benchmark: "x",
		Result: core.Result{
			IPC: []float64{0.5},
			Profiles: [][]core.ProfilePoint{{
				{Instructions: 100, Cycles: 200},
				{Instructions: 200, Cycles: 500},
			}},
		},
	}
	if got := prof.CPIAt(100); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("CPIAt(100) = %v, want 2.0", got)
	}
	// Between checkpoints: cumulative cycles interpolate linearly, so at
	// n=150 cycles = 200 + (500-200)*(150-100)/(200-100) = 350 and
	// CPI = 350/150 = 7/3 — not the 2.5 a snap-to-next-checkpoint gives.
	if got := prof.CPIAt(150); math.Abs(got-7.0/3.0) > 1e-9 {
		t.Fatalf("CPIAt(150) = %v, want 7/3 (linear interpolation)", got)
	}
	// Below the first checkpoint: interpolate from the origin.
	if got := prof.CPIAt(50); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("CPIAt(50) = %v, want 2.0", got)
	}
	// Beyond the profile: final cumulative CPI.
	if got := prof.CPIAt(10_000); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("CPIAt(10000) = %v, want 2.5", got)
	}
	// Zero instructions: fall back to overall CPI.
	if got := prof.CPIAt(0); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("CPIAt(0) = %v, want 1/IPC = 2.0", got)
	}
}

func TestRunWorkloadMetricsConsistent(t *testing.T) {
	r := testRunner()
	w := bench.Workload{Benchmarks: []string{"swim", "twolf"}}
	res := r.RunWorkload(core.DefaultConfig(2), w, policy.MLPFlush, nil)
	if res.STP <= 0 || res.STP > 2 {
		t.Fatalf("STP %v out of (0, 2] for a 2-thread workload", res.STP)
	}
	if res.ANTT < 1 {
		t.Fatalf("ANTT %v < 1: multithreading cannot beat the dedicated machine here", res.ANTT)
	}
	// Cross-check against the metrics package from the recorded CPI pairs.
	if math.Abs(res.STP-metrics.STP(res.PerThread)) > 1e-12 {
		t.Fatal("STP inconsistent with recorded per-thread CPIs")
	}
	if math.Abs(res.ANTT-metrics.ANTT(res.PerThread)) > 1e-12 {
		t.Fatal("ANTT inconsistent with recorded per-thread CPIs")
	}
	// CPI_MT must equal cycles/committed for each thread.
	for i := range w.Benchmarks {
		want := float64(res.Result.Cycles) / float64(res.Result.Committed[i])
		if math.Abs(res.PerThread[i].CPIMT-want) > 1e-9 {
			t.Fatalf("thread %d CPI_MT %v, want %v", i, res.PerThread[i].CPIMT, want)
		}
	}
}

func TestRunWorkloadWithLimiter(t *testing.T) {
	r := testRunner()
	w := bench.Workload{Benchmarks: []string{"swim", "twolf"}}
	res := r.RunWorkload(core.DefaultConfig(2), w, policy.ICount, policy.StaticPartition{})
	if res.Policy != "static" {
		t.Fatalf("policy label %q, want limiter name", res.Policy)
	}
	if res.STP <= 0 {
		t.Fatal("bad STP under limiter")
	}
}

func TestParallelRunsAllJobs(t *testing.T) {
	r := NewRunner(Params{Instructions: 1000, Parallelism: 4})
	var count int64
	var jobs []Job
	for i := 0; i < 37; i++ {
		jobs = append(jobs, func() { atomic.AddInt64(&count, 1) })
	}
	r.Parallel(jobs)
	if count != 37 {
		t.Fatalf("ran %d jobs, want 37", count)
	}
}

func TestParallelSequentialFallback(t *testing.T) {
	r := NewRunner(Params{Instructions: 1000, Parallelism: 1})
	ran := 0
	r.Parallel([]Job{func() { ran++ }, func() { ran++ }})
	if ran != 2 {
		t.Fatal("sequential fallback skipped jobs")
	}
}

func TestPrimeSTReferences(t *testing.T) {
	r := testRunner()
	cfg := core.DefaultConfig(2)
	r.PrimeSTReferences(cfg, []string{"gcc", "gcc", "twolf"})
	if n := r.Refs().Len(); n != 2 {
		t.Fatalf("cache has %d entries, want 2 (deduplicated)", n)
	}
}

func TestDeterministicAcrossRunners(t *testing.T) {
	w := bench.Workload{Benchmarks: []string{"swim", "twolf"}}
	a := testRunner().RunWorkload(core.DefaultConfig(2), w, policy.Flush, nil)
	b := testRunner().RunWorkload(core.DefaultConfig(2), w, policy.Flush, nil)
	if a.STP != b.STP || a.ANTT != b.ANTT || a.Result.Cycles != b.Result.Cycles {
		t.Fatalf("non-deterministic workload run: %v/%v vs %v/%v", a.STP, a.ANTT, b.STP, b.ANTT)
	}
}
