package sim

import (
	"context"
	"errors"
	"testing"

	"smtmlp/internal/bench"
	"smtmlp/internal/core"
	"smtmlp/internal/policy"
)

// crossProduct builds policy x workload batch requests on one config.
func crossProduct(cfg core.Config, workloads []bench.Workload, kinds []policy.Kind) []BatchRequest {
	var reqs []BatchRequest
	for _, w := range workloads {
		for _, k := range kinds {
			reqs = append(reqs, BatchRequest{Config: cfg, Workload: w, Kind: k})
		}
	}
	return reqs
}

func TestRunBatchMatchesSequential(t *testing.T) {
	cfg := core.DefaultConfig(2)
	workloads := []bench.Workload{
		{Benchmarks: []string{"swim", "twolf"}},
		{Benchmarks: []string{"mcf", "galgel"}},
	}
	kinds := []policy.Kind{policy.ICount, policy.Flush, policy.MLPFlush}
	reqs := crossProduct(cfg, workloads, kinds)

	batch := NewRunner(Params{Instructions: 10_000, Warmup: 2_500, Parallelism: 4})
	got := make([]WorkloadResult, len(reqs))
	seen := make([]bool, len(reqs))
	n := 0
	for br := range batch.RunBatch(context.Background(), reqs) {
		if br.Err != nil {
			t.Fatalf("request %d: %v", br.Index, br.Err)
		}
		if seen[br.Index] {
			t.Fatalf("request %d delivered twice", br.Index)
		}
		seen[br.Index] = true
		got[br.Index] = br.Res
		n++
	}
	if n != len(reqs) {
		t.Fatalf("batch delivered %d results, want %d", n, len(reqs))
	}

	seq := NewRunner(Params{Instructions: 10_000, Warmup: 2_500})
	for i, req := range reqs {
		want := seq.RunWorkload(req.Config, req.Workload, req.Kind, req.Limiter)
		if got[i].STP != want.STP || got[i].ANTT != want.ANTT || got[i].Result.Cycles != want.Result.Cycles {
			t.Fatalf("request %d (%s under %s): batch STP=%v ANTT=%v, sequential STP=%v ANTT=%v",
				i, req.Workload.Name(), req.Kind, got[i].STP, got[i].ANTT, want.STP, want.ANTT)
		}
	}
}

func TestRunBatchCancellationDrains(t *testing.T) {
	cfg := core.DefaultConfig(2)
	w := bench.Workload{Benchmarks: []string{"swim", "twolf"}}
	var reqs []BatchRequest
	for i := 0; i < 24; i++ {
		reqs = append(reqs, BatchRequest{Config: cfg, Workload: w, Kind: policy.ICount})
	}
	r := NewRunner(Params{Instructions: 10_000, Warmup: 2_500, Parallelism: 2})

	ctx, cancel := context.WithCancel(context.Background())
	ch := r.RunBatch(ctx, reqs)
	first := <-ch
	cancel()

	seen := map[int]bool{first.Index: true}
	canceled := 0
	for br := range ch {
		if seen[br.Index] {
			t.Fatalf("request %d delivered twice", br.Index)
		}
		seen[br.Index] = true
		if br.Err != nil {
			if !errors.Is(br.Err, context.Canceled) {
				t.Fatalf("unexpected error: %v", br.Err)
			}
			canceled++
		}
	}
	if len(seen) != len(reqs) {
		t.Fatalf("batch delivered %d results after cancellation, want all %d", len(seen), len(reqs))
	}
	if canceled == 0 {
		t.Fatal("no request observed the cancellation (batch completed before cancel?)")
	}
}

// TestRunnerGauges exercises the in-flight / queue-depth counters the
// metrics endpoint reports: nonzero while a batch runs, zero once drained.
func TestRunnerGauges(t *testing.T) {
	cfg := core.DefaultConfig(2)
	w := bench.Workload{Benchmarks: []string{"swim", "twolf"}}
	var reqs []BatchRequest
	for i := 0; i < 8; i++ {
		reqs = append(reqs, BatchRequest{Config: cfg, Workload: w, Kind: policy.ICount})
	}
	r := NewRunner(Params{Instructions: 10_000, Warmup: 2_500, Parallelism: 1})
	if r.InFlight() != 0 || r.QueueDepth() != 0 {
		t.Fatalf("fresh runner reports in-flight %d, queued %d", r.InFlight(), r.QueueDepth())
	}

	ch := r.RunBatch(context.Background(), reqs)
	first := <-ch
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	// With one worker and 8 requests, at least 6 are still queued the moment
	// the first result is delivered.
	if depth := r.QueueDepth(); depth < int64(len(reqs))-2 {
		t.Fatalf("queue depth %d right after the first of %d results", depth, len(reqs))
	}
	for range ch {
	}
	if r.InFlight() != 0 || r.QueueDepth() != 0 {
		t.Fatalf("drained runner reports in-flight %d, queued %d", r.InFlight(), r.QueueDepth())
	}
}

func TestRunBatchEmpty(t *testing.T) {
	r := NewRunner(Params{Instructions: 1_000})
	if _, ok := <-r.RunBatch(context.Background(), nil); ok {
		t.Fatal("empty batch produced a result")
	}
}

// TestSharedCacheAcrossRunners verifies the promoted reference cache: two
// runners sharing one RefCache compute each single-threaded reference once,
// and the second runner's results are identical to a cold runner's.
func TestSharedCacheAcrossRunners(t *testing.T) {
	cfg := core.DefaultConfig(2)
	w := bench.Workload{Benchmarks: []string{"swim", "twolf"}}
	p := Params{Instructions: 10_000, Warmup: 2_500}

	shared := NewRefCache(16)
	a := NewRunnerWithCache(p, shared)
	warmRes := a.RunWorkload(cfg, w, policy.MLPFlush, nil)
	_, missesAfterA, _ := shared.Stats()

	b := NewRunnerWithCache(p, shared)
	sharedRes := b.RunWorkload(cfg, w, policy.MLPFlush, nil)
	_, missesAfterB, _ := shared.Stats()
	if missesAfterB != missesAfterA {
		t.Fatalf("second runner recomputed references: misses %d -> %d", missesAfterA, missesAfterB)
	}

	cold := NewRunner(p).RunWorkload(cfg, w, policy.MLPFlush, nil)
	if sharedRes.STP != cold.STP || sharedRes.ANTT != cold.ANTT {
		t.Fatalf("shared-cache result STP=%v ANTT=%v differs from cold STP=%v ANTT=%v",
			sharedRes.STP, sharedRes.ANTT, cold.STP, cold.ANTT)
	}
	if warmRes.STP != cold.STP {
		t.Fatalf("first shared-cache result differs from cold: %v vs %v", warmRes.STP, cold.STP)
	}
}
