package smtmlp

import (
	"context"
	"testing"
)

func TestBenchmarksList(t *testing.T) {
	if len(Benchmarks()) != 26 {
		t.Fatalf("Benchmarks() has %d entries, want 26", len(Benchmarks()))
	}
}

func TestWorkloadTables(t *testing.T) {
	if len(TwoThreadWorkloads()) != 36 {
		t.Fatal("Table II size wrong")
	}
	if len(FourThreadWorkloads()) != 30 {
		t.Fatal("Table III size wrong")
	}
}

func TestPoliciesList(t *testing.T) {
	ps := Policies()
	if len(ps) != 6 {
		t.Fatalf("Policies() has %d entries", len(ps))
	}
	if ps[0] != ICount || ps[5] != MLPFlush {
		t.Fatal("policy ordering wrong")
	}
}

func TestRunWorkloadResultShape(t *testing.T) {
	eng := NewEngine(WithInstructions(15_000))
	res, err := eng.RunWorkload(context.Background(), DefaultConfig(2), Mix("swim", "twolf"), MLPFlush)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "mlpflush" {
		t.Fatalf("policy %q", res.Policy)
	}
	if len(res.Threads) != 2 {
		t.Fatalf("threads %d", len(res.Threads))
	}
	if res.STP <= 0 || res.STP > 2 || res.ANTT < 1 {
		t.Fatalf("metrics STP=%v ANTT=%v", res.STP, res.ANTT)
	}
	for _, th := range res.Threads {
		if th.IPC <= 0 || th.Committed == 0 || th.CPIST <= 0 || th.CPIMT <= 0 {
			t.Fatalf("bad thread result %+v", th)
		}
	}
}

func TestDefaultConfigIsTableIV(t *testing.T) {
	cfg := DefaultConfig(2)
	if cfg.ROBSize != 256 || cfg.LSQSize != 128 || cfg.IQInt != 64 || cfg.IQFP != 64 {
		t.Fatal("window sizes differ from Table IV")
	}
	if cfg.RenameInt != 100 || cfg.RenameFP != 100 {
		t.Fatal("rename registers differ from Table IV")
	}
	if cfg.IntALUs != 4 || cfg.LdStUnits != 2 || cfg.FPUnits != 2 {
		t.Fatal("functional units differ from Table IV")
	}
	if cfg.FetchWidth != 4 || cfg.FetchThreads != 2 {
		t.Fatal("fetch policy is not ICOUNT 2.4")
	}
	if cfg.WriteBuffer != 8 || cfg.MispredictPenalty != 11 {
		t.Fatal("write buffer / branch penalty differ from Table IV")
	}
	if cfg.Mem.MemLatency != 350 || cfg.Mem.L2.Latency != 11 || cfg.Mem.L3.Latency != 35 {
		t.Fatal("memory latencies differ from Table IV")
	}
	if cfg.Mem.L1.SizeBytes != 64<<10 || cfg.Mem.L2.SizeBytes != 512<<10 || cfg.Mem.L3.SizeBytes != 4<<20 {
		t.Fatal("cache sizes differ from Table IV")
	}
	if !cfg.Mem.EnablePrefetch || cfg.Mem.Prefetch.Buffers != 8 || cfg.Mem.Prefetch.Entries != 8 {
		t.Fatal("prefetcher differs from Table IV")
	}
	if cfg.Mem.TLBEntries != 512 || cfg.Mem.PageBytes != 8<<10 {
		t.Fatal("TLB differs from Table IV")
	}
}
