// Command smtserved serves the SMT simulator over HTTP: one long-lived
// Engine with a shared reference cache behind the REST/NDJSON surface of
// internal/server.
//
// Usage:
//
//	smtserved [-addr :8344] [-instructions N] [-warmup N] [-parallelism N]
//	          [-cache-size N] [-max-batch N] [-max-threads N] [-store DIR]
//	          [-max-leases N] [-lease-ttl D] [-tenants FILE]
//	          [-read-header-timeout D]
//
// With -store, the server opens the persistent result store at DIR,
// warm-starts its reference cache from it, and enables the asynchronous
// campaign endpoints (POST/GET /v1/campaigns) backed by the same store.
//
// With -tenants, the server is multi-tenant: FILE (see internal/tenant's
// Config) declares API-keyed tenants with per-tenant rate limits, concurrency
// quotas and scheduling weights. Every /v1 request must then authenticate
// (Authorization: Bearer <key> or X-API-Key), admission enforces the tenant's
// limits (429 with a typed body and an honest Retry-After), and a weighted
// scheduler arbitrates the engine's simulation slots across tenants so
// interactive /v1/run traffic preempts bulk campaign and lease cells at the
// next slot boundary. SIGHUP re-reads FILE and swaps the tenant set
// atomically — in-flight work finishes under the limits it was admitted with,
// and a bad edit leaves the previous set installed. Without -tenants the
// server is single-tenant and behaves exactly as before.
//
// Every smtserved is also a fleet worker: the /v1/work lease endpoints let a
// cmd/smtfleet coordinator drive this process as one executor of a
// distributed campaign (no -store needed on workers — results flow back to
// the coordinator's store). -max-leases bounds concurrently-held leases and
// -lease-ttl caps how long an unrenewed lease is kept before its execution
// is canceled and its state dropped; coordinators extend that deadline by
// idempotently re-POSTing the lease as a heartbeat. Lease bodies may arrive
// gzip-compressed (Content-Encoding: gzip) and results stream back as gzip
// NDJSON when the coordinator asks for them — old coordinators that know
// neither get plain buffered JSON, byte-for-byte the same payload.
//
// Quickstart:
//
//	smtserved -addr :8344 &
//	curl -s localhost:8344/v1/run -d '{"benchmarks":["mcf","galgel"],"policy":"mlpflush"}'
//	curl -sN localhost:8344/v1/batch \
//	  -d '{"workloads":[["mcf","galgel"],["swim","twolf"]],"policies":["icount","mlpflush"]}'
//
// The process drains gracefully on SIGINT/SIGTERM: listening stops, every
// in-flight request's context is canceled (which cancels its simulations and
// drains the batch worker pool), and the server exits once handlers return.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"smtmlp"
	"smtmlp/internal/obs"
	"smtmlp/internal/server"
	"smtmlp/internal/store"
	"smtmlp/internal/tenant"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout))
}

func run(ctx context.Context, args []string, out io.Writer) int {
	fs := flag.NewFlagSet("smtserved", flag.ContinueOnError)
	addr := fs.String("addr", ":8344", "listen address")
	instructions := fs.Uint64("instructions", 300_000, "per-thread instruction budget per simulation")
	warmup := fs.Uint64("warmup", 0, "warm-up instructions (0 = budget/4)")
	parallelism := fs.Int("parallelism", 0, "concurrent simulations per batch (0 = GOMAXPROCS)")
	cacheSize := fs.Int("cache-size", 0, "reference cache bound in profiles (0 = default)")
	maxBatch := fs.Int("max-batch", server.DefaultMaxBatch, "max simulations per /v1/batch call")
	maxThreads := fs.Int("max-threads", server.DefaultMaxThreads, "max benchmarks per workload")
	storeDir := fs.String("store", "", "result store directory enabling the /v1/campaigns endpoints (empty = campaigns disabled)")
	maxLeases := fs.Int("max-leases", server.DefaultMaxLeases, "max concurrently-held fleet work leases")
	leaseTTL := fs.Duration("lease-ttl", server.DefaultLeaseTTL, "max lifetime of an uncollected work lease")
	tenantsPath := fs.String("tenants", "", "tenant config JSON enabling multi-tenant auth, quotas and slot scheduling (empty = single-tenant)")
	readHeaderTimeout := fs.Duration("read-header-timeout", 10*time.Second, "max time to read a request's headers before the connection is reaped")
	logFormat := fs.String("log-format", "text", "structured log format on stderr: text or json")
	logLevel := fs.String("log-level", "info", "structured log level: debug, info, warn or error")
	debugAddr := fs.String("debug-addr", "", "separate listen address serving net/http/pprof (empty = pprof disabled; never exposed on -addr)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Structured logs go to stderr so they never interleave with the stdout
	// lines existing tooling parses.
	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	// The tenant table and slot scheduler are built before the engine because
	// the scheduler is the engine's slot gate: every simulation the engine
	// admits passes through it.
	var tbl *tenant.Table
	var gate smtmlp.SlotGate
	if *tenantsPath != "" {
		tbl, err = tenant.Load(*tenantsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		slots := tbl.Slots()
		if slots <= 0 {
			// Default the slot pool to the simulation parallelism: the gate
			// then never throttles a lone tenant below full capacity, it only
			// decides who gets the slots under contention.
			if slots = *parallelism; slots <= 0 {
				slots = runtime.GOMAXPROCS(0)
			}
		}
		sched := tenant.NewScheduler(slots, tbl.Boost())
		gate = sched
		fmt.Fprintf(out, "smtserved multi-tenant: %d tenants, %d engine slots\n",
			len(tbl.Tenants()), sched.Capacity())
	}

	eng := smtmlp.NewEngine(
		smtmlp.WithInstructions(*instructions),
		smtmlp.WithWarmup(*warmup),
		smtmlp.WithParallelism(*parallelism),
		smtmlp.WithCacheSize(*cacheSize),
		smtmlp.WithSlotGate(gate),
	)
	opts := []server.Option{
		server.WithMaxBatch(*maxBatch),
		server.WithMaxThreads(*maxThreads),
		server.WithMaxLeases(*maxLeases),
		server.WithLeaseTTL(*leaseTTL),
		server.WithLogger(logger),
		// Campaigns and work leases run on the signal context: SIGINT/SIGTERM
		// interrupts them cleanly; a re-POSTed spec resumes from the store and
		// a canceled lease is re-dispatched by its coordinator.
		server.WithBaseContext(ctx),
	}
	if tbl != nil {
		opts = append(opts, server.WithTenants(tbl, gate))
		// SIGHUP hot-reloads the tenant file. A failed reload (bad edit,
		// missing file) keeps the current tenant set and only logs.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go func() {
			for {
				select {
				case <-hup:
					if err := tbl.Reload(); err != nil {
						fmt.Fprintf(out, "smtserved tenant reload failed (keeping current set): %v\n", err)
						logger.Warn("tenant reload failed; keeping current set", "err", err)
					} else {
						fmt.Fprintf(out, "smtserved reloaded %d tenants from %s\n", len(tbl.Tenants()), *tenantsPath)
						logger.Info("tenants reloaded", "tenants", len(tbl.Tenants()), "path", *tenantsPath)
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	var handler *server.Server
	// Leases execute detached from any HTTP request; wait for them to observe
	// the canceled base context before exiting (and, with -store, before the
	// store closes).
	defer func() {
		if handler != nil {
			handler.DrainWork()
		}
	}()
	if *storeDir != "" {
		st, err := store.OpenWithLogger(*storeDir, logger)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer st.Close()
		// Campaigns run detached from any HTTP request: wait for them to
		// observe the (by then canceled) base context and finish committing
		// before the deferred st.Close above runs. LIFO defer order makes
		// the drain happen first.
		defer func() {
			if handler != nil {
				handler.DrainCampaigns()
			}
		}()
		// Warm-start the service engine from the store's persisted
		// single-threaded references: restarts skip reference re-simulation.
		if n := eng.Cache().Seed(st.Refs()); n > 0 {
			fmt.Fprintf(out, "smtserved warm-started %d reference profiles from %s\n", n, *storeDir)
		}
		opts = append(opts, server.WithStore(st))
	}
	handler = server.New(eng, opts...)

	// Live profiling on its own listener, never the public mux: bind
	// -debug-addr to loopback (or a firewalled interface) and the pprof
	// surface stays invisible to API clients.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		dsrv := &http.Server{
			Handler:           dmux,
			ReadHeaderTimeout: *readHeaderTimeout,
			BaseContext:       func(net.Listener) context.Context { return ctx },
		}
		defer dsrv.Close()
		go dsrv.Serve(dln)
		fmt.Fprintf(out, "smtserved debug listening on %s (pprof)\n", dln.Addr())
		logger.Info("debug listener up", "addr", dln.Addr().String())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	srv := &http.Server{
		Handler: handler,
		// Self-protection against misbehaving clients: a connection that
		// stalls mid-header is reaped, idle keep-alive connections are closed
		// eventually, and header blocks are capped well under the default 1MB.
		ReadHeaderTimeout: *readHeaderTimeout,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    64 << 10,
		// Tie every request context to the signal context: on SIGINT/SIGTERM
		// in-flight simulations cancel and batch pools drain instead of
		// holding shutdown hostage.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}

	fmt.Fprintf(out, "smtserved listening on %s (instructions=%d, parallelism=%d)\n",
		ln.Addr(), eng.Instructions(), eng.Parallelism())
	logger.Info("listening", "addr", ln.Addr().String(),
		"instructions", eng.Instructions(), "parallelism", eng.Parallelism())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		return 1
	case <-ctx.Done():
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "forced shutdown:", err)
		srv.Close()
		return 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintln(out, "smtserved drained and stopped")
	return 0
}
