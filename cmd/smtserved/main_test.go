package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe bytes.Buffer for capturing run's output
// while the server goroutine writes to it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// startServed runs the binary's run() on an ephemeral port and returns the
// base URL and a cancel-and-wait shutdown function.
func startServed(t *testing.T, args ...string) (string, func() int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out)
	}()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1], func() int {
				cancel()
				select {
				case code := <-done:
					return code
				case <-time.After(20 * time.Second):
					t.Fatal("server did not shut down")
					return -1
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	t.Fatalf("server never reported its address; output: %q", out.String())
	return "", nil
}

// TestServedEndToEnd boots the real binary path (flags, listener, engine,
// handler), exercises a run and a streamed batch over TCP, and verifies
// SIGINT-style cancellation drains into a clean exit.
func TestServedEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end server test runs real simulations")
	}
	url, shutdown := startServed(t, "-instructions", "6000", "-warmup", "1500")

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	resp, err = http.Post(url+"/v1/run", "application/json",
		strings.NewReader(`{"benchmarks":["mcf","galgel"],"policy":"mlpflush"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"stp"`)) {
		t.Fatalf("run status %d body %s", resp.StatusCode, body)
	}

	resp, err = http.Post(url+"/v1/batch", "application/json",
		strings.NewReader(`{"workloads":[["mcf","galgel"]],"policies":["icount","mlpflush"]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if n := bytes.Count(bytes.TrimSpace(body), []byte("\n")) + 1; resp.StatusCode != http.StatusOK || n != 2 {
		t.Fatalf("batch status %d, %d lines: %s", resp.StatusCode, n, body)
	}

	http.DefaultClient.CloseIdleConnections()
	if code := shutdown(); code != 0 {
		t.Fatalf("shutdown exit code %d", code)
	}
}

// TestServedShutdownCancelsInFlightBatch proves the graceful-drain path: a
// batch is mid-stream when the signal context fires; the server cancels the
// request contexts, drains and exits 0 without waiting for the whole batch.
func TestServedShutdownCancelsInFlightBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end server test runs real simulations")
	}
	url, shutdown := startServed(t, "-instructions", "6000", "-warmup", "1500", "-parallelism", "1")

	// 30 sequential simulations: far more than can finish before shutdown.
	var workloads []string
	for i := 0; i < 15; i++ {
		workloads = append(workloads, `["mcf","galgel"]`)
	}
	resp, err := http.Post(url+"/v1/batch", "application/json",
		strings.NewReader(fmt.Sprintf(`{"workloads":[%s],"policies":["icount","flush"]}`,
			strings.Join(workloads, ","))))
	if err != nil {
		t.Fatal(err)
	}
	// Read one byte so the stream is known to be live, then shut down with
	// the batch still running.
	if _, err := io.ReadAtLeast(resp.Body, make([]byte, 1), 1); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	code := shutdown()
	resp.Body.Close()
	http.DefaultClient.CloseIdleConnections()
	if code != 0 {
		t.Fatalf("shutdown exit code %d", code)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("shutdown took %v — in-flight batch was not canceled", elapsed)
	}
}
