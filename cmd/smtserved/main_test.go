package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe bytes.Buffer for capturing run's output
// while the server goroutine writes to it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// startServed runs the binary's run() on an ephemeral port and returns the
// base URL and a cancel-and-wait shutdown function.
func startServed(t *testing.T, args ...string) (string, func() int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out)
	}()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1], func() int {
				cancel()
				select {
				case code := <-done:
					return code
				case <-time.After(20 * time.Second):
					t.Fatal("server did not shut down")
					return -1
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	t.Fatalf("server never reported its address; output: %q", out.String())
	return "", nil
}

// TestServedEndToEnd boots the real binary path (flags, listener, engine,
// handler), exercises a run and a streamed batch over TCP, and verifies
// SIGINT-style cancellation drains into a clean exit.
func TestServedEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end server test runs real simulations")
	}
	url, shutdown := startServed(t, "-instructions", "6000", "-warmup", "1500")

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	resp, err = http.Post(url+"/v1/run", "application/json",
		strings.NewReader(`{"benchmarks":["mcf","galgel"],"policy":"mlpflush"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"stp"`)) {
		t.Fatalf("run status %d body %s", resp.StatusCode, body)
	}

	resp, err = http.Post(url+"/v1/batch", "application/json",
		strings.NewReader(`{"workloads":[["mcf","galgel"]],"policies":["icount","mlpflush"]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if n := bytes.Count(bytes.TrimSpace(body), []byte("\n")) + 1; resp.StatusCode != http.StatusOK || n != 2 {
		t.Fatalf("batch status %d, %d lines: %s", resp.StatusCode, n, body)
	}

	http.DefaultClient.CloseIdleConnections()
	if code := shutdown(); code != 0 {
		t.Fatalf("shutdown exit code %d", code)
	}
}

var (
	publicListenRE = regexp.MustCompile(`smtserved listening on (\S+)`)
	debugListenRE  = regexp.MustCompile(`smtserved debug listening on (\S+)`)
)

// TestServedDebugAddrPprof boots the server with -debug-addr and pins the
// profiling contract: the pprof surface answers on the debug listener and
// only there — the public mux never exposes /debug/pprof.
func TestServedDebugAddrPprof(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0"}, out)
	}()
	defer func() {
		cancel()
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			t.Fatal("server did not shut down")
		}
	}()

	var publicAddr, debugAddr string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && (publicAddr == "" || debugAddr == "") {
		s := out.String()
		if m := debugListenRE.FindStringSubmatch(s); m != nil {
			debugAddr = m[1]
			// The debug line also matches the public pattern; strip it before
			// looking for the real public address.
			s = strings.ReplaceAll(s, "debug listening on "+debugAddr, "")
		}
		if m := publicListenRE.FindStringSubmatch(s); m != nil {
			publicAddr = m[1]
		}
		time.Sleep(10 * time.Millisecond)
	}
	if publicAddr == "" || debugAddr == "" {
		t.Fatalf("listeners never reported; output: %q", out.String())
	}

	get := func(addr, path string) int {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(debugAddr, "/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("debug listener /debug/pprof/ status %d", code)
	}
	if code := get(debugAddr, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("debug listener /debug/pprof/cmdline status %d", code)
	}
	if code := get(publicAddr, "/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("public listener serves /debug/pprof/ (status %d); it must stay debug-only", code)
	}
	if code := get(publicAddr, "/healthz"); code != http.StatusOK {
		t.Fatalf("public listener /healthz status %d", code)
	}
	http.DefaultClient.CloseIdleConnections()
}

// TestServedBadLogFlags pins the usage errors of the structured-log flags.
func TestServedBadLogFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-log-format", "yaml"},
		{"-log-level", "loud"},
	} {
		out := &syncBuffer{}
		if code := run(context.Background(), args, out); code != 2 {
			t.Fatalf("args %v exited %d, want 2", args, code)
		}
	}
}

// TestServedStalledHeaderReaped proves the hardened http.Server reaps a
// connection that opens and then never finishes sending its request headers
// (a slow-loris client): the read side observes the close well before the
// server's shutdown machinery is involved.
func TestServedStalledHeaderReaped(t *testing.T) {
	url, shutdown := startServed(t, "-read-header-timeout", "300ms")
	defer shutdown()

	conn, err := net.Dial("tcp", strings.TrimPrefix(url, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A started-but-never-finished header block: no terminating blank line.
	if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: stalled\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	start := time.Now()
	n, err := conn.Read(make([]byte, 512))
	if err == nil || n > 0 {
		t.Fatalf("stalled connection got a response (%d bytes, err %v); want server-side close", n, err)
	}
	if os.IsTimeout(err) {
		t.Fatalf("server never reaped the stalled connection (read timed out after %v)", time.Since(start))
	}
}

// writeTenants writes a tenants.json and returns its path.
func writeTenants(t *testing.T, path, content string) string {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestServedTenantsEndToEnd boots a multi-tenant server from a tenants.json
// and walks the admission surface over real TCP: unauthenticated 401s,
// authenticated runs, an exhausted token bucket's 429 with its Retry-After
// header, per-tenant /metrics rows, and a SIGHUP hot reload that makes a
// freshly added API key resolve without a restart.
func TestServedTenantsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end server test runs real simulations")
	}
	cfgPath := writeTenants(t, filepath.Join(t.TempDir(), "tenants.json"), `{
		"tenants": [
			{"key": "k-ada", "name": "ada", "weight": 4, "rate": 0.2, "burst": 1},
			{"key": "k-bulk", "name": "bulk", "weight": 1}
		]
	}`)
	url, shutdown := startServed(t, "-instructions", "6000", "-warmup", "1500", "-tenants", cfgPath)

	do := func(key, path, body string) (*http.Response, string) {
		t.Helper()
		req, err := http.NewRequest("POST", url+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if key != "" {
			req.Header.Set("X-API-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(b)
	}
	runBody := `{"benchmarks":["mcf","galgel"],"policy":"icount"}`

	// No key: 401 with the typed body and a challenge header.
	resp, body := do("", "/v1/run", runBody)
	if resp.StatusCode != http.StatusUnauthorized || !strings.Contains(body, `"unauthorized"`) {
		t.Fatalf("no-key run: status %d body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("WWW-Authenticate") == "" {
		t.Fatal("401 carries no WWW-Authenticate challenge")
	}

	// ada's burst of 1: the first run is admitted, the immediate second one
	// is rate-limited with an honest Retry-After.
	resp, body = do("k-ada", "/v1/run", runBody)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"stp"`) {
		t.Fatalf("authenticated run: status %d body %s", resp.StatusCode, body)
	}
	resp, body = do("k-ada", "/v1/run", runBody)
	if resp.StatusCode != http.StatusTooManyRequests || !strings.Contains(body, `"rate_limited"`) {
		t.Fatalf("burst run: status %d body %s", resp.StatusCode, body)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("429 Retry-After %q; want a positive integer", resp.Header.Get("Retry-After"))
	}

	// bulk's bucket is independent (and unlimited).
	if resp, body = do("k-bulk", "/v1/run", runBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("bulk tenant run: status %d body %s", resp.StatusCode, body)
	}

	// /metrics (outside /v1, no auth) carries one row per tenant.
	mresp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{`"tenants"`, `"ada"`, `"bulk"`, `"rate_limited":1`} {
		if !strings.Contains(string(mbody), want) {
			t.Fatalf("/metrics missing %s: %s", want, mbody)
		}
	}

	// Hot reload: an unknown key stays 401 until the file gains it and
	// SIGHUP swaps the new tenant set in.
	if resp, _ = do("k-carol", "/v1/run", runBody); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("pre-reload carol: status %d; want 401", resp.StatusCode)
	}
	writeTenants(t, cfgPath, `{
		"tenants": [
			{"key": "k-ada", "name": "ada", "weight": 4, "rate": 0.2, "burst": 1},
			{"key": "k-bulk", "name": "bulk", "weight": 1},
			{"key": "k-carol", "name": "carol"}
		]
	}`)
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if resp, body = do("k-carol", "/v1/run", runBody); resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("carol never resolved after SIGHUP reload: status %d body %s", resp.StatusCode, body)
		}
		time.Sleep(20 * time.Millisecond)
	}

	http.DefaultClient.CloseIdleConnections()
	if code := shutdown(); code != 0 {
		t.Fatalf("shutdown exit code %d", code)
	}
}

// TestServedShutdownCancelsInFlightBatch proves the graceful-drain path: a
// batch is mid-stream when the signal context fires; the server cancels the
// request contexts, drains and exits 0 without waiting for the whole batch.
func TestServedShutdownCancelsInFlightBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end server test runs real simulations")
	}
	url, shutdown := startServed(t, "-instructions", "6000", "-warmup", "1500", "-parallelism", "1")

	// 30 sequential simulations: far more than can finish before shutdown.
	var workloads []string
	for i := 0; i < 15; i++ {
		workloads = append(workloads, `["mcf","galgel"]`)
	}
	resp, err := http.Post(url+"/v1/batch", "application/json",
		strings.NewReader(fmt.Sprintf(`{"workloads":[%s],"policies":["icount","flush"]}`,
			strings.Join(workloads, ","))))
	if err != nil {
		t.Fatal(err)
	}
	// Read one byte so the stream is known to be live, then shut down with
	// the batch still running.
	if _, err := io.ReadAtLeast(resp.Body, make([]byte, 1), 1); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	code := shutdown()
	resp.Body.Close()
	http.DefaultClient.CloseIdleConnections()
	if code != 0 {
		t.Fatalf("shutdown exit code %d", code)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("shutdown took %v — in-flight batch was not canceled", elapsed)
	}
}
