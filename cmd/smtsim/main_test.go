package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestRunBasic(t *testing.T) {
	var out bytes.Buffer
	code := run(context.Background(), []string{"-threads", "swim,twolf", "-policy", "mlpflush",
		"-instructions", "10000"}, &out)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	s := out.String()
	for _, want := range []string{"swim", "twolf", "STP", "ANTT", "mlpflush"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunWithLimiter(t *testing.T) {
	var out bytes.Buffer
	if code := run(context.Background(), []string{"-threads", "swim,twolf", "-limiter", "dcra",
		"-instructions", "8000"}, &out); code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out.String(), "dcra") {
		t.Fatal("limiter name not reported")
	}
}

func TestRunRejectsUnknownBenchmark(t *testing.T) {
	var out bytes.Buffer
	if code := run(context.Background(), []string{"-threads", "nope"}, &out); code == 0 {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRunRejectsUnknownPolicy(t *testing.T) {
	var out bytes.Buffer
	if code := run(context.Background(), []string{"-threads", "swim,twolf", "-policy", "nope"}, &out); code == 0 {
		t.Fatal("unknown policy accepted")
	}
}

func TestRunRejectsUnknownLimiter(t *testing.T) {
	var out bytes.Buffer
	if code := run(context.Background(), []string{"-threads", "swim,twolf", "-limiter", "nope"}, &out); code == 0 {
		t.Fatal("unknown limiter accepted")
	}
}
