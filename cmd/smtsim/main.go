// Command smtsim runs one multiprogrammed workload on the simulated SMT
// processor and prints per-thread and system-level statistics.
//
// Usage:
//
//	smtsim [-policy name] [-limiter name] [-instructions N] [-threads b1,b2,...]
//
// Examples:
//
//	smtsim -threads mcf,galgel -policy mlpflush
//	smtsim -threads swim,twolf -policy flush -instructions 1000000
//	smtsim -threads mcf,swim,perlbmk,mesa -limiter dcra
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"smtmlp/internal/bench"
	"smtmlp/internal/core"
	"smtmlp/internal/policy"
	"smtmlp/internal/sim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout))
}

func run(ctx context.Context, args []string, out io.Writer) int {
	fs := flag.NewFlagSet("smtsim", flag.ContinueOnError)
	threads := fs.String("threads", "mcf,galgel", "comma-separated benchmark names")
	policyName := fs.String("policy", "mlpflush", "fetch policy: icount, stall, pstall, mlpstall, flush, mlpflush, binflush, mlpflush-rs, binflush-rs")
	limiterName := fs.String("limiter", "", "resource partitioning: static or dcra (empty = fetch-policy managed)")
	instructions := fs.Uint64("instructions", 500_000, "per-thread instruction budget")
	warmup := fs.Uint64("warmup", 0, "warm-up instructions (0 = budget/4)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	names := strings.Split(*threads, ",")
	w := bench.Workload{Benchmarks: names}
	for _, n := range names {
		if _, err := bench.Get(n); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}

	kind, err := policy.Parse(*policyName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policyName)
		return 2
	}
	var limiter core.Limiter
	switch *limiterName {
	case "":
	case "static":
		limiter = policy.StaticPartition{}
	case "dcra":
		limiter = policy.DCRA{}
	default:
		fmt.Fprintf(os.Stderr, "unknown limiter %q\n", *limiterName)
		return 2
	}

	runner := sim.NewRunner(sim.Params{Instructions: *instructions, Warmup: *warmup})
	res, err := runner.RunWorkloadCtx(ctx, core.DefaultConfig(len(names)), w, kind, limiter)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	fmt.Fprintf(out, "workload: %s   policy: %s   instructions: %d/thread\n\n",
		w.Name(), res.Policy, *instructions)
	fmt.Fprintf(out, "%-10s %10s %8s %8s %8s %10s %8s %8s\n",
		"thread", "committed", "IPC", "LLL/1K", "MLP", "flushes", "CPI_ST", "CPI_MT")
	for i, b := range names {
		r := res.Result
		fmt.Fprintf(out, "%-10s %10d %8.3f %8.2f %8.2f %10d %8.2f %8.2f\n",
			b, r.Committed[i], r.IPC[i], r.LLLPer1K[i], r.MLP[i], r.Flushes[i],
			res.PerThread[i].CPIST, res.PerThread[i].CPIMT)
	}
	fmt.Fprintf(out, "\ncycles: %d   total IPC: %.3f\n", res.Result.Cycles, res.Result.TotalIPC())
	fmt.Fprintf(out, "STP:  %.3f (higher is better)\n", res.STP)
	fmt.Fprintf(out, "ANTT: %.3f (lower is better)\n", res.ANTT)
	return 0
}
