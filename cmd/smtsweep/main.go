// Command smtsweep runs a declarative simulation campaign against a
// persistent, content-addressed result store: a JSON spec (policies x
// workloads x configuration grid) expands into requests, the store is
// diffed, and only the missing cells execute. Results commit to the store
// as they finish, in deterministic order, so an interrupted sweep resumes
// exactly where it stopped.
//
// Usage:
//
//	smtsweep -spec spec.json -store DIR [-resume] [-parallelism N] [-quiet]
//
// The spec format is internal/campaign.Spec; the minimal useful spec is
//
//	{"workloads": {"tables": ["two_thread"]}}
//
// (all Table II workloads under the paper's six policies on the Table IV
// baseline). Re-running a spec over a store that already holds some of its
// results requires -resume, which fills only the gaps; without -resume the
// overlap is treated as an operator mistake and the sweep refuses to start.
// Ctrl-C interrupts cleanly: everything finished so far stays in the store,
// and a later -resume run completes the grid.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"smtmlp"
	"smtmlp/internal/campaign"
	"smtmlp/internal/obs"
	"smtmlp/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("smtsweep", flag.ContinueOnError)
	fs.SetOutput(errOut)
	specPath := fs.String("spec", "", `campaign spec file ("-" reads stdin)`)
	storeDir := fs.String("store", "", "result store directory (created if missing)")
	resume := fs.Bool("resume", false, "allow filling the gaps of a partially-run spec")
	parallelism := fs.Int("parallelism", 0, "concurrent simulations (0 = GOMAXPROCS)")
	quiet := fs.Bool("quiet", false, "suppress per-result progress lines")
	logFormat := fs.String("log-format", "text", "structured log format on stderr: text or json")
	logLevel := fs.String("log-level", "info", "structured log level: debug, info, warn or error")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// Structured logs go to errOut (stderr); stdout keeps the parseable
	// progress and summary lines exactly as before.
	logger, err := obs.NewLogger(errOut, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(errOut, "smtsweep: %v\n", err)
		return 2
	}
	if *specPath == "" || *storeDir == "" {
		fmt.Fprintln(errOut, "smtsweep: -spec and -store are required")
		return 2
	}

	spec, err := readSpec(*specPath)
	if err != nil {
		fmt.Fprintf(errOut, "smtsweep: %v\n", err)
		return 2
	}
	_, fps, err := spec.Requests()
	if err != nil {
		fmt.Fprintf(errOut, "smtsweep: invalid spec: %v\n", err)
		return 2
	}

	st, err := store.OpenWithLogger(*storeDir, logger)
	if err != nil {
		fmt.Fprintf(errOut, "smtsweep: %v\n", err)
		return 1
	}
	defer st.Close()

	// An overlap without -resume is an operator mistake (wrong store, or an
	// interrupted sweep the operator may not know about): refuse loudly.
	overlap := 0
	for _, fp := range fps {
		if st.Has(fp) {
			overlap++
		}
	}
	if overlap > 0 && !*resume {
		fmt.Fprintf(errOut, "smtsweep: store already holds %d of this spec's %d results; pass -resume to fill the remaining gaps\n",
			overlap, len(fps))
		return 1
	}

	progress := func(p campaign.Progress) {
		if *quiet {
			return
		}
		fmt.Fprintf(out, "progress: %d/%d done (%d cached, %d executed, %d failed)\n",
			p.Skipped+p.Executed+p.Failed, p.Total, p.Skipped, p.Executed, p.Failed)
	}
	sum, runErr := campaign.Run(ctx, st, spec, campaign.Options{
		Parallelism: *parallelism,
		Progress:    progress,
		Logger:      logger,
	})

	name := sum.Name
	if name == "" {
		name = "campaign"
	}
	fmt.Fprintf(out, "%s: total=%d skipped=%d executed=%d failed=%d refs_seeded=%d refs_saved=%d\n",
		name, sum.Total, sum.Skipped, sum.Executed, sum.Failed, sum.RefsSeeded, sum.RefsSaved)

	if runErr != nil {
		if errors.Is(runErr, smtmlp.ErrCanceled) {
			fmt.Fprintf(errOut, "smtsweep: interrupted; run again with -resume to finish the remaining %d cells\n",
				sum.Total-sum.Skipped-sum.Executed-sum.Failed)
		} else {
			fmt.Fprintf(errOut, "smtsweep: %v\n", runErr)
		}
		return 1
	}

	rows, err := campaign.Summarize(st, spec)
	if err != nil {
		fmt.Fprintf(errOut, "smtsweep: summarizing: %v\n", err)
		return 1
	}
	campaign.WriteSummaryTable(out, rows)
	return 0
}

// readSpec loads the campaign spec, rejecting unknown fields so a typo'd
// dimension fails loudly instead of silently sweeping the baseline.
func readSpec(path string) (campaign.Spec, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return campaign.Spec{}, err
		}
		defer f.Close()
		r = f
	}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec campaign.Spec
	if err := dec.Decode(&spec); err != nil {
		return campaign.Spec{}, fmt.Errorf("decoding spec %s: %w", path, err)
	}
	return spec, nil
}
