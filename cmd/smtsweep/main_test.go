package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"testing"
)

// writeSpec drops a 12-cell campaign spec (2 policies x 3 workloads x
// 2 memory latencies) at a millisecond-scale budget.
func writeSpec(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	spec := `{
  "name": "e2e",
  "instructions": 5000,
  "warmup": 1000,
  "policies": ["icount", "mlpflush"],
  "workloads": {"mixes": [["mcf","galgel"], ["swim","twolf"], ["vortex","parser"]]},
  "grid": {"mem_latencies": [200, 500]}
}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

var summaryRE = regexp.MustCompile(`total=(\d+) skipped=(\d+) executed=(\d+) failed=(\d+)`)

// parseSummary extracts the counters from the CLI summary line.
func parseSummary(t *testing.T, out string) (total, skipped, executed, failed int) {
	t.Helper()
	m := summaryRE.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no summary line in output:\n%s", out)
	}
	atoi := func(s string) int { n, _ := strconv.Atoi(s); return n }
	return atoi(m[1]), atoi(m[2]), atoi(m[3]), atoi(m[4])
}

func storeFiles(t *testing.T, dir string) (results, refs []byte) {
	t.Helper()
	results, err := os.ReadFile(filepath.Join(dir, "results.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	refs, err = os.ReadFile(filepath.Join(dir, "refs.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	return results, refs
}

// cancelAfterWriter cancels a context once n progress lines have been
// written through it, simulating an operator's Ctrl-C mid-sweep.
type cancelAfterWriter struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	lines  int
	after  int
	cancel context.CancelFunc
}

func (w *cancelAfterWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	w.lines += bytes.Count(p, []byte{'\n'})
	if w.lines >= w.after && w.cancel != nil {
		w.cancel()
		w.cancel = nil
	}
	return len(p), nil
}

func (w *cancelAfterWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestSweepKillResumeByteIdentical is the end-to-end resumability proof at
// the CLI layer: run the sweep, kill it mid-flight (context cancel), resume
// with -resume, and verify the final store is byte-identical to an
// uninterrupted cold run — with the resumed invocation executing strictly
// fewer requests than the grid size.
func TestSweepKillResumeByteIdentical(t *testing.T) {
	spec := writeSpec(t)

	// Reference: one uninterrupted cold run.
	coldDir := filepath.Join(t.TempDir(), "cold")
	var coldOut, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-spec", spec, "-store", coldDir, "-parallelism", "2"},
		&coldOut, &errOut); code != 0 {
		t.Fatalf("cold run exited %d\nstderr: %s", code, errOut.String())
	}
	total, _, executed, failed := parseSummary(t, coldOut.String())
	if total != 12 || executed != 12 || failed != 0 {
		t.Fatalf("cold summary total=%d executed=%d failed=%d", total, executed, failed)
	}
	coldResults, coldRefs := storeFiles(t, coldDir)

	// Interrupted run: cancel after a few progress lines.
	dir := filepath.Join(t.TempDir(), "killed")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &cancelAfterWriter{after: 4, cancel: cancel}
	errOut.Reset()
	if code := run(ctx, []string{"-spec", spec, "-store", dir, "-parallelism", "1"}, w, &errOut); code == 0 {
		t.Fatalf("interrupted run exited 0\noutput: %s", w.String())
	}
	_, _, executed1, _ := parseSummary(t, w.String())
	if executed1 < 1 || executed1 >= 12 {
		t.Fatalf("interrupted run executed %d of 12; the test needs a genuine mid-flight kill", executed1)
	}

	// Without -resume, the overlapping store is refused.
	var out2 bytes.Buffer
	errOut.Reset()
	if code := run(context.Background(), []string{"-spec", spec, "-store", dir}, &out2, &errOut); code == 0 {
		t.Fatal("overlapping store accepted without -resume")
	}

	// Resume fills exactly the gaps.
	out2.Reset()
	errOut.Reset()
	if code := run(context.Background(), []string{"-spec", spec, "-store", dir, "-resume", "-parallelism", "1"},
		&out2, &errOut); code != 0 {
		t.Fatalf("resume exited nonzero\nstderr: %s", errOut.String())
	}
	total2, skipped2, executed2, failed2 := parseSummary(t, out2.String())
	if total2 != 12 || skipped2 != executed1 || executed2 != 12-executed1 || failed2 != 0 {
		t.Fatalf("resume summary total=%d skipped=%d executed=%d failed=%d (interrupted had executed %d)",
			total2, skipped2, executed2, failed2, executed1)
	}
	if executed2 >= total2 {
		t.Fatal("resume executed the full grid; nothing was actually resumed")
	}

	gotResults, gotRefs := storeFiles(t, dir)
	if !bytes.Equal(coldResults, gotResults) {
		t.Fatalf("resumed results.ndjson differs from cold run (%d vs %d bytes)", len(gotResults), len(coldResults))
	}
	if !bytes.Equal(coldRefs, gotRefs) {
		t.Fatalf("resumed refs.ndjson differs from cold run (%d vs %d bytes)", len(gotRefs), len(coldRefs))
	}

	// A second -resume run is a no-op with a summary table.
	out2.Reset()
	errOut.Reset()
	if code := run(context.Background(), []string{"-spec", spec, "-store", dir, "-resume"}, &out2, &errOut); code != 0 {
		t.Fatalf("no-op resume exited nonzero\nstderr: %s", errOut.String())
	}
	if _, skipped3, executed3, _ := parseSummary(t, out2.String()); skipped3 != 12 || executed3 != 0 {
		t.Fatalf("no-op resume skipped=%d executed=%d", skipped3, executed3)
	}
	for _, want := range []string{"config", "mem=200", "mem=500", "mlpflush", "ANTT"} {
		if !bytes.Contains(out2.Bytes(), []byte(want)) {
			t.Fatalf("summary table missing %q:\n%s", want, out2.String())
		}
	}
}

func TestSweepBadInputs(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{}, // missing flags
		{"-spec", "/nonexistent", "-store", dir},
		{"-store", dir}, // missing spec
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if code := run(context.Background(), args, &out, &errOut); code == 0 {
			t.Fatalf("args %v exited 0", args)
		}
	}

	// Unknown spec fields fail loudly instead of sweeping the baseline.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"workloadz": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-spec", bad, "-store", dir}, &out, &errOut); code == 0 {
		t.Fatal("unknown spec field accepted")
	}
	if !bytes.Contains(errOut.Bytes(), []byte("workloadz")) {
		t.Fatalf("error does not name the bad field: %s", errOut.String())
	}

	// Bad structured-log flags are usage errors before any work starts.
	for _, args := range [][]string{
		{"-spec", bad, "-store", dir, "-log-format", "yaml"},
		{"-spec", bad, "-store", dir, "-log-level", "loud"},
	} {
		var out, errOut bytes.Buffer
		if code := run(context.Background(), args, &out, &errOut); code != 2 {
			t.Fatalf("args %v exited %d, want 2", args, code)
		}
	}
}
