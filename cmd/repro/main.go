// Command repro regenerates every table and figure of the paper's
// evaluation. Each experiment prints the same rows or series the paper
// reports; EXPERIMENTS.md records a reference run.
//
// Usage:
//
//	repro [-instructions N] [-warmup N] [-parallel N] [-only list] [-store DIR]
//
// -only selects a comma-separated subset of:
//
//	table1, fig4, fig5, predictors, fig9-10, fig11-12, fig13-14,
//	fig15-16, fig17-18, fig20-21, fig22-23
//
// With -store, the policy comparisons (fig9-10, fig13-14) run through the
// campaign subsystem against the persistent result store at DIR: cells
// already simulated (at the same budget and configuration) are reused, and
// an interrupted reproduction resumes instead of restarting.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"smtmlp/internal/bench"
	"smtmlp/internal/experiments"
	"smtmlp/internal/sim"
	"smtmlp/internal/store"
)

func main() {
	instructions := flag.Uint64("instructions", 300_000, "per-thread instruction budget (the paper uses 200M)")
	warmup := flag.Uint64("warmup", 0, "warm-up instructions before measurement (0 = budget/4)")
	parallel := flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
	only := flag.String("only", "", "comma-separated experiment subset (empty = all)")
	storeDir := flag.String("store", "", "persistent result store for the policy comparisons (empty = in-memory only)")
	flag.Parse()

	// Ctrl-C / SIGTERM cancels the batch pools: in-flight simulations
	// finish, queued ones drain immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	runner := sim.NewRunner(sim.Params{
		Instructions: *instructions,
		Warmup:       *warmup,
		Parallelism:  *parallel,
	})

	selected := map[string]bool{}
	for _, s := range strings.Split(*only, ",") {
		if s = strings.TrimSpace(s); s != "" {
			selected[s] = true
		}
	}
	want := func(name string) bool { return len(selected) == 0 || selected[name] }

	// With -store, the policy comparisons go through the campaign subsystem:
	// persistent, deduplicated, resumable after an interruption.
	var st *store.Store
	if *storeDir != "" {
		var err error
		if st, err = store.Open(*storeDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer st.Close()
	}
	comparison := func(threads int) func() fmt.Stringer {
		return func() fmt.Stringer {
			if st == nil {
				if threads == 4 {
					return experiments.Figure13and14(ctx, runner)
				}
				return experiments.Figure9and10(ctx, runner)
			}
			pc, sum, err := experiments.PolicyComparisonCampaign(ctx, st, threads,
				*instructions, *warmup, *parallel)
			if err != nil && ctx.Err() == nil {
				fmt.Fprintln(os.Stderr, err)
				st.Close() // os.Exit skips the deferred Close
				os.Exit(1)
			}
			fmt.Printf("(campaign: %d cells, %d from store, %d simulated)\n",
				sum.Total, sum.Skipped, sum.Executed)
			return pc
		}
	}

	type experiment struct {
		name string
		run  func() fmt.Stringer
	}
	list := []experiment{
		{"table1", func() fmt.Stringer { return experiments.TableI(ctx, runner) }},
		{"fig4", func() fmt.Stringer { return experiments.Figure4(ctx, runner) }},
		{"fig5", func() fmt.Stringer { return experiments.Figure5(ctx, runner) }},
		{"predictors", func() fmt.Stringer { return predictorBundle{experiments.Predictors(ctx, runner)} }},
		{"fig9-10", comparison(2)},
		{"fig11-12", func() fmt.Stringer { return ipcBundle{experiments.Figure9and10(ctx, runner)} }},
		{"fig13-14", comparison(4)},
		{"fig15-16", func() fmt.Stringer { return experiments.Figure15and16(ctx, runner) }},
		{"fig17-18", func() fmt.Stringer { return experiments.Figure17and18(ctx, runner) }},
		{"fig20-21", func() fmt.Stringer { return experiments.Figure20and21(ctx, runner) }},
		{"fig22-23", func() fmt.Stringer { return experiments.Figure22and23(ctx, runner) }},
	}

	fmt.Printf("# MLP-aware SMT fetch policy reproduction — %d instructions/thread, warmup %d\n\n",
		*instructions, runnerWarmup(runner))
	for _, e := range list {
		if !want(e.name) {
			continue
		}
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "interrupted; stopping")
			os.Exit(1)
		}
		start := time.Now()
		res := e.run()
		fmt.Printf("## %s (%.1fs)\n\n%s\n", e.name, time.Since(start).Seconds(), res)
	}
	// An interruption during the last experiment leaves it rendered with
	// partial data; still report the run as interrupted.
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "interrupted; stopping")
		os.Exit(1)
	}
	if len(selected) > 0 {
		for name := range selected {
			found := false
			for _, e := range list {
				if e.name == name {
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
				os.Exit(2)
			}
		}
	}
}

func runnerWarmup(r *sim.Runner) uint64 { return r.Params.EffectiveWarmup() }

// predictorBundle renders Figures 6, 7 and 8 from one characterization run.
type predictorBundle struct{ p experiments.PredictorsResult }

func (b predictorBundle) String() string {
	return b.p.Figure6String() + "\n" + b.p.Figure7String() + "\n" + b.p.Figure8String()
}

// ipcBundle renders the Figure 11/12 per-thread IPC stacks.
type ipcBundle struct{ pc experiments.PolicyComparison }

func (b ipcBundle) String() string {
	return b.pc.IPCStacks(bench.MLPWorkload) + "\n" + b.pc.IPCStacks(bench.MixedWorkload)
}
