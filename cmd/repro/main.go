// Command repro regenerates every table and figure of the paper's
// evaluation. Each experiment prints the same rows or series the paper
// reports; EXPERIMENTS.md records a reference run.
//
// Usage:
//
//	repro [-instructions N] [-warmup N] [-parallel N] [-only list]
//
// -only selects a comma-separated subset of:
//
//	table1, fig4, fig5, predictors, fig9-10, fig11-12, fig13-14,
//	fig15-16, fig17-18, fig20-21, fig22-23
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"smtmlp/internal/bench"
	"smtmlp/internal/experiments"
	"smtmlp/internal/sim"
)

func main() {
	instructions := flag.Uint64("instructions", 300_000, "per-thread instruction budget (the paper uses 200M)")
	warmup := flag.Uint64("warmup", 0, "warm-up instructions before measurement (0 = budget/4)")
	parallel := flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
	only := flag.String("only", "", "comma-separated experiment subset (empty = all)")
	flag.Parse()

	// Ctrl-C / SIGTERM cancels the batch pools: in-flight simulations
	// finish, queued ones drain immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	runner := sim.NewRunner(sim.Params{
		Instructions: *instructions,
		Warmup:       *warmup,
		Parallelism:  *parallel,
	})

	selected := map[string]bool{}
	for _, s := range strings.Split(*only, ",") {
		if s = strings.TrimSpace(s); s != "" {
			selected[s] = true
		}
	}
	want := func(name string) bool { return len(selected) == 0 || selected[name] }

	type experiment struct {
		name string
		run  func() fmt.Stringer
	}
	list := []experiment{
		{"table1", func() fmt.Stringer { return experiments.TableI(ctx, runner) }},
		{"fig4", func() fmt.Stringer { return experiments.Figure4(ctx, runner) }},
		{"fig5", func() fmt.Stringer { return experiments.Figure5(ctx, runner) }},
		{"predictors", func() fmt.Stringer { return predictorBundle{experiments.Predictors(ctx, runner)} }},
		{"fig9-10", func() fmt.Stringer { return experiments.Figure9and10(ctx, runner) }},
		{"fig11-12", func() fmt.Stringer { return ipcBundle{experiments.Figure9and10(ctx, runner)} }},
		{"fig13-14", func() fmt.Stringer { return experiments.Figure13and14(ctx, runner) }},
		{"fig15-16", func() fmt.Stringer { return experiments.Figure15and16(ctx, runner) }},
		{"fig17-18", func() fmt.Stringer { return experiments.Figure17and18(ctx, runner) }},
		{"fig20-21", func() fmt.Stringer { return experiments.Figure20and21(ctx, runner) }},
		{"fig22-23", func() fmt.Stringer { return experiments.Figure22and23(ctx, runner) }},
	}

	fmt.Printf("# MLP-aware SMT fetch policy reproduction — %d instructions/thread, warmup %d\n\n",
		*instructions, runnerWarmup(runner))
	for _, e := range list {
		if !want(e.name) {
			continue
		}
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "interrupted; stopping")
			os.Exit(1)
		}
		start := time.Now()
		res := e.run()
		fmt.Printf("## %s (%.1fs)\n\n%s\n", e.name, time.Since(start).Seconds(), res)
	}
	// An interruption during the last experiment leaves it rendered with
	// partial data; still report the run as interrupted.
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "interrupted; stopping")
		os.Exit(1)
	}
	if len(selected) > 0 {
		for name := range selected {
			found := false
			for _, e := range list {
				if e.name == name {
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
				os.Exit(2)
			}
		}
	}
}

func runnerWarmup(r *sim.Runner) uint64 { return r.Params.EffectiveWarmup() }

// predictorBundle renders Figures 6, 7 and 8 from one characterization run.
type predictorBundle struct{ p experiments.PredictorsResult }

func (b predictorBundle) String() string {
	return b.p.Figure6String() + "\n" + b.p.Figure7String() + "\n" + b.p.Figure8String()
}

// ipcBundle renders the Figure 11/12 per-thread IPC stacks.
type ipcBundle struct{ pc experiments.PolicyComparison }

func (b ipcBundle) String() string {
	return b.pc.IPCStacks(bench.MLPWorkload) + "\n" + b.pc.IPCStacks(bench.MixedWorkload)
}
