// Command mlpstats characterizes one benchmark (or all of them) the way
// Section 2 of the paper does: long-latency loads per 1K instructions, MLP
// by the Chou et al. definition, the performance impact of MLP, and the
// predictor statistics behind Figures 4 and 6-8.
//
// Usage:
//
//	mlpstats [-benchmark name|all] [-instructions N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"smtmlp/internal/bench"
	"smtmlp/internal/core"
	"smtmlp/internal/sim"
)

func main() {
	benchmark := flag.String("benchmark", "all", "benchmark name, or 'all'")
	instructions := flag.Uint64("instructions", 300_000, "instruction budget")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	names := bench.Names()
	if *benchmark != "all" {
		if _, err := bench.Get(*benchmark); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		names = []string{*benchmark}
	}

	runner := sim.NewRunner(sim.Params{Instructions: *instructions})
	fmt.Printf("%-10s %8s %6s %8s %6s %9s %9s %9s %9s\n",
		"benchmark", "LLL/1K", "MLP", "impact", "type", "LLL-pred", "miss-cov", "bin-MLP", "far-enough")
	for _, name := range names {
		cfg := core.DefaultConfig(1)
		cfg.LLSRSize = 128
		c, res, err := runner.RunSingleCoreCtx(ctx, cfg, name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}

		serCfg := cfg
		serCfg.Mem.SerializeLLL = true
		ser, err := runner.RunSingleCtx(ctx, serCfg, name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		impact := 0.0
		if ser.IPC[0] > 0 && res.IPC[0] > 0 {
			cpiPar, cpiSer := 1/res.IPC[0], 1/ser.IPC[0]
			impact = (cpiSer - cpiPar) / cpiSer
		}
		class := "ILP"
		if impact > 0.10 {
			class = "MLP"
		}

		st := c.MLPState(0)
		bin := "-"
		if tp, tn, _, _, ok := st.BinaryAccuracy(); ok {
			bin = fmt.Sprintf("%8.1f%%", 100*(tp+tn))
		}
		far := "-"
		if fe, ok := st.FarEnoughAccuracy(); ok {
			far = fmt.Sprintf("%8.1f%%", 100*fe)
		}
		fmt.Printf("%-10s %8.2f %6.2f %7.1f%% %6s %8.1f%% %8.1f%% %9s %9s\n",
			name, res.LLLPer1K[0], res.MLP[0], 100*impact, class,
			100*st.MissPattern.Accuracy(), 100*st.MissPattern.MissCoverage(), bin, far)
	}
}
