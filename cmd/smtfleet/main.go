// Command smtfleet runs a declarative simulation campaign across a fleet of
// remote smtserved workers, merging every result into the local
// authoritative store. It is cmd/smtsweep's distributed twin: same specs,
// same store, same summary — the spec's missing cells are partitioned into
// leases and pulled through the workers' /v1/work endpoints instead of a
// local engine, and the store comes out byte-identical either way.
//
// Usage:
//
//	smtfleet -spec spec.json -store DIR -workers http://h1:8344,http://h2:8344 \
//	         [-resume] [-lease-size N] [-lease-target D] [-pipeline N] \
//	         [-no-gzip] [-lease-ttl D] [-max-attempts N] \
//	         [-straggler-after D] [-quiet]
//
// By default leases are sized adaptively: each worker's cells/sec is tracked
// and its next lease sized to take about -lease-target of wall time, so fast
// workers pull big leases while slow ones stay small; -lease-size N pins a
// fixed size instead. Dispatch is pipelined (-pipeline leases in flight per
// worker, default 2) and lease/result bodies travel gzip-compressed when the
// worker advertises support (-no-gzip forces plain JSON).
//
// Workers need no flags beyond being up ("smtserved -addr :8344"); they hold
// no state a coordinator depends on. The fleet tolerates worker loss (health
// probes with backoff retire dead workers and requeue their leases),
// re-dispatches straggling leases to idle workers, heartbeats long-running
// leases so slow-but-alive workers are never cancelled mid-execution, and
// absorbs every duplicate execution through the store's content-addressed
// dedupe. Ctrl-C, a crashed coordinator, or losing the whole fleet all leave
// the store resumable: run again with -resume (or fall back to local
// smtsweep -resume) to fill the remaining gaps.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"smtmlp"
	"smtmlp/internal/campaign"
	"smtmlp/internal/fleet"
	"smtmlp/internal/obs"
	"smtmlp/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("smtfleet", flag.ContinueOnError)
	fs.SetOutput(errOut)
	specPath := fs.String("spec", "", `campaign spec file ("-" reads stdin)`)
	storeDir := fs.String("store", "", "result store directory (created if missing)")
	workers := fs.String("workers", "", "comma-separated worker base URLs (http://host:port)")
	resume := fs.Bool("resume", false, "allow filling the gaps of a partially-run spec")
	leaseSize := fs.Int("lease-size", 0, "fixed cells per lease (0 = adaptive sizing toward -lease-target)")
	leaseTarget := fs.Duration("lease-target", fleet.DefaultLeaseTarget, "wall time an adaptively-sized lease aims for")
	pipeline := fs.Int("pipeline", fleet.DefaultPipelineDepth, "leases in flight per worker (1 = serial dispatch)")
	noGzip := fs.Bool("no-gzip", false, "disable gzip compression of lease and result bodies")
	leaseTTL := fs.Duration("lease-ttl", fleet.DefaultLeaseTTL, "max lifetime of an unrenewed lease on a worker")
	maxAttempts := fs.Int("max-attempts", fleet.DefaultMaxAttempts, "lease deliveries per chunk before the run fails")
	straggler := fs.Duration("straggler-after", fleet.DefaultStraggler, "re-dispatch leases in flight longer than this (negative disables)")
	quiet := fs.Bool("quiet", false, "suppress progress and fleet event lines")
	logFormat := fs.String("log-format", "text", "structured log format on stderr: text or json")
	logLevel := fs.String("log-level", "info", "structured log level: debug, info, warn or error")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// Structured lease-lifecycle logs go to errOut (stderr), independent of
	// -quiet: quiet silences the human progress lines on stdout, while the
	// machine-readable log stream is controlled only by -log-level.
	logger, err := obs.NewLogger(errOut, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(errOut, "smtfleet: %v\n", err)
		return 2
	}
	if *specPath == "" || *storeDir == "" || *workers == "" {
		fmt.Fprintln(errOut, "smtfleet: -spec, -store and -workers are required")
		return 2
	}
	var urls []string
	for _, w := range strings.Split(*workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			urls = append(urls, w)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(errOut, "smtfleet: -workers lists no worker URLs")
		return 2
	}

	spec, err := readSpec(*specPath)
	if err != nil {
		fmt.Fprintf(errOut, "smtfleet: %v\n", err)
		return 2
	}
	_, fps, err := spec.Requests()
	if err != nil {
		fmt.Fprintf(errOut, "smtfleet: invalid spec: %v\n", err)
		return 2
	}

	st, err := store.OpenWithLogger(*storeDir, logger)
	if err != nil {
		fmt.Fprintf(errOut, "smtfleet: %v\n", err)
		return 1
	}
	defer st.Close()

	// Same operator guard as smtsweep: an overlap without -resume usually
	// means the wrong store (or an interrupted run the operator should know
	// about), so refuse loudly instead of silently filling gaps.
	overlap := 0
	for _, fp := range fps {
		if st.Has(fp) {
			overlap++
		}
	}
	if overlap > 0 && !*resume {
		fmt.Fprintf(errOut, "smtfleet: store already holds %d of this spec's %d results; pass -resume to fill the remaining gaps\n",
			overlap, len(fps))
		return 1
	}

	opts := fleet.Options{
		Workers:        urls,
		LeaseSize:      *leaseSize,
		LeaseTarget:    *leaseTarget,
		PipelineDepth:  *pipeline,
		NoCompression:  *noGzip,
		LeaseTTL:       *leaseTTL,
		MaxAttempts:    *maxAttempts,
		StragglerAfter: *straggler,
		Logger:         logger,
	}
	if !*quiet {
		opts.Progress = func(p campaign.Progress) {
			fmt.Fprintf(out, "progress: %d/%d done (%d cached, %d executed, %d failed)\n",
				p.Skipped+p.Executed+p.Failed, p.Total, p.Skipped, p.Executed, p.Failed)
		}
		opts.Eventf = func(format string, args ...any) {
			fmt.Fprintf(out, format+"\n", args...)
		}
	}
	sum, runErr := fleet.Run(ctx, st, spec, opts)

	name := sum.Name
	if name == "" {
		name = "campaign"
	}
	fmt.Fprintf(out, "%s: total=%d skipped=%d executed=%d failed=%d duplicates=%d leases=%d renewed=%d retried=%d workers_lost=%d refs_merged=%d wire_out=%d/%d wire_in=%d/%d\n",
		name, sum.Total, sum.Skipped, sum.Executed, sum.Failed, sum.Duplicates,
		sum.LeasesDispatched, sum.LeasesRenewed, sum.LeasesRetried, sum.WorkersLost, sum.RefsMerged,
		sum.BytesOutWire, sum.BytesOut, sum.BytesInWire, sum.BytesIn)
	if !*quiet {
		for _, ws := range sum.Workers {
			fmt.Fprintf(out, "worker %s: leases=%d cells=%d cells_per_sec=%.1f lease_size=%d peak_depth=%d\n",
				ws.Worker, ws.Leases, ws.Cells, ws.CellsPerSec, ws.LeaseSize, ws.PeakDepth)
		}
	}

	if runErr != nil {
		if errors.Is(runErr, smtmlp.ErrCanceled) {
			fmt.Fprintf(errOut, "smtfleet: interrupted; run again with -resume to finish the remaining %d cells\n",
				sum.Total-sum.Skipped-sum.Executed-sum.Failed)
		} else {
			fmt.Fprintf(errOut, "smtfleet: %v\n", runErr)
		}
		return 1
	}

	rows, err := campaign.Summarize(st, spec)
	if err != nil {
		fmt.Fprintf(errOut, "smtfleet: summarizing: %v\n", err)
		return 1
	}
	campaign.WriteSummaryTable(out, rows)
	return 0
}

// readSpec loads the campaign spec, rejecting unknown fields so a typo'd
// dimension fails loudly instead of silently sweeping the baseline.
func readSpec(path string) (campaign.Spec, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return campaign.Spec{}, err
		}
		defer f.Close()
		r = f
	}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec campaign.Spec
	if err := dec.Decode(&spec); err != nil {
		return campaign.Spec{}, fmt.Errorf("decoding spec %s: %w", path, err)
	}
	return spec, nil
}
