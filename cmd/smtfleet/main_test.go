package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"smtmlp"
	"smtmlp/internal/campaign"
	"smtmlp/internal/server"
	"smtmlp/internal/store"
)

// writeSpec drops an 8-cell campaign spec at a millisecond-scale budget.
func writeSpec(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	spec := `{
  "name": "fleet-cli",
  "instructions": 5000,
  "warmup": 1000,
  "policies": ["icount", "mlpflush"],
  "workloads": {"mixes": [["mcf","galgel"], ["swim","twolf"]]},
  "grid": {"mem_latencies": [200, 500]}
}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

var summaryRE = regexp.MustCompile(`total=(\d+) skipped=(\d+) executed=(\d+) failed=(\d+)`)

func parseSummary(t *testing.T, out string) (total, skipped, executed, failed int) {
	t.Helper()
	m := summaryRE.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no summary line in output:\n%s", out)
	}
	atoi := func(s string) int { n, _ := strconv.Atoi(s); return n }
	return atoi(m[1]), atoi(m[2]), atoi(m[3]), atoi(m[4])
}

// TestFleetCLIEndToEnd drives the full CLI path against two in-process
// workers and byte-compares the merged store with a local campaign run of
// the same spec.
func TestFleetCLIEndToEnd(t *testing.T) {
	specPath := writeSpec(t)
	w1 := httptest.NewServer(server.New(smtmlp.NewEngine()))
	defer w1.Close()
	w2 := httptest.NewServer(server.New(smtmlp.NewEngine()))
	defer w2.Close()

	// Local ground truth through the campaign engine.
	spec, err := readSpec(specPath)
	if err != nil {
		t.Fatal(err)
	}
	localDir := t.TempDir()
	localSt, err := store.Open(localDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Run(context.Background(), localSt, spec, campaign.Options{}); err != nil {
		t.Fatal(err)
	}
	localSt.Close()

	fleetDir := filepath.Join(t.TempDir(), "store")
	var out, errOut bytes.Buffer
	code := run(context.Background(), []string{
		"-spec", specPath, "-store", fleetDir,
		"-workers", w1.URL + "," + w2.URL,
		"-lease-size", "2",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("smtfleet exited %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	total, skipped, executed, failed := parseSummary(t, out.String())
	if total != 8 || skipped != 0 || executed != 8 || failed != 0 {
		t.Fatalf("summary total=%d skipped=%d executed=%d failed=%d", total, skipped, executed, failed)
	}
	for _, want := range []string{"config", "mem=200", "mem=500", "mlpflush", "ANTT"} {
		if !bytes.Contains(out.Bytes(), []byte(want)) {
			t.Fatalf("summary table missing %q:\n%s", want, out.String())
		}
	}
	for _, name := range []string{"results.ndjson", "refs.ndjson"} {
		want, err := os.ReadFile(filepath.Join(localDir, name))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(fleetDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("%s differs between local and fleet execution:\nlocal:\n%s\nfleet:\n%s", name, want, got)
		}
	}

	// Overlap without -resume is refused.
	out.Reset()
	errOut.Reset()
	if code := run(context.Background(), []string{
		"-spec", specPath, "-store", fleetDir, "-workers", w1.URL,
	}, &out, &errOut); code == 0 {
		t.Fatal("overlapping store accepted without -resume")
	}

	// -resume over the complete store is a no-op.
	out.Reset()
	errOut.Reset()
	if code := run(context.Background(), []string{
		"-spec", specPath, "-store", fleetDir, "-workers", w1.URL, "-resume",
	}, &out, &errOut); code != 0 {
		t.Fatalf("no-op resume exited %d\nstderr: %s", code, errOut.String())
	}
	if _, skipped, executed, _ := parseSummary(t, out.String()); skipped != 8 || executed != 0 {
		t.Fatalf("no-op resume skipped=%d executed=%d", skipped, executed)
	}
}

func TestFleetCLIBadInputs(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t)
	cases := [][]string{
		{},                                      // missing everything
		{"-spec", spec, "-store", dir},          // missing workers
		{"-spec", spec, "-workers", "http://x"}, // missing store
		{"-spec", "/nonexistent", "-store", dir, "-workers", "x"}, // bad spec path
		{"-spec", spec, "-store", dir, "-workers", " , "},         // empty worker list
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if code := run(context.Background(), args, &out, &errOut); code == 0 {
			t.Fatalf("args %v exited 0", args)
		}
	}
}
