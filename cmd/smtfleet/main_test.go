package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"smtmlp"
	"smtmlp/internal/campaign"
	"smtmlp/internal/server"
	"smtmlp/internal/store"
)

// writeSpec drops an 8-cell campaign spec at a millisecond-scale budget.
func writeSpec(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	spec := `{
  "name": "fleet-cli",
  "instructions": 5000,
  "warmup": 1000,
  "policies": ["icount", "mlpflush"],
  "workloads": {"mixes": [["mcf","galgel"], ["swim","twolf"]]},
  "grid": {"mem_latencies": [200, 500]}
}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

var summaryRE = regexp.MustCompile(`total=(\d+) skipped=(\d+) executed=(\d+) failed=(\d+)`)

func parseSummary(t *testing.T, out string) (total, skipped, executed, failed int) {
	t.Helper()
	m := summaryRE.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no summary line in output:\n%s", out)
	}
	atoi := func(s string) int { n, _ := strconv.Atoi(s); return n }
	return atoi(m[1]), atoi(m[2]), atoi(m[3]), atoi(m[4])
}

// TestFleetCLIEndToEnd drives the full CLI path against two in-process
// workers and byte-compares the merged store with a local campaign run of
// the same spec.
func TestFleetCLIEndToEnd(t *testing.T) {
	specPath := writeSpec(t)
	w1 := httptest.NewServer(server.New(smtmlp.NewEngine()))
	defer w1.Close()
	w2 := httptest.NewServer(server.New(smtmlp.NewEngine()))
	defer w2.Close()

	// Local ground truth through the campaign engine.
	spec, err := readSpec(specPath)
	if err != nil {
		t.Fatal(err)
	}
	localDir := t.TempDir()
	localSt, err := store.Open(localDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Run(context.Background(), localSt, spec, campaign.Options{}); err != nil {
		t.Fatal(err)
	}
	localSt.Close()

	fleetDir := filepath.Join(t.TempDir(), "store")
	var out, errOut bytes.Buffer
	code := run(context.Background(), []string{
		"-spec", specPath, "-store", fleetDir,
		"-workers", w1.URL + "," + w2.URL,
		"-lease-size", "2",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("smtfleet exited %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	total, skipped, executed, failed := parseSummary(t, out.String())
	if total != 8 || skipped != 0 || executed != 8 || failed != 0 {
		t.Fatalf("summary total=%d skipped=%d executed=%d failed=%d", total, skipped, executed, failed)
	}
	for _, want := range []string{"config", "mem=200", "mem=500", "mlpflush", "ANTT"} {
		if !bytes.Contains(out.Bytes(), []byte(want)) {
			t.Fatalf("summary table missing %q:\n%s", want, out.String())
		}
	}
	for _, name := range []string{"results.ndjson", "refs.ndjson"} {
		want, err := os.ReadFile(filepath.Join(localDir, name))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(fleetDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("%s differs between local and fleet execution:\nlocal:\n%s\nfleet:\n%s", name, want, got)
		}
	}

	// Overlap without -resume is refused.
	out.Reset()
	errOut.Reset()
	if code := run(context.Background(), []string{
		"-spec", specPath, "-store", fleetDir, "-workers", w1.URL,
	}, &out, &errOut); code == 0 {
		t.Fatal("overlapping store accepted without -resume")
	}

	// -resume over the complete store is a no-op.
	out.Reset()
	errOut.Reset()
	if code := run(context.Background(), []string{
		"-spec", specPath, "-store", fleetDir, "-workers", w1.URL, "-resume",
	}, &out, &errOut); code != 0 {
		t.Fatalf("no-op resume exited %d\nstderr: %s", code, errOut.String())
	}
	if _, skipped, executed, _ := parseSummary(t, out.String()); skipped != 8 || executed != 0 {
		t.Fatalf("no-op resume skipped=%d executed=%d", skipped, executed)
	}
}

// TestFleetCLIQuietAndLogFlags pins the -quiet x -log-format contract:
// -quiet silences the human progress lines on stdout but leaves the
// structured stderr log stream alone, which -log-level controls
// independently; a bad -log-format is a usage error.
func TestFleetCLIQuietAndLogFlags(t *testing.T) {
	specPath := writeSpec(t)
	w := httptest.NewServer(server.New(smtmlp.NewEngine()))
	defer w.Close()

	var out, errOut bytes.Buffer
	code := run(context.Background(), []string{
		"-spec", specPath, "-store", filepath.Join(t.TempDir(), "store"),
		"-workers", w.URL, "-quiet", "-log-format", "json",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("smtfleet exited %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if bytes.Contains(out.Bytes(), []byte("progress:")) {
		t.Fatalf("-quiet run printed progress lines:\n%s", out.String())
	}
	if _, _, executed, _ := parseSummary(t, out.String()); executed != 8 {
		t.Fatalf("summary line missing or wrong under -quiet:\n%s", out.String())
	}
	var sawDispatch bool
	for _, line := range bytes.Split(bytes.TrimSpace(errOut.Bytes()), []byte("\n")) {
		var ll struct {
			Msg        string `json:"msg"`
			CampaignID string `json:"campaign_id"`
			RequestID  string `json:"request_id"`
		}
		if err := json.Unmarshal(line, &ll); err != nil {
			t.Fatalf("stderr line is not JSON under -log-format json: %s", line)
		}
		if ll.Msg == "lease dispatched" {
			if ll.CampaignID == "" || ll.RequestID == "" {
				t.Fatalf("dispatch log line lacks correlation IDs: %s", line)
			}
			sawDispatch = true
		}
	}
	if !sawDispatch {
		t.Fatalf("no 'lease dispatched' log line on stderr:\n%s", errOut.String())
	}

	// -log-level error silences the info-level lease lifecycle.
	out.Reset()
	errOut.Reset()
	code = run(context.Background(), []string{
		"-spec", specPath, "-store", filepath.Join(t.TempDir(), "store"),
		"-workers", w.URL, "-quiet", "-log-format", "json", "-log-level", "error",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, errOut.String())
	}
	if bytes.Contains(errOut.Bytes(), []byte("lease dispatched")) {
		t.Fatalf("-log-level error still logs info lines:\n%s", errOut.String())
	}

	// A bad format is a usage error before any work starts.
	out.Reset()
	errOut.Reset()
	if code := run(context.Background(), []string{
		"-spec", specPath, "-store", t.TempDir(), "-workers", w.URL,
		"-log-format", "yaml",
	}, &out, &errOut); code != 2 {
		t.Fatalf("bad -log-format exited %d, want 2", code)
	}
}

func TestFleetCLIBadInputs(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t)
	cases := [][]string{
		{},                                      // missing everything
		{"-spec", spec, "-store", dir},          // missing workers
		{"-spec", spec, "-workers", "http://x"}, // missing store
		{"-spec", "/nonexistent", "-store", dir, "-workers", "x"}, // bad spec path
		{"-spec", spec, "-store", dir, "-workers", " , "},         // empty worker list
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if code := run(context.Background(), args, &out, &errOut); code == 0 {
			t.Fatalf("args %v exited 0", args)
		}
	}
}
