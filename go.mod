module smtmlp

go 1.24
