package smtmlp

// Interval-trace contract tests: traces are opt-in observations that (a) are
// byte-deterministic across repeated and cache-warm runs, (b) never change
// the simulated outcome, and (c) can be requested per Request without
// touching the fingerprint that keys the persistent store.

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

func traceEngine(opts ...Option) *Engine {
	base := []Option{WithInstructions(6_000), WithWarmup(1_500)}
	return NewEngine(append(base, opts...)...)
}

func TestIntervalTraceDeterminismGolden(t *testing.T) {
	ctx := context.Background()
	eng := traceEngine(WithIntervalTrace(500))
	cfg := DefaultConfig(2)
	w := Mix("mcf", "galgel")

	cold, err := eng.RunWorkload(ctx, cfg, w, MLPFlush)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := eng.RunWorkload(ctx, cfg, w, MLPFlush)
	if err != nil {
		t.Fatal(err)
	}
	coldJSON, _ := json.Marshal(cold)
	warmJSON, _ := json.Marshal(warm)
	if !bytes.Equal(coldJSON, warmJSON) {
		t.Fatalf("traced results drifted between cold and warm runs:\ncold: %s\nwarm: %s", coldJSON, warmJSON)
	}

	// A fresh engine (cold reference cache) must reproduce the same bytes.
	again, err := traceEngine(WithIntervalTrace(500)).RunWorkload(ctx, cfg, w, MLPFlush)
	if err != nil {
		t.Fatal(err)
	}
	againJSON, _ := json.Marshal(again)
	if !bytes.Equal(coldJSON, againJSON) {
		t.Fatalf("traced results differ across engines:\nfirst: %s\nsecond: %s", coldJSON, againJSON)
	}

	for ti, th := range cold.Threads {
		if len(th.Intervals) == 0 {
			t.Fatalf("thread %d has no interval samples", ti)
		}
		var committed uint64
		nextAt := int64(500)
		for i, s := range th.Intervals {
			// Idle-skipped cycles can push a sample past its boundary, but
			// each sample fires at or after the next 500-cycle boundary past
			// the previous one.
			if s.Cycle < nextAt {
				t.Fatalf("thread %d sample %d: cycle %d fired before boundary %d", ti, i, s.Cycle, nextAt)
			}
			nextAt = (s.Cycle/500 + 1) * 500
			committed += s.Committed
		}
		if committed > th.Committed {
			t.Fatalf("thread %d: interval committed sum %d exceeds total %d", ti, committed, th.Committed)
		}
	}
}

func TestIntervalTraceDoesNotChangeResults(t *testing.T) {
	ctx := context.Background()
	cfg := DefaultConfig(2)
	w := Mix("mcf", "swim")

	plain, err := traceEngine().RunWorkload(ctx, cfg, w, Flush)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := traceEngine(WithIntervalTrace(250)).RunWorkload(ctx, cfg, w, Flush)
	if err != nil {
		t.Fatal(err)
	}
	stripped := traced
	stripped.Threads = append([]ThreadResult(nil), traced.Threads...)
	for i := range stripped.Threads {
		if len(stripped.Threads[i].Intervals) == 0 {
			t.Fatalf("thread %d missing intervals on the traced run", i)
		}
		stripped.Threads[i].Intervals = nil
	}
	a, _ := json.Marshal(plain)
	b, _ := json.Marshal(stripped)
	if !bytes.Equal(a, b) {
		t.Fatalf("tracing changed the simulation outcome:\nplain:  %s\ntraced: %s", a, b)
	}
}

func TestIntervalTracePerRequest(t *testing.T) {
	ctx := context.Background()
	eng := traceEngine()
	cfg := DefaultConfig(2)
	reqs := []Request{
		{Tag: "traced", Config: cfg, Workload: Mix("mcf", "galgel"), Policy: ICount, TraceInterval: 500},
		{Tag: "plain", Config: cfg, Workload: Mix("mcf", "galgel"), Policy: ICount},
	}
	// The trace knob must not alter the store fingerprint: both requests are
	// the same simulation.
	if fa, fb := eng.Fingerprint(reqs[0]), eng.Fingerprint(reqs[1]); fa != fb {
		t.Fatalf("TraceInterval leaked into the fingerprint: %q vs %q", fa, fb)
	}
	byTag := map[string]BatchResult{}
	for br := range eng.RunBatch(ctx, reqs) {
		if br.Err != nil {
			t.Fatalf("%s: %v", br.Request.Tag, br.Err)
		}
		byTag[br.Request.Tag] = br
	}
	if n := len(byTag["traced"].Result.Threads[0].Intervals); n == 0 {
		t.Fatal("traced request has no interval samples")
	}
	for i, th := range byTag["plain"].Result.Threads {
		if len(th.Intervals) != 0 {
			t.Fatalf("untraced request thread %d unexpectedly has %d samples", i, len(th.Intervals))
		}
	}
	// RunRequest honors the per-request knob the same way.
	single, err := eng.RunRequest(ctx, reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(single)
	b, _ := json.Marshal(byTag["traced"].Result)
	if !bytes.Equal(a, b) {
		t.Fatalf("RunRequest and RunBatch disagree for the same request:\n%s\n%s", a, b)
	}
}
