// policy_compare: sweep all six fetch policies of the paper's main
// evaluation over a few representative two-thread workloads — one
// ILP-intensive, one MLP-intensive, and one mixed pair — and print a
// Figure 9/10-style comparison.
//
// The whole policies x workloads cross-product goes through one
// Engine.RunBatch call: requests fan out over a bounded worker pool,
// results stream back in completion order, and Index restores the
// deterministic submission order for printing.
//
//	go run ./examples/policy_compare
package main

import (
	"context"
	"fmt"
	"log"

	"smtmlp"
)

func main() {
	eng := smtmlp.NewEngine(smtmlp.WithInstructions(150_000))
	cfg := smtmlp.DefaultConfig(2)

	labels := []string{"ILP   (vortex+parser)", "MLP   (swim+galgel)", "mixed (swim+twolf)"}
	workloads := []smtmlp.Workload{
		smtmlp.Mix("vortex", "parser"),
		smtmlp.Mix("swim", "galgel"),
		smtmlp.Mix("swim", "twolf"),
	}
	policies := smtmlp.Policies()

	reqs := smtmlp.CrossProduct(cfg, workloads, policies)
	results := make([]smtmlp.WorkloadResult, len(reqs))
	for br := range eng.RunBatch(context.Background(), reqs) {
		if br.Err != nil {
			log.Fatalf("%s: %v", br.Request.Tag, br.Err)
		}
		results[br.Index] = br.Result
	}

	fmt.Printf("%-22s", "workload")
	for _, p := range policies {
		fmt.Printf("  %-16s", p)
	}
	fmt.Println()
	for wi, label := range labels {
		fmt.Printf("%-22s", label)
		for pi := range policies {
			res := results[wi*len(policies)+pi]
			fmt.Printf("  STP %.2f A %.2f", res.STP, res.ANTT)
		}
		fmt.Println()
	}
	fmt.Println("\nSTP higher is better; A (ANTT) lower is better.")
}
