// policy_compare: sweep all six fetch policies of the paper's main
// evaluation over a few representative two-thread workloads — one
// ILP-intensive, one MLP-intensive, and one mixed pair — and print a
// Figure 9/10-style comparison.
//
//	go run ./examples/policy_compare
package main

import (
	"fmt"
	"log"

	"smtmlp"
)

func main() {
	cfg := smtmlp.DefaultConfig(2)
	opts := smtmlp.RunOptions{Instructions: 150_000}

	workloads := []struct {
		label string
		w     smtmlp.Workload
	}{
		{"ILP   (vortex+parser)", smtmlp.Mix("vortex", "parser")},
		{"MLP   (swim+galgel)", smtmlp.Mix("swim", "galgel")},
		{"mixed (swim+twolf)", smtmlp.Mix("swim", "twolf")},
	}

	fmt.Printf("%-22s", "workload")
	for _, p := range smtmlp.Policies() {
		fmt.Printf("  %-16s", p)
	}
	fmt.Println()

	for _, wl := range workloads {
		fmt.Printf("%-22s", wl.label)
		for _, p := range smtmlp.Policies() {
			res, err := smtmlp.RunWorkload(cfg, wl.w, p, opts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  STP %.2f A %.2f", res.STP, res.ANTT)
		}
		fmt.Println()
	}
	fmt.Println("\nSTP higher is better; A (ANTT) lower is better.")
}
