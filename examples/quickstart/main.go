// Quickstart: run one two-thread workload under the baseline ICOUNT policy
// and the paper's MLP-aware flush policy, and compare the system metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"smtmlp"
)

func main() {
	cfg := smtmlp.DefaultConfig(2)
	workload := smtmlp.Mix("mcf", "galgel") // an MLP-intensive pair from Table II
	opts := smtmlp.RunOptions{Instructions: 200_000}

	fmt.Printf("workload: mcf + galgel on the Table IV baseline SMT processor\n\n")
	for _, p := range []smtmlp.Policy{smtmlp.ICount, smtmlp.Flush, smtmlp.MLPFlush} {
		res, err := smtmlp.RunWorkload(cfg, workload, p, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s  STP %.3f  ANTT %.3f   ", res.Policy, res.STP, res.ANTT)
		for _, t := range res.Threads {
			fmt.Printf("%s IPC %.3f (MLP %.2f)  ", t.Benchmark, t.IPC, t.MLP)
		}
		fmt.Println()
	}
	fmt.Println("\nSTP is higher-better (throughput); ANTT is lower-better (turnaround).")
	fmt.Println("MLP-aware flush should match flush's throughput while improving the")
	fmt.Println("MLP-intensive thread's turnaround — the paper's headline result.")
}
