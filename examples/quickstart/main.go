// Quickstart: run one two-thread workload under the baseline ICOUNT policy
// and the paper's MLP-aware flush policy, and compare the system metrics.
// The Engine is the package's entry point: it fixes the instruction budget
// and shares single-threaded references between the three runs, so the
// ICOUNT, flush and MLP-aware-flush results normalize against the same
// cached profiles.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"smtmlp"
)

func main() {
	ctx := context.Background()
	eng := smtmlp.NewEngine(smtmlp.WithInstructions(200_000))

	cfg := smtmlp.DefaultConfig(2)
	workload := smtmlp.Mix("mcf", "galgel") // an MLP-intensive pair from Table II

	fmt.Printf("workload: mcf + galgel on the Table IV baseline SMT processor\n\n")
	for _, p := range []smtmlp.Policy{smtmlp.ICount, smtmlp.Flush, smtmlp.MLPFlush} {
		res, err := eng.RunWorkload(ctx, cfg, workload, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s  STP %.3f  ANTT %.3f   ", res.Policy, res.STP, res.ANTT)
		for _, t := range res.Threads {
			fmt.Printf("%s IPC %.3f (MLP %.2f)  ", t.Benchmark, t.IPC, t.MLP)
		}
		fmt.Println()
	}
	fmt.Println("\nSTP is higher-better (throughput); ANTT is lower-better (turnaround).")
	fmt.Println("MLP-aware flush should match flush's throughput while improving the")
	fmt.Println("MLP-intensive thread's turnaround — the paper's headline result.")
}
