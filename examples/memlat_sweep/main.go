// memlat_sweep: reproduce the shape of Figures 15 and 16 on a single
// workload — as main memory latency grows, the MLP-aware flush policy's
// advantage over ICOUNT widens, because a stalled thread holds resources
// for longer under ICOUNT.
//
// Each latency point is a different Config, so the batch spans
// configurations as well as policies: RunBatch requests carry their own
// Config, and the engine's reference cache keys on a full config hash, so
// the four latency points normalize against four distinct single-threaded
// references without interfering.
//
//	go run ./examples/memlat_sweep
package main

import (
	"context"
	"fmt"
	"log"

	"smtmlp"
)

func main() {
	workload := smtmlp.Mix("swim", "twolf") // mixed MLP/ILP pair
	latencies := []int64{200, 400, 600, 800}
	eng := smtmlp.NewEngine(smtmlp.WithInstructions(150_000))

	// One request per (latency, policy): the whole sweep is a single batch.
	var reqs []smtmlp.Request
	for _, lat := range latencies {
		cfg := smtmlp.DefaultConfig(2)
		cfg.Mem.MemLatency = lat
		for _, p := range []smtmlp.Policy{smtmlp.ICount, smtmlp.MLPFlush} {
			reqs = append(reqs, smtmlp.Request{
				Tag:      fmt.Sprintf("mem=%d/%s", lat, p),
				Config:   cfg,
				Workload: workload,
				Policy:   p,
			})
		}
	}
	results := make([]smtmlp.WorkloadResult, len(reqs))
	for br := range eng.RunBatch(context.Background(), reqs) {
		if br.Err != nil {
			log.Fatalf("%s: %v", br.Request.Tag, br.Err)
		}
		results[br.Index] = br.Result
	}

	fmt.Println("workload swim+twolf: ICOUNT vs MLP-aware flush across memory latencies")
	fmt.Printf("%-8s %12s %12s %14s\n", "latency", "STP icount", "STP mlpflush", "mlpflush gain")
	for i, lat := range latencies {
		base, aware := results[2*i], results[2*i+1]
		fmt.Printf("%-8d %12.3f %12.3f %+13.1f%%\n",
			lat, base.STP, aware.STP, 100*(aware.STP/base.STP-1))
	}
}
