// memlat_sweep: reproduce the shape of Figures 15 and 16 on a single
// workload — as main memory latency grows, the MLP-aware flush policy's
// advantage over ICOUNT widens, because a stalled thread holds resources
// for longer under ICOUNT.
//
//	go run ./examples/memlat_sweep
package main

import (
	"fmt"
	"log"

	"smtmlp"
)

func main() {
	workload := smtmlp.Mix("swim", "twolf") // mixed MLP/ILP pair
	opts := smtmlp.RunOptions{Instructions: 150_000}

	fmt.Println("workload swim+twolf: ICOUNT vs MLP-aware flush across memory latencies")
	fmt.Printf("%-8s %12s %12s %14s\n", "latency", "STP icount", "STP mlpflush", "mlpflush gain")
	for _, lat := range []int64{200, 400, 600, 800} {
		cfg := smtmlp.DefaultConfig(2)
		cfg.Mem.MemLatency = lat

		base, err := smtmlp.RunWorkload(cfg, workload, smtmlp.ICount, opts)
		if err != nil {
			log.Fatal(err)
		}
		aware, err := smtmlp.RunWorkload(cfg, workload, smtmlp.MLPFlush, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %12.3f %12.3f %+13.1f%%\n",
			lat, base.STP, aware.STP, 100*(aware.STP/base.STP-1))
	}
}
