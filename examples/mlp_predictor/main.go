// mlp_predictor: demonstrate the paper's Section 4 machinery in isolation —
// the LLSR (including the Figure 3 worked example) and the MLP distance
// predictor, without running the full pipeline.
//
//	go run ./examples/mlp_predictor
package main

import (
	"fmt"

	"smtmlp/internal/mlp"
)

func main() {
	// --- The Figure 3 worked example -----------------------------------
	// An 8-entry LLSR observes a commit stream in which the head load is a
	// long-latency load and the youngest other long-latency load sits six
	// instructions behind it: the computed MLP distance is 6.
	llsr := mlp.NewLLSR(8)
	const loadPC = 0x1000

	// Fill the register: a long-latency load, then instructions with one
	// more long-latency load six positions later.
	pattern := []bool{true, false, false, false, false, false, true, false}
	for i, isLLL := range pattern {
		pc := uint64(0)
		if isLLL {
			pc = loadPC + uint64(i)
		}
		if _, _, update := llsr.Commit(isLLL, pc); update {
			panic("register still filling; no update expected")
		}
	}
	// The next commit pushes the head long-latency load out and yields its
	// measured MLP distance.
	headPC, dist, update := llsr.Commit(false, 0)
	fmt.Printf("Figure 3 example: update=%t headPC=%#x MLP distance=%d (paper: 6)\n\n",
		update, headPC, dist)

	// --- Training the distance predictor -------------------------------
	pred := mlp.NewDistancePredictor(2048, 128)
	fmt.Printf("before training: predicted distance = %d (conservative default)\n", pred.Predict(loadPC))
	pred.Update(loadPC, dist)
	fmt.Printf("after training:  predicted distance = %d\n\n", pred.Predict(loadPC))

	// --- The miss-pattern long-latency load predictor ------------------
	// A load that misses every 8th execution (a 64-byte line walked in
	// 8-byte strides) is perfectly predictable by the miss pattern scheme.
	mp := mlp.NewMissPatternPredictor(2048, 6)
	const strideLoad = 0x2000
	hits := 0
	correct := 0
	total := 0
	for i := 0; i < 64; i++ {
		miss := i%8 == 7
		predicted := mp.Predict(strideLoad)
		if i >= 16 { // after one full period of training
			total++
			if predicted == miss {
				correct++
			}
		}
		mp.Update(strideLoad, miss)
		if !miss {
			hits++
		}
	}
	fmt.Printf("miss-pattern predictor on a miss-every-8th load: %d/%d correct after training\n",
		correct, total)
}
