// HTTP client quickstart for the batch-simulation service: start
//
//	go run ./cmd/smtserved -addr :8344 -instructions 60000
//
// in one terminal, then
//
//	go run ./examples/httpclient -addr localhost:8344
//
// in another. The client discovers the catalog, runs one simulation through
// POST /v1/run, and streams a policy x workload cross-product from
// POST /v1/batch, printing each NDJSON line as it arrives — results show up
// one by one while the batch is still running, which is the point of the
// streaming endpoint.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"

	"smtmlp"
)

func main() {
	addr := flag.String("addr", "localhost:8344", "smtserved address")
	flag.Parse()
	base := "http://" + *addr

	// Discovery: what can this server simulate?
	var workloads struct {
		Benchmarks []string `json:"benchmarks"`
	}
	getJSON(base+"/v1/workloads", &workloads)
	var policies struct {
		Paper []string `json:"paper"`
	}
	getJSON(base+"/v1/policies", &policies)
	fmt.Printf("server knows %d benchmarks and the paper's %d policies: %s\n\n",
		len(workloads.Benchmarks), len(policies.Paper), strings.Join(policies.Paper, " "))

	// One simulation: the paper's mcf+galgel case study under MLP-aware flush.
	resp, err := http.Post(base+"/v1/run", "application/json",
		strings.NewReader(`{"benchmarks":["mcf","galgel"],"policy":"mlpflush"}`))
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		log.Fatalf("run rejected: %s: %s", resp.Status, body)
	}
	var run smtmlp.WorkloadResult
	if err := json.NewDecoder(resp.Body).Decode(&run); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("POST /v1/run  mcf+galgel under %s: STP %.3f  ANTT %.3f\n\n",
		run.Policy, run.STP, run.ANTT)

	// A streamed batch: 2 workloads x 3 policies, printed as lines arrive.
	fmt.Println("POST /v1/batch  streaming 6 results:")
	resp, err = http.Post(base+"/v1/batch", "application/json", strings.NewReader(
		`{"workloads":[["mcf","galgel"],["swim","twolf"]],"policies":["icount","flush","mlpflush"]}`))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("batch rejected: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var br smtmlp.BatchResult
		if err := json.Unmarshal(sc.Bytes(), &br); err != nil {
			log.Fatal(err)
		}
		if br.Err != nil {
			fmt.Printf("  [%d] %-22s FAILED: %v\n", br.Index, br.Request.Tag, br.Err)
			continue
		}
		fmt.Printf("  [%d] %-22s STP %.3f  ANTT %.3f\n",
			br.Index, br.Request.Tag, br.Result.STP, br.Result.ANTT)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		log.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
