package smtmlp

// End-to-end reproduction tests: the paper's headline claims, verified on a
// moderate instruction budget. All simulations are deterministic, so these
// assertions are stable, not flaky thresholds.

import (
	"testing"

	"smtmlp/internal/bench"
	"smtmlp/internal/core"
	"smtmlp/internal/metrics"
	"smtmlp/internal/policy"
	"smtmlp/internal/sim"
)

// mlpSubset is a representative slice of Table II's MLP-intensive group.
func mlpSubset() []bench.Workload {
	ws := bench.WorkloadsByClass(bench.TwoThreadWorkloads(), bench.MLPWorkload)
	return ws[:6]
}

func groupMetrics(t *testing.T, r *sim.Runner, workloads []bench.Workload, k policy.Kind) (stp, antt float64) {
	t.Helper()
	cfg := core.DefaultConfig(2)
	var stps, antts []float64
	for _, w := range workloads {
		res := r.RunWorkload(cfg, w, k, nil)
		stps = append(stps, res.STP)
		antts = append(antts, res.ANTT)
	}
	return metrics.HarmonicMean(stps), metrics.ArithmeticMean(antts)
}

// TestClaimMLPAwareFlushBestPolicy verifies the paper's bottom line for
// MLP-intensive workloads: the MLP-aware flush policy beats ICOUNT clearly
// on both metrics and improves on flush's turnaround while at least
// matching its throughput.
func TestClaimMLPAwareFlushBestPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("reproduction claims need a moderate budget")
	}
	r := sim.NewRunner(sim.Params{Instructions: 60_000, Warmup: 20_000})
	ws := mlpSubset()

	icountSTP, icountANTT := groupMetrics(t, r, ws, policy.ICount)
	flushSTP, flushANTT := groupMetrics(t, r, ws, policy.Flush)
	mlpSTP, mlpANTT := groupMetrics(t, r, ws, policy.MLPFlush)

	t.Logf("MLP group: icount STP %.3f ANTT %.3f | flush %.3f %.3f | mlpflush %.3f %.3f",
		icountSTP, icountANTT, flushSTP, flushANTT, mlpSTP, mlpANTT)

	// Paper: MLP-aware flush achieves ~20% better STP and ~21% better ANTT
	// than ICOUNT on MLP-intensive workloads. Require at least half the
	// reported margins.
	if mlpSTP < icountSTP*1.10 {
		t.Errorf("mlpflush STP %.3f not >= 10%% above ICOUNT %.3f", mlpSTP, icountSTP)
	}
	if mlpANTT > icountANTT*0.90 {
		t.Errorf("mlpflush ANTT %.3f not >= 10%% below ICOUNT %.3f", mlpANTT, icountANTT)
	}
	// Paper: ~5% better STP and much better ANTT than flush. Require
	// no-worse STP and strictly better ANTT.
	if mlpSTP < flushSTP*0.98 {
		t.Errorf("mlpflush STP %.3f clearly below flush %.3f", mlpSTP, flushSTP)
	}
	if mlpANTT >= flushANTT {
		t.Errorf("mlpflush ANTT %.3f not below flush %.3f", mlpANTT, flushANTT)
	}
}

// TestClaimMLPAwareFlushFourThreads extends the headline claim to the
// four-thread mixes of Table III: with four contexts sharing the pipeline,
// MLP-aware flush still clearly beats ICOUNT on both metrics for the
// all-MLP-intensive group and improves flush's turnaround without giving up
// throughput (the paper reports the MLP-aware policies' advantage carries
// over to four threads, Figures 13 and 14).
func TestClaimMLPAwareFlushFourThreads(t *testing.T) {
	if testing.Short() {
		t.Skip("reproduction claims need a moderate budget")
	}
	r := sim.NewRunner(sim.Params{Instructions: 60_000, Warmup: 20_000})
	ws := bench.WorkloadsByClass(bench.FourThreadWorkloads(), bench.MLPWorkload)
	if len(ws) != 3 {
		t.Fatalf("Table III has %d all-MLP four-thread workloads, want 3", len(ws))
	}

	groupMetrics4 := func(k policy.Kind) (stp, antt float64) {
		cfg := core.DefaultConfig(4)
		var stps, antts []float64
		for _, w := range ws {
			res := r.RunWorkload(cfg, w, k, nil)
			stps = append(stps, res.STP)
			antts = append(antts, res.ANTT)
		}
		return metrics.HarmonicMean(stps), metrics.ArithmeticMean(antts)
	}

	icountSTP, icountANTT := groupMetrics4(policy.ICount)
	flushSTP, flushANTT := groupMetrics4(policy.Flush)
	mlpSTP, mlpANTT := groupMetrics4(policy.MLPFlush)

	t.Logf("4-thread MLP group: icount STP %.3f ANTT %.3f | flush %.3f %.3f | mlpflush %.3f %.3f",
		icountSTP, icountANTT, flushSTP, flushANTT, mlpSTP, mlpANTT)

	// Mirror the two-thread thresholds: clearly better than ICOUNT on both
	// metrics, no worse than flush on STP, strictly better on ANTT.
	if mlpSTP < icountSTP*1.10 {
		t.Errorf("4t mlpflush STP %.3f not >= 10%% above ICOUNT %.3f", mlpSTP, icountSTP)
	}
	if mlpANTT > icountANTT*0.90 {
		t.Errorf("4t mlpflush ANTT %.3f not >= 10%% below ICOUNT %.3f", mlpANTT, icountANTT)
	}
	if mlpSTP < flushSTP*0.98 {
		t.Errorf("4t mlpflush STP %.3f clearly below flush %.3f", mlpSTP, flushSTP)
	}
	if mlpANTT >= flushANTT {
		t.Errorf("4t mlpflush ANTT %.3f not below flush %.3f", mlpANTT, flushANTT)
	}
}

// TestClaimFlushBeatsStall verifies the Tullsen & Brown ordering the paper
// confirms: flush generally outperforms stall fetch (resources are actually
// freed, not just no longer grown).
func TestClaimFlushBeatsStall(t *testing.T) {
	if testing.Short() {
		t.Skip("reproduction claims need a moderate budget")
	}
	r := sim.NewRunner(sim.Params{Instructions: 40_000, Warmup: 15_000})
	ws := mlpSubset()
	stallSTP, _ := groupMetrics(t, r, ws, policy.Stall)
	flushSTP, _ := groupMetrics(t, r, ws, policy.Flush)
	t.Logf("stall STP %.3f, flush STP %.3f", stallSTP, flushSTP)
	if flushSTP < stallSTP*0.97 {
		t.Errorf("flush STP %.3f clearly below stall %.3f", flushSTP, stallSTP)
	}
}

// TestClaimMcfGalgelCaseStudy reproduces the paper's worked example: under
// flush, mcf loses its MLP; under MLP-aware flush it keeps it while galgel
// still gains substantially over ICOUNT-with-flush-free sharing.
func TestClaimMcfGalgelCaseStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("reproduction claims need a moderate budget")
	}
	r := sim.NewRunner(sim.Params{Instructions: 60_000, Warmup: 20_000})
	cfg := core.DefaultConfig(2)
	w := bench.Workload{Benchmarks: []string{"mcf", "galgel"}}

	flush := r.RunWorkload(cfg, w, policy.Flush, nil)
	mlpflush := r.RunWorkload(cfg, w, policy.MLPFlush, nil)
	icount := r.RunWorkload(cfg, w, policy.ICount, nil)

	t.Logf("mcf MLP: icount %.2f flush %.2f mlpflush %.2f",
		icount.Result.MLP[0], flush.Result.MLP[0], mlpflush.Result.MLP[0])
	t.Logf("mcf IPC: icount %.3f flush %.3f mlpflush %.3f",
		icount.Result.IPC[0], flush.Result.IPC[0], mlpflush.Result.IPC[0])

	if mlpflush.Result.MLP[0] <= flush.Result.MLP[0] {
		t.Error("MLP-aware flush did not preserve more of mcf's MLP than flush")
	}
	if mlpflush.Result.IPC[0] <= flush.Result.IPC[0] {
		t.Error("mcf not faster under MLP-aware flush than under flush")
	}
	// "performance for mcf under MLP-aware flush is comparable to under
	// ICOUNT": within 25%.
	if mlpflush.Result.IPC[0] < icount.Result.IPC[0]*0.75 {
		t.Errorf("mcf IPC under mlpflush (%.3f) far below ICOUNT (%.3f)",
			mlpflush.Result.IPC[0], icount.Result.IPC[0])
	}
	// galgel improves substantially compared to ICOUNT.
	if mlpflush.Result.IPC[1] <= icount.Result.IPC[1]*1.10 {
		t.Errorf("galgel IPC under mlpflush (%.3f) not >=10%% above ICOUNT (%.3f)",
			mlpflush.Result.IPC[1], icount.Result.IPC[1])
	}
}

// TestClaimPrefetcherSpeedsUpBaseline verifies the Figure 5 property the
// TACO version adds: the baseline's hardware prefetcher delivers a solid
// average single-thread speedup (paper: 20.2%).
func TestClaimPrefetcherSpeedsUpBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("reproduction claims need a moderate budget")
	}
	r := sim.NewRunner(sim.Params{Instructions: 30_000, Warmup: 10_000})
	var invOn, invOff float64
	for _, name := range []string{"applu", "swim", "lucas", "mgrid", "equake", "gcc", "bzip2", "mcf"} {
		on := core.DefaultConfig(1)
		off := core.DefaultConfig(1)
		off.Mem.EnablePrefetch = false
		invOn += 1 / r.RunSingle(on, name).IPC[0]
		invOff += 1 / r.RunSingle(off, name).IPC[0]
	}
	speedup := invOff/invOn - 1
	t.Logf("harmonic prefetch speedup over memory-heavy subset: %.1f%%", 100*speedup)
	if speedup < 0.08 {
		t.Errorf("prefetch speedup %.3f too small", speedup)
	}
}

// TestClaimMLPClassificationMatchesTableI verifies all 26 benchmarks land in
// the paper's ILP/MLP classes at a moderate budget.
func TestClaimMLPClassificationMatchesTableI(t *testing.T) {
	if testing.Short() {
		t.Skip("reproduction claims need a moderate budget")
	}
	r := sim.NewRunner(sim.Params{Instructions: 60_000, Warmup: 20_000})
	for _, b := range bench.All() {
		b := b
		cfg := core.DefaultConfig(1)
		par := r.RunSingle(cfg, b.Model.Name)
		ser := cfg
		ser.Mem.SerializeLLL = true
		serRes := r.RunSingle(ser, b.Model.Name)
		cpiPar := 1 / par.IPC[0]
		cpiSer := 1 / serRes.IPC[0]
		measured := bench.ILP
		if (cpiSer-cpiPar)/cpiSer > 0.10 {
			measured = bench.MLP
		}
		if measured != b.PaperClass {
			t.Errorf("%s classified %v, paper says %v", b.Model.Name, measured, b.PaperClass)
		}
	}
}
