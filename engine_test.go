package smtmlp

import (
	"context"
	"errors"
	"runtime"
	"testing"
)

// fastEngineOptions keeps engine tests quick while exercising real
// simulations.
func fastEngineOptions() []Option {
	return []Option{WithInstructions(8_000), WithWarmup(2_000), WithParallelism(4)}
}

func TestEngineOptionDefaults(t *testing.T) {
	e := NewEngine()
	if e.Instructions() != 300_000 {
		t.Fatalf("default Instructions %d, want 300000", e.Instructions())
	}
	if e.Warmup() != 75_000 {
		t.Fatalf("default Warmup %d, want Instructions/4", e.Warmup())
	}
	if e.Parallelism() != 0 {
		t.Fatalf("default Parallelism %d, want 0 (GOMAXPROCS)", e.Parallelism())
	}
	if e.Cache() == nil || e.Cache().Len() != 0 {
		t.Fatal("engine missing an empty private cache")
	}
	if runtime.GOMAXPROCS(0) < 1 {
		t.Fatal("GOMAXPROCS broken")
	}
}

func TestEngineOptionOverrides(t *testing.T) {
	e := NewEngine(WithInstructions(10_000), WithWarmup(123), WithParallelism(3))
	if e.Instructions() != 10_000 || e.Warmup() != 123 || e.Parallelism() != 3 {
		t.Fatalf("options not applied: %d %d %d", e.Instructions(), e.Warmup(), e.Parallelism())
	}
	// Zero-value options keep the defaults rather than zeroing the budget.
	e = NewEngine(WithInstructions(0))
	if e.Instructions() != 300_000 {
		t.Fatalf("WithInstructions(0) broke the default: %d", e.Instructions())
	}
	shared := NewCache(8)
	e = NewEngine(WithCache(shared), WithCacheSize(999))
	if e.Cache() != shared {
		t.Fatal("WithCache not honored")
	}
}

func TestEngineRunSingle(t *testing.T) {
	e := NewEngine(WithInstructions(10_000))
	res, err := e.RunSingle(context.Background(), DefaultConfig(1), "gcc")
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || res.Instructions < 10_000 || res.Cycles <= 0 {
		t.Fatalf("bad result %+v", res)
	}
}

func TestEngineTypedErrors(t *testing.T) {
	e := NewEngine(fastEngineOptions()...)
	if _, err := e.RunSingle(context.Background(), DefaultConfig(1), "nope"); !errors.Is(err, ErrUnknownBenchmark) {
		t.Fatalf("RunSingle unknown benchmark: %v", err)
	}
	if _, err := e.RunWorkload(context.Background(), DefaultConfig(2), Mix("swim", "nope"), ICount); !errors.Is(err, ErrUnknownBenchmark) {
		t.Fatalf("RunWorkload unknown benchmark: %v", err)
	}
	// An empty workload must fail cleanly, not panic in the pipeline.
	if _, err := e.RunWorkload(context.Background(), DefaultConfig(2), Workload{}, ICount); err == nil {
		t.Fatal("empty workload accepted")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.RunWorkload(ctx, DefaultConfig(2), Mix("swim", "twolf"), ICount)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled run: %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run: %v should also match context.Canceled", err)
	}

	// Batch: an unknown benchmark fails its request, not the batch.
	reqs := []Request{
		{Workload: Mix("swim", "twolf"), Config: DefaultConfig(2), Policy: ICount},
		{Workload: Mix("bogus"), Config: DefaultConfig(1), Policy: ICount},
	}
	var okRuns, unknown int
	for br := range e.RunBatch(context.Background(), reqs) {
		switch {
		case br.Err == nil:
			okRuns++
		case errors.Is(br.Err, ErrUnknownBenchmark):
			unknown++
		default:
			t.Fatalf("unexpected batch error: %v", br.Err)
		}
	}
	if okRuns != 1 || unknown != 1 {
		t.Fatalf("batch outcomes ok=%d unknown=%d, want 1 and 1", okRuns, unknown)
	}
}

// TestEngineRunBatchCrossProduct is the acceptance-criterion test: a
// 6-policy x 4-workload cross-product on a bounded pool reproduces exactly
// the STP/ANTT of sequential RunWorkload calls.
func TestEngineRunBatchCrossProduct(t *testing.T) {
	cfg := DefaultConfig(2)
	workloads := TwoThreadWorkloads()[:4]
	policies := Policies()
	if len(policies) < 6 || len(workloads) < 4 {
		t.Fatalf("cross-product too small: %d policies x %d workloads", len(policies), len(workloads))
	}
	reqs := CrossProduct(cfg, workloads, policies)
	if len(reqs) != 24 {
		t.Fatalf("cross-product built %d requests, want 24", len(reqs))
	}

	var calls []int
	eng := NewEngine(append(fastEngineOptions(),
		WithProgress(func(done, total int) {
			if total != len(reqs) {
				t.Errorf("progress total %d, want %d", total, len(reqs))
			}
			calls = append(calls, done)
		}))...)

	got := make([]WorkloadResult, len(reqs))
	seen := make([]bool, len(reqs))
	for br := range eng.RunBatch(context.Background(), reqs) {
		if br.Err != nil {
			t.Fatalf("request %d (%s): %v", br.Index, br.Request.Tag, br.Err)
		}
		if seen[br.Index] {
			t.Fatalf("request %d delivered twice", br.Index)
		}
		seen[br.Index] = true
		got[br.Index] = br.Result
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("request %d (%s) never delivered", i, reqs[i].Tag)
		}
	}
	if len(calls) != len(reqs) || calls[len(calls)-1] != len(reqs) {
		t.Fatalf("progress calls %v do not end at %d", calls, len(reqs))
	}
	for i := 1; i < len(calls); i++ {
		if calls[i] != calls[i-1]+1 {
			t.Fatalf("progress not monotonic: %v", calls)
		}
	}

	// Sequential ground truth on a fresh engine (cold cache): values must
	// match exactly — the simulator is deterministic.
	seq := NewEngine(fastEngineOptions()...)
	for i, req := range reqs {
		want, err := seq.RunWorkload(context.Background(), req.Config, req.Workload, req.Policy)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].STP != want.STP || got[i].ANTT != want.ANTT || got[i].Cycles != want.Cycles {
			t.Fatalf("%s: batch STP=%v ANTT=%v cycles=%d; sequential STP=%v ANTT=%v cycles=%d",
				req.Tag, got[i].STP, got[i].ANTT, got[i].Cycles, want.STP, want.ANTT, want.Cycles)
		}
		if got[i].Policy != req.Policy.String() {
			t.Fatalf("%s: policy label %q", req.Tag, got[i].Policy)
		}
	}
}

func TestEngineRunBatchCancellationDrains(t *testing.T) {
	cfg := DefaultConfig(2)
	w := Mix("swim", "twolf")
	var reqs []Request
	for i := 0; i < 24; i++ {
		reqs = append(reqs, Request{Config: cfg, Workload: w, Policy: ICount})
	}
	eng := NewEngine(WithInstructions(8_000), WithWarmup(2_000), WithParallelism(2))

	ctx, cancel := context.WithCancel(context.Background())
	ch := eng.RunBatch(ctx, reqs)
	first := <-ch
	cancel()

	delivered := 1
	canceled := 0
	if first.Err != nil {
		t.Fatalf("first result already failed: %v", first.Err)
	}
	for br := range ch {
		delivered++
		if br.Err != nil {
			if !errors.Is(br.Err, ErrCanceled) || !errors.Is(br.Err, context.Canceled) {
				t.Fatalf("unexpected error after cancel: %v", br.Err)
			}
			canceled++
		}
	}
	if delivered != len(reqs) {
		t.Fatalf("canceled batch delivered %d results, want all %d (drain must be clean)", delivered, len(reqs))
	}
	if canceled == 0 {
		t.Fatal("no request observed the cancellation")
	}
}

// TestEngineSharedCache verifies the promoted reference cache: two engines
// sharing one Cache compute each single-threaded reference once, and warm
// results are identical to a cold engine's.
func TestEngineSharedCache(t *testing.T) {
	cfg := DefaultConfig(2)
	w := Mix("mcf", "galgel")
	shared := NewCache(32)

	e1 := NewEngine(append(fastEngineOptions(), WithCache(shared))...)
	warm1, err := e1.RunWorkload(context.Background(), cfg, w, MLPFlush)
	if err != nil {
		t.Fatal(err)
	}
	if shared.Len() == 0 {
		t.Fatal("shared cache empty after a run")
	}
	_, missesAfter1, _ := shared.Stats()

	e2 := NewEngine(append(fastEngineOptions(), WithCache(shared))...)
	warm2, err := e2.RunWorkload(context.Background(), cfg, w, MLPFlush)
	if err != nil {
		t.Fatal(err)
	}
	_, missesAfter2, _ := shared.Stats()
	if missesAfter2 != missesAfter1 {
		t.Fatalf("second engine recomputed references: misses %d -> %d", missesAfter1, missesAfter2)
	}

	cold, err := NewEngine(fastEngineOptions()...).RunWorkload(context.Background(), cfg, w, MLPFlush)
	if err != nil {
		t.Fatal(err)
	}
	if warm1.STP != cold.STP || warm1.ANTT != cold.ANTT ||
		warm2.STP != cold.STP || warm2.ANTT != cold.ANTT {
		t.Fatalf("shared-cache results (%v/%v, %v/%v) differ from cold (%v/%v)",
			warm1.STP, warm1.ANTT, warm2.STP, warm2.ANTT, cold.STP, cold.ANTT)
	}
}

// TestEngineWorkloadMismatch is the regression test for the typed
// thread-count validation: a workload whose benchmark count differs from the
// configuration's thread count must fail fast with ErrWorkloadMismatch at
// the Engine boundary instead of surfacing as a confusing deep-sim failure.
func TestEngineWorkloadMismatch(t *testing.T) {
	e := NewEngine(fastEngineOptions()...)
	ctx := context.Background()

	// RunWorkload: 3 benchmarks on a 2-thread configuration.
	_, err := e.RunWorkload(ctx, DefaultConfig(2), Mix("swim", "twolf", "gcc"), ICount)
	if !errors.Is(err, ErrWorkloadMismatch) {
		t.Fatalf("RunWorkload mismatch: %v, want ErrWorkloadMismatch", err)
	}
	// RunSingle requires a single-threaded configuration.
	if _, err := e.RunSingle(ctx, DefaultConfig(2), "gcc"); !errors.Is(err, ErrWorkloadMismatch) {
		t.Fatalf("RunSingle mismatch: %v, want ErrWorkloadMismatch", err)
	}
	// RunBatch: the mismatched request fails, the valid one completes.
	reqs := []Request{
		{Config: DefaultConfig(2), Workload: Mix("swim", "twolf"), Policy: ICount},
		{Config: DefaultConfig(4), Workload: Mix("swim", "twolf"), Policy: ICount},
	}
	var ok, mismatched int
	for br := range e.RunBatch(ctx, reqs) {
		switch {
		case br.Err == nil:
			ok++
		case errors.Is(br.Err, ErrWorkloadMismatch):
			mismatched++
		default:
			t.Fatalf("unexpected batch error: %v", br.Err)
		}
	}
	if ok != 1 || mismatched != 1 {
		t.Fatalf("batch outcomes ok=%d mismatched=%d, want 1 and 1", ok, mismatched)
	}
	// An unknown benchmark still wins over the count check (it is the more
	// actionable error).
	if _, err := e.RunWorkload(ctx, DefaultConfig(2), Mix("nope"), ICount); !errors.Is(err, ErrUnknownBenchmark) {
		t.Fatalf("unknown benchmark with wrong count: %v, want ErrUnknownBenchmark", err)
	}
}

// TestFingerprint pins the content-address semantics the result store
// depends on: equal requests agree, and every input dimension — benchmarks,
// policy, budget, any configuration field — changes the fingerprint.
func TestFingerprint(t *testing.T) {
	base := Request{Config: DefaultConfig(2), Workload: Mix("mcf", "galgel"), Policy: MLPFlush}
	fp := Fingerprint(base, 10_000, 2_500)
	if fp != Fingerprint(base, 10_000, 2_500) {
		t.Fatal("fingerprint not deterministic")
	}
	tagged := base
	tagged.Tag = "some-label"
	if Fingerprint(tagged, 10_000, 2_500) != fp {
		t.Fatal("tag must not change the fingerprint")
	}
	variants := map[string]Request{}
	v := base
	v.Workload = Mix("mcf", "swim")
	variants["benchmarks"] = v
	v = base
	v.Policy = ICount
	variants["policy"] = v
	v = base
	v.Config.Mem.MemLatency = 500
	variants["mem latency"] = v
	v = base
	v.Config = v.Config.ScaleWindow(512)
	variants["window"] = v
	for dim, req := range variants {
		if Fingerprint(req, 10_000, 2_500) == fp {
			t.Fatalf("changing %s did not change the fingerprint", dim)
		}
	}
	if Fingerprint(base, 20_000, 2_500) == fp || Fingerprint(base, 10_000, 5_000) == fp {
		t.Fatal("budget must change the fingerprint")
	}

	// The engine method applies its own resolved budget.
	e := NewEngine(WithInstructions(10_000), WithWarmup(2_500))
	if e.Fingerprint(base) != fp {
		t.Fatalf("engine fingerprint %q != %q", e.Fingerprint(base), fp)
	}
}

// TestCacheExportSeed verifies the warm-start path: profiles exported from a
// warm cache and seeded into a fresh one fully replace reference
// re-simulation, with identical results.
func TestCacheExportSeed(t *testing.T) {
	cfg := DefaultConfig(2)
	w := Mix("mcf", "galgel")
	warm := NewCache(32)
	e1 := NewEngine(append(fastEngineOptions(), WithCache(warm))...)
	want, err := e1.RunWorkload(context.Background(), cfg, w, MLPFlush)
	if err != nil {
		t.Fatal(err)
	}

	exported := warm.Export()
	if len(exported) != 2 {
		t.Fatalf("exported %d profiles, want 2", len(exported))
	}
	for i := 1; i < len(exported); i++ {
		if exported[i-1].Key >= exported[i].Key {
			t.Fatalf("export not sorted by key: %q >= %q", exported[i-1].Key, exported[i].Key)
		}
	}

	seeded := NewCache(32)
	if n := seeded.Seed(exported); n != len(exported) {
		t.Fatalf("seeded %d profiles, want %d", n, len(exported))
	}
	if n := seeded.Seed(exported); n != 0 {
		t.Fatalf("re-seeding inserted %d profiles, want 0", n)
	}
	e2 := NewEngine(append(fastEngineOptions(), WithCache(seeded))...)
	got, err := e2.RunWorkload(context.Background(), cfg, w, MLPFlush)
	if err != nil {
		t.Fatal(err)
	}
	if _, misses, _ := seeded.Stats(); misses != 0 {
		t.Fatalf("seeded cache re-simulated %d references, want 0", misses)
	}
	if got.STP != want.STP || got.ANTT != want.ANTT || got.Cycles != want.Cycles {
		t.Fatalf("seeded-cache result %v/%v differs from original %v/%v",
			got.STP, got.ANTT, want.STP, want.ANTT)
	}
}
