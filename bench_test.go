// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation. Each benchmark regenerates its experiment at a reduced
// instruction budget and reports the headline quantities as custom metrics,
// so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation in one run. cmd/repro prints the full
// rows/series at configurable budgets; EXPERIMENTS.md records a reference
// run at larger scale.
package smtmlp_test

import (
	"context"
	"testing"

	"smtmlp"

	"smtmlp/internal/bench"
	"smtmlp/internal/experiments"
	"smtmlp/internal/metrics"
	"smtmlp/internal/sim"
)

// benchRunner returns a runner sized for the bench harness. Every benchmark
// calls it first, so the whole harness consistently respects -short (each
// regenerated experiment is far more than a short run should pay for).
func benchRunner(b *testing.B) *sim.Runner {
	b.Helper()
	if testing.Short() {
		b.Skip("bench harness regenerates paper experiments; skipped in -short")
	}
	return sim.NewRunner(sim.Params{Instructions: 30_000, Warmup: 10_000})
}

// BenchmarkTableI regenerates the Table I / Figure 1 characterization
// (LLL/1K, MLP, MLP impact, classification for all 26 benchmarks).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.TableI(context.Background(), benchRunner(b))
		match, total := res.ClassAgreement()
		b.ReportMetric(float64(match)/float64(total), "class-agreement")
	}
}

// BenchmarkFigure4 regenerates the MLP distance CDFs of the six most
// MLP-intensive benchmarks.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure4(context.Background(), benchRunner(b))
		// Report the fraction of lucas's MLP found below distance 40 (the
		// paper: "nearly 100%").
		for j, name := range res.Benchmarks {
			if name == "lucas" && len(res.CDF[j]) > 40 {
				b.ReportMetric(res.CDF[j][40], "lucas-cdf@40")
			}
		}
	}
}

// BenchmarkFigure5 regenerates the prefetching on/off IPC comparison.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure5(context.Background(), benchRunner(b))
		b.ReportMetric(res.HarmonicSpeedup, "prefetch-speedup")
	}
}

// BenchmarkFigure6and7and8 regenerates the predictor accuracy study.
func BenchmarkFigure6and7and8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Predictors(context.Background(), benchRunner(b))
		var acc, bin, far float64
		var n float64
		for _, r := range res.Rows {
			acc += r.HitMissAccuracy
			if r.HasMLPData {
				bin += r.TP + r.TN
				far += r.FarEnough
				n++
			}
		}
		b.ReportMetric(acc/float64(len(res.Rows)), "fig6-lll-accuracy")
		if n > 0 {
			b.ReportMetric(bin/n, "fig7-binary-accuracy")
			b.ReportMetric(far/n, "fig8-far-enough")
		}
	}
}

// reportGroup emits STP/ANTT metrics for one workload class of a policy
// comparison.
func reportGroup(b *testing.B, pc experiments.PolicyComparison, class bench.WorkloadClass, prefix string) {
	b.Helper()
	icount, ok1 := pc.GroupPolicy(class, "icount")
	mlpflush, ok2 := pc.GroupPolicy(class, "mlpflush")
	if ok1 && ok2 {
		b.ReportMetric(metrics.RelativeChange(icount.STP, mlpflush.STP), prefix+"-stp-vs-icount")
		b.ReportMetric(metrics.RelativeChange(icount.ANTT, mlpflush.ANTT), prefix+"-antt-vs-icount")
	}
}

// BenchmarkFigure9and10 regenerates the two-thread policy comparison.
func BenchmarkFigure9and10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pc := experiments.Figure9and10(context.Background(), benchRunner(b))
		reportGroup(b, pc, bench.MLPWorkload, "mlp")
		reportGroup(b, pc, bench.MixedWorkload, "mixed")
	}
}

// BenchmarkFigure11and12 regenerates the per-thread IPC stacks (the same
// simulations as Figures 9/10, rendered per thread).
func BenchmarkFigure11and12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pc := experiments.Figure9and10(context.Background(), benchRunner(b))
		_ = pc.IPCStacks(bench.MLPWorkload)
		_ = pc.IPCStacks(bench.MixedWorkload)
	}
}

// BenchmarkFigure13and14 regenerates the four-thread policy comparison.
func BenchmarkFigure13and14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pc := experiments.Figure13and14(context.Background(), benchRunner(b))
		reportGroup(b, pc, bench.MixedWorkload, "4t-mixed")
	}
}

// BenchmarkFigure15and16 regenerates the memory latency sweep.
func BenchmarkFigure15and16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure15and16(context.Background(), benchRunner(b))
		// The paper's trend: the MLP-aware flush advantage over ICOUNT
		// grows with memory latency. Report both endpoints.
		for _, label := range []string{"mem=200", "mem=800"} {
			var icount, mlpflush float64
			for _, p := range res.Points[label] {
				switch p.Policy {
				case "icount":
					icount = p.STP
				case "mlpflush":
					mlpflush = p.STP
				}
			}
			if icount > 0 {
				b.ReportMetric(mlpflush/icount-1, label+"-stp-gain")
			}
		}
	}
}

// BenchmarkFigure17and18 regenerates the window size sweep.
func BenchmarkFigure17and18(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure17and18(context.Background(), benchRunner(b))
		for _, label := range []string{"rob=128", "rob=1024"} {
			var icount, mlpflush float64
			for _, p := range res.Points[label] {
				switch p.Policy {
				case "icount":
					icount = p.ANTT
				case "mlpflush":
					mlpflush = p.ANTT
				}
			}
			if icount > 0 {
				b.ReportMetric(1-mlpflush/icount, label+"-antt-gain")
			}
		}
	}
}

// BenchmarkFigure20and21 regenerates the alternative-policy study (a-e).
func BenchmarkFigure20and21(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pc := experiments.Figure20and21(context.Background(), benchRunner(b))
		if f, ok := pc.GroupPolicy(bench.MLPWorkload, "mlpflush"); ok {
			if d, ok2 := pc.GroupPolicy(bench.MLPWorkload, "mlpflush-rs"); ok2 {
				b.ReportMetric(metrics.RelativeChange(f.STP, d.STP), "d-vs-b-stp")
			}
		}
	}
}

// BenchmarkFigure22and23 regenerates the partitioning comparison
// (MLP-aware flush vs static partitioning vs DCRA).
func BenchmarkFigure22and23(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure22and23(context.Background(), benchRunner(b))
		var mlpflush, dcra float64
		for _, row := range res.TwoThread {
			if row.Class == bench.MLPWorkload {
				switch row.Scheme {
				case "mlpflush":
					mlpflush = row.ANTT
				case "dcra":
					dcra = row.ANTT
				}
			}
		}
		if dcra > 0 {
			b.ReportMetric(1-mlpflush/dcra, "antt-gain-vs-dcra")
		}
	}
}

// BenchmarkCorePipeline measures raw simulator speed (cycles simulated per
// second are implied by ns/op for a fixed-size run).
func BenchmarkCorePipeline(b *testing.B) {
	if testing.Short() {
		b.Skip("pipeline benchmark runs a full-size simulation; skipped in -short")
	}
	r := sim.NewRunner(sim.Params{Instructions: 50_000, Warmup: 0, Parallelism: 1})
	cfg := smtmlp.DefaultConfig(2)
	w := bench.Workload{Benchmarks: []string{"mcf", "galgel"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := r.RunWorkload(cfg, w, smtmlp.MLPFlush, nil)
		b.ReportMetric(float64(res.Result.Cycles), "cycles")
	}
}
