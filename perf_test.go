// Machine-readable performance snapshot: TestPerfSnapshot runs a fixed set
// of representative workloads and writes per-workload wall time and
// simulator throughput to the path given by -perf-out. The committed
// baseline is BENCH_6.json; CI regenerates a fresh snapshot and compares it
// against that baseline with -perf-baseline, which asserts only on the
// deterministic simulator outputs (cycles, committed instructions — drift
// there is a behavior change, so regenerate the baseline deliberately) and
// prints wall-time ratios as information. Timing is never asserted, so the
// test cannot flake on a loaded machine. Without -perf-out the test skips.
package smtmlp_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"testing"
	"time"

	"smtmlp"
)

var (
	perfOut      = flag.String("perf-out", "", "write the perf snapshot JSON (e.g. BENCH_7.json) to this path")
	perfBaseline = flag.String("perf-baseline", "", "committed snapshot to compare against (e.g. BENCH_7.json)")
	perfPprof    = flag.String("perf-pprof", "", "capture a CPU profile of the measurement loop to this path")
	perfGate     = flag.Float64("perf-gate", 0, "fail if any workload's instr_per_sec falls below this fraction of the baseline's (0 disables; CI uses 0.75)")
)

// perfEntry is one measured workload.
type perfEntry struct {
	Workload     string  `json:"workload"`
	Policy       string  `json:"policy"`
	Threads      int     `json:"threads"`
	Seconds      float64 `json:"seconds"`
	Cycles       int64   `json:"cycles"`
	Instructions uint64  `json:"instructions"`
	// Simulator throughput: simulated cycles (resp. committed instructions)
	// per wall-clock second.
	CyclesPerSec float64 `json:"cycles_per_sec"`
	InstrPerSec  float64 `json:"instr_per_sec"`
}

// perfSnapshot is the BENCH_5.json schema.
type perfSnapshot struct {
	Schema       string      `json:"schema"`
	Budget       uint64      `json:"budget"`
	Warmup       uint64      `json:"warmup"`
	Workloads    []perfEntry `json:"workloads"`
	TotalSeconds float64     `json:"total_seconds"`
}

func TestPerfSnapshot(t *testing.T) {
	if *perfOut == "" {
		t.Skip("no -perf-out path; perf snapshot not requested")
	}
	const budget, warmup = 30_000, 10_000
	eng := smtmlp.NewEngine(
		smtmlp.WithInstructions(budget),
		smtmlp.WithWarmup(warmup),
		smtmlp.WithParallelism(1), // serial: per-workload wall time is meaningful
	)
	cases := []struct {
		benchmarks []string
		policy     smtmlp.Policy
	}{
		{[]string{"mcf", "galgel"}, smtmlp.MLPFlush},                   // MLP-intensive pair, headline policy
		{[]string{"swim", "twolf"}, smtmlp.ICount},                     // mixed pair, baseline policy
		{[]string{"vortex", "parser"}, smtmlp.Flush},                   // ILP pair, flush machinery
		{[]string{"applu", "galgel", "swim", "mesa"}, smtmlp.MLPFlush}, // 4-thread all-MLP
	}
	snap := perfSnapshot{Schema: "smtmlp/perf/v1", Budget: budget, Warmup: warmup}
	ctx := t.Context()
	if *perfPprof != "" {
		f, err := os.Create(*perfPprof)
		if err != nil {
			t.Fatalf("creating -perf-pprof file: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			t.Fatalf("starting CPU profile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	for _, c := range cases {
		w := smtmlp.Mix(c.benchmarks...)
		cfg := smtmlp.DefaultConfig(len(c.benchmarks))
		start := time.Now()
		res, err := eng.RunWorkload(ctx, cfg, w, c.policy)
		if err != nil {
			t.Fatalf("%s/%s: %v", w.Name(), c.policy, err)
		}
		secs := time.Since(start).Seconds()
		var committed uint64
		for _, th := range res.Threads {
			committed += th.Committed
		}
		entry := perfEntry{
			Workload:     w.Name(),
			Policy:       c.policy.String(),
			Threads:      len(c.benchmarks),
			Seconds:      secs,
			Cycles:       res.Cycles,
			Instructions: committed,
		}
		if secs > 0 {
			entry.CyclesPerSec = float64(res.Cycles) / secs
			entry.InstrPerSec = float64(committed) / secs
		}
		snap.Workloads = append(snap.Workloads, entry)
		snap.TotalSeconds += secs
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*perfOut, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("perf snapshot (%d workloads, %.2fs total) written to %s",
		len(snap.Workloads), snap.TotalSeconds, *perfOut)

	if *perfBaseline != "" {
		comparePerf(t, snap, *perfBaseline)
	}
}

// comparePerf checks the fresh snapshot against the committed baseline. The
// simulator outputs (cycles, committed instructions) are deterministic, so
// any difference is a behavior change that must be accompanied by a
// deliberate baseline regeneration. Wall-time ratios are printed (via fmt,
// so they appear without -v); with -perf-gate they also become an assertion:
// a workload whose instr_per_sec falls below gate x baseline fails the test,
// so performance regressions are pinned in CI rather than anecdotal. The
// gate has headroom for machine noise (CI uses 0.75, i.e. fail only on a
// >25% regression); improvements are reported, never required.
func comparePerf(t *testing.T, snap perfSnapshot, baselinePath string) {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		t.Fatalf("reading perf baseline: %v", err)
	}
	var base perfSnapshot
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("decoding perf baseline %s: %v", baselinePath, err)
	}
	if base.Schema != snap.Schema || base.Budget != snap.Budget || base.Warmup != snap.Warmup {
		t.Fatalf("baseline %s measures schema=%q budget=%d warmup=%d; this test measures schema=%q budget=%d warmup=%d — regenerate it with -perf-out",
			baselinePath, base.Schema, base.Budget, base.Warmup, snap.Schema, snap.Budget, snap.Warmup)
	}
	byKey := make(map[string]perfEntry, len(base.Workloads))
	for _, e := range base.Workloads {
		byKey[e.Workload+"/"+e.Policy] = e
	}
	fmt.Printf("perf vs %s:\n", baselinePath)
	for _, e := range snap.Workloads {
		b, ok := byKey[e.Workload+"/"+e.Policy]
		if !ok {
			t.Errorf("workload %s/%s missing from baseline %s — regenerate it with -perf-out", e.Workload, e.Policy, baselinePath)
			continue
		}
		if b.Cycles != e.Cycles || b.Instructions != e.Instructions {
			t.Errorf("%s/%s simulates cycles=%d instructions=%d, baseline has cycles=%d instructions=%d — simulator behavior changed; regenerate %s deliberately",
				e.Workload, e.Policy, e.Cycles, e.Instructions, b.Cycles, b.Instructions, baselinePath)
		}
		ratio := 0.0
		if e.Seconds > 0 {
			ratio = b.Seconds / e.Seconds
		}
		fmt.Printf("  %-32s %-9s %7.3fs (baseline %7.3fs, speedup x%.2f)\n",
			e.Workload, e.Policy, e.Seconds, b.Seconds, ratio)
		if *perfGate > 0 && b.InstrPerSec > 0 {
			frac := e.InstrPerSec / b.InstrPerSec
			switch {
			case frac < *perfGate:
				t.Errorf("%s/%s throughput regressed: %.0f instr/s is %.2fx the baseline's %.0f (gate %.2f) — investigate, or regenerate %s if the slowdown is deliberate",
					e.Workload, e.Policy, e.InstrPerSec, frac, b.InstrPerSec, *perfGate, baselinePath)
			case frac > 1:
				fmt.Printf("    throughput improved: %.0f instr/s vs baseline %.0f (x%.2f)\n",
					e.InstrPerSec, b.InstrPerSec, frac)
			}
		}
	}
	if snap.TotalSeconds > 0 {
		fmt.Printf("  total %.3fs (baseline %.3fs, speedup x%.2f)\n",
			snap.TotalSeconds, base.TotalSeconds, base.TotalSeconds/snap.TotalSeconds)
	}
}
