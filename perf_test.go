// Machine-readable performance snapshot: TestPerfSnapshot runs a fixed set
// of representative workloads and writes per-workload wall time and
// simulator throughput to the path given by -perf-out (CI writes BENCH_5.json
// and uploads it as an artifact, so the perf trajectory accumulates across
// PRs). Without -perf-out the test skips; it never asserts on timing, so it
// cannot flake on a loaded machine.
package smtmlp_test

import (
	"encoding/json"
	"flag"
	"os"
	"testing"
	"time"

	"smtmlp"
)

var perfOut = flag.String("perf-out", "", "write the perf snapshot JSON (e.g. BENCH_5.json) to this path")

// perfEntry is one measured workload.
type perfEntry struct {
	Workload     string  `json:"workload"`
	Policy       string  `json:"policy"`
	Threads      int     `json:"threads"`
	Seconds      float64 `json:"seconds"`
	Cycles       int64   `json:"cycles"`
	Instructions uint64  `json:"instructions"`
	// Simulator throughput: simulated cycles (resp. committed instructions)
	// per wall-clock second.
	CyclesPerSec float64 `json:"cycles_per_sec"`
	InstrPerSec  float64 `json:"instr_per_sec"`
}

// perfSnapshot is the BENCH_5.json schema.
type perfSnapshot struct {
	Schema       string      `json:"schema"`
	Budget       uint64      `json:"budget"`
	Warmup       uint64      `json:"warmup"`
	Workloads    []perfEntry `json:"workloads"`
	TotalSeconds float64     `json:"total_seconds"`
}

func TestPerfSnapshot(t *testing.T) {
	if *perfOut == "" {
		t.Skip("no -perf-out path; perf snapshot not requested")
	}
	const budget, warmup = 30_000, 10_000
	eng := smtmlp.NewEngine(
		smtmlp.WithInstructions(budget),
		smtmlp.WithWarmup(warmup),
		smtmlp.WithParallelism(1), // serial: per-workload wall time is meaningful
	)
	cases := []struct {
		benchmarks []string
		policy     smtmlp.Policy
	}{
		{[]string{"mcf", "galgel"}, smtmlp.MLPFlush},                   // MLP-intensive pair, headline policy
		{[]string{"swim", "twolf"}, smtmlp.ICount},                     // mixed pair, baseline policy
		{[]string{"vortex", "parser"}, smtmlp.Flush},                   // ILP pair, flush machinery
		{[]string{"applu", "galgel", "swim", "mesa"}, smtmlp.MLPFlush}, // 4-thread all-MLP
	}
	snap := perfSnapshot{Schema: "smtmlp/perf/v1", Budget: budget, Warmup: warmup}
	ctx := t.Context()
	for _, c := range cases {
		w := smtmlp.Mix(c.benchmarks...)
		cfg := smtmlp.DefaultConfig(len(c.benchmarks))
		start := time.Now()
		res, err := eng.RunWorkload(ctx, cfg, w, c.policy)
		if err != nil {
			t.Fatalf("%s/%s: %v", w.Name(), c.policy, err)
		}
		secs := time.Since(start).Seconds()
		var committed uint64
		for _, th := range res.Threads {
			committed += th.Committed
		}
		entry := perfEntry{
			Workload:     w.Name(),
			Policy:       c.policy.String(),
			Threads:      len(c.benchmarks),
			Seconds:      secs,
			Cycles:       res.Cycles,
			Instructions: committed,
		}
		if secs > 0 {
			entry.CyclesPerSec = float64(res.Cycles) / secs
			entry.InstrPerSec = float64(committed) / secs
		}
		snap.Workloads = append(snap.Workloads, entry)
		snap.TotalSeconds += secs
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*perfOut, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("perf snapshot (%d workloads, %.2fs total) written to %s",
		len(snap.Workloads), snap.TotalSeconds, *perfOut)
}
