package smtmlp

// Wire-format pinning: the JSON shapes of Request, BatchResult,
// WorkloadResult, SingleResult and EngineMetrics are served over HTTP by
// cmd/smtserved, so an accidental field rename or type change is a breaking
// API change. The golden file freezes the full serialization (field names,
// nesting, the policy name encoding and the config tree); regenerate it
// deliberately with
//
//	go test -run TestWireSchemaGolden -update-golden
//
// after an intentional wire change.

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// wireSample builds one fully-populated instance of every wire type with
// fixed values, so the golden bytes are deterministic.
func wireSample() any {
	wl := Mix("mcf", "galgel")
	req := Request{
		Tag:           "mcf-galgel/mlpflush",
		Config:        DefaultConfig(2),
		Workload:      wl,
		Policy:        MLPFlush,
		TraceInterval: 1000,
	}
	samples := []IntervalSample{
		{Cycle: 1000, Committed: 800, Fetched: 1200, L2Misses: 4, LLLs: 2,
			Flushes: 1, ROBOcc: 96, MLP: 3, Gated: true},
		{Cycle: 2000, Committed: 1100, Fetched: 1500, L2Misses: 0, LLLs: 0,
			Flushes: 0, ROBOcc: 12, MLP: 0},
	}
	res := WorkloadResult{
		Policy: "mlpflush",
		Threads: []ThreadResult{
			{Benchmark: "mcf", IPC: 0.5, Committed: 10000, LLLPer1K: 17.25,
				MLP: 5.125, Flushes: 12, CPIST: 2.5, CPIMT: 4.25,
				Intervals: samples},
			{Benchmark: "galgel", IPC: 1.25, Committed: 20000, LLLPer1K: 0.25,
				MLP: 3.75, Flushes: 3, CPIST: 0.75, CPIMT: 1.5},
		},
		Cycles: 40000,
		STP:    1.375,
		ANTT:   1.8125,
	}
	return struct {
		Request        Request       `json:"request"`
		BatchResultOK  BatchResult   `json:"batch_result_ok"`
		BatchResultErr BatchResult   `json:"batch_result_err"`
		SingleResult   SingleResult  `json:"single_result"`
		EngineMetrics  EngineMetrics `json:"engine_metrics"`
	}{
		Request:        req,
		BatchResultOK:  BatchResult{Index: 3, Request: req, Result: res},
		BatchResultErr: BatchResult{Index: 4, Request: req, Err: errors.New(`smtmlp: unknown benchmark: "nope"`)},
		SingleResult: SingleResult{IPC: 1.5, Cycles: 20000, Instructions: 30000,
			LLLPer1K: 2.25, MLP: 4.5, BranchMispredictRate: 0.03125,
			Intervals: samples[:1]},
		EngineMetrics: EngineMetrics{InFlight: 2, QueueDepth: 7, CacheEntries: 5,
			CacheHits: 40, CacheMisses: 5, CacheEvictions: 1},
	}
}

func TestWireSchemaGolden(t *testing.T) {
	got, err := json.MarshalIndent(wireSample(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "wire_schema.golden.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update-golden after an intentional wire change): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wire schema drifted from %s — a field rename or type change breaks HTTP clients.\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}

// TestBatchResultJSONRoundTrip pins the success/error split of the
// BatchResult wire form: exactly one of result/error appears, and both
// directions agree.
func TestBatchResultJSONRoundTrip(t *testing.T) {
	req := Request{Tag: "t", Config: DefaultConfig(2), Workload: Mix("mcf", "galgel"), Policy: Flush}

	ok := BatchResult{Index: 1, Request: req, Result: WorkloadResult{Policy: "flush", STP: 1.5, ANTT: 2, Cycles: 10}}
	b, err := json.Marshal(ok)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte(`"error"`)) {
		t.Fatalf("successful result carries an error field: %s", b)
	}
	var back BatchResult
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Err != nil || back.Index != 1 || back.Result.STP != 1.5 || back.Request.Policy != Flush {
		t.Fatalf("round-trip mismatch: %+v", back)
	}

	fail := BatchResult{Index: 2, Request: req, Err: ErrUnknownBenchmark}
	b, err = json.Marshal(fail)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte(`"result"`)) {
		t.Fatalf("failed result carries a result field: %s", b)
	}
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Err == nil || back.Err.Error() != ErrUnknownBenchmark.Error() {
		t.Fatalf("error did not survive the round trip: %+v", back.Err)
	}
}

// TestParsePolicy pins the public name -> Policy mapping the HTTP surface
// depends on.
func TestParsePolicy(t *testing.T) {
	if len(AllPolicies()) != 9 {
		t.Fatalf("AllPolicies() has %d entries, want 9", len(AllPolicies()))
	}
	for _, p := range AllPolicies() {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("nope"); !errors.Is(err, ErrUnknownPolicy) {
		t.Fatalf("ParsePolicy(nope) = %v, want ErrUnknownPolicy", err)
	}
}
