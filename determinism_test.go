package smtmlp_test

import (
	"encoding/json"
	"os"
	"testing"

	"smtmlp"
)

// TestKernelDeterminismAgainstBench replays the Table III workloads pinned in
// BENCH_6.json — the snapshot taken before the allocation-free kernel rewrite
// (pooled uop arena, bitmap wakeup, ring-buffer ROB/FEQ, open-addressed MSHR
// table, incremental skip-ahead) — and requires cycle- and instruction-exact
// agreement. Unlike TestPerfSnapshot this needs no flags, so every `go test
// ./...` proves the kernel optimizations changed speed and nothing else.
func TestKernelDeterminismAgainstBench(t *testing.T) {
	data, err := os.ReadFile("BENCH_6.json")
	if err != nil {
		t.Fatalf("reading pinned baseline: %v", err)
	}
	var base perfSnapshot
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("decoding BENCH_6.json: %v", err)
	}
	if base.Schema != "smtmlp/perf/v1" || len(base.Workloads) == 0 {
		t.Fatalf("unexpected baseline: schema=%q workloads=%d", base.Schema, len(base.Workloads))
	}

	eng := smtmlp.NewEngine(
		smtmlp.WithInstructions(base.Budget),
		smtmlp.WithWarmup(base.Warmup),
	)
	benchmarksOf := map[string][]string{
		"mcf-galgel":             {"mcf", "galgel"},
		"swim-twolf":             {"swim", "twolf"},
		"vortex-parser":          {"vortex", "parser"},
		"applu-galgel-swim-mesa": {"applu", "galgel", "swim", "mesa"},
	}
	for _, e := range base.Workloads {
		bms, ok := benchmarksOf[e.Workload]
		if !ok {
			t.Errorf("baseline workload %q has no benchmark mapping; update the test", e.Workload)
			continue
		}
		pol, err := smtmlp.ParsePolicy(e.Policy)
		if err != nil {
			t.Fatalf("baseline policy %q: %v", e.Policy, err)
		}
		w := smtmlp.Mix(bms...)
		res, err := eng.RunWorkload(t.Context(), smtmlp.DefaultConfig(len(bms)), w, pol)
		if err != nil {
			t.Fatalf("%s/%s: %v", e.Workload, e.Policy, err)
		}
		var committed uint64
		for _, th := range res.Threads {
			committed += th.Committed
		}
		if res.Cycles != e.Cycles || committed != e.Instructions {
			t.Errorf("%s/%s: cycles=%d instructions=%d, pinned baseline has cycles=%d instructions=%d — the kernel's deterministic outputs drifted",
				e.Workload, e.Policy, res.Cycles, committed, e.Cycles, e.Instructions)
		}
	}
}
